"""Checkpoint artifact integrity plus the end-to-end resilience test.

The acceptance criterion from the resilience PR: replay a corrupted
trace through an OnlinePredictor, kill it and restore from a checkpoint
mid-stream, and assert (a) no unhandled exception, (b) post-restore
predictions match the uninterrupted run, (c) MAE degrades gracefully as
the corruption rate rises.
"""

import numpy as np
import pytest

from repro.streaming import (
    CheckpointError,
    FaultConfig,
    FaultInjector,
    GatePolicy,
    OnlinePredictor,
    SupervisorPolicy,
    read_checkpoint,
    write_checkpoint,
)


def _stream(n=600, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return 0.5 + 0.25 * np.sin(2 * np.pi * t / 60) + rng.normal(0, 0.02, n)


def _predictor(**overrides):
    kwargs = dict(
        forecaster_name="holt",
        window=8,
        buffer_capacity=150,
        refit_interval=40,
        min_fit_size=30,
    )
    kwargs.update(overrides)
    return OnlinePredictor(**kwargs)


class TestArtifact:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "state.ckpt"
        state = {"a": 1, "arr": np.arange(5.0)}
        write_checkpoint(path, state)
        loaded = read_checkpoint(path)
        assert loaded["a"] == 1
        np.testing.assert_array_equal(loaded["arr"], np.arange(5.0))

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(tmp_path / "nope.ckpt")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"NOTMYFMT" + b"\x00" * 64)
        with pytest.raises(CheckpointError, match="magic"):
            read_checkpoint(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "trunc.ckpt"
        path.write_bytes(b"RPTCNC")
        with pytest.raises(CheckpointError, match="truncated"):
            read_checkpoint(path)

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "trunc.ckpt"
        write_checkpoint(path, {"x": list(range(1000))})
        blob = path.read_bytes()
        path.write_bytes(blob[:-20])
        with pytest.raises(CheckpointError, match="truncated"):
            read_checkpoint(path)

    def test_corrupt_payload_detected_by_digest(self, tmp_path):
        path = tmp_path / "flip.ckpt"
        write_checkpoint(path, {"x": list(range(1000))})
        blob = bytearray(path.read_bytes())
        blob[-10] ^= 0xFF  # flip a bit inside the pickle payload
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="integrity"):
            read_checkpoint(path)

    def test_no_partial_file_on_failed_write(self, tmp_path):
        path = tmp_path / "atomic.ckpt"
        write_checkpoint(path, {"v": 1})

        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("cannot pickle")

        with pytest.raises(RuntimeError):
            write_checkpoint(path, {"v": Unpicklable()})
        # the old artifact survives intact and no temp litter remains
        assert read_checkpoint(path)["v"] == 1
        assert [p.name for p in tmp_path.iterdir()] == ["atomic.ckpt"]


class TestPredictorRestore:
    def test_restore_resumes_bit_for_bit(self, tmp_path):
        stream = _stream(600)
        half = 300

        uninterrupted = _predictor()
        expected = uninterrupted.run(stream)

        first = _predictor()
        for rec in stream[:half]:
            first.process(rec)
        path = tmp_path / "mid.ckpt"
        first.save(path)
        del first

        restored = OnlinePredictor.restore(path)
        resumed = [restored.process(rec) for rec in stream[half:]]

        assert len(resumed) == len(expected) - half
        for got, want in zip(resumed, expected[half:]):
            assert got.step == want.step
            assert got.refit == want.refit and got.drift == want.drift
            if want.prediction is None:
                assert got.prediction is None
            else:
                assert got.prediction == want.prediction  # exact, not approx
        assert restored.stats.mae == uninterrupted.stats.mae
        assert restored.stats.n_refits == uninterrupted.stats.n_refits

    def test_restore_rejects_wrong_config(self, tmp_path):
        pred = _predictor()
        pred.run(_stream(200))
        path = tmp_path / "p.ckpt"
        pred.save(path)
        with pytest.raises(CheckpointError, match="window"):
            OnlinePredictor.restore(path, window=16)

    def test_restore_rejects_foreign_artifact(self, tmp_path):
        path = tmp_path / "other.ckpt"
        write_checkpoint(path, {"kind": "something_else", "state": {}})
        with pytest.raises(CheckpointError, match="OnlinePredictor"):
            OnlinePredictor.restore(path)

    def test_save_overwrites_atomically(self, tmp_path):
        pred = _predictor()
        pred.run(_stream(150))
        path = tmp_path / "p.ckpt"
        pred.save(path)
        pred.run(_stream(50, seed=1))
        pred.save(path)  # second save replaces the first in place
        restored = OnlinePredictor.restore(path)
        assert restored.stats.n_predictions == pred.stats.n_predictions


class TestEndToEndResilience:
    """The acceptance test: corrupted trace + mid-stream kill/restore."""

    LEVEL = 0.08

    def _faulted(self, stream, seed=21):
        cfg = FaultConfig.at_level(self.LEVEL, refit_failure_rate=0.3, seed=seed)
        inj = FaultInjector(cfg)
        return inj, [np.array(r, copy=True) for r in inj.stream(stream[:, None])]

    def _resilient(self, hook):
        return _predictor(
            gate_policy=GatePolicy(
                outlier_sigma=4.0, outlier_action="quarantine", prediction_sigma=3.0
            ),
            supervisor_policy=SupervisorPolicy(max_retries=1, backoff_base=0.0),
            refit_fault_hook=hook,
        )

    def test_corrupted_stream_with_kill_and_restore(self, tmp_path):
        stream = _stream(600)

        # reference: the same faulted stream, served without interruption
        ref_inj, faulted = self._faulted(stream)
        reference = self._resilient(ref_inj.refit_fault)
        # (a) completes with no unhandled exception
        expected = [reference.process(r) for r in faulted]

        # crashed run: same faults, killed at the midpoint, restored
        run_inj, faulted2 = self._faulted(stream)
        half = len(faulted2) // 2
        victim = self._resilient(run_inj.refit_fault)
        for rec in faulted2[:half]:
            victim.process(rec)
        path = tmp_path / "crash.ckpt"
        victim.save(path)
        del victim  # the "kill"

        survivor = OnlinePredictor.restore(path, refit_fault_hook=run_inj.refit_fault)
        resumed = [survivor.process(r) for r in faulted2[half:]]

        # (b) post-restore predictions match the uninterrupted run exactly
        for got, want in zip(resumed, expected[half:]):
            assert got.prediction == want.prediction
            assert got.health == want.health
            assert got.gated == want.gated
        assert survivor.stats.mae == reference.stats.mae
        assert survivor.gate.n_quarantined == reference.gate.n_quarantined

        # (c) MAE vs the clean signal is bounded despite the corruption
        clean_errors = [
            abs(rec.prediction - stream[src])
            for rec, src in zip(expected, ref_inj.emitted_from)
            if rec.prediction is not None
        ]
        assert clean_errors
        assert np.isfinite(clean_errors).all()
        mae_vs_clean = float(np.mean(clean_errors))

        clean_pred = _predictor()
        clean_pred.run(stream)
        assert mae_vs_clean < 10 * clean_pred.stats.mae

    def test_degradation_is_monotone_bounded_in_aggregate(self):
        """MAE vs clean truth stays bounded as corruption rises (reported
        via the resilience experiment harness)."""
        from repro.experiments import run_resilience

        res = run_resilience("quick", levels=(0.0, 0.05, 0.2))
        assert res.baseline_mae > 0
        for r in res.per_level:
            assert np.isfinite(r.mae_vs_clean)
            assert 0.0 < r.availability <= 1.0
        assert res.is_bounded(8.0)
        # availability cannot collapse even at the harshest level
        assert res.per_level[-1].availability > 0.5
