"""Ring buffer, drift detection and online predictor tests."""

import numpy as np
import pytest

from repro.streaming import OnlinePredictor, PageHinkley, RollingBuffer


class TestRollingBuffer:
    def test_append_and_view_order(self):
        buf = RollingBuffer(3, 1)
        for v in (1.0, 2.0):
            buf.append(np.array([v]))
        np.testing.assert_array_equal(buf.view()[:, 0], [1.0, 2.0])
        assert len(buf) == 2 and not buf.full

    def test_wraparound_keeps_newest(self):
        buf = RollingBuffer(3, 1)
        for v in range(5):
            buf.append(np.array([float(v)]))
        np.testing.assert_array_equal(buf.view()[:, 0], [2.0, 3.0, 4.0])
        assert buf.full

    def test_last_n(self):
        buf = RollingBuffer(4, 2)
        buf.extend(np.arange(8.0).reshape(4, 2))
        np.testing.assert_array_equal(buf.last(2), [[4.0, 5.0], [6.0, 7.0]])
        with pytest.raises(ValueError):
            buf.last(5)

    def test_shape_validation(self):
        buf = RollingBuffer(3, 2)
        with pytest.raises(ValueError):
            buf.append(np.zeros(3))

    def test_clear(self):
        buf = RollingBuffer(3, 1)
        buf.append(np.array([1.0]))
        buf.clear()
        assert len(buf) == 0

    def test_ctor_validation(self):
        with pytest.raises(ValueError):
            RollingBuffer(0, 1)


class TestPageHinkley:
    def test_no_drift_on_stationary_errors(self, rng):
        ph = PageHinkley(threshold=2.0)
        fired = [ph.update(abs(e)) for e in rng.normal(0, 0.05, 2000)]
        assert not any(fired)

    def test_detects_sustained_shift(self, rng):
        ph = PageHinkley(threshold=1.0, min_instances=20)
        for e in rng.normal(0.05, 0.01, 200):
            assert not ph.update(e)
        fired = False
        for e in rng.normal(0.5, 0.01, 200):  # errors jump 10x
            fired = fired or ph.update(e)
        assert fired
        assert ph.drift_detected

    def test_reset_clears_state(self, rng):
        ph = PageHinkley(threshold=0.5, min_instances=5)
        for e in np.linspace(0, 1, 100):
            ph.update(e)
        ph.reset()
        assert not ph.drift_detected
        assert ph.n_seen == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PageHinkley(threshold=0.0)
        with pytest.raises(ValueError):
            PageHinkley(min_instances=0)


class TestOnlinePredictor:
    def _stream(self, n=400, seed=0):
        rng = np.random.default_rng(seed)
        t = np.arange(n)
        return 0.5 + 0.3 * np.sin(2 * np.pi * t / 50) + rng.normal(0, 0.02, n)

    def test_warmup_then_predicts(self):
        pred = OnlinePredictor(
            "holt", window=8, buffer_capacity=200, refit_interval=50, min_fit_size=30
        )
        records = self._stream(100)
        results = pred.run(records)
        warm = [r for r in results if r.prediction is None]
        live = [r for r in results if r.prediction is not None]
        assert len(warm) >= 8
        assert len(live) > 50
        assert all(r.error is not None for r in live)

    def test_prequential_mae_reasonable(self):
        pred = OnlinePredictor(
            "holt", window=8, buffer_capacity=300, refit_interval=60, min_fit_size=40
        )
        pred.run(self._stream(350))
        # smooth sine + tiny noise: online MAE well under the signal amplitude
        assert pred.stats.mae < 0.1
        assert pred.stats.n_predictions > 250

    def test_scheduled_refits_happen(self):
        pred = OnlinePredictor(
            "holt", window=6, buffer_capacity=200, refit_interval=40, min_fit_size=30
        )
        results = pred.run(self._stream(250))
        refits = sum(r.refit for r in results)
        assert refits >= 4  # initial + ~5 scheduled

    def test_drift_triggers_refit(self, rng):
        series = np.concatenate(
            [
                0.2 + rng.normal(0, 0.01, 150),
                0.8 + rng.normal(0, 0.01, 150),  # sustained regime change
            ]
        )
        pred = OnlinePredictor(
            "mean",  # deliberately bad after the jump -> persistent errors
            window=6,
            buffer_capacity=400,
            refit_interval=10_000,  # never scheduled: only drift can refit
            min_fit_size=30,
            detector=PageHinkley(threshold=0.5, min_instances=20),
        )
        results = pred.run(series)
        assert any(r.drift for r in results)
        assert pred.stats.n_drifts >= 1
        # at least the initial fit + one drift-triggered refit
        assert pred.stats.n_refits >= 2

    def test_multivariate_records(self):
        rng = np.random.default_rng(1)
        base = self._stream(200)
        records = np.column_stack([base, base + rng.normal(0, 0.01, 200)])
        pred = OnlinePredictor(
            "xgboost",
            forecaster_kwargs={"n_estimators": 10},
            window=6,
            buffer_capacity=150,
            refit_interval=80,
            min_fit_size=40,
            features=2,
        )
        results = pred.run(records)
        assert pred.stats.n_predictions > 100
        assert results[-1].prediction is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlinePredictor(window=12, buffer_capacity=10)
        with pytest.raises(ValueError):
            OnlinePredictor(refit_interval=0)
