"""Hypothesis property tests on the ring buffers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming import MatrixRingBuffer, RollingBuffer


class TestBufferProperties:
    @given(
        st.integers(1, 16),
        st.lists(st.floats(-100, 100, allow_nan=False, width=64), min_size=0, max_size=80),
    )
    @settings(max_examples=100, deadline=None)
    def test_view_equals_tail_of_stream(self, capacity, stream):
        """After any append sequence, view() is the last ``capacity`` items."""
        buf = RollingBuffer(capacity, 1)
        for v in stream:
            buf.append(np.array([v]))
        expected = np.asarray(stream[-capacity:], float)
        np.testing.assert_array_equal(buf.view()[:, 0], expected)

    @given(st.integers(1, 10), st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_size_never_exceeds_capacity(self, capacity, n):
        buf = RollingBuffer(capacity, 2)
        for i in range(n):
            buf.append(np.array([float(i), float(i)]))
        assert len(buf) == min(n, capacity)
        assert buf.full == (n >= capacity)

    @given(
        st.integers(2, 12),
        st.lists(st.floats(-10, 10, allow_nan=False, width=64), min_size=3, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_last_is_suffix_of_view(self, capacity, stream):
        buf = RollingBuffer(capacity, 1)
        for v in stream:
            buf.append(np.array([v]))
        n = min(2, len(buf))
        np.testing.assert_array_equal(buf.last(n), buf.view()[-n:])

    @given(
        st.integers(2, 12),
        st.lists(st.floats(-10, 10, allow_nan=False, width=64), min_size=1, max_size=40),
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_last_into_matches_view_suffix_for_all_n(self, capacity, stream, data):
        """The no-copy tail fill agrees with view()[-n:] at every wrap state."""
        buf = RollingBuffer(capacity, 1)
        for v in stream:
            buf.append(np.array([v]))
        n = data.draw(st.integers(1, len(buf)))
        out = np.empty((n, 1))
        result = buf.last_into(out)
        assert result is out
        np.testing.assert_array_equal(out, buf.view()[-n:])

    @given(
        st.integers(1, 16),
        st.lists(
            st.lists(st.floats(-100, 100, allow_nan=False, width=64),
                     min_size=0, max_size=40),
            min_size=0,
            max_size=6,
        ),
    )
    @settings(max_examples=120, deadline=None)
    def test_extend_equals_appending_each_row(self, capacity, chunks):
        """Vectorized extend == looping append, at every wrap/overflow state."""
        fast = RollingBuffer(capacity, 2)
        slow = RollingBuffer(capacity, 2)
        for chunk in chunks:
            rows = np.array([[v, -v] for v in chunk], float).reshape(len(chunk), 2)
            fast.extend(rows)
            for row in rows:
                slow.append(row)
            np.testing.assert_array_equal(fast.view(), slow.view())
            assert len(fast) == len(slow)
        # internal ring state must agree too, not just the view
        assert fast.state_dict()["head"] == slow.state_dict()["head"]


class TestMatrixRingBufferProperties:
    @given(
        st.integers(1, 5),
        st.integers(2, 10),
        st.lists(
            st.lists(st.booleans(), min_size=1, max_size=5),
            min_size=0,
            max_size=30,
        ),
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_each_stream_matches_a_rolling_buffer(self, streams, capacity, masks, data):
        """A masked tick sequence == per-stream RollingBuffer appends."""
        fleet = MatrixRingBuffer(streams, capacity, 1)
        scalars = [RollingBuffer(capacity, 1) for _ in range(streams)]
        rng = np.random.default_rng(0)
        for tick_mask in masks:
            mask = np.resize(np.asarray(tick_mask, bool), streams)
            records = rng.normal(size=(streams, 1))
            fleet.append_tick(records, mask=mask)
            for i in range(streams):
                if mask[i]:
                    scalars[i].append(records[i])
        for i in range(streams):
            np.testing.assert_array_equal(fleet.view(i), scalars[i].view())
            assert int(fleet.sizes[i]) == len(scalars[i])
            if len(scalars[i]) >= 1:
                w = data.draw(st.integers(1, len(scalars[i])))
                np.testing.assert_array_equal(
                    fleet.last_windows(np.array([i]), w)[0], scalars[i].last(w)
                )
