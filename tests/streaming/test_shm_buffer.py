"""Shared-memory ring buffer: element-for-element parity with the private ring.

:class:`~repro.streaming.shm.SharedMatrixRingBuffer` inherits every
method from :class:`~repro.streaming.buffer.MatrixRingBuffer` and only
re-points the storage at a shared segment, so the contract is total
behavioural equality: any append/wrap/read sequence must observe
identical state through both. Hypothesis drives random masked tick
sequences across random geometries to pin that down.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming import (
    MatrixRingBuffer,
    SharedMatrixRingBuffer,
    ShmArraySpec,
    ShmBlock,
    SlottedShmBlock,
)
from repro.streaming.shm import ring_specs, slotted_specs


@pytest.fixture
def shared_ring():
    rings = []

    def make(streams, capacity, features=1):
        ring = SharedMatrixRingBuffer.create(streams, capacity, features)
        rings.append(ring)
        return ring

    yield make
    for ring in rings:
        ring.close()


class TestSharedRingParity:
    @given(
        st.integers(1, 5),
        st.integers(2, 10),
        st.lists(
            st.lists(st.booleans(), min_size=1, max_size=5),
            min_size=0,
            max_size=30,
        ),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_private_ring_under_random_ticks(self, streams, capacity, masks, data):
        """Random append/wrap/read: shm ring == private ring, element for element."""
        shared = SharedMatrixRingBuffer.create(streams, capacity, 1)
        try:
            private = MatrixRingBuffer(streams, capacity, 1)
            rng = np.random.default_rng(0)
            for tick_mask in masks:
                mask = np.resize(np.asarray(tick_mask, bool), streams)
                records = rng.normal(size=(streams, 1))
                shared.append_tick(records, mask=mask)
                private.append_tick(records, mask=mask)
            np.testing.assert_array_equal(shared.sizes, private.sizes)
            for i in range(streams):
                np.testing.assert_array_equal(shared.view(i), private.view(i))
            if int(private.sizes.min()) >= 1:
                w = data.draw(st.integers(1, int(private.sizes.min())))
                idx = np.arange(streams)
                np.testing.assert_array_equal(
                    shared.last_windows(idx, w), private.last_windows(idx, w)
                )
            # internal cursor state must agree too, not just the views
            s_state, p_state = shared.state_dict(), private.state_dict()
            np.testing.assert_array_equal(s_state["head"], p_state["head"])
            np.testing.assert_array_equal(s_state["size"], p_state["size"])
        finally:
            shared.close()

    def test_state_dict_round_trip_through_shared_storage(self, shared_ring):
        private = MatrixRingBuffer(3, 4, 2)
        rng = np.random.default_rng(1)
        for _ in range(7):
            private.append_tick(rng.normal(size=(3, 2)))
        shared = shared_ring(3, 4, 2)
        shared.load_state_dict(private.state_dict())
        for i in range(3):
            np.testing.assert_array_equal(shared.view(i), private.view(i))


class TestCrossMappingCoherence:
    def test_attach_sees_creator_writes(self, shared_ring):
        creator = shared_ring(2, 5)
        attached = SharedMatrixRingBuffer.attach(2, 5, 1, creator.shm_name)
        try:
            creator.append_tick(np.array([[1.0], [2.0]]))
            creator.append_tick(np.array([[3.0], [4.0]]), mask=np.array([True, False]))
            np.testing.assert_array_equal(attached.view(0)[:, 0], [1.0, 3.0])
            np.testing.assert_array_equal(attached.view(1)[:, 0], [2.0])
            np.testing.assert_array_equal(attached.sizes, creator.sizes)
        finally:
            attached.close()

    def test_row_slice_rings_share_the_fleet_storage(self):
        """Shard-style slices: each slice ring writes its rows of one block."""
        block = ShmBlock.create(ring_specs(4, 3, 1))
        try:
            fleet = SharedMatrixRingBuffer.from_arrays(
                block["ring_data"], block["ring_head"], block["ring_size"]
            )
            lower = SharedMatrixRingBuffer.from_arrays(
                block["ring_data"][:2], block["ring_head"][:2], block["ring_size"][:2]
            )
            upper = SharedMatrixRingBuffer.from_arrays(
                block["ring_data"][2:], block["ring_head"][2:], block["ring_size"][2:]
            )
            for t in range(5):
                lower.append_tick(np.full((2, 1), float(t)))
                upper.append_tick(np.full((2, 1), float(10 + t)))
            for i in range(4):
                expected = [2.0, 3.0, 4.0] if i < 2 else [12.0, 13.0, 14.0]
                np.testing.assert_array_equal(fleet.view(i)[:, 0], expected)
        finally:
            block.close()


class TestShmBlock:
    def test_arrays_are_zeroed_and_typed(self):
        block = ShmBlock.create(
            (ShmArraySpec("a", (3, 2), "<f8"), ShmArraySpec("b", (4,), "|u1"))
        )
        try:
            assert block["a"].dtype == np.float64 and block["a"].shape == (3, 2)
            assert block["b"].dtype == np.uint8
            assert not block["a"].any() and not block["b"].any()
            assert "a" in block and "missing" not in block
        finally:
            block.close()

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ShmBlock.create((ShmArraySpec("x", (1,), "<f8"), ShmArraySpec("x", (2,), "<f8")))

    def test_owner_close_unlinks_segment(self):
        specs = (ShmArraySpec("x", (2,), "<f8"),)
        block = ShmBlock.create(specs)
        name = block.name
        block.close()
        block.close()  # idempotent
        with pytest.raises(FileNotFoundError):
            ShmBlock.attach(specs, name)


class TestSlottedShmBlock:
    SPECS = (
        ShmArraySpec("ticks_in", (6, 2), "<f8"),
        ShmArraySpec("health", (6,), "|u1"),
    )

    def test_slotted_specs_expand_and_validate(self):
        expanded = slotted_specs(self.SPECS, 2)
        assert [s.name for s in expanded] == [
            "ticks_in@0", "health@0", "ticks_in@1", "health@1",
        ]
        assert all(s.shape == orig.shape and s.dtype == orig.dtype
                   for s, orig in zip(expanded, self.SPECS * 2))
        with pytest.raises(ValueError, match="slots"):
            slotted_specs(self.SPECS, 0)

    def test_bank_views_and_shared_arrays(self):
        block = SlottedShmBlock.create(
            self.SPECS, slots=2, shared=(ShmArraySpec("ring_head", (6,), "<i8"),)
        )
        try:
            bank0, bank1 = block.bank(0), block.bank(1)
            assert bank0.slot == 0 and bank1.slot == 1
            assert block.bank(2).slot == 0  # step % slots
            bank0["ticks_in"][...] = 1.0
            bank1["ticks_in"][...] = 2.0
            assert block.array("ticks_in", 0)[0, 0] == 1.0
            assert block["ticks_in", 1][0, 0] == 2.0
            assert ("ticks_in", 1) in block and ("ticks_in", 2) not in block
            # shared arrays are single-copy and addressed by bare name
            block["ring_head"][...] = 7
            assert block["ring_head"][0] == 7
            with pytest.raises(IndexError, match="slot"):
                block.array("ticks_in", 2)
        finally:
            block.close()

    def test_attach_sees_creator_banks(self):
        creator = SlottedShmBlock.create(self.SPECS, slots=2)
        try:
            attached = SlottedShmBlock.attach(self.SPECS, 2, creator.name)
            try:
                creator.bank(3)["health"][...] = 9
                assert attached.bank(3)["health"][0] == 9
                assert not attached.bank(2)["health"].any()
            finally:
                attached.close()
        finally:
            creator.close()

    @given(
        st.integers(1, 4),     # slots
        st.integers(0, 4),     # arrays per bank
        st.integers(0, 200),   # starting step
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_consecutive_step_banks_never_alias(self, slots, n_arrays, start, data):
        """Writes at step t must never bleed into the banks of the other steps.

        This is the safety property the tick pipeline leans on: the
        coordinator stages tick t+1 while workers still compute tick t,
        so with slots >= 2 the two banks must occupy disjoint memory —
        for every field, across arbitrary shapes and dtypes.
        """
        specs = tuple(
            ShmArraySpec(
                f"f{i}",
                data.draw(st.sampled_from([(3,), (2, 2), (5, 1)])),
                data.draw(st.sampled_from(["<f8", "<i8", "|u1"])),
            )
            for i in range(n_arrays)
        )
        block = SlottedShmBlock.create(specs, slots=slots)
        try:
            written = block.bank(start)
            for spec in specs:
                written[spec.name][...] = np.ones((), dtype=spec.dtype)
            for offset in range(1, slots):
                other = block.bank(start + offset)
                assert other.slot != written.slot
                for spec in specs:
                    assert not other[spec.name].any(), (
                        f"bank {written.slot} write aliased into bank "
                        f"{other.slot} for {spec.name!r}"
                    )
            # and the write itself landed
            for spec in specs:
                assert written[spec.name].all()
        finally:
            block.close()
