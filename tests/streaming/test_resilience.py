"""Input gate, supervisor, fallback and health-status behaviour."""

import numpy as np
import pytest

from repro.streaming import (
    GatePolicy,
    HealthStatus,
    InputGate,
    OnlinePredictor,
    Supervisor,
    SupervisorPolicy,
)


def _stream(n=400, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return 0.5 + 0.3 * np.sin(2 * np.pi * t / 50) + rng.normal(0, 0.02, n)


class TestInputGate:
    def test_clean_records_pass_untouched(self):
        gate = InputGate(2)
        rec = np.array([0.5, 0.7])
        res = gate.check(rec)
        assert res.action == "accept"
        np.testing.assert_array_equal(res.record, rec)
        assert gate.n_accepted == 1 and gate.n_quarantined == 0

    def test_all_nan_row_quarantined(self):
        gate = InputGate(2)
        gate.check(np.array([0.5, 0.7]))
        res = gate.check(np.array([np.nan, np.nan]))
        assert res.action == "quarantine"
        assert res.record is None
        assert gate.reasons["empty"] == 1

    def test_partial_nan_imputed_from_last(self):
        gate = InputGate(2, GatePolicy(impute="last"))
        gate.check(np.array([0.5, 0.7]))
        res = gate.check(np.array([np.nan, 0.8]))
        assert res.action == "impute" and res.reason == "missing"
        np.testing.assert_allclose(res.record, [0.5, 0.8])
        assert gate.n_imputed == 1

    def test_partial_nan_imputed_from_mean(self):
        gate = InputGate(1, GatePolicy(impute="mean"))
        for v in (0.2, 0.4):
            gate.check(np.array([v]))
        res = gate.check(np.array([np.nan]))
        assert res.action == "quarantine"  # univariate all-NaN row is empty
        gate2 = InputGate(2, GatePolicy(impute="mean"))
        gate2.check(np.array([0.2, 1.0]))
        gate2.check(np.array([0.4, 1.0]))
        res2 = gate2.check(np.array([np.nan, 1.0]))
        assert res2.action == "impute"
        np.testing.assert_allclose(res2.record, [0.3, 1.0])

    def test_drop_policy_quarantines_missing(self):
        gate = InputGate(2, GatePolicy(impute="drop"))
        gate.check(np.array([0.5, 0.7]))
        assert gate.check(np.array([np.nan, 0.8])).action == "quarantine"

    def test_no_history_quarantines(self):
        gate = InputGate(2, GatePolicy(impute="last"))
        assert gate.check(np.array([np.nan, 0.8])).action == "quarantine"
        assert gate.reasons["no_history"] == 1

    def test_wrong_arity_quarantined_not_raised(self):
        gate = InputGate(2)
        assert gate.check(np.zeros(3)).action == "quarantine"
        assert gate.check("garbage").action == "quarantine"
        assert gate.n_quarantined == 2

    def test_outlier_quarantine_stays_adaptive(self):
        """Quarantined spikes must not freeze the running band (regime shifts
        would otherwise be quarantined forever)."""
        gate = InputGate(1, GatePolicy(outlier_sigma=4.0, outlier_action="quarantine"))
        rng = np.random.default_rng(0)
        for v in 0.5 + rng.normal(0, 0.05, 100):
            gate.check(np.array([v]))
        assert gate.check(np.array([50.0])).action == "quarantine"
        assert gate.reasons["outlier"] == 1
        # a persistent (legitimate) shift is re-admitted once the band adapts
        admitted = [gate.check(np.array([2.0 + e])).action for e in rng.normal(0, 0.05, 200)]
        assert "accept" in admitted

    def test_outlier_clamp_bounds_value(self):
        gate = InputGate(1, GatePolicy(outlier_sigma=3.0, outlier_action="clamp"))
        rng = np.random.default_rng(1)
        for v in 0.5 + rng.normal(0, 0.05, 100):
            gate.check(np.array([v]))
        res = gate.check(np.array([100.0]))
        assert res.action == "impute" and res.reason == "outlier"
        assert res.record[0] < 1.5

    def test_state_roundtrip(self):
        gate = InputGate(2, GatePolicy(outlier_sigma=4.0))
        rng = np.random.default_rng(2)
        for _ in range(50):
            gate.check(rng.random(2))
        gate.check(np.array([np.nan, 0.5]))
        clone = InputGate(2, GatePolicy(outlier_sigma=4.0))
        clone.load_state_dict(gate.state_dict())
        rec = np.array([0.4, 0.6])
        assert clone.check(rec).action == gate.check(rec).action
        assert clone.n_imputed == gate.n_imputed

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            GatePolicy(impute="bogus")
        with pytest.raises(ValueError):
            GatePolicy(outlier_sigma=-1.0)
        with pytest.raises(ValueError):
            GatePolicy(outlier_action="explode")
        with pytest.raises(ValueError):
            GatePolicy(prediction_sigma=0.0)


class TestSupervisor:
    def test_success_passthrough(self):
        sup = Supervisor(SupervisorPolicy(backoff_base=0.0))
        ok, value = sup.run(lambda: 42)
        assert ok and value == 42
        assert sup.consecutive_failures == 0

    def test_retries_then_succeeds(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("boom")
            return "ok"

        sup = Supervisor(SupervisorPolicy(max_retries=3, backoff_base=0.0))
        ok, value = sup.run(flaky)
        assert ok and value == "ok"
        assert calls["n"] == 3
        assert sup.total_retries == 2
        assert sup.consecutive_failures == 0

    def test_exhausted_retries_fail_without_raising(self):
        def always():
            raise ValueError("nope")

        sup = Supervisor(SupervisorPolicy(max_retries=1, backoff_base=0.0, fallback_after=2))
        assert sup.run(always) == (False, None)
        assert not sup.should_fall_back
        assert sup.run(always) == (False, None)
        assert sup.should_fall_back
        assert "nope" in sup.last_error

    def test_backoff_sequence(self):
        delays = []
        sup = Supervisor(
            SupervisorPolicy(max_retries=3, backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3),
            sleep=delays.append,
        )
        sup.run(lambda: (_ for _ in ()).throw(RuntimeError("x")))
        assert delays == [0.1, 0.2, 0.3]  # exponential, capped

    def test_time_budget_stops_retries(self):
        calls = {"n": 0}

        def slow_fail():
            calls["n"] += 1
            import time

            time.sleep(0.02)
            raise RuntimeError("slow")

        sup = Supervisor(SupervisorPolicy(max_retries=50, backoff_base=0.0, time_budget=0.01))
        ok, _ = sup.run(slow_fail)
        assert not ok
        assert calls["n"] < 5  # budget cut the retry loop short

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            SupervisorPolicy(time_budget=0.0)
        with pytest.raises(ValueError):
            SupervisorPolicy(fallback_after=0)


class TestNaNPoisoning:
    """Regression: one NaN record used to silently poison every later window."""

    def test_nan_records_are_counted_not_absorbed(self):
        stream = _stream(300)
        dirty = stream.copy()
        dirty[120:130] = np.nan
        pred = OnlinePredictor(
            "holt", window=8, buffer_capacity=200, refit_interval=50, min_fit_size=30
        )
        results = pred.run(dirty)
        # the run completes, MAE stays finite, and the poison is visible
        assert np.isfinite(pred.stats.mae)
        assert pred.stats.mae < 0.1
        assert pred.gate.n_quarantined == 10
        quarantined = [r for r in results if r.gated == "quarantined"]
        assert len(quarantined) == 10
        assert all(r.prediction is None for r in quarantined)
        # no NaN ever reached the rolling buffer
        assert np.isfinite(pred.buffer.view()).all()

    def test_nan_cell_imputed_in_multivariate_stream(self):
        base = _stream(200)
        records = np.column_stack([base, base])
        records[100, 1] = np.nan  # non-target cell lost
        pred = OnlinePredictor(
            "holt", window=8, buffer_capacity=150, refit_interval=60, min_fit_size=40,
            features=2,
        )
        results = pred.run(records)
        assert pred.gate.n_imputed == 1
        assert results[100].gated == "imputed"
        assert np.isfinite(pred.buffer.view()).all()


class TestFallbackAndHealth:
    def test_refit_failure_degrades_then_falls_back(self):
        pred = OnlinePredictor(
            "holt", window=6, buffer_capacity=200, refit_interval=30, min_fit_size=20,
            supervisor_policy=SupervisorPolicy(
                max_retries=0, backoff_base=0.0, fallback_after=1
            ),
            refit_fault_hook=self._always_fail,
        )
        results = pred.run(_stream(200))
        # primary never fits -> fallback serves everything past warmup
        assert pred.model is None
        assert pred.on_fallback
        assert pred.health is HealthStatus.FALLBACK
        assert pred.stats.n_refit_failures >= 1
        served = [r for r in results if r.prediction is not None]
        assert served, "fallback must keep serving predictions"
        assert all(r.health is HealthStatus.FALLBACK for r in served)
        assert np.isfinite(pred.stats.mae)

    @staticmethod
    def _always_fail():
        raise RuntimeError("injected")

    def test_recovery_after_transient_failures(self):
        state = {"n": 0}

        def fail_first_two():
            state["n"] += 1
            if state["n"] <= 2:
                raise RuntimeError("transient")

        pred = OnlinePredictor(
            "holt", window=6, buffer_capacity=200, refit_interval=30, min_fit_size=20,
            supervisor_policy=SupervisorPolicy(max_retries=0, backoff_base=0.0, fallback_after=5),
            refit_fault_hook=fail_first_two,
        )
        results = pred.run(_stream(300))
        assert pred.model is not None
        assert pred.health is HealthStatus.HEALTHY
        assert results[-1].health is HealthStatus.HEALTHY
        assert pred.stats.n_refit_failures == 2
        assert pred.stats.n_refits >= 1

    def test_healthy_run_has_healthy_records(self):
        pred = OnlinePredictor(
            "holt", window=8, buffer_capacity=200, refit_interval=50, min_fit_size=30
        )
        results = pred.run(_stream(150))
        assert all(r.health is HealthStatus.HEALTHY for r in results)

    def test_prediction_clamped_into_plausible_band(self):
        # constant stream, then ask a model that would extrapolate wildly:
        # force it by handing the fallback a spiked window via drift model
        pred = OnlinePredictor(
            "holt", window=6, buffer_capacity=120, refit_interval=40, min_fit_size=20,
            gate_policy=GatePolicy(prediction_sigma=3.0),
        )
        rng = np.random.default_rng(5)
        stream = np.concatenate([
            0.5 + rng.normal(0, 0.01, 100),
            [0.52, 5.0, 9.0],  # a runaway ramp holt will extrapolate
        ])
        pred.run(stream)
        # whatever the model wanted to emit, served values stayed in-band
        errors_ok = all(e < 20 for e in pred.stats.errors)
        assert errors_ok
        assert pred.stats.n_clamped_predictions >= 1


class TestBoundedErrorHistory:
    def test_errors_bounded_by_default(self):
        pred = OnlinePredictor(
            "holt", window=6, buffer_capacity=150, refit_interval=60, min_fit_size=20,
            error_history=64,
        )
        pred.run(_stream(400))
        assert len(pred.stats.errors) == 64
        assert pred.stats.n_predictions > 300  # aggregate stats keep counting

    def test_full_retention_opt_in(self):
        pred = OnlinePredictor(
            "holt", window=6, buffer_capacity=150, refit_interval=60, min_fit_size=20,
            error_history=None,
        )
        pred.run(_stream(300))
        assert len(pred.stats.errors) == pred.stats.n_predictions
