"""Fleet serving: N=1 bit-parity with the scalar predictor, multi-stream semantics.

The load-bearing guarantee of ``repro.streaming.fleet`` is that the
vectorized path is not an approximation: with one stream, every record —
prediction, error, health, gate verdict, refit/drift flags — is
bit-identical to :class:`~repro.streaming.online.OnlinePredictor` fed
the same values, including across a checkpoint/restore mid-stream. On
top of that, per-stream isolation (one stream's faults never touch a
neighbour's history) and fleet-wide checkpointing are covered here.
"""

import numpy as np
import pytest

from repro.models.base import Forecaster
from repro.streaming import (
    FleetPredictor,
    MatrixRingBuffer,
    OnlinePredictor,
)
from repro.streaming.checkpoint import CheckpointError
from repro.streaming.drift import PageHinkley
from repro.streaming.resilience import (
    GATE_QUARANTINE,
    FleetGate,
    GatePolicy,
    InputGate,
)


def _corrupt_stream(seed: int, n: int = 320) -> np.ndarray:
    """Sinusoid + noise + regime shift + NaNs + impulse outliers."""
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=float)
    x = 50 + 10 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1.5, n)
    x[220:] += 20
    bad = rng.choice(np.arange(10, n), size=10, replace=False)
    x[bad[:5]] = np.nan
    x[bad[5:]] *= 6
    return x


def _assert_records_equal(scalar_recs, fleet_ticks):
    def feq(a, b):
        if a is None or b is None:
            return a is None and b is None
        return a == b or (np.isnan(a) and np.isnan(b))

    for srec, tick in zip(scalar_recs, fleet_ticks):
        frec = tick.record(0)
        assert frec.step == srec.step
        assert feq(frec.prediction, srec.prediction), f"step {srec.step}"
        assert feq(frec.actual, srec.actual), f"step {srec.step}"
        assert feq(frec.error, srec.error), f"step {srec.step}"
        assert frec.refit == srec.refit, f"step {srec.step}"
        assert frec.drift == srec.drift, f"step {srec.step}"
        assert frec.health == srec.health, f"step {srec.step}"
        assert frec.gated == srec.gated, f"step {srec.step}"


_COMMON = dict(
    window=8,
    buffer_capacity=120,
    refit_interval=40,
    min_fit_size=24,
)


class TestSingleStreamBitParity:
    @pytest.mark.parametrize(
        "forecaster,policy",
        [
            ("holt", None),
            (
                "mean",
                GatePolicy(
                    impute="mean",
                    outlier_action="clamp",
                    outlier_sigma=3.0,
                    prediction_sigma=2.5,
                ),
            ),
            ("persistence", GatePolicy(impute="drop")),
        ],
    )
    def test_corrupt_stream_records_identical(self, forecaster, policy):
        x = _corrupt_stream(7)
        scalar = OnlinePredictor(forecaster, gate_policy=policy, **_COMMON)
        fleet = FleetPredictor(1, forecaster, gate_policy=policy, **_COMMON)
        srecs = [scalar.process(np.array([v])) for v in x]
        fticks = [fleet.process_tick(np.array([[v]])) for v in x]
        _assert_records_equal(srecs, fticks)
        assert scalar.stats.n_predictions == int(fleet.stats.n_predictions[0])
        assert scalar.stats.n_refits == fleet.stats.n_refits
        assert scalar.stats.n_drifts == int(fleet.stats.n_drifts[0])
        assert scalar.stats.n_clamped_predictions == int(
            fleet.stats.n_clamped_predictions[0]
        )
        assert scalar.stats.sum_abs_error == float(fleet.stats.sum_abs_error[0])
        assert scalar.gate.n_quarantined == int(fleet.gate.n_quarantined[0])
        assert scalar.gate.n_imputed == int(fleet.gate.n_imputed[0])

    def test_checkpoint_restore_midstream_stays_identical(self, tmp_path):
        x = _corrupt_stream(11)
        scalar = OnlinePredictor("holt", detector=PageHinkley(), **_COMMON)
        fleet = FleetPredictor(1, "holt", detector=PageHinkley(), **_COMMON)
        srecs, fticks = [], []
        for i, v in enumerate(x):
            srecs.append(scalar.process(np.array([v])))
            fticks.append(fleet.process_tick(np.array([[v]])))
            if i == 150:
                scalar.save(tmp_path / "scalar.ckpt")
                fleet.save(tmp_path / "fleet.ckpt")
                scalar = OnlinePredictor.restore(tmp_path / "scalar.ckpt")
                fleet = FleetPredictor.restore(tmp_path / "fleet.ckpt")
        _assert_records_equal(srecs, fticks)


class TestMultiStream:
    def test_per_stream_fault_isolation(self):
        """A NaN row quarantines its own stream; neighbours keep serving."""
        rng = np.random.default_rng(3)
        ticks = rng.normal(0.5, 0.05, (120, 4))
        ticks[60, 1] = np.nan  # stream 1 misses one tick
        fleet = FleetPredictor(4, "mean", **_COMMON)
        out = fleet.run(ticks)
        hit = out[60]
        assert hit.gated[1] == GATE_QUARANTINE
        assert not np.isfinite(hit.predictions[1])
        assert hit.served[[0, 2, 3]].all()
        # the quarantined record never entered stream 1's history
        assert int(fleet.buffer.sizes[1]) == len(ticks) - 1
        assert int(fleet.gate.n_quarantined.sum()) == 1
        # every other stream served every post-warmup tick
        assert int(fleet.stats.n_predictions[0]) > 90

    def test_shared_model_serves_all_streams_per_tick(self):
        rng = np.random.default_rng(5)
        ticks = rng.normal(0.5, 0.05, (80, 16))
        # quiet detector: only the initial fit + the scheduled refit fire
        fleet = FleetPredictor(
            16, "holt", detector=PageHinkley(threshold=1e9), **_COMMON
        )
        out = fleet.run(ticks)
        # once fitted, a tick serves the whole fleet from one forward
        assert out[-1].served.all()
        # refits are coalesced fleet-wide: first fit at min_fit_size=24,
        # one scheduled refit 40 absorbing ticks later — never per stream
        assert fleet.stats.n_refits == 2
        assert sum(t.refit for t in out) == 2

    def test_fleet_checkpoint_roundtrip_multi_stream(self, tmp_path):
        rng = np.random.default_rng(9)
        ticks = rng.normal(0.5, 0.08, (140, 6))
        ticks[rng.random(ticks.shape) < 0.01] = np.nan
        ticks[0] = 0.5

        solo = FleetPredictor(6, "holt", **_COMMON)
        solo_out = solo.run(ticks)

        fleet = FleetPredictor(6, "holt", **_COMMON)
        resumed_out = fleet.run(ticks[:70])
        fleet.save(tmp_path / "fleet.ckpt")
        restored = FleetPredictor.restore(tmp_path / "fleet.ckpt")
        resumed_out += restored.run(ticks[70:])

        for a, b in zip(solo_out, resumed_out):
            np.testing.assert_array_equal(a.predictions, b.predictions)
            np.testing.assert_array_equal(a.errors, b.errors)
            np.testing.assert_array_equal(a.health, b.health)
            np.testing.assert_array_equal(a.gated, b.gated)
            assert a.refit == b.refit
        np.testing.assert_array_equal(
            solo.buffer.state_dict()["data"], restored.buffer.state_dict()["data"]
        )

    def test_restore_rejects_mismatched_config(self, tmp_path):
        fleet = FleetPredictor(3, "mean", **_COMMON)
        fleet.run(np.full((20, 3), 0.5))
        fleet.save(tmp_path / "fleet.ckpt")
        with pytest.raises(CheckpointError, match="mismatch"):
            FleetPredictor.restore(tmp_path / "fleet.ckpt", n_streams=4)

    def test_records_materialize_per_stream(self):
        fleet = FleetPredictor(3, "mean", **_COMMON)
        out = fleet.run(np.full((40, 3), 0.5) + np.arange(3) * 0.1)
        recs = out[-1].records()
        assert len(recs) == 3
        assert all(r.step == 39 for r in recs)
        assert recs[2].actual == pytest.approx(0.7)


class TestValidation:
    def test_constructor_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="n_streams"):
            FleetPredictor(0, "mean")
        with pytest.raises(TypeError, match="PageHinkley"):

            class Custom(PageHinkley):
                pass

            FleetPredictor(2, "mean", detector=Custom())

    def test_tick_shape_enforced(self):
        fleet = FleetPredictor(3, "mean", **_COMMON)
        with pytest.raises(ValueError, match="expected tick"):
            fleet.process_tick(np.zeros((2, 1)))


class TestFleetGateParity:
    @pytest.mark.parametrize(
        "policy",
        [
            None,
            GatePolicy(impute="mean", outlier_action="clamp", outlier_sigma=3.0),
            GatePolicy(impute="last", outlier_action="quarantine", outlier_sigma=2.5),
            GatePolicy(impute="drop"),
        ],
    )
    def test_tick_verdicts_match_scalar_gates(self, policy):
        """check_tick == running a scalar InputGate per stream, exactly."""
        streams, features, n = 5, 2, 200
        rng = np.random.default_rng(17)
        ticks = rng.normal(10, 2, (n, streams, features))
        ticks[rng.random(ticks.shape) < 0.03] = np.nan
        ticks[rng.random((n, streams)) < 0.02] *= 9

        fleet = FleetGate(streams, features, policy)
        scalars = [InputGate(features, policy) for _ in range(streams)]
        action_name = {0: "accept", 1: "impute", 2: "quarantine"}
        for tick in ticks:
            res = fleet.check_tick(tick)
            for i, gate in enumerate(scalars):
                sres = gate.check(tick[i])
                assert action_name[int(res.actions[i])] == sres.action
                if sres.action != "quarantine":
                    np.testing.assert_array_equal(res.records[i], sres.record)
        for i, gate in enumerate(scalars):
            assert int(fleet.n_accepted[i]) == gate.n_accepted
            assert int(fleet.n_imputed[i]) == gate.n_imputed
            assert int(fleet.n_quarantined[i]) == gate.n_quarantined
            assert fleet.reasons(i) == gate.reasons
        state = fleet.state_dict()
        np.testing.assert_array_equal(
            state["mean"], np.array([g.state_dict()["mean"] for g in scalars])
        )
        np.testing.assert_array_equal(
            state["m2"], np.array([g.state_dict()["m2"] for g in scalars])
        )


class _ExplodingForecaster(Forecaster):
    """Fits fine, always blows up at predict time."""

    name = "exploding"

    def fit(self, x, y, x_val=None, y_val=None):
        self.fitted = True
        return self

    def predict(self, x):
        raise RuntimeError("boom")


class TestFallbackPredictFailures:
    """Satellite fix: the scalar fallback path must count its own failures."""

    @staticmethod
    def _break(predictor):
        predictor.model = _ExplodingForecaster()
        predictor.fallback_model = _ExplodingForecaster()
        return predictor

    def test_scalar_counts_double_failure(self):
        predictor = OnlinePredictor("mean", **_COMMON)
        predictor.run(np.full(40, 0.5))
        self._break(predictor)
        before = predictor.stats.n_fallback_predict_failures
        rec = predictor.process(np.array([0.5]))
        assert rec.prediction is None
        assert predictor.stats.n_fallback_predict_failures == before + 1
        assert predictor.stats.n_predict_failures >= 1
        # the counter survives a checkpoint roundtrip
        state = predictor.stats.state_dict()
        assert state["n_fallback_predict_failures"] == before + 1

    def test_fleet_counts_double_failure_per_stream(self):
        predictor = FleetPredictor(2, "mean", **_COMMON)
        predictor.run(np.full((40, 2), 0.5))
        self._break(predictor)
        tick = predictor.process_tick(np.array([[0.5], [0.5]]))
        assert not tick.served.any()
        np.testing.assert_array_equal(
            predictor.stats.n_fallback_predict_failures, [1, 1]
        )


class TestMatrixRingBufferEdges:
    def test_last_windows_requires_enough_history(self):
        buf = MatrixRingBuffer(2, 8, 1)
        buf.append_tick(np.ones((2, 1)), mask=np.array([True, False]))
        with pytest.raises(ValueError, match="records"):
            buf.last_windows(np.array([1]), 1)
        np.testing.assert_array_equal(buf.last_windows(np.array([0]), 1),
                                      np.ones((1, 1, 1)))

    def test_out_buffer_receives_gather_with_cast(self):
        buf = MatrixRingBuffer(3, 4, 2)
        for k in range(6):
            buf.append_tick(np.full((3, 2), float(k)))
        out = np.empty((2, 3, 2), dtype=np.float32)
        got = buf.last_windows(np.array([0, 2]), 3, out=out)
        assert got is out
        np.testing.assert_array_equal(out[0, :, 0], [3.0, 4.0, 5.0])

    def test_state_roundtrip(self):
        buf = MatrixRingBuffer(2, 3, 1)
        for k in range(5):
            buf.append_tick(np.full((2, 1), float(k)),
                            mask=np.array([True, k % 2 == 0]))
        clone = MatrixRingBuffer(2, 3, 1)
        clone.load_state_dict(buf.state_dict())
        np.testing.assert_array_equal(clone.view(0), buf.view(0))
        np.testing.assert_array_equal(clone.view(1), buf.view(1))
        bad = MatrixRingBuffer(2, 4, 1)
        with pytest.raises(ValueError, match="mismatch"):
            bad.load_state_dict(buf.state_dict())


class TestErrorQuantiles:
    """Per-stream residual bands — the cluster autoscaler's calibration feed."""

    def _stats(self):
        from repro.streaming.fleet import _FleetStats

        stats = _FleetStats(streams=3, error_history=64)
        # stream 0 gets 20 scored errors, stream 1 gets 3, stream 2 none
        for k in range(20):
            mask = np.array([True, k < 3, False])
            stats.errors.append_tick(np.full((3, 1), float(k)), mask=mask)
        return stats

    def test_min_count_gates_uncalibrated_streams(self):
        stats = self._stats()
        q = stats.error_quantiles(0.5, min_count=10)
        assert np.isfinite(q[0]) and np.isnan(q[1]) and np.isnan(q[2])
        q_all = stats.error_quantiles(0.5, min_count=1)
        assert np.isfinite(q_all[:2]).all() and np.isnan(q_all[2])

    def test_quantile_value_matches_numpy(self):
        stats = self._stats()
        q = stats.error_quantiles(0.9, min_count=10)
        assert q[0] == pytest.approx(np.quantile(np.arange(20.0), 0.9))

    def test_validation(self):
        stats = self._stats()
        with pytest.raises(ValueError, match="tau"):
            stats.error_quantiles(1.0)
        with pytest.raises(ValueError, match="min_count"):
            stats.error_quantiles(0.5, min_count=0)
