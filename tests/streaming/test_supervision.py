"""Self-healing shard supervision: detect → respawn → restore (ISSUE 7).

Every test here drives real worker processes through real failures —
``SIGKILL`` and ``SIGSTOP``, scheduled via the deterministic
:class:`~repro.streaming.faults.ChaosSchedule` or delivered by hand —
and asserts the supervision contract:

* a killed shard's rows degrade to held-last predictions flagged
  ``RECOVERING`` (health=3), never NaN, while the breaker is closed;
* the shard is respawned with backoff and restored from its background
  checkpoint, and the surviving shards stay bit-identical throughout;
* a crash-looping shard trips the breaker into durable quarantine, and
  a fully-quarantined fleet raises :class:`AllShardsFailedError`
  instead of serving NaN forever;
* a *hung* worker (SIGSTOP — immune to SIGTERM) is detected by
  deadline on both the tick and control paths and escalated to
  ``SIGKILL``.

Fleets are tiny (N<=6) and tick loops are paced only while a shard is
rebuilding, so the budget goes to process churn, not serving.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.obs.registry import MetricRegistry
from repro.streaming import (
    AllShardsFailedError,
    ChaosSchedule,
    FleetPredictor,
    ProcessFault,
    RespawnPolicy,
    ShardedFleetPredictor,
    read_checkpoint,
    shard_boundaries,
    try_read_checkpoint,
)

#: small-but-real fleet config: refits happen, buffer wrap is avoided
FLEET_KW = dict(
    forecaster_name="holt",
    window=8,
    buffer_capacity=48,
    refit_interval=16,
    min_fit_size=12,
)

#: generous pacing while a shard rebuilds (worker spawn pays interpreter
#: start-up + imports); tests assert in ticks, never in wall-clock
RECOVERY_PACE_S = 0.15


def make_ticks(n_ticks, n_streams, seed=0):
    rng = np.random.default_rng(seed)
    return 50.0 + 10.0 * rng.standard_normal((n_ticks, n_streams))


def drive(pred, ticks, pace=RECOVERY_PACE_S):
    """Serve the whole trace, pacing while any shard is rebuilding."""
    out = []
    for t in ticks:
        out.append(pred.process_tick(t))
        if pred.recovering_shards and pace > 0:
            time.sleep(pace)
    return out


class TestSupervisedRecovery:
    def test_sigkill_recovery_holds_rows_and_restores_from_checkpoint(self, tmp_path):
        n, shards, kill_tick = 6, 2, 20
        ticks = make_ticks(80, n, seed=11)
        vlo, vhi = shard_boundaries(n, shards)[0:2]
        mirror = FleetPredictor(n - vhi, registry=MetricRegistry(), **FLEET_KW)
        registry = MetricRegistry()
        pred = ShardedFleetPredictor(
            n,
            shards,
            registry=registry,
            chaos=ChaosSchedule.kill_at(kill_tick, shard=0),
            respawn=RespawnPolicy(backoff_ticks=1),
            checkpoint_dir=tmp_path,
            checkpoint_interval=4,
            tick_timeout=30.0,
            **FLEET_KW,
        )
        try:
            held = None
            recovered_at = None
            for t, row in enumerate(ticks):
                got = pred.process_tick(row)
                want = mirror.process_tick(row[vhi:])
                # survivors: bit-identical to their mirror on every tick,
                # before, during and after the outage
                np.testing.assert_array_equal(got.predictions[vhi:], want.predictions)
                np.testing.assert_array_equal(got.errors[vhi:], want.errors)
                np.testing.assert_array_equal(got.health[vhi:], want.health)
                if t == kill_tick - 1:
                    held = got.predictions[vlo:vhi].copy()
                if pred.recovering_shards:
                    # degraded mode: held-last rows, RECOVERING health,
                    # quarantine gate code — and never NaN (warm-up is over)
                    assert not np.isnan(got.predictions[vlo:vhi]).any()
                    np.testing.assert_array_equal(got.predictions[vlo:vhi], held)
                    assert (got.health[vlo:vhi] == 3).all()
                    assert (got.gated[vlo:vhi] == 2).all()
                    np.testing.assert_array_equal(got.actuals[vlo:vhi], row[vlo:vhi])
                    time.sleep(RECOVERY_PACE_S)
                elif t > kill_tick and recovered_at is None and not pred.failed_shards:
                    recovered_at = t
            assert pred.worker_failures == 1
            assert pred.respawns == 1
            assert recovered_at is not None, "shard never recovered within the run"
            assert pred.failed_shards == ()

            st = pred.stats()
            entry = st["per_shard"][0]
            assert entry["ok"] is True and entry["state"] == "live"
            # the replacement restored from a background checkpoint taken
            # at a step before (and within one interval of) the kill
            assert entry["restored_step"] is not None
            assert kill_tick - 4 <= entry["restored_step"] < kill_tick
            assert st["respawns"] == 1 and st["quarantined_shards"] == []
            # post-recovery, the restored shard serves real predictions again
            last = pred.process_tick(ticks[-1])
            assert not np.isnan(last.predictions[vlo:vhi]).any()
            assert (last.health[vlo:vhi] != 3).all()
            names = {
                s["name"]: s.get("value")
                for s in registry.snapshot()["series"]
                if s["name"].endswith("_total")
                and s.get("labels") in (None, {})
            }
            assert names.get("serving_shard_respawns_total") == 1.0
            assert names.get("serving_shard_worker_failures_total") == 1.0
        finally:
            pred.close(collect_metrics=False)

    def test_crash_loop_trips_breaker_then_fleet_refuses_to_serve(self):
        n = 4
        ticks = make_ticks(120, n, seed=12)
        registry = MetricRegistry()
        pred = ShardedFleetPredictor(
            n,
            shards=1,
            registry=registry,
            chaos=ChaosSchedule.crash_loop(0, start=10, until=110),
            respawn=RespawnPolicy(max_failures=2, backoff_ticks=1, failure_window=256),
            tick_timeout=30.0,
            **FLEET_KW,
        )
        try:
            with pytest.raises(AllShardsFailedError, match="quarantined"):
                drive(pred, ticks)
            assert pred.quarantined_shards == (0,)
            assert pred.worker_failures == 2  # breaker tripped at max_failures
            assert pred.respawns == 1  # one respawn attempt before the trip
            # the breaker is durable: every subsequent tick refuses too
            with pytest.raises(AllShardsFailedError):
                pred.process_tick(ticks[0])
            quarantines = [
                s["value"]
                for s in registry.snapshot()["series"]
                if s["name"] == "serving_shard_quarantines_total"
            ]
            assert quarantines == [1.0]
        finally:
            pred.close(collect_metrics=False)

    def test_recovering_rows_before_warmup_may_hold_nan_but_fleet_serves(self):
        """A kill before any prediction exists holds NaN — but only then."""
        n = 4
        ticks = make_ticks(12, n, seed=13)
        pred = ShardedFleetPredictor(
            n,
            shards=2,
            registry=MetricRegistry(),
            chaos=ChaosSchedule.kill_at(2, shard=0),  # mid-warm-up
            respawn=RespawnPolicy(backoff_ticks=1),
            tick_timeout=30.0,
            **FLEET_KW,
        )
        try:
            out = drive(pred, ticks)
            # the fleet never raised and the survivor kept serving
            assert len(out) == len(ticks)
            assert all((o.health[2:] != 3).all() for o in out)
        finally:
            pred.close(collect_metrics=False)


class TestDeadlines:
    def test_hung_worker_tick_deadline_classifies_hung(self):
        n = 4
        ticks = make_ticks(16, n, seed=14)
        pred = ShardedFleetPredictor(
            n,
            shards=2,
            registry=MetricRegistry(),
            chaos=ChaosSchedule([ProcessFault(tick=6, shard=0, kind="hang")]),
            respawn=None,
            tick_timeout=0.5,
            **FLEET_KW,
        )
        try:
            out = drive(pred, ticks, pace=0)
            assert pred.worker_failures == 1
            assert pred.quarantined_shards == (0,)  # respawn=None: terminal
            assert any("hung worker" in e for e in pred.errors)
            # the hung process must actually be gone (terminate→kill escalation)
            assert not pred._handles[0].proc.is_alive()
            # post-failure rows are NaN/quarantined, survivor untouched
            assert np.isnan(out[-1].predictions[:2]).all()
            assert not np.isnan(out[-1].predictions[2:]).any()
        finally:
            pred.close(collect_metrics=False)

    def test_sigstopped_worker_misses_control_deadline_and_is_killed(self, tmp_path):
        n = 4
        ticks = make_ticks(8, n, seed=15)
        pred = ShardedFleetPredictor(
            n,
            shards=2,
            registry=MetricRegistry(),
            control_timeout=0.5,
            tick_timeout=5.0,
            respawn=None,
            **FLEET_KW,
        )
        try:
            drive(pred, ticks, pace=0)
            victim = pred._handles[0].proc
            # SIGSTOP: alive but unresponsive — immune to SIGTERM, so only
            # the terminate→kill escalation can reap it
            os.kill(victim.pid, signal.SIGSTOP)
            with pytest.raises(RuntimeError, match="hung worker"):
                pred.save(tmp_path / "never.ckpt")
            assert not victim.is_alive()
            assert pred.worker_failures == 1
            # stats() degrades instead of raising: failed shard reported
            st = pred.stats()
            assert st["per_shard"][0]["ok"] is False
            assert st["per_shard"][0]["state"] == "quarantined"
            assert st["per_shard"][1]["ok"] is True
        finally:
            pred.close(collect_metrics=False)

    def test_corrupt_tick_reply_marks_shard_failed(self):
        n = 4
        ticks = make_ticks(12, n, seed=16)
        pred = ShardedFleetPredictor(
            n,
            shards=2,
            registry=MetricRegistry(),
            chaos=ChaosSchedule([ProcessFault(tick=5, shard=1, kind="corrupt")]),
            respawn=None,
            tick_timeout=30.0,
            **FLEET_KW,
        )
        try:
            drive(pred, ticks, pace=0)
            assert pred.worker_failures == 1
            assert pred.quarantined_shards == (1,)
            assert any("corrupt tick reply" in e for e in pred.errors)
        finally:
            pred.close(collect_metrics=False)

    def test_slow_fault_is_a_straggler_not_a_failure(self):
        n = 4
        ticks = make_ticks(10, n, seed=17)
        pred = ShardedFleetPredictor(
            n,
            shards=2,
            registry=MetricRegistry(),
            chaos=ChaosSchedule([
                ProcessFault(tick=4, shard=0, kind="slow", duration=0.2)
            ]),
            respawn=None,
            tick_timeout=30.0,
            **FLEET_KW,
        )
        try:
            out = drive(pred, ticks, pace=0)
            assert pred.worker_failures == 0
            assert len(out) == len(ticks)
        finally:
            pred.close(collect_metrics=False)


class TestBackgroundCheckpoints:
    def test_periodic_shard_checkpoints_written_and_valid(self, tmp_path):
        n, interval = 4, 4
        ticks = make_ticks(18, n, seed=18)
        registry = MetricRegistry()
        pred = ShardedFleetPredictor(
            n,
            shards=2,
            registry=registry,
            checkpoint_dir=tmp_path,
            checkpoint_interval=interval,
            **FLEET_KW,
        )
        try:
            drive(pred, ticks, pace=0)
        finally:
            pred.close()  # harvest worker metrics
        bounds = shard_boundaries(n, 2)
        for i in range(2):
            path = tmp_path / f"shard-{i:03d}.ckpt"
            assert path.exists()
            art = read_checkpoint(path)
            assert art["kind"] == "fleet_shard"
            assert art["shard"] == i
            assert (art["lo"], art["hi"]) == (bounds[i], bounds[i + 1])
            # last checkpoint lands on the last step where (step+1) % interval == 0
            assert art["step"] == (len(ticks) // interval) * interval - 1
            assert "state" in art
        # worker-side checkpoint counters merged into the parent registry
        written = sum(
            s["value"]
            for s in registry.snapshot()["series"]
            if s["name"] == "serving_shard_checkpoints_total"
        )
        assert written == 2 * (len(ticks) // interval)

    def test_corrupt_background_checkpoint_reads_as_none(self, tmp_path):
        path = tmp_path / "shard-000.ckpt"
        n = 4
        pred = ShardedFleetPredictor(
            n, shards=1, registry=MetricRegistry(),
            checkpoint_dir=tmp_path, checkpoint_interval=2, **FLEET_KW,
        )
        try:
            drive(pred, make_ticks(6, n, seed=19), pace=0)
        finally:
            pred.close(collect_metrics=False)
        assert read_checkpoint(path)["kind"] == "fleet_shard"
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF  # bit-rot the payload
        path.write_bytes(bytes(raw))
        assert try_read_checkpoint(path) is None
        assert try_read_checkpoint(tmp_path / "missing.ckpt") is None

    def test_checkpoint_interval_requires_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            ShardedFleetPredictor(4, shards=1, checkpoint_interval=8, **FLEET_KW)
        with pytest.raises(ValueError, match="checkpoint_interval"):
            ShardedFleetPredictor(
                4, shards=1, checkpoint_dir="/tmp", checkpoint_interval=0, **FLEET_KW
            )


class TestPolicyValidation:
    def test_respawn_policy_validation(self):
        RespawnPolicy()  # defaults valid
        with pytest.raises(ValueError, match="max_failures"):
            RespawnPolicy(max_failures=0)
        with pytest.raises(ValueError, match="failure_window"):
            RespawnPolicy(failure_window=0)
        with pytest.raises(ValueError, match="backoff_ticks"):
            RespawnPolicy(backoff_ticks=-1)
        with pytest.raises(ValueError, match="backoff_max_ticks"):
            RespawnPolicy(backoff_ticks=8, backoff_max_ticks=4)

    def test_chaos_shard_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="chaos schedule references shard"):
            ShardedFleetPredictor(
                4, shards=2, chaos=ChaosSchedule.kill_at(5, shard=2), **FLEET_KW
            )
