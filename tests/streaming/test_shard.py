"""ShardedFleetPredictor: parity, fault isolation, composed checkpoints.

The anchor contract (ISSUE 6): with ``shards=1`` every emitted
:class:`~repro.streaming.fleet.FleetTick` is bit-identical to a
single-process :class:`~repro.streaming.fleet.FleetPredictor` fed the
same ticks — including across a mid-stream snapshot/restore. With
``shards>1`` each shard is exactly an independent FleetPredictor over
its slice, a worker death takes down only its own streams, and the
whole fleet checkpoints/restores as one artifact.

Fleets here are deliberately tiny (N<=6, short tick runs): every test
spawns real worker processes, so the budget goes to process startup,
not serving.
"""

import os
import signal

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import MetricRegistry
from repro.streaming import (
    CheckpointError,
    FleetPredictor,
    ShardedFleetPredictor,
    read_checkpoint,
    shard_boundaries,
    write_checkpoint,
)

#: small-but-real fleet config: refits happen, buffers wrap is avoided
FLEET_KW = dict(
    forecaster_name="holt",
    window=8,
    buffer_capacity=48,
    refit_interval=16,
    min_fit_size=12,
)


def make_ticks(n_ticks, n_streams, seed=0, nan_rate=0.05):
    rng = np.random.default_rng(seed)
    ticks = 50.0 + 10.0 * rng.standard_normal((n_ticks, n_streams))
    ticks[rng.random((n_ticks, n_streams)) < nan_rate] = np.nan
    return ticks


def assert_tick_equal(got, want):
    assert got.step == want.step
    assert got.refit == want.refit
    np.testing.assert_array_equal(got.predictions, want.predictions)
    np.testing.assert_array_equal(got.actuals, want.actuals)
    np.testing.assert_array_equal(got.errors, want.errors)
    np.testing.assert_array_equal(got.drift, want.drift)
    np.testing.assert_array_equal(got.health, want.health)
    np.testing.assert_array_equal(got.gated, want.gated)


class TestShardBoundaries:
    def test_contiguous_balanced_partition(self):
        assert shard_boundaries(10, 4) == (0, 2, 5, 7, 10)
        assert shard_boundaries(6, 1) == (0, 6)
        assert shard_boundaries(4, 4) == (0, 1, 2, 3, 4)
        bounds = shard_boundaries(103, 7)
        sizes = np.diff(bounds)
        assert sizes.sum() == 103 and sizes.max() - sizes.min() <= 1

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            shard_boundaries(4, 0)
        with pytest.raises(ValueError):
            shard_boundaries(4, 5)

    @settings(max_examples=200, deadline=None)
    @given(st.integers(min_value=1, max_value=5000).flatmap(
        lambda n: st.tuples(st.just(n), st.integers(min_value=1, max_value=n))
    ))
    def test_partition_properties(self, n_and_shards):
        """Any valid (n, shards): covers [0, n), contiguous, balanced within 1."""
        n, shards = n_and_shards
        bounds = shard_boundaries(n, shards)
        assert len(bounds) == shards + 1
        assert bounds[0] == 0 and bounds[-1] == n
        sizes = np.diff(bounds)
        assert (sizes >= 1).all()  # no empty shard
        assert sizes.sum() == n  # covers every stream exactly once
        assert sizes.max() - sizes.min() <= 1  # balanced within one stream


class TestSingleShardParity:
    def test_bit_identical_to_fleet_predictor(self):
        n = 5
        ticks = make_ticks(48, n, seed=1)
        fleet = FleetPredictor(n, registry=MetricRegistry(), **FLEET_KW)
        expected = fleet.run(ticks)
        with ShardedFleetPredictor(n, shards=1, registry=MetricRegistry(),
                                   **FLEET_KW) as sharded:
            got = sharded.run(ticks)
        assert len(got) == len(expected)
        for g, e in zip(got, expected):
            assert_tick_equal(g, e)

    def test_parity_across_snapshot_restore(self, tmp_path):
        """save -> close -> restore mid-stream changes nothing downstream."""
        n = 4
        ticks = make_ticks(44, n, seed=2)
        fleet = FleetPredictor(n, registry=MetricRegistry(), **FLEET_KW)
        expected = fleet.run(ticks)

        path = tmp_path / "fleet.ckpt"
        first = ShardedFleetPredictor(n, shards=1, registry=MetricRegistry(),
                                      **FLEET_KW)
        try:
            got = first.run(ticks[:20])
            first.save(path)
        finally:
            first.close(collect_metrics=False)
        second = ShardedFleetPredictor.restore(path, registry=MetricRegistry())
        try:
            got += second.run(ticks[20:])
        finally:
            second.close(collect_metrics=False)
        for g, e in zip(got, expected):
            assert_tick_equal(g, e)

    def test_stream_history_matches_fleet_buffer(self):
        n = 4
        ticks = make_ticks(30, n, seed=3)
        fleet = FleetPredictor(n, registry=MetricRegistry(), **FLEET_KW)
        fleet.run(ticks)
        with ShardedFleetPredictor(n, shards=2, registry=MetricRegistry(),
                                   **FLEET_KW) as sharded:
            sharded.run(ticks)
            for i in range(n):
                np.testing.assert_array_equal(
                    sharded.stream_history(i), fleet.buffer.view(i)
                )
            with pytest.raises(IndexError):
                sharded.stream_history(n)


class TestMultiShardSemantics:
    def test_shards_equal_independent_fleets_on_slices(self):
        """Each shard is exactly a FleetPredictor over its stream slice."""
        n, shards = 6, 2
        ticks = make_ticks(40, n, seed=4)
        bounds = shard_boundaries(n, shards)
        mirrors = [
            FleetPredictor(hi - lo, registry=MetricRegistry(), **FLEET_KW).run(
                ticks[:, lo:hi]
            )
            for lo, hi in zip(bounds, bounds[1:])
        ]
        with ShardedFleetPredictor(n, shards=shards, registry=MetricRegistry(),
                                   **FLEET_KW) as sharded:
            got = sharded.run(ticks)
        for t, g in enumerate(got):
            for s, (lo, hi) in enumerate(zip(bounds, bounds[1:])):
                m = mirrors[s][t]
                np.testing.assert_array_equal(g.predictions[lo:hi], m.predictions)
                np.testing.assert_array_equal(g.actuals[lo:hi], m.actuals)
                np.testing.assert_array_equal(g.errors[lo:hi], m.errors)
                np.testing.assert_array_equal(g.health[lo:hi], m.health)
            # fleet-level refit is the OR of the shard refits
            assert g.refit == any(mirrors[s][t].refit for s in range(shards))


class TestFaultIsolation:
    def test_killed_worker_takes_only_its_streams(self, tmp_path):
        n, shards = 6, 2
        ticks = make_ticks(36, n, seed=5, nan_rate=0.0)
        lo, hi = shard_boundaries(n, shards)[1], n
        mirror = FleetPredictor(hi - lo, registry=MetricRegistry(), **FLEET_KW)
        registry = MetricRegistry()
        # respawn=None: supervision off — a failure is terminal quarantine,
        # the pre-supervisor contract this test pins down
        sharded = ShardedFleetPredictor(n, shards=shards, registry=registry,
                                        respawn=None, **FLEET_KW)
        try:
            for t in ticks[:12]:
                got = sharded.process_tick(t)
                assert_tick_equal_rows(got, mirror.process_tick(t[lo:hi]), lo, hi)

            os.kill(sharded._handles[0].proc.pid, signal.SIGKILL)

            for t in ticks[12:]:
                got = sharded.process_tick(t)
                # dead shard: NaN predictions, fallback health, quarantine gate
                assert np.isnan(got.predictions[:lo]).all()
                assert np.isnan(got.errors[:lo]).all()
                np.testing.assert_array_equal(got.actuals[:lo], t[:lo])
                assert (got.health[:lo] == 2).all()
                assert (got.gated[:lo] == 2).all()
                # surviving shard: still bit-identical to its mirror
                assert_tick_equal_rows(got, mirror.process_tick(t[lo:hi]), lo, hi)

            assert sharded.failed_shards == (0,)
            st = sharded.stats()
            assert st["worker_failures"] == 1
            assert st["failed_shards"] == [0]
            assert any("shard 0" in e for e in st["errors"])
            assert st["per_shard"][0]["ok"] is False
            assert st["per_shard"][1]["ok"] is True
            failures = [
                s["value"]
                for s in registry.snapshot()["series"]
                if s["name"] == "serving_shard_worker_failures_total"
            ]
            assert failures == [1.0]
            # a degraded fleet must refuse to checkpoint
            with pytest.raises(RuntimeError, match="failed shards"):
                sharded.save(tmp_path / "degraded.ckpt")
        finally:
            sharded.close(collect_metrics=False)


def assert_tick_equal_rows(got, want, lo, hi):
    np.testing.assert_array_equal(got.predictions[lo:hi], want.predictions)
    np.testing.assert_array_equal(got.actuals[lo:hi], want.actuals)
    np.testing.assert_array_equal(got.errors[lo:hi], want.errors)
    np.testing.assert_array_equal(got.drift[lo:hi], want.drift)
    np.testing.assert_array_equal(got.health[lo:hi], want.health)
    np.testing.assert_array_equal(got.gated[lo:hi], want.gated)


class TestCheckpointRejection:
    def test_config_mismatch_rejected(self, tmp_path):
        path = tmp_path / "fleet.ckpt"
        with ShardedFleetPredictor(4, shards=1, registry=MetricRegistry(),
                                   **FLEET_KW) as sharded:
            sharded.run(make_ticks(16, 4, seed=6))
            sharded.save(path)
        other_kw = {**FLEET_KW, "window": 10}
        with ShardedFleetPredictor(4, shards=1, registry=MetricRegistry(),
                                   **other_kw) as wrong:
            with pytest.raises(CheckpointError, match="config mismatch"):
                wrong.load_state(read_checkpoint(path)["state"])

    def test_restore_applies_saved_shard_count(self, tmp_path):
        path = tmp_path / "fleet.ckpt"
        with ShardedFleetPredictor(4, shards=2, registry=MetricRegistry(),
                                   **FLEET_KW) as sharded:
            sharded.run(make_ticks(16, 4, seed=7))
            sharded.save(path)
        restored = ShardedFleetPredictor.restore(path, registry=MetricRegistry())
        try:
            assert restored.shards == 2 and restored.n_streams == 4
        finally:
            restored.close(collect_metrics=False)

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "other.ckpt"
        write_checkpoint(path, {"kind": "online_predictor", "state": {}})
        with pytest.raises(CheckpointError, match="does not hold"):
            ShardedFleetPredictor.restore(path)


class TestConstructionAndLifecycle:
    @pytest.mark.parametrize(
        ("n_streams", "shards"), [(0, 1), (2, 3), (2, 0)]
    )
    def test_bad_geometry_rejected_before_spawning(self, n_streams, shards):
        with pytest.raises(ValueError):
            ShardedFleetPredictor(n_streams, shards=shards,
                                  registry=MetricRegistry(), **FLEET_KW)

    def test_unforwardable_fleet_kwargs_rejected(self):
        """A live callable cannot cross the spawn boundary — refuse early."""
        with pytest.raises(ValueError, match="cannot be passed through"):
            ShardedFleetPredictor(
                2, shards=1, refit_fault_hook=lambda: None, **FLEET_KW
            )

    def test_close_is_idempotent_and_final(self):
        sharded = ShardedFleetPredictor(2, shards=1, registry=MetricRegistry(),
                                        **FLEET_KW)
        sharded.process_tick(np.array([1.0, 2.0]))
        sharded.close()
        sharded.close()
        with pytest.raises(RuntimeError, match="closed"):
            sharded.process_tick(np.array([1.0, 2.0]))
        with pytest.raises(RuntimeError, match="closed"):
            sharded.stream_history(0)

    def test_tick_shape_validated(self):
        with ShardedFleetPredictor(3, shards=1, registry=MetricRegistry(),
                                   **FLEET_KW) as sharded:
            with pytest.raises(ValueError, match="expected tick of shape"):
                sharded.process_tick(np.zeros(4))
