"""Two-deep tick pipeline: parity, in-flight failure semantics, deadlines.

The pipeline contract (ISSUE 10): ``pipeline=True`` overlaps
coordinator-side tick composition with shard compute but never changes a
single served bit — every :class:`~repro.streaming.fleet.FleetTick`
(predictions, health, ``model_version``, ...) is identical to the
lock-step barrier, including across a mid-stream checkpoint/restore and
under chaos. A worker that dies with ticks in flight resolves *both*
outstanding steps through the degraded path, and the fan-in charges one
shared ``tick_timeout`` per tick, never per shard.

Fleets here are deliberately tiny (N<=6, short tick runs): every test
spawns real worker processes, so the budget goes to process startup,
not serving.
"""

import time

import numpy as np
import pytest

from repro.obs.registry import MetricRegistry, set_enabled
from repro.streaming import (
    ChaosSchedule,
    FleetPredictor,
    ProcessFault,
    RespawnPolicy,
    ShardedFleetPredictor,
    shard_boundaries,
)

#: small-but-real fleet config: refits happen, buffer wrap is avoided
FLEET_KW = dict(
    forecaster_name="holt",
    window=8,
    buffer_capacity=48,
    refit_interval=16,
    min_fit_size=12,
)

#: generous pacing while a shard rebuilds (worker spawn pays interpreter
#: start-up + imports); tests assert in ticks, never in wall-clock
RECOVERY_PACE_S = 0.15


def make_ticks(n_ticks, n_streams, seed=0, nan_rate=0.05):
    rng = np.random.default_rng(seed)
    ticks = 50.0 + 10.0 * rng.standard_normal((n_ticks, n_streams))
    ticks[rng.random((n_ticks, n_streams)) < nan_rate] = np.nan
    return ticks


def assert_tick_equal(got, want):
    assert got.step == want.step
    assert got.refit == want.refit
    assert got.model_version == want.model_version
    np.testing.assert_array_equal(got.predictions, want.predictions)
    np.testing.assert_array_equal(got.actuals, want.actuals)
    np.testing.assert_array_equal(got.errors, want.errors)
    np.testing.assert_array_equal(got.drift, want.drift)
    np.testing.assert_array_equal(got.health, want.health)
    np.testing.assert_array_equal(got.gated, want.gated)


def drive_pipelined(pred, ticks, pace=RECOVERY_PACE_S):
    """Two-deep submit/collect loop, pacing while any shard rebuilds."""
    out = []
    pred.submit_tick(ticks[0])
    for t in ticks[1:]:
        pred.submit_tick(t)
        out.append(pred.collect_tick())
        if pred.recovering_shards and pace > 0:
            time.sleep(pace)
    out.append(pred.collect_tick())
    return out


class TestPipelineParity:
    def test_pipelined_run_is_bit_identical_to_barrier(self):
        """Clean run: every field of every tick matches, across a refit."""
        n, shards = 6, 2
        ticks = make_ticks(40, n, seed=3)
        barrier = ShardedFleetPredictor(
            n, shards, pipeline=False, registry=MetricRegistry(), **FLEET_KW
        )
        pipelined = ShardedFleetPredictor(
            n, shards, pipeline=True, registry=MetricRegistry(), **FLEET_KW
        )
        try:
            want = barrier.run(ticks)
            got = pipelined.run(ticks)
            assert len(got) == len(want) == len(ticks)
            for g, w in zip(got, want):
                assert_tick_equal(g, w)
            # the run crossed a refit boundary, so event-driven version
            # adoption actually carried a non-zero version at least once
            assert any(w.refit for w in want)
            assert got[-1].model_version == want[-1].model_version >= 1
            assert barrier.stats()["fleet_mae"] == pipelined.stats()["fleet_mae"]
            assert barrier.stats()["step"] == pipelined.stats()["step"] == len(ticks)
        finally:
            barrier.close()
            pipelined.close()

    def test_explicit_submit_collect_matches_run(self):
        n, shards = 4, 2
        ticks = make_ticks(24, n, seed=5)
        a = ShardedFleetPredictor(
            n, shards, pipeline=False, registry=MetricRegistry(), **FLEET_KW
        )
        b = ShardedFleetPredictor(
            n, shards, pipeline=True, registry=MetricRegistry(), **FLEET_KW
        )
        try:
            want = [a.process_tick(t) for t in ticks]
            got = drive_pipelined(b, ticks, pace=0)
            for g, w in zip(got, want):
                assert_tick_equal(g, w)
        finally:
            a.close()
            b.close()

    def test_parity_across_mid_stream_checkpoint_restore(self, tmp_path):
        """save → restore keeps the pipeline flag and stays bit-identical."""
        n, shards, split = 6, 2, 20
        ticks = make_ticks(40, n, seed=7)
        path = tmp_path / "fleet.ckpt"
        barrier = ShardedFleetPredictor(
            n, shards, pipeline=False, registry=MetricRegistry(), **FLEET_KW
        )
        first = ShardedFleetPredictor(
            n, shards, pipeline=True, registry=MetricRegistry(), **FLEET_KW
        )
        try:
            want = barrier.run(ticks)
            first.run(ticks[:split])
            first.save(path)
        finally:
            barrier.close()
            first.close()
        second = ShardedFleetPredictor.restore(path, registry=MetricRegistry())
        try:
            assert second.pipeline is True
            got_tail = second.run(ticks[split:])
            for g, w in zip(got_tail, want[split:]):
                assert_tick_equal(g, w)
        finally:
            second.close()

    def test_quarantine_chaos_is_bit_identical_across_modes(self):
        """respawn=None chaos kill: deterministic, so full cross-mode parity.

        With the supervisor disabled, detection (EOF on the dead pipe)
        and quarantine land on the same tick in both modes, so even the
        degraded NaN rows must match bit-for-bit — including the tick
        that was already in flight when the worker died.
        """
        n, shards, kill_tick = 6, 2, 8
        ticks = make_ticks(20, n, seed=9, nan_rate=0.0)
        outs = {}
        for pipeline in (False, True):
            pred = ShardedFleetPredictor(
                n,
                shards,
                pipeline=pipeline,
                respawn=None,
                chaos=ChaosSchedule.kill_at(kill_tick, shard=0),
                registry=MetricRegistry(),
                tick_timeout=30.0,
                **FLEET_KW,
            )
            try:
                outs[pipeline] = pred.run(ticks)
                assert pred.quarantined_shards == (0,)
            finally:
                pred.close()
        for g, w in zip(outs[True], outs[False]):
            assert_tick_equal(g, w)


class TestPipelineFaults:
    def test_sigkill_with_tick_in_flight_degrades_both_pending_steps(self):
        """Worker death mid-pipeline: both in-flight steps go RECOVERING.

        When the chaos kill lands, tick k is computing and tick k+1 is
        already staged — neither may be dropped or served stale: both
        must resolve to held-prediction RECOVERING rows, while survivor
        rows stay bit-identical to an undisturbed mirror shard.
        """
        n, shards, kill_tick = 6, 2, 10
        vlo, vhi = shard_boundaries(n, shards)[0:2]
        ticks = make_ticks(40, n, seed=11, nan_rate=0.0)
        mirror = FleetPredictor(n - vhi, registry=MetricRegistry(), **FLEET_KW)
        pred = ShardedFleetPredictor(
            n,
            shards,
            pipeline=True,
            chaos=ChaosSchedule.kill_at(kill_tick, shard=0),
            respawn=RespawnPolicy(backoff_ticks=1),
            registry=MetricRegistry(),
            tick_timeout=30.0,
            **FLEET_KW,
        )
        try:
            got = drive_pipelined(pred, ticks)
            want = [mirror.process_tick(row[vhi:]) for row in ticks]
            for g, w in zip(got, want):
                np.testing.assert_array_equal(g.predictions[vhi:], w.predictions)
                np.testing.assert_array_equal(g.errors[vhi:], w.errors)
                np.testing.assert_array_equal(g.health[vhi:], w.health)
            held = got[kill_tick - 1].predictions[vlo:vhi]
            for step in (kill_tick, kill_tick + 1):  # both in-flight steps
                assert (got[step].health[vlo:vhi] == 3).all(), f"step {step}"
                np.testing.assert_array_equal(got[step].predictions[vlo:vhi], held)
                np.testing.assert_array_equal(
                    got[step].actuals[vlo:vhi], ticks[step][vlo:vhi]
                )
            assert pred.worker_failures == 1
            assert pred.respawns >= 1
            # the shard came back and served real (non-held) rows again
            recovered = [
                t for t, g in enumerate(got)
                if t > kill_tick and (g.health[vlo:vhi] == 0).all()
            ]
            assert recovered, "shard never recovered within the run"
        finally:
            pred.close()

    def test_slow_shards_share_one_tick_deadline(self):
        """k hung shards cost one tick_timeout, not k of them."""
        n, shards, hang_tick, timeout = 6, 3, 4, 1.0
        ticks = make_ticks(8, n, seed=13, nan_rate=0.0)
        pred = ShardedFleetPredictor(
            n,
            shards,
            respawn=None,
            chaos=ChaosSchedule(
                [
                    ProcessFault(tick=hang_tick, shard=0, kind="hang"),
                    ProcessFault(tick=hang_tick, shard=1, kind="hang"),
                ]
            ),
            registry=MetricRegistry(),
            tick_timeout=timeout,
            **FLEET_KW,
        )
        try:
            for t in range(hang_tick):
                pred.process_tick(ticks[t])
            t0 = time.perf_counter()
            out = pred.process_tick(ticks[hang_tick])
            elapsed = time.perf_counter() - t0
            # both hung shards failed inside ONE shared deadline; the old
            # per-handle poll would have charged 2 x timeout sequentially
            assert elapsed < 1.9 * timeout, f"fan-in took {elapsed:.2f}s"
            assert pred.quarantined_shards == (0, 1)
            dead = slice(0, shard_boundaries(n, shards)[2])
            assert np.isnan(out.predictions[dead]).all()
            assert (out.health[dead] == 2).all()
            # the survivor still served its rows on the very same tick
            assert (out.health[dead.stop:] == 0).all()
        finally:
            pred.close()

    def test_recovery_accounting_survives_disabled_obs(self):
        """A disabled metric registry must not skew serving or recovery state."""
        n, shards, kill_tick = 4, 2, 6
        vhi = shard_boundaries(n, shards)[1]
        ticks = make_ticks(30, n, seed=17, nan_rate=0.0)
        mirror = FleetPredictor(n - vhi, registry=MetricRegistry(), **FLEET_KW)
        prev = set_enabled(False)
        try:
            pred = ShardedFleetPredictor(
                n,
                shards,
                pipeline=True,
                chaos=ChaosSchedule.kill_at(kill_tick, shard=0),
                respawn=RespawnPolicy(backoff_ticks=1),
                registry=MetricRegistry(),
                tick_timeout=30.0,
                **FLEET_KW,
            )
            try:
                got = drive_pipelined(pred, ticks)
                want = [mirror.process_tick(row[vhi:]) for row in ticks]
                for g, w in zip(got, want):
                    np.testing.assert_array_equal(g.predictions[vhi:], w.predictions)
                    np.testing.assert_array_equal(g.health[vhi:], w.health)
                assert pred.worker_failures == 1
                # the regression: recovery-tick accounting is bookkeeping,
                # not telemetry — it must land even with obs switched off
                assert pred.last_recovery_ticks is not None
                assert pred.last_recovery_ticks >= 1
                assert pred.stats()["step"] == len(ticks)
            finally:
                pred.close()
        finally:
            set_enabled(prev)


class TestPipelineGuards:
    def test_depth_limit_and_inflight_guards(self, tmp_path):
        n = 2
        ticks = make_ticks(6, n, seed=19, nan_rate=0.0)
        pred = ShardedFleetPredictor(
            n, shards=1, registry=MetricRegistry(), **FLEET_KW
        )
        try:
            with pytest.raises(RuntimeError, match="no tick in flight"):
                pred.collect_tick()
            pred.submit_tick(ticks[0])
            pred.submit_tick(ticks[1])
            assert pred.inflight == 2
            with pytest.raises(RuntimeError, match="pipeline is full"):
                pred.submit_tick(ticks[2])
            # control traffic shares the worker pipes with tick acks —
            # every rare-path entry point must refuse while ticks fly
            with pytest.raises(RuntimeError, match="in flight"):
                pred.process_tick(ticks[2])
            with pytest.raises(RuntimeError, match="in flight"):
                pred.stats()
            with pytest.raises(RuntimeError, match="in flight"):
                pred.save(tmp_path / "mid.ckpt")
            with pytest.raises(RuntimeError, match="in flight"):
                pred.stream_history(0)
            first = pred.collect_tick()
            second = pred.collect_tick()
            assert (first.step, second.step) == (0, 1)
            assert pred.inflight == 0
            assert pred.stats()["step"] == 2  # idle again: control works
        finally:
            pred.close()

    def test_close_drains_inflight_ticks(self):
        n = 2
        ticks = make_ticks(2, n, seed=23, nan_rate=0.0)
        pred = ShardedFleetPredictor(
            n, shards=1, registry=MetricRegistry(), **FLEET_KW
        )
        pred.submit_tick(ticks[0])
        pred.submit_tick(ticks[1])
        pred.close()  # must not wedge on (or mis-parse) the queued acks
        assert pred.inflight == 0
