"""Async background refits: engine semantics, atomic swap, paced parity.

The load-bearing guarantees of ``repro.streaming.refit`` (ISSUE 9):

* the engine runs **one fit at a time** off the serving path — submit
  while busy is rejected (the caller's refit clock re-arms), failures
  come back as outcomes, never as serving-path exceptions;
* :class:`ModelSlot` publication is atomic — a reader on another thread
  sees a complete ``(version, model, step)`` triple, never a torn mix
  (hypothesis hammers this);
* under the paced schedule (the fit completes within the production
  tick gap) async serving is prediction-bit-identical to sync;
* free-running, a slow fit never blocks a tick;
* a checkpoint taken with a refit in flight restores deterministically:
  restore-then-replay equals the uninterrupted run;
* the refit clock resets when an attempt *starts* in every mode, so a
  ``BaseException`` escaping the fit cannot arm a refit storm
  (regression test for the ``_since_refit`` bug).
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.windowing import make_windows
from repro.models.base import (
    FORECASTER_REGISTRY,
    Forecaster,
    register_forecaster,
)
from repro.streaming import (
    AsyncRefitEngine,
    FleetPredictor,
    ModelSlot,
    OnlinePredictor,
    RefitTask,
    ShardedFleetPredictor,
)
from repro.streaming.drift import PageHinkley

#: quiet detector + small-but-real fleet config: scheduled refits fire,
#: drift never does, so refit activity is fully deterministic
_COMMON = dict(
    window=8,
    buffer_capacity=160,
    refit_interval=24,
    min_fit_size=24,
)


def _task(name="mean", n=40, seed=0, **kwargs) -> RefitTask:
    rng = np.random.default_rng(seed)
    series = rng.normal(0.5, 0.1, (n, 1))
    x, y = make_windows(series, series[:, 0], window=6)
    return RefitTask(name, dict(kwargs), x, y, step=7)


def _streams(ticks, n, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(ticks, dtype=float)[:, None]
    return 0.5 + 0.1 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 0.02, (ticks, n))


@pytest.fixture
def slow_forecaster():
    """A registered forecaster whose fit takes a deliberate 50 ms."""

    @register_forecaster("_slow_mean_test")
    class SlowMean(Forecaster):
        def __init__(self, target_col=0, fit_sleep=0.05):
            super().__init__()
            self.target_col = target_col
            self.fit_sleep = fit_sleep
            self._mean = 0.0

        def fit(self, x, y, x_val=None, y_val=None):
            time.sleep(self.fit_sleep)
            self._mean = float(np.mean(y))
            self.fitted = True
            return self

        def predict(self, x):
            x = np.asarray(x)
            return np.full((len(x), 1), self._mean)

    yield "_slow_mean_test"
    FORECASTER_REGISTRY.pop("_slow_mean_test", None)


class TestEngine:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            AsyncRefitEngine("fibers")

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_submit_fit_poll_roundtrip(self, backend):
        with AsyncRefitEngine(backend) as engine:
            task = _task()
            assert engine.submit(task)
            assert engine.wait(timeout=30.0)
            outcome = engine.poll()
            assert outcome is not None and outcome.ok
            assert outcome.task.step == 7
            assert outcome.fit_seconds >= 0.0
            pred = outcome.model.predict(task.x)
            assert np.isfinite(pred).all()
            # exactly one outcome per submit; nothing pending afterwards
            assert engine.poll() is None
            assert engine.pending_task() is None

    def test_busy_submit_rejected_until_outcome_consumed(self, slow_forecaster):
        with AsyncRefitEngine("thread") as engine:
            first = _task(slow_forecaster, fit_sleep=0.2)
            assert engine.submit(first)
            assert engine.busy
            # in flight -> rejected; the pending task is still the first
            assert not engine.submit(_task())
            assert engine.pending_task() is first
            assert engine.wait(timeout=30.0)
            # finished but unpolled still counts as pending (checkpointable)
            assert engine.pending_task() is first
            assert not engine.submit(_task())
            assert engine.poll().ok
            assert engine.submit(_task())

    def test_fit_failure_becomes_outcome_not_exception(self):
        with AsyncRefitEngine("thread") as engine:
            task = _task("_no_such_forecaster_")
            assert engine.submit(task)
            # the failed task stays pending until the caller adopts it
            assert engine.wait(timeout=30.0)
            assert engine.pending_task() is task
            outcome = engine.poll()
            assert not outcome.ok and outcome.model is None
            assert "unknown forecaster" in outcome.error

    def test_wait_timeout_returns_false(self, slow_forecaster):
        with AsyncRefitEngine("thread") as engine:
            assert engine.submit(_task(slow_forecaster, fit_sleep=0.3))
            assert not engine.wait(timeout=0.01)
            assert engine.wait(timeout=30.0)

    def test_close_is_idempotent_and_submit_after_close_raises(self):
        engine = AsyncRefitEngine("thread")
        engine.submit(_task())
        engine.wait(timeout=30.0)
        engine.close()
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.submit(_task())

    def test_task_checkpoint_roundtrip(self):
        task = _task("mean", seed=3)
        clone = RefitTask.from_state(task.state_dict())
        assert clone.forecaster_name == task.forecaster_name
        assert clone.step == task.step
        np.testing.assert_array_equal(clone.x, task.x)
        np.testing.assert_array_equal(clone.y, task.y)
        # the checkpoint payload copies the arrays, it does not alias them
        assert clone.x is not task.x


class _MarkedModel:
    """Stand-in model: every weight array carries its version marker."""

    def __init__(self, version: int, n_arrays: int):
        self.arrays = [np.full(16, float(version)) for _ in range(n_arrays)]


class TestModelSlotAtomicSwap:
    @settings(max_examples=20, deadline=None)
    @given(
        n_publishes=st.integers(min_value=2, max_value=40),
        n_arrays=st.integers(min_value=1, max_value=4),
    )
    def test_reader_never_sees_torn_model(self, n_publishes, n_arrays):
        """A racing reader sees complete (version, model, step) triples only.

        Every published model is built *before* publication with all its
        arrays stamped with the version number; a torn swap would show a
        version/marker mismatch, mixed markers across arrays, or a
        version moving backwards.
        """
        slot = ModelSlot()
        stop = threading.Event()
        violations: list[str] = []

        def reader():
            last_version = 0
            while not stop.is_set():
                version, model, step = slot.read()
                if version < last_version:
                    violations.append(f"version went backwards: {version}")
                last_version = version
                if model is None:
                    if version != 0:
                        violations.append("versioned cell with no model")
                    continue
                markers = {float(a[0]) for a in model.arrays}
                markers |= {float(v) for a in model.arrays for v in a}
                if markers != {float(version)}:
                    violations.append(f"torn model at version {version}: {markers}")
                if step != version:
                    violations.append(f"step {step} != version {version}")

        thread = threading.Thread(target=reader, daemon=True)
        thread.start()
        try:
            for k in range(1, n_publishes + 1):
                assert slot.publish(_MarkedModel(k, n_arrays), step=k) == k
        finally:
            stop.set()
            thread.join(timeout=10.0)
        assert not violations, violations[:5]
        version, model, step = slot.read()
        assert version == n_publishes and step == n_publishes
        assert float(model.arrays[0][0]) == float(n_publishes)


def _run_paced(predictor, streams):
    """Serve every tick, letting any background fit land between ticks."""
    out = []
    for row in streams:
        out.append(predictor.process_tick(row))
        if predictor.refit_engine is not None:
            assert predictor.refit_engine.wait(timeout=60.0)
    return out


class TestPacedParity:
    """Paced async must be prediction-bit-identical to sync serving."""

    def test_async_matches_sync_bit_for_bit(self):
        streams = _streams(130, 6)
        sync = FleetPredictor(
            6, "mlp", forecaster_kwargs={"epochs": 2, "seed": 0},
            detector=PageHinkley(threshold=1e9), **_COMMON,
        )
        asyn = FleetPredictor(
            6, "mlp", forecaster_kwargs={"epochs": 2, "seed": 0},
            detector=PageHinkley(threshold=1e9), refit_mode="async", **_COMMON,
        )
        try:
            sync_out = _run_paced(sync, streams)
            async_out = _run_paced(asyn, streams)
            for a, b in zip(sync_out, async_out):
                np.testing.assert_array_equal(a.predictions, b.predictions)
                np.testing.assert_array_equal(a.errors, b.errors)
                np.testing.assert_array_equal(a.health, b.health)
            assert sync.stats.fleet_mae == asyn.stats.fleet_mae
            assert sync.stats.n_refits == asyn.stats.n_refits > 0
            assert sync.model_version == asyn.model_version
            # same fits, adopted one tick later: sync marks the in-line
            # refit tick, async marks the swap tick right after it
            sync_ticks = [t.step for t in sync_out if t.refit]
            async_ticks = [t.step for t in async_out if t.refit]
            assert async_ticks == [s + 1 for s in sync_ticks]
        finally:
            sync.close()
            asyn.close()

    def test_model_version_monotone_and_staleness_anchored(self):
        streams = _streams(130, 4)
        fleet = FleetPredictor(
            4, "mean", detector=PageHinkley(threshold=1e9),
            refit_mode="async", **_COMMON,
        )
        try:
            out = _run_paced(fleet, streams)
            versions = [t.model_version for t in out]
            assert versions == sorted(versions)
            assert versions[-1] == fleet.model_version > 0
            # the staleness anchor tracks the pool's submission step
            assert 0 <= fleet._step - fleet._model_step <= _COMMON["refit_interval"] + 1
        finally:
            fleet.close()


class TestNeverBlocks:
    def test_slow_fit_never_stalls_a_tick(self, slow_forecaster):
        """Free-running: ticks stay orders of magnitude under the fit cost."""
        fit_sleep = 0.08
        streams = _streams(150, 4, seed=5)
        fleet = FleetPredictor(
            4, slow_forecaster, forecaster_kwargs={"fit_sleep": fit_sleep},
            detector=PageHinkley(threshold=1e9), refit_mode="async",
            refit_interval=10, window=8, buffer_capacity=160, min_fit_size=16,
        )
        latencies = []
        try:
            for row in streams:
                t0 = time.perf_counter()
                fleet.process_tick(row)
                latencies.append(time.perf_counter() - t0)
                time.sleep(0.002)  # tick gap, off the measured path
            assert fleet.model_version >= 1  # fits landed and were adopted
            assert fleet.stats.n_refits >= 1
            # triggers that fired mid-fit were deferred, not queued/blocked
            assert fleet.stats.n_refits_deferred >= 1
            assert max(latencies) < fit_sleep / 2, (
                f"a tick stalled {max(latencies) * 1e3:.1f} ms against a "
                f"{fit_sleep * 1e3:.0f} ms fit"
            )
        finally:
            fleet.close()


class TestCheckpointMidFlight:
    def test_restore_with_inflight_refit_replays_identically(self, tmp_path):
        """Snapshot taken while a fit is in flight; resume == uninterrupted."""
        streams = _streams(130, 5, seed=9)
        kwargs = dict(
            forecaster_kwargs={"epochs": 2, "seed": 0},
            detector=PageHinkley(threshold=1e9), refit_mode="async",
        )
        solo = FleetPredictor(5, "mlp", **{**kwargs, **_COMMON})
        solo_out = _run_paced(solo, streams)
        solo.close()

        fleet = FleetPredictor(5, "mlp", **{**kwargs, **_COMMON})
        out = []
        interrupted = False
        path = tmp_path / "fleet.ckpt"
        for row in streams:
            out.append(fleet.process_tick(row))
            if not interrupted and fleet.refit_engine.pending_task() is not None:
                # a refit is in flight right now: checkpoint, kill, restore
                fleet.save(path)
                fleet.close()
                fleet = FleetPredictor.restore(path)
                interrupted = True
            assert fleet.refit_engine.wait(timeout=60.0)
        assert interrupted, "no tick ever had a refit in flight"
        try:
            for a, b in zip(solo_out, out):
                np.testing.assert_array_equal(a.predictions, b.predictions)
                np.testing.assert_array_equal(a.errors, b.errors)
                assert a.refit == b.refit
                assert a.model_version == b.model_version
            assert fleet.stats.fleet_mae == solo.stats.fleet_mae
            assert fleet.model_version == solo.model_version
        finally:
            fleet.close()

    def test_pending_task_persisted_and_resubmitted(self, tmp_path, slow_forecaster):
        streams = _streams(60, 3, seed=2)
        fleet = FleetPredictor(
            3, slow_forecaster, forecaster_kwargs={"fit_sleep": 0.3},
            detector=PageHinkley(threshold=1e9), refit_mode="async",
            window=8, buffer_capacity=120, refit_interval=20, min_fit_size=16,
        )
        try:
            for row in streams:
                fleet.process_tick(row)
                if fleet.refit_engine.pending_task() is not None:
                    break
            task = fleet.refit_engine.pending_task()
            assert task is not None
            state = fleet.state_dict()
            assert state["pending_refit"] is not None
            assert state["pending_refit"]["step"] == task.step
        finally:
            fleet.close()
        restored = FleetPredictor(
            3, slow_forecaster,
            detector=PageHinkley(threshold=1e9), refit_mode="async",
            window=8, buffer_capacity=120, refit_interval=20, min_fit_size=16,
        )
        try:
            restored.load_state_dict(state)
            # the interrupted fit was resubmitted and completes
            assert restored.refit_engine.pending_task() is not None
            assert restored.refit_engine.wait(timeout=30.0)
        finally:
            restored.close()


class _Boom(BaseException):
    """Escapes the refit supervisor (which only catches Exception)."""


class TestRefitClockRegression:
    """`_since_refit` resets when the attempt STARTS, in every mode.

    Before the fix, a BaseException escaping the fit left the clock
    unreset, so the ``scheduled`` trigger re-fired a refit on every
    subsequent tick — a refit storm exactly when the system was already
    in trouble.
    """

    @staticmethod
    def _arm(predictor):
        fired = {"n": 0}

        def hook():
            fired["n"] += 1
            raise _Boom("operator interrupt mid-refit")

        predictor.refit_fault_hook = hook
        return fired

    def _check_no_storm(self, predictor, tick_fn, interval):
        fired = self._arm(predictor)
        with pytest.raises(_Boom):
            for _ in range(interval + 2):
                tick_fn()
        assert fired["n"] == 1
        assert predictor._since_refit == 0  # clock reset at attempt start
        predictor.refit_fault_hook = None
        calls = predictor.refit_supervisor.n_calls
        # the next attempt is a full interval away, not next tick
        for _ in range(interval - 2):
            tick_fn()
        assert predictor.refit_supervisor.n_calls == calls
        for _ in range(4):
            tick_fn()
        assert predictor.refit_supervisor.n_calls > calls

    def test_sync_fleet(self):
        fleet = FleetPredictor(
            2, "mean", detector=PageHinkley(threshold=1e9), **_COMMON
        )
        rows = iter(_streams(400, 2))
        fleet.run(_streams(40, 2, seed=1))  # warm up: model fitted
        assert fleet.model is not None
        self._check_no_storm(
            fleet, lambda: fleet.process_tick(next(rows)), _COMMON["refit_interval"]
        )

    def test_async_fleet(self):
        fleet = FleetPredictor(
            2, "mean", detector=PageHinkley(threshold=1e9),
            refit_mode="async", **_COMMON,
        )
        rows = iter(_streams(400, 2))
        try:
            _run_paced(fleet, _streams(40, 2, seed=1))
            assert fleet.model is not None

            def tick():
                fleet.process_tick(next(rows))
                fleet.refit_engine.wait(timeout=60.0)

            self._check_no_storm(fleet, tick, _COMMON["refit_interval"])
        finally:
            fleet.close()

    def test_scalar_predictor(self):
        predictor = OnlinePredictor(
            "mean", detector=PageHinkley(threshold=1e9), **_COMMON
        )
        rows = iter(_streams(400, 1))
        predictor.run(_streams(40, 1, seed=1)[:, 0])
        assert predictor.model is not None
        self._check_no_storm(
            predictor,
            lambda: predictor.process(next(rows)),
            _COMMON["refit_interval"],
        )


class TestShardedAsync:
    def test_fleet_kwargs_carry_async_mode_per_shard(self):
        """Each shard runs its own async engine; versions compose as min."""
        streams = _streams(120, 4, seed=3)
        fleet = ShardedFleetPredictor(
            4, shards=2, forecaster_name="mean", refit_mode="async",
            window=8, buffer_capacity=160, refit_interval=16, min_fit_size=16,
        )
        try:
            out = [fleet.process_tick(row) for row in streams]
            versions = [t.model_version for t in out]
            assert versions[-1] >= 1  # every shard swapped at least once
            assert versions == sorted(versions)  # min over shards is monotone
            assert out[-1].served.all()
        finally:
            fleet.close()
