"""Stream fault-injection harness: determinism, rates, provenance."""

import numpy as np
import pytest

from repro.streaming import (
    ChaosSchedule,
    FaultConfig,
    FaultInjector,
    InjectedFault,
    ProcessFault,
)


def _records(n=500, features=1, seed=9):
    rng = np.random.default_rng(seed)
    return rng.random((n, features))


class TestFaultConfig:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(drop_rate=1.0)
        with pytest.raises(ValueError):
            FaultConfig(nan_cell_rate=-0.1)
        with pytest.raises(ValueError):
            FaultConfig(outlier_scale=0.0)

    def test_at_level_scales_rates(self):
        cfg = FaultConfig.at_level(0.1)
        assert cfg.nan_cell_rate == pytest.approx(0.1)
        assert cfg.drop_rate == pytest.approx(0.05)
        assert cfg.duplicate_rate == pytest.approx(0.025)
        zero = FaultConfig.at_level(0.0)
        assert zero.drop_rate == 0.0 and zero.nan_cell_rate == 0.0


class TestFaultInjector:
    def test_zero_config_is_identity(self):
        records = _records(100)
        inj = FaultInjector(FaultConfig(seed=1))
        out = np.asarray(list(inj.stream(records)))
        np.testing.assert_array_equal(out, records)
        assert inj.emitted_from == list(range(100))
        assert all(v == 0 for v in inj.counts.values())

    def test_deterministic_given_seed(self):
        records = _records(400)
        cfg = FaultConfig.at_level(0.1, seed=42)
        a = [np.array(r, copy=True) for r in FaultInjector(cfg).stream(records)]
        b = [np.array(r, copy=True) for r in FaultInjector(cfg).stream(records)]
        assert len(a) == len(b)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_stream_faults_independent_of_refit_draws(self):
        """Interleaving refit_fault() calls must not change which records are
        corrupted — checkpoint-equivalence tests rely on this."""
        records = _records(300)
        cfg = FaultConfig.at_level(0.1, refit_failure_rate=0.5, seed=3)

        plain = FaultInjector(cfg)
        a = [np.array(r, copy=True) for r in plain.stream(records)]

        noisy = FaultInjector(cfg)
        out = []
        for i, rec in enumerate(noisy.stream(records)):
            out.append(np.array(rec, copy=True))
            if i % 7 == 0:
                try:
                    noisy.refit_fault()
                except InjectedFault:
                    pass
        assert len(a) == len(out)
        for x, y in zip(a, out):
            np.testing.assert_array_equal(x, y)
        assert plain.emitted_from == noisy.emitted_from

    def test_counts_and_provenance(self):
        records = _records(2000)
        inj = FaultInjector(FaultConfig.at_level(0.1, seed=11))
        emitted = list(inj.stream(records))
        assert len(emitted) == len(inj.emitted_from)
        # drops shrink, duplicates grow; net length reflects both
        assert len(emitted) == 2000 - inj.counts["dropped"] + inj.counts["duplicated"]
        # provenance indices are valid and non-decreasing
        src = inj.emitted_from
        assert all(0 <= i < 2000 for i in src)
        assert all(b >= a for a, b in zip(src, src[1:]))
        # every advertised fault class fired at a plausible rate
        assert 50 < inj.counts["dropped"] < 200       # rate 0.05
        assert 100 < inj.counts["nan_cells"] < 300    # rate 0.1 on survivors
        assert inj.counts["duplicated"] > 10          # rate 0.025
        assert inj.counts["outlier_records"] > 10     # rate 0.05

    def test_duplicates_share_source_index(self):
        inj = FaultInjector(FaultConfig(duplicate_rate=0.2, seed=5))
        list(inj.stream(_records(500)))
        src = inj.emitted_from
        assert inj.counts["duplicated"] > 0
        repeats = sum(1 for a, b in zip(src, src[1:]) if a == b)
        assert repeats == inj.counts["duplicated"]

    def test_outliers_are_scaled_spikes(self):
        records = np.full((500, 1), 0.5)
        inj = FaultInjector(FaultConfig(outlier_rate=0.1, outlier_scale=4.0, seed=8))
        out = np.asarray(list(inj.stream(records)))
        spiked = np.abs(out - 0.5) > 1e-12
        assert spiked.sum() == inj.counts["outlier_records"]
        assert spiked.sum() > 10

    def test_refit_fault_raises_at_rate(self):
        inj = FaultInjector(FaultConfig(refit_failure_rate=0.5, seed=2))
        raised = 0
        for _ in range(400):
            try:
                inj.refit_fault()
            except InjectedFault:
                raised += 1
        assert raised == inj.counts["refit_faults"]
        assert 140 < raised < 260

    def test_from_corruption_bridges_trace_config(self):
        from repro.traces.corruption import CorruptionConfig

        cc = CorruptionConfig(missing_cell_rate=0.05, outlier_rate=0.02, seed=7)
        cfg = FaultConfig.from_corruption(cc, drop_rate=0.01, refit_failure_rate=0.1)
        assert cfg.nan_cell_rate == pytest.approx(0.05)
        assert cfg.nan_row_rate == pytest.approx(cc.missing_row_rate)
        assert cfg.outlier_rate == pytest.approx(0.02)
        assert cfg.drop_rate == pytest.approx(0.01)
        assert cfg.refit_failure_rate == pytest.approx(0.1)
        assert cfg.seed == 7


class TestProcessFault:
    def test_validation(self):
        ProcessFault(tick=0, shard=0, kind="kill")  # minimal valid
        with pytest.raises(ValueError, match="tick"):
            ProcessFault(tick=-1)
        with pytest.raises(ValueError, match="shard"):
            ProcessFault(tick=0, shard=-1)
        with pytest.raises(ValueError, match="kind"):
            ProcessFault(tick=0, kind="explode")
        with pytest.raises(ValueError, match="duration"):
            ProcessFault(tick=0, kind="slow", duration=0.0)


class TestChaosSchedule:
    def test_sorted_and_sliced_per_shard(self):
        sched = ChaosSchedule([
            ProcessFault(tick=9, shard=1, kind="hang"),
            ProcessFault(tick=3, shard=0, kind="kill"),
            ProcessFault(tick=9, shard=0, kind="slow"),
        ])
        assert [(f.tick, f.shard) for f in sched.faults] == [(3, 0), (9, 0), (9, 1)]
        assert len(sched) == 3
        assert sched.max_shard() == 1
        shard0 = sched.for_shard(0)
        assert set(shard0) == {3, 9} and shard0[3].kind == "kill"
        assert sched.for_shard(1)[9].kind == "hang"
        assert sched.for_shard(2) == {}

    def test_duplicate_tick_shard_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ChaosSchedule([
                ProcessFault(tick=4, shard=0, kind="kill"),
                ProcessFault(tick=4, shard=0, kind="hang"),
            ])
        # same tick on different shards is fine
        ChaosSchedule([
            ProcessFault(tick=4, shard=0, kind="kill"),
            ProcessFault(tick=4, shard=1, kind="hang"),
        ])

    def test_kill_at_and_crash_loop(self):
        one = ChaosSchedule.kill_at(12, shard=1)
        assert len(one) == 1 and one.faults[0] == ProcessFault(12, 1, "kill")
        loop = ChaosSchedule.crash_loop(0, start=5, until=8)
        assert [f.tick for f in loop.faults] == [5, 6, 7]
        assert all(f.kind == "kill" and f.shard == 0 for f in loop.faults)
        assert loop.max_shard() == 0
        assert ChaosSchedule([]).max_shard() == -1
        with pytest.raises(ValueError, match="empty crash window"):
            ChaosSchedule.crash_loop(0, start=8, until=8)
