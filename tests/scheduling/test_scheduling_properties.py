"""Hypothesis property tests on the packing core."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduling import Job, RequestPackingScheduler


def jobs_from_requests(requests):
    return [
        Job(job_id=f"j{i}", request=r, usage=np.full(5, min(r, 1.0) * 0.5))
        for i, r in enumerate(requests)
    ]


request_lists = st.lists(
    st.floats(0.05, 1.0, allow_nan=False, width=64), min_size=1, max_size=40
)


class TestPackingProperties:
    @given(request_lists)
    @settings(max_examples=80, deadline=None)
    def test_every_job_assigned_exactly_once(self, requests):
        jobs = jobs_from_requests(requests)
        assignment = RequestPackingScheduler().place(jobs)
        assert set(assignment) == {j.job_id for j in jobs}

    @given(request_lists)
    @settings(max_examples=80, deadline=None)
    def test_no_machine_overcommitted_on_requests(self, requests):
        jobs = jobs_from_requests(requests)
        assignment = RequestPackingScheduler().place(jobs)
        per_machine: dict[int, float] = {}
        for job in jobs:
            per_machine[assignment[job.job_id]] = (
                per_machine.get(assignment[job.job_id], 0.0) + job.request
            )
        assert all(total <= 1.0 + 1e-9 for total in per_machine.values())

    @given(request_lists)
    @settings(max_examples=80, deadline=None)
    def test_machine_count_bounds(self, requests):
        """FFD uses at least ceil(sum) machines and at most n machines."""
        jobs = jobs_from_requests(requests)
        assignment = RequestPackingScheduler().place(jobs)
        n_machines = max(assignment.values()) + 1
        lower = int(np.ceil(sum(j.request for j in jobs) - 1e-9))
        assert max(1, lower) <= n_machines <= len(jobs)

    @given(request_lists)
    @settings(max_examples=40, deadline=None)
    def test_machines_numbered_densely(self, requests):
        jobs = jobs_from_requests(requests)
        used = set(RequestPackingScheduler().place(jobs).values())
        assert used == set(range(len(used)))

    @given(request_lists)
    @settings(max_examples=40, deadline=None)
    def test_ffd_no_worse_than_one_job_per_machine(self, requests):
        jobs = jobs_from_requests(requests)
        assignment = RequestPackingScheduler().place(jobs)
        assert max(assignment.values()) + 1 <= len(jobs)
