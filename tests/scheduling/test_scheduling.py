"""Job model, packing policies and schedule-replay tests."""

import numpy as np
import pytest

from repro.scheduling import (
    FirstFitScheduler,
    Job,
    JobGenerator,
    OraclePackingScheduler,
    PredictivePackingScheduler,
    RequestPackingScheduler,
    simulate_schedule,
)


def make_job(jid="j", request=0.5, usage=None, duration=20):
    usage = usage if usage is not None else np.full(duration, 0.2)
    return Job(job_id=jid, request=request, usage=usage)


class TestJob:
    def test_properties(self):
        j = make_job(usage=np.array([0.1, 0.3, 0.2]))
        assert j.duration == 3
        assert j.peak_usage == pytest.approx(0.3)
        assert j.mean_usage == pytest.approx(0.2)
        assert j.slack == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_job(request=0.0)
        with pytest.raises(ValueError):
            make_job(request=1.5)
        with pytest.raises(ValueError):
            Job("j", 0.5, np.array([]))
        with pytest.raises(ValueError):
            Job("j", 0.5, np.array([-0.1, 0.2]))


class TestJobGenerator:
    def test_generates_requested_count(self):
        jobs = JobGenerator(duration=100, seed=1).generate(25)
        assert len(jobs) == 25
        assert all(j.duration == 100 for j in jobs)

    def test_requests_inflate_peaks(self):
        jobs = JobGenerator(duration=200, seed=2,
                            request_inflation=(1.5, 1.5)).generate(30)
        for j in jobs:
            assert j.request >= min(1.0, j.peak_usage * 1.5) - 1e-9

    def test_slack_exists(self):
        """The Alibaba gap: mean usage well below request."""
        jobs = JobGenerator(duration=300, seed=3).generate(40)
        assert np.mean([j.slack for j in jobs]) > 0.02

    def test_deterministic(self):
        a = JobGenerator(duration=50, seed=4).generate(5)
        b = JobGenerator(duration=50, seed=4).generate(5)
        for ja, jb in zip(a, b):
            np.testing.assert_array_equal(ja.usage, jb.usage)
            assert ja.request == jb.request

    def test_validation(self):
        with pytest.raises(ValueError):
            JobGenerator(mix={"bogus": 1.0})
        with pytest.raises(ValueError):
            JobGenerator(mix={})


class TestPlacement:
    def test_first_fit_decreasing_packs_tightly(self):
        # footprints 0.6, 0.4, 0.4, 0.3, 0.3 pack into 2 unit machines
        jobs = [make_job(f"j{i}", request=r)
                for i, r in enumerate([0.4, 0.6, 0.3, 0.4, 0.3])]
        assignment = RequestPackingScheduler().place(jobs)
        assert max(assignment.values()) + 1 == 2

    def test_respects_capacity(self):
        jobs = [make_job(f"j{i}", request=0.6) for i in range(4)]
        assignment = RequestPackingScheduler().place(jobs)
        # 0.6 + 0.6 > 1: every job gets its own machine
        assert max(assignment.values()) + 1 == 4

    def test_custom_capacity(self):
        jobs = [make_job(f"j{i}", request=0.6) for i in range(4)]
        assignment = RequestPackingScheduler().place(jobs, capacity=2.0)
        assert max(assignment.values()) + 1 == 2

    def test_oversized_footprint_clamped(self):
        sched = FirstFitScheduler(lambda j: 5.0, name="huge")
        assignment = sched.place([make_job("a"), make_job("b")])
        assert len(assignment) == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RequestPackingScheduler().place([make_job()], capacity=0.0)


class TestFootprints:
    def test_request_scheduler_charges_request(self):
        assert RequestPackingScheduler().footprint(make_job(request=0.7)) == 0.7

    def test_oracle_charges_peak_plus_margin(self):
        j = make_job(usage=np.array([0.1, 0.4, 0.2]))
        assert OraclePackingScheduler(margin=0.1).footprint(j) == pytest.approx(0.5)

    def test_predictive_uses_probe_quantile(self):
        usage = np.concatenate([np.full(50, 0.2), np.full(50, 0.8)])
        j = Job("j", 1.0, usage)
        sched = PredictivePackingScheduler(probe_len=50, margin=0.0, quantile=0.95)
        # probe only sees the low phase
        assert sched.footprint(j) == pytest.approx(0.2, abs=0.01)

    def test_predictive_custom_fn(self):
        sched = PredictivePackingScheduler(predict_fn=lambda probe: 0.42, margin=0.0)
        assert sched.footprint(make_job()) == pytest.approx(0.42)

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictivePackingScheduler(probe_len=0)
        with pytest.raises(ValueError):
            PredictivePackingScheduler(margin=-0.1)
        with pytest.raises(ValueError):
            OraclePackingScheduler(margin=-1.0)


class TestSimulation:
    @pytest.fixture(scope="class")
    def jobs(self):
        return JobGenerator(duration=300, seed=7,
                            usage_scale=(0.1, 0.4)).generate(40)

    def test_request_packing_never_overloads(self, jobs):
        report = simulate_schedule(RequestPackingScheduler(), jobs)
        assert report.overload_rate == 0.0
        assert report.n_jobs == 40

    def test_consolidation_ordering(self, jobs):
        """oracle <= predictive <= request in machine count."""
        request = simulate_schedule(RequestPackingScheduler(), jobs)
        predictive = simulate_schedule(
            PredictivePackingScheduler(probe_len=60, margin=0.05), jobs
        )
        oracle = simulate_schedule(OraclePackingScheduler(margin=0.05), jobs)
        assert oracle.n_machines <= request.n_machines
        assert predictive.n_machines <= request.n_machines
        assert predictive.efficiency() >= request.efficiency()

    def test_predictive_utilization_higher(self, jobs):
        request = simulate_schedule(RequestPackingScheduler(), jobs)
        predictive = simulate_schedule(
            PredictivePackingScheduler(probe_len=60, margin=0.05), jobs
        )
        assert predictive.mean_utilization > request.mean_utilization

    def test_overload_bounded_with_margin(self, jobs):
        predictive = simulate_schedule(
            PredictivePackingScheduler(probe_len=60, margin=0.1), jobs
        )
        assert predictive.overload_rate < 0.2

    def test_replay_validation(self):
        with pytest.raises(ValueError):
            simulate_schedule(RequestPackingScheduler(), [])
        mixed = [make_job("a", duration=10), make_job("b", duration=20)]
        with pytest.raises(ValueError):
            simulate_schedule(RequestPackingScheduler(), mixed)
