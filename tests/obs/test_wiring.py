"""End-to-end wiring: trainer, serving, nn caches, and runner emit metrics."""

import numpy as np
import pytest

from repro.nn.layers import Linear, Sequential, Tanh
from repro.nn.losses import MSELoss
from repro.nn.optim import Adam
from repro.obs import trace
from repro.obs.registry import MetricRegistry
from repro.streaming import OnlinePredictor
from repro.training.trainer import Trainer


def _series(reg, name, **labels):
    want = tuple(sorted((k, str(v)) for k, v in labels.items()))
    for s in reg.collect():
        if s["name"] == name and (not want or s["labels"] == want):
            return s
    return None


def _stream(n=200, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return 0.5 + 0.3 * np.sin(2 * np.pi * t / 50) + rng.normal(0, 0.02, n)


class TestTrainerWiring:
    @pytest.fixture
    def fitted(self, rng):
        reg = MetricRegistry()
        model = Sequential(Linear(2, 4, rng=rng), Tanh(), Linear(4, 1, rng=rng))
        trainer = Trainer(
            model, Adam(model.parameters(), lr=0.05), MSELoss(),
            grad_clip_norm=5.0, rng=rng, registry=reg,
        )
        x = rng.random((64, 2))
        y = (x @ np.array([0.5, -0.3]))[:, None]
        trace.default_tracer().clear()
        trainer.fit(x, y, x, y, epochs=3, batch_size=16)
        return reg

    def test_counters_and_histograms(self, fitted):
        assert _series(fitted, "training_epochs_total")["value"] == 3.0
        # 64 samples / batch 16 = 4 batches per epoch
        assert _series(fitted, "training_batches_total")["value"] == 12.0
        assert _series(fitted, "training_batch_seconds")["count"] == 12
        assert _series(fitted, "training_epoch_seconds")["count"] == 3

    def test_gauges(self, fitted):
        for name in ("training_loss", "training_val_loss", "training_grad_norm"):
            s = _series(fitted, name)
            assert s is not None and np.isfinite(s["value"])
        assert _series(fitted, "training_throughput_samples_per_sec")["value"] > 0

    def test_span_tree(self, fitted):
        root = trace.default_tracer().last
        assert root.name == "train.fit"
        assert root.counters["epochs"] == 3
        epochs = root.find("train.epoch")
        assert len(epochs) == 3
        assert all(sp.counters["batches"] == 4 for sp in epochs)
        # batch spans are off by default
        assert root.find("train.batch") == []

    def test_batch_spans_opt_in(self, rng):
        reg = MetricRegistry()
        model = Sequential(Linear(2, 4, rng=rng), Linear(4, 1, rng=rng))
        trainer = Trainer(
            model, Adam(model.parameters(), lr=0.05), MSELoss(),
            rng=rng, registry=reg, batch_spans=True,
        )
        x = rng.random((32, 2))
        y = x[:, :1]
        trace.default_tracer().clear()
        trainer.fit(x, y, epochs=1, batch_size=16)
        assert len(trace.default_tracer().last.find("train.batch")) == 2


class TestServingWiring:
    def test_latency_histogram_and_health(self):
        reg = MetricRegistry()
        pred = OnlinePredictor(
            "holt", window=8, buffer_capacity=150, refit_interval=50,
            min_fit_size=30, registry=reg,
        )
        n = 200
        pred.run(_stream(n))
        lat = _series(reg, "serving_process_seconds")
        assert lat["count"] == n
        assert _series(reg, "serving_health_state")["value"] == 0.0
        assert _series(reg, "serving_predictions_total")["value"] == float(
            pred.stats.n_predictions
        )
        assert _series(reg, "serving_refits_total")["value"] == float(pred.stats.n_refits)

    def test_gate_and_supervisor_counters_registered(self):
        reg = MetricRegistry()
        pred = OnlinePredictor(
            "holt", window=8, buffer_capacity=150, refit_interval=50,
            min_fit_size=30, registry=reg,
        )
        stream = _stream(120)
        stream[40] = np.nan
        pred.run(stream)
        assert _series(reg, "serving_gate_seen_total")["value"] == 120.0
        assert _series(reg, "serving_gate_records_total", action="quarantine")["value"] == 1.0
        assert _series(reg, "serving_gate_reasons_total", reason="empty")["value"] == 1.0
        retries = _series(reg, "serving_supervisor_calls_total", duty="refit")
        assert retries is not None and retries["value"] >= 1.0
        # registry counters agree with the legacy attribute views
        assert pred.gate.n_quarantined == 1

    def test_serving_spans(self):
        pred = OnlinePredictor(
            "holt", window=8, buffer_capacity=100, refit_interval=40,
            min_fit_size=20, registry=MetricRegistry(), span_sample=1,
        )
        trace.default_tracer().clear()
        pred.run(_stream(60))
        root = trace.default_tracer().last
        assert root.name == "serving.run"
        assert root.counters["records"] == 60
        assert len(root.find("serving.process")) == 60

    def test_serving_spans_sampled_by_default(self):
        pred = OnlinePredictor(
            "holt", window=8, buffer_capacity=100, refit_interval=40,
            min_fit_size=20, registry=MetricRegistry(),
        )
        trace.default_tracer().clear()
        pred.run(_stream(64))
        root = trace.default_tracer().last
        # 1-in-8 span sampling, but the histogram saw every record
        assert len(root.find("serving.process")) == 8
        with pytest.raises(ValueError, match="span_sample"):
            OnlinePredictor("holt", window=8, buffer_capacity=100, span_sample=0)


class TestPlanCacheWiring:
    def test_plan_metrics_collected(self):
        from repro.nn._plans import plan_cache_stats, register_plan_metrics

        reg = MetricRegistry()
        register_plan_metrics(reg)
        names = {s["name"] for s in reg.collect()}
        assert "nn_plan_cache_hits_total" in names
        assert "nn_plan_cache_misses_total" in names
        assert "nn_plan_cache_size" in names
        stats = plan_cache_stats()
        assert set(stats) == {"gather_indices", "gather_indices_flat", "einsum_path"}
        hits = _series(reg, "nn_plan_cache_hits_total", cache="gather_indices")
        assert hits["value"] == float(stats["gather_indices"]["hits"])


class TestRunnerMetricsOut:
    def test_metrics_out_writes_prometheus_snapshot(self, tmp_path, monkeypatch):
        from repro.experiments import runner
        from repro.obs.registry import default_registry

        def fake(profile, ctx):
            default_registry().counter("runner_marker_total").inc()

        monkeypatch.setattr(runner, "_RUNNERS", {"fig1": fake})
        out = tmp_path / "m.prom"
        assert runner.main(["-e", "fig1", "-p", "quick", "--no-cache",
                            "--metrics-out", str(out)]) == 0
        text = out.read_text()
        assert "runner_marker_total" in text
        assert "# TYPE runner_marker_total counter" in text
