"""Exporter formats: Prometheus text validity, JSONL, summary, atomic writes."""

import json
import re

import pytest

from repro.obs.export import jsonl_text, prometheus_text, summary, write_snapshot
from repro.obs.registry import MetricRegistry

#: Prometheus text exposition: comment or `name{labels} value`
_PROM_LINE = re.compile(
    r"^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+"
    r"|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (\+Inf|-Inf|NaN|[-+0-9.e]+))$"
)


@pytest.fixture
def reg():
    reg = MetricRegistry()
    reg.counter("requests_total", "served requests", {"code": "200"}).inc(5)
    reg.counter("requests_total", "served requests", {"code": "500"}).inc(1)
    reg.gauge("health_state", "serving health").set(1.0)
    h = reg.histogram("latency_seconds", "request latency", buckets=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.5, 5.0):
        h.observe(v)
    return reg


class TestPrometheus:
    def test_every_line_is_valid_exposition_format(self, reg):
        text = prometheus_text(reg)
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            assert _PROM_LINE.match(line), f"invalid exposition line: {line!r}"

    def test_counter_series_with_labels(self, reg):
        text = prometheus_text(reg)
        assert '# TYPE requests_total counter' in text
        assert 'requests_total{code="200"} 5.0' in text
        assert 'requests_total{code="500"} 1.0' in text

    def test_histogram_cumulative_buckets(self, reg):
        text = prometheus_text(reg)
        assert 'latency_seconds_bucket{le="0.01"} 1' in text
        assert 'latency_seconds_bucket{le="0.1"} 2' in text
        assert 'latency_seconds_bucket{le="1"} 3' in text
        assert 'latency_seconds_bucket{le="+Inf"} 4' in text
        assert "latency_seconds_count 4" in text
        assert "latency_seconds_sum 5.555" in text

    def test_names_and_label_values_sanitized(self):
        reg = MetricRegistry()
        reg.counter("bad name-with.chars", labels={"path": 'a"b\nc\\d'}).inc()
        text = prometheus_text(reg)
        for line in text.strip().splitlines():
            assert _PROM_LINE.match(line), f"invalid exposition line: {line!r}"
        assert "bad_name_with_chars" in text


class TestJsonl:
    def test_one_parseable_object_per_line(self, reg):
        lines = jsonl_text(reg).strip().splitlines()
        objs = [json.loads(line) for line in lines]
        assert objs[0] == {"schema": "repro-obs/v1"}
        names = {o["name"] for o in objs[1:]}
        assert names == {"requests_total", "health_state", "latency_seconds"}

    def test_histogram_entry_has_quantiles(self, reg):
        objs = [json.loads(line) for line in jsonl_text(reg).strip().splitlines()]
        hist = next(o for o in objs if o.get("kind") == "histogram")
        assert hist["count"] == 4
        assert set(hist["quantiles"]) == {"p50", "p90", "p99"}


class TestSummary:
    def test_contains_every_metric(self, reg):
        text = summary(reg)
        for name in ("requests_total", "health_state", "latency_seconds"):
            assert name in text
        assert "p50=" in text and "p99=" in text

    def test_empty_registry(self):
        assert "no metrics" in summary(MetricRegistry())


class TestWriteSnapshot:
    def test_format_follows_extension(self, reg, tmp_path):
        prom = write_snapshot(tmp_path / "m.prom", reg)
        jsonl = write_snapshot(tmp_path / "m.jsonl", reg)
        assert "# TYPE" in prom.read_text()
        assert json.loads(jsonl.read_text().splitlines()[0])["schema"] == "repro-obs/v1"

    def test_fmt_override(self, reg, tmp_path):
        path = write_snapshot(tmp_path / "m.data", reg, fmt="jsonl")
        assert path.read_text().startswith("{")
        with pytest.raises(ValueError, match="unknown snapshot format"):
            write_snapshot(tmp_path / "m.x", reg, fmt="xml")

    def test_write_is_atomic(self, reg, tmp_path, monkeypatch):
        """A crash mid-write must leave the previous snapshot intact."""
        target = tmp_path / "m.prom"
        target.write_text("previous good snapshot\n")
        import repro.obs.export as export_mod

        monkeypatch.setattr(
            export_mod, "prometheus_text", lambda *a, **k: (_ for _ in ()).throw(OSError("disk"))
        )
        with pytest.raises(OSError):
            write_snapshot(target, reg)
        assert target.read_text() == "previous good snapshot\n"
        # no stray temp files left next to the target
        assert [p.name for p in tmp_path.iterdir()] == ["m.prom"]
