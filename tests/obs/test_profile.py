"""Profiling hooks: call counting, latency sampling, error tracking."""

import pytest

from repro.obs import registry as reg_mod
from repro.obs.profile import profile_block, profiled
from repro.obs.registry import use_registry


def _series(reg, name, function):
    for s in reg.collect():
        if s["name"] == name and ("function", function) in s["labels"]:
            return s
    return None


class TestProfiled:
    def test_counts_calls_and_records_latency(self):
        with use_registry() as reg:

            @profiled(name="work")
            def work(x):
                return x * 2

            for i in range(5):
                assert work(i) == 2 * i
            calls = _series(reg, "profiled_calls_total", "work")
            lat = _series(reg, "profiled_seconds", "work")
            assert calls["value"] == 5.0
            assert lat["count"] == 5
            assert lat["sum"] >= 0.0

    def test_default_name_is_qualname(self):
        with use_registry() as reg:

            @profiled
            def bare():
                pass

            bare()
            calls = next(s for s in reg.collect() if s["name"] == "profiled_calls_total")
            assert ("function", "TestProfiled.test_default_name_is_qualname.<locals>.bare") in (
                calls["labels"]
            )

    def test_sampling_times_every_kth_call(self):
        with use_registry() as reg:

            @profiled(name="hot", sample=3)
            def hot():
                pass

            for _ in range(9):
                hot()
            assert _series(reg, "profiled_calls_total", "hot")["value"] == 9.0
            assert _series(reg, "profiled_seconds", "hot")["count"] == 3

    def test_sample_validated(self):
        with pytest.raises(ValueError, match="sample"):
            profiled(name="x", sample=0)

    def test_errors_counted_and_reraised(self):
        with use_registry() as reg:

            @profiled(name="flaky")
            def flaky():
                raise KeyError("nope")

            with pytest.raises(KeyError):
                flaky()
            assert _series(reg, "profiled_errors_total", "flaky")["value"] == 1.0
            assert _series(reg, "profiled_seconds", "flaky")["count"] == 1

    def test_disabled_short_circuits(self):
        with use_registry() as reg:

            @profiled(name="quiet")
            def quiet():
                return "ok"

            reg_mod.set_enabled(False)
            try:
                assert quiet() == "ok"
            finally:
                reg_mod.set_enabled(True)
            assert reg.collect() == []

    def test_explicit_registry_pinned(self):
        from repro.obs.registry import MetricRegistry

        pinned = MetricRegistry()

        @profiled(name="pinned", registry=pinned)
        def fn():
            pass

        with use_registry() as ambient:
            fn()
            assert ambient.collect() == []
        assert _series(pinned, "profiled_calls_total", "pinned")["value"] == 1.0


class TestProfileBlock:
    def test_block_timed(self):
        with use_registry() as reg:
            with profile_block("chunk"):
                pass
            assert _series(reg, "profiled_calls_total", "chunk")["value"] == 1.0
            assert _series(reg, "profiled_seconds", "chunk")["count"] == 1

    def test_block_error_counted(self):
        with use_registry() as reg:
            with pytest.raises(RuntimeError):
                with profile_block("chunk"):
                    raise RuntimeError("x")
            assert _series(reg, "profiled_errors_total", "chunk")["value"] == 1.0
