"""Metric instrument and registry semantics: counters, gauges, histogram math."""

import math
import threading

import pytest

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullRegistry,
    log_buckets,
    use_registry,
)


class TestCounter:
    def test_monotonic(self):
        c = Counter("events_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_rejected(self):
        c = Counter("events_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_restore(self):
        c = Counter("events_total")
        c.restore(42)
        assert c.value == 42
        with pytest.raises(ValueError):
            c.restore(-1)

    def test_labels_frozen_and_sorted(self):
        c = Counter("events_total", labels={"b": 2, "a": "x"})
        assert c.labels == (("a", "x"), ("b", "2"))


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("level")
        g.set(5.0)
        g.inc(2.0)
        g.dec()
        assert g.value == 6.0

    def test_callback_wins(self):
        g = Gauge("level", callback=lambda: 17.0)
        g.set(1.0)
        assert g.value == 17.0


class TestHistogramBuckets:
    def test_log_buckets_span_and_order(self):
        bounds = log_buckets(1e-6, 100.0, per_decade=3)
        assert bounds[0] == pytest.approx(1e-6)
        assert bounds[-1] == 100.0
        assert all(a < b for a, b in zip(bounds, bounds[1:]))
        assert len(bounds) == 25

    def test_log_buckets_validation(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1e-3, 1.0, per_decade=0)

    def test_observations_land_in_correct_buckets(self):
        h = Histogram("lat", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 1.0, 5.0, 50.0, 500.0):
            h.observe(v)
        # cumulative counts: <=1 -> 2 (0.5 and the boundary 1.0), <=10 -> 3, <=100 -> 4, inf -> 5
        assert h.bucket_counts() == [(1.0, 2), (10.0, 3), (100.0, 4), (math.inf, 5)]
        assert h.count == 5
        assert h.sum == pytest.approx(556.5)

    def test_empty_histogram(self):
        h = Histogram("lat")
        assert h.count == 0
        assert math.isnan(h.quantile(0.5))
        assert math.isnan(h.mean)
        assert math.isnan(h.minimum) and math.isnan(h.maximum)

    def test_single_sample_quantiles_exact(self):
        h = Histogram("lat")
        h.observe(0.0123)
        # clamping into [min, max] makes every quantile the sample itself
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(0.0123)

    def test_nan_and_inf_rejected_without_side_effects(self):
        h = Histogram("lat")
        h.observe(1.0)
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(ValueError, match="non-finite"):
                h.observe(bad)
        assert h.count == 1
        assert h.sum == 1.0

    def test_quantile_range_validated(self):
        h = Histogram("lat")
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_quantiles_monotone_and_bounded(self):
        h = Histogram("lat")
        values = [10 ** (i / 50 - 4) for i in range(300)]
        for v in values:
            h.observe(v)
        qs = [h.quantile(q / 10) for q in range(11)]
        assert all(a <= b + 1e-12 for a, b in zip(qs, qs[1:]))
        assert min(values) <= qs[0] and qs[-1] <= max(values)
        # the p50 estimate should be within one bucket of the true median
        true_median = sorted(values)[len(values) // 2]
        assert h.quantile(0.5) == pytest.approx(true_median, rel=1.5)

    def test_overflow_bucket_and_max(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        h.observe(1000.0)
        assert h.quantile(0.99) == 1000.0
        assert h.bucket_counts()[-1] == (math.inf, 1)

    def test_restore_roundtrip(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        clone = Histogram("lat", buckets=(1.0, 10.0))
        clone.restore([1, 1, 1], h.sum, h.minimum, h.maximum)
        assert clone.count == 3
        assert clone.quantile(0.5) == h.quantile(0.5)
        with pytest.raises(ValueError, match="buckets"):
            clone.restore([1, 2], 0.0, 0.0, 0.0)

    def test_bad_bucket_bounds_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("lat", buckets=(1.0, 1.0, 2.0))


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricRegistry()
        a = reg.counter("hits_total", labels={"k": "v"})
        b = reg.counter("hits_total", labels={"k": "v"})
        c = reg.counter("hits_total", labels={"k": "other"})
        assert a is b and a is not c

    def test_kind_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("thing")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("thing")

    def test_registered_instruments_merge_by_key(self):
        reg = MetricRegistry()
        a = Counter("gate_total", labels={"action": "drop"})
        b = Counter("gate_total", labels={"action": "drop"})
        reg.register(a)
        reg.register(b)
        a.inc(3)
        b.inc(4)
        (series,) = reg.collect()
        assert series["value"] == 7.0

    def test_registered_counts_survive_owner_death(self):
        reg = MetricRegistry()

        def scoped():
            c = Counter("gone_total")
            reg.register(c)
            c.inc(9)

        scoped()
        (series,) = reg.collect()
        assert series["value"] == 9.0

    def test_histogram_merge_recomputes_quantiles(self):
        reg = MetricRegistry()
        a = Histogram("lat", buckets=(1.0, 10.0))
        b = Histogram("lat", buckets=(1.0, 10.0))
        reg.register(a)
        reg.register(b)
        a.observe(0.5)
        b.observe(5.0)
        b.observe(7.0)
        (series,) = reg.collect()
        assert series["count"] == 3
        assert series["min"] == 0.5 and series["max"] == 7.0
        assert 0.5 <= series["quantiles"]["p50"] <= 10.0

    def test_collector_runs_before_collect(self):
        reg = MetricRegistry()
        reg.add_collector(lambda: reg.gauge("lazy").set(99.0), name="lazy")
        snap = reg.snapshot()
        assert snap["series"][0]["name"] == "lazy"
        assert snap["series"][0]["value"] == 99.0

    def test_snapshot_is_plain_data(self):
        import json

        reg = MetricRegistry()
        reg.counter("a_total").inc()
        reg.histogram("h").observe(0.5)
        snap = reg.snapshot()
        assert snap["schema"] == "repro-obs/v1"
        json.dumps(snap)  # JSON-serializable end to end

    def test_clear(self):
        reg = MetricRegistry()
        reg.counter("x").inc()
        reg.clear()
        assert reg.collect() == []

    def test_thread_safety_smoke(self):
        reg = MetricRegistry()
        c = reg.counter("contended_total")

        def work():
            for _ in range(10_000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 40_000

    def test_null_registry_records_nothing(self):
        reg = NullRegistry()
        reg.counter("x").inc()
        reg.register(Counter("y"))
        reg.add_collector(lambda: None)
        assert reg.collect() == []

    def test_use_registry_swaps_default(self):
        from repro.obs.registry import default_registry

        before = default_registry()
        with use_registry() as reg:
            assert default_registry() is reg
            assert reg is not before
        assert default_registry() is before
