"""Span nesting, own-time accounting, exception safety, clock injection."""

import threading

import pytest

from repro.obs.trace import Span, Tracer, use_clock


class FakeClock:
    """Deterministic clock: every read advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0):
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        self.t += self.step
        return self.t


class TestSpanTree:
    def test_nesting_builds_tree(self):
        tracer = Tracer()
        with use_clock(FakeClock()):
            with tracer.span("root") as root:
                with tracer.span("a"):
                    pass
                with tracer.span("b") as b:
                    b.add("records", 3)
        assert [c.name for c in root.children] == ["a", "b"]
        assert root.children[1].counters == {"records": 3}
        assert tracer.last is root

    def test_durations_and_own_time(self):
        tracer = Tracer()
        with use_clock(FakeClock(step=1.0)):
            # reads: root start(1), child start(2), child end(3), root end(4)
            with tracer.span("root") as root:
                with tracer.span("child") as child:
                    pass
        assert child.duration == pytest.approx(1.0)
        assert root.duration == pytest.approx(3.0)
        assert root.own_time == pytest.approx(2.0)

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        root = tracer.last
        assert root.name == "outer"
        assert root.status == "error"
        assert "RuntimeError: boom" in root.error
        inner = root.children[0]
        assert inner.status == "error"
        # both spans were closed: end times are set and the stack is empty
        assert inner.t_end >= inner.t_start
        assert tracer.current() is None

    def test_span_closed_even_on_exception_midway(self):
        tracer = Tracer()
        try:
            with tracer.span("a"):
                raise ValueError("x")
        except ValueError:
            pass
        # a new root span works fine afterwards (no orphaned stack entries)
        with tracer.span("b"):
            assert tracer.current().name == "b"
        assert [s.name for s in tracer.finished] == ["a", "b"]

    def test_walk_and_find(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("epoch"):
                with tracer.span("batch"):
                    pass
            with tracer.span("epoch"):
                pass
        root = tracer.last
        assert [s.name for s in root.walk()] == ["root", "epoch", "batch", "epoch"]
        assert len(root.find("epoch")) == 2

    def test_render_contains_names_and_counters(self):
        tracer = Tracer()
        with use_clock(FakeClock()):
            with tracer.span("fit") as sp:
                sp.add("epochs", 2)
        text = tracer.last.render()
        assert "fit:" in text and "epochs=2" in text

    def test_to_dict_roundtrips_structure(self):
        tracer = Tracer()
        with tracer.span("r"):
            with tracer.span("c"):
                pass
        d = tracer.last.to_dict()
        assert d["name"] == "r" and d["children"][0]["name"] == "c"
        assert d["status"] == "ok"


class TestTracerBehaviour:
    def test_finished_ring_is_bounded(self):
        tracer = Tracer(max_finished=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.finished) == 4
        assert tracer.finished[0].name == "s6"

    def test_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x") as sp:
            sp.add("k")  # must not accumulate anywhere
        assert len(tracer.finished) == 0
        assert sp.counters == {}

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        seen = {}

        def worker(name):
            with tracer.span(name):
                seen[name] = tracer.current().name

        with tracer.span("main"):
            t = threading.Thread(target=worker, args=("worker",))
            t.start()
            t.join()
            assert tracer.current().name == "main"
        assert seen["worker"] == "worker"
        # worker's span is its own root, not a child of "main"
        names = sorted(s.name for s in tracer.finished)
        assert names == ["main", "worker"]

    def test_default_clock_is_monotonic_time(self):
        sp = Span("x")
        tracer = Tracer()
        with tracer.span("t") as sp:
            pass
        assert sp.duration >= 0.0
