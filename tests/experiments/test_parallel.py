"""Parallel executor: determinism, failure isolation, obs merging.

The contract under test is the one the runner relies on: ``jobs`` is an
implementation detail — same results, same error reporting, same merged
observability — and a crashed task never takes down its siblings.
"""

import numpy as np
import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.parallel import (
    TaskSpec,
    derive_seed,
    revive_span,
    run_tasks,
    shutdown_pools,
    warm_pool,
)
from repro.obs import registry as obs_registry
from repro.obs import trace as obs_trace
from repro.obs.registry import MetricRegistry

TOYS = "tests.experiments._paralleltasks"


def toy_specs(n=4, fn="square"):
    return [
        TaskSpec(
            experiment="toy",
            key=(i,),
            fn=f"{TOYS}.{fn}",
            params={"x": i},
        )
        for i in range(n)
    ]


class TestDeriveSeed:
    def test_deterministic_across_calls(self):
        assert derive_seed(2021, "table2", "uni") == derive_seed(2021, "table2", "uni")

    def test_sensitive_to_every_part(self):
        base = derive_seed(2021, "table2", "uni", "lstm")
        assert base != derive_seed(2022, "table2", "uni", "lstm")
        assert base != derive_seed(2021, "robustness", "uni", "lstm")
        assert base != derive_seed(2021, "table2", "uni", "rptcn")

    def test_fits_numpy_seed_space(self):
        for i in range(50):
            s = derive_seed(0, "k", i)
            assert 0 <= s < 2**32
        # usable directly
        np.random.default_rng(derive_seed(7, "x"))

    def test_reasonably_spread(self):
        seeds = {derive_seed(0, i) for i in range(200)}
        assert len(seeds) == 200


class TestRunTasks:
    def test_inline_matches_pool(self):
        serial = run_tasks(toy_specs(), jobs=1, registry=MetricRegistry())
        pooled = run_tasks(toy_specs(), jobs=2, registry=MetricRegistry())
        assert [t.value for t in serial] == [t.value for t in pooled]
        assert [t.spec.name for t in serial] == [t.spec.name for t in pooled]
        assert all(t.ok for t in serial)

    def test_results_in_task_order(self):
        results = run_tasks(toy_specs(8), jobs=3, registry=MetricRegistry())
        assert [t.value["x"] for t in results] == list(range(8))

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            run_tasks(toy_specs(), jobs=0)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_failure_is_isolated(self, jobs):
        specs = toy_specs(4)
        specs[1] = TaskSpec(experiment="toy", key=(1,), fn=f"{TOYS}.boom",
                            params={"x": 1})
        results = run_tasks(specs, jobs=jobs, registry=MetricRegistry())
        assert [t.ok for t in results] == [True, False, True, True]
        assert "exploded" in results[1].error
        assert "ValueError" in results[1].error
        assert results[1].traceback and "boom" in results[1].traceback
        assert results[1].value is None

    def test_outcome_counters(self):
        reg = MetricRegistry()
        specs = toy_specs(3)
        specs[0] = TaskSpec(experiment="toy", key=(0,), fn=f"{TOYS}.boom",
                            params={"x": 0})
        run_tasks(specs, jobs=1, registry=reg)
        by_status = {
            s["labels"]["status"]: s["value"]
            for s in reg.snapshot()["series"]
            if s["name"] == "experiment_tasks_total"
        }
        assert by_status == {"ok": 2.0, "error": 1.0}


class TestPersistentPool:
    """The pool survives across run_tasks calls and recovers when broken."""

    def test_workers_reused_across_calls(self):
        shutdown_pools()
        first = run_tasks(toy_specs(6, fn="worker_pid"), jobs=2, registry=MetricRegistry())
        second = run_tasks(toy_specs(6, fn="worker_pid"), jobs=2, registry=MetricRegistry())
        pids_first = {t.value for t in first}
        pids_second = {t.value for t in second}
        # no new workers spawn for the second sweep: same process pool
        assert pids_second <= pids_first
        shutdown_pools()
        third = run_tasks(toy_specs(6, fn="worker_pid"), jobs=2, registry=MetricRegistry())
        assert {t.value for t in third}.isdisjoint(pids_first)

    def test_warm_pool_prespawns_workers(self):
        shutdown_pools()
        pids = warm_pool(2)
        assert pids, "warm_pool spawned no workers"
        results = run_tasks(toy_specs(4, fn="worker_pid"), jobs=2, registry=MetricRegistry())
        assert {t.value for t in results} <= set(pids)

    def test_warm_pool_noop_inline(self):
        assert warm_pool(1) == []

    def test_multi_item_chunks_keep_order_and_isolation(self):
        specs = toy_specs(20)
        specs[7] = TaskSpec(experiment="toy", key=(7,), fn=f"{TOYS}.boom", params={"x": 7})
        results = run_tasks(specs, jobs=2, registry=MetricRegistry())
        assert [t.ok for t in results] == [i != 7 for i in range(20)]
        assert [t.value["x"] for t in results if t.ok] == [i for i in range(20) if i != 7]

    def test_broken_pool_fails_inflight_and_recovers(self):
        shutdown_pools()
        killed = run_tasks(toy_specs(3, fn="die"), jobs=2, registry=MetricRegistry())
        assert all(not t.ok for t in killed)
        assert any("BrokenProcessPool" in (t.error or "") for t in killed)
        # the dead pool was disposed: the next sweep runs on a fresh one
        healthy = run_tasks(toy_specs(3), jobs=2, registry=MetricRegistry())
        assert [t.value["value"] for t in healthy] == [0, 1, 4]


class TestObsMerging:
    def test_worker_metrics_adopted_by_parent(self):
        reg = MetricRegistry()
        old = obs_registry.get_registry()
        obs_registry.set_default_registry(reg)
        try:
            run_tasks(toy_specs(3, fn="instrumented"), jobs=2, registry=reg)
        finally:
            obs_registry.set_default_registry(old)
        series = {
            (s["name"], s["labels"].get("kind")): s["value"]
            for s in reg.snapshot()["series"]
        }
        assert series[("paralleltest_work_total", "unit")] == 3.0

    def test_worker_spans_revived_on_parent_tracer(self):
        tracer = obs_trace.default_tracer()
        tracer.clear()
        run_tasks(toy_specs(2, fn="instrumented"), jobs=2, registry=MetricRegistry())
        names = [s.name for s in tracer.finished]
        assert names.count("task:toy/0") == 1
        assert names.count("task:toy/1") == 1

    def test_revive_span_preserves_tree(self):
        data = {
            "name": "task:x",
            "duration": 1.5,
            "status": "error",
            "error": "ValueError: nope",
            "counters": {"cells": 3},
            "children": [{"name": "inner", "duration": 0.5}],
        }
        span = revive_span(data)
        assert span.name == "task:x"
        assert span.duration == pytest.approx(1.5)
        assert span.status == "error"
        assert [c.name for c in span.children] == ["inner"]
        assert span.counters["cells"] == 3


class TestCacheIntegration:
    def test_hits_skip_execution_entirely(self, tmp_path):
        """Second run must not re-execute: marker files prove it."""
        reg = MetricRegistry()
        cache = ResultCache(tmp_path / "cache", registry=reg)
        markers = tmp_path / "markers"
        markers.mkdir()
        specs = [
            TaskSpec(experiment="toy", key=(i,), fn=f"{TOYS}.touch_and_square",
                     params={"marker_dir": str(markers), "x": i})
            for i in range(3)
        ]
        first = run_tasks(specs, jobs=1, cache=cache, registry=reg)
        assert len(list(markers.glob("*.marker"))) == 3
        for m in markers.glob("*.marker"):
            m.unlink()

        second = run_tasks(specs, jobs=1, cache=cache, registry=reg)
        assert list(markers.glob("*.marker")) == []  # nothing re-ran
        assert [t.value for t in first] == [t.value for t in second]
        assert all(t.cached for t in second)
        assert cache.hits == 3 and cache.stores == 3
        by_status = {
            s["labels"]["status"]: s["value"]
            for s in reg.snapshot()["series"]
            if s["name"] == "experiment_tasks_total"
        }
        assert by_status["cached"] == 3.0

    def test_failed_tasks_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path, registry=MetricRegistry())
        specs = [TaskSpec(experiment="toy", key=(0,), fn=f"{TOYS}.boom",
                          params={"x": 0})]
        run_tasks(specs, jobs=1, cache=cache, registry=MetricRegistry())
        assert len(cache) == 0
        # and the rerun re-executes (fails again) rather than hitting
        results = run_tasks(specs, jobs=1, cache=cache, registry=MetricRegistry())
        assert not results[0].ok and not results[0].cached

    def test_uncacheable_specs_bypass_cache(self, tmp_path):
        cache = ResultCache(tmp_path, registry=MetricRegistry())
        specs = toy_specs(2)
        for s in specs:
            s.cacheable = False
        run_tasks(specs, jobs=1, cache=cache, registry=MetricRegistry())
        assert len(cache) == 0 and cache.misses == 0


class TestTable2Parallelism:
    """End-to-end guarantees on the real Table II grid."""

    def test_jobs_1_equals_jobs_4_on_quick_profile(self):
        """--jobs must be invisible in the numbers: bit-identical metrics.

        Uses the quick profile restricted to the Mul-Exp scenario (8
        cells) to keep the double sweep affordable; every cell goes
        through the same task machinery as the full grid.
        """
        from repro.experiments.accuracy import run_table2

        serial = run_table2("quick", scenarios=("mul_exp",), jobs=1)
        pooled = run_table2("quick", scenarios=("mul_exp",), jobs=4)
        assert serial.errors == {} and pooled.errors == {}
        assert serial.metrics == pooled.metrics  # exact float equality
        assert serial.entity_ids == pooled.entity_ids

    def test_warm_cache_skips_every_cell(self, tmp_path):
        """A rerun with an unchanged world must hit for all cells."""
        from repro.experiments.accuracy import run_table2
        from repro.experiments.config import ExperimentProfile

        tiny = ExperimentProfile(name="tiny", n_steps=450, n_machines=2,
                                 containers_per_machine=1, n_entities=1,
                                 epochs=3, gbt_estimators=15)
        cache = ResultCache(tmp_path, registry=MetricRegistry())
        cold = run_table2(tiny, scenarios=("uni",), cache=cache)
        n_cells = len(cold.metrics)
        assert cache.stores == n_cells and cache.hits == 0

        warm = run_table2(tiny, scenarios=("uni",), cache=cache)
        assert cache.hits == n_cells  # every cell served from cache
        assert warm.metrics == cold.metrics
        assert warm.entity_ids == cold.entity_ids
