"""Long-term horizon sweep harness tests."""

import pytest

from repro.experiments.horizon import run_horizon_sweep
from .test_harnesses import TINY


class TestHorizonSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return run_horizon_sweep(TINY, horizons=(1, 3), models=("persistence", "rptcn"))

    def test_all_cells_populated(self, result):
        assert result.horizons == (1, 3)
        for model in ("persistence", "rptcn"):
            for h in (1, 3):
                assert result.metrics[model][h]["mse"] > 0

    def test_error_grows_with_horizon_for_persistence(self, result):
        """Persistence degrades provably as the gap to the target widens."""
        per_h = result.metrics["persistence"]
        assert per_h[3]["mae"] >= per_h[1]["mae"]
        assert result.degradation("persistence") >= 1.0

    def test_best_at_returns_known_model(self, result):
        assert result.best_at(1) in ("persistence", "rptcn")
