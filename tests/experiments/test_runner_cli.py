"""Runner CLI wiring tests (cheap paths only)."""

import pytest

from repro.experiments import runner


def _fake_runners(called):
    """Replacement _RUNNERS recording invocations under the (profile, ctx) ABI."""
    return {
        name: (lambda n: lambda p, ctx: called.append(n))(name)
        for name in runner.EXPERIMENTS + runner.EXTENSIONS
    }


class TestWiring:
    def test_every_experiment_has_a_runner(self):
        for name in runner.EXPERIMENTS + runner.EXTENSIONS:
            assert name in runner._RUNNERS

    def test_profiles_advertised(self):
        from repro.experiments.config import PROFILES

        assert {"quick", "default", "paper"} <= set(PROFILES)

    def test_extensions_choice_accepted(self, monkeypatch):
        """--experiment extensions resolves to the extension harnesses."""
        called = []
        monkeypatch.setattr(runner, "_RUNNERS", _fake_runners(called))
        assert runner.main(["-e", "extensions", "-p", "quick", "--no-cache"]) == 0
        assert called == list(runner.EXTENSIONS)

    def test_all_choice_runs_paper_artifacts_only(self, monkeypatch):
        called = []
        monkeypatch.setattr(runner, "_RUNNERS", _fake_runners(called))
        assert runner.main(["-e", "all", "-p", "quick", "--no-cache"]) == 0
        assert called == list(runner.EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            runner.main(["-e", "nope"])

    def test_bad_jobs_rejected(self):
        with pytest.raises(SystemExit):
            runner.main(["-e", "fig1", "--jobs", "0"])


class TestFailurePropagation:
    def test_failing_experiment_gives_nonzero_exit(self, monkeypatch, capsys):
        """A crashed experiment must turn into exit code 1, not silence."""
        fake = _fake_runners([])
        fake["fig2"] = lambda p, ctx: (_ for _ in ()).throw(RuntimeError("boom"))
        monkeypatch.setattr(runner, "_RUNNERS", fake)
        assert runner.main(["-e", "fig2", "--no-cache"]) == 1
        out = capsys.readouterr()
        assert "FAILED fig2" in out.out
        assert "boom" in out.out

    def test_failure_is_isolated_from_siblings(self, monkeypatch):
        """One crashed experiment must not stop the remaining ones."""
        called = []
        fake = _fake_runners(called)

        def explode(p, ctx):
            called.append("fig2")
            raise RuntimeError("boom")

        fake["fig2"] = explode
        monkeypatch.setattr(runner, "_RUNNERS", fake)
        assert runner.main(["-e", "all", "--no-cache"]) == 1
        assert called == list(runner.EXPERIMENTS)

    def test_failed_cells_escalate(self):
        """_check_errors raises once cell failures exist."""
        with pytest.raises(runner.ExperimentError):
            runner._check_errors("table2", {("uni", "lstm", "machines"): "ValueError: x"})
        runner._check_errors("table2", {})  # no errors: no raise


class TestCacheFlags:
    def test_cache_clear_wipes_directory(self, tmp_path, monkeypatch, capsys):
        from repro.experiments.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        cache.put("ab" + "0" * 62, {"x": 1})
        assert len(cache) == 1
        monkeypatch.setattr(runner, "_RUNNERS", _fake_runners([]))
        assert runner.main(
            ["-e", "fig1", "--cache-dir", str(tmp_path / "cache"), "--cache-clear"]
        ) == 0
        assert len(cache) == 0
        assert "cache cleared: 1" in capsys.readouterr().out

    def test_no_cache_disables_cache(self, monkeypatch):
        seen = {}

        def probe(p, ctx):
            seen["cache"] = ctx.cache

        fake = _fake_runners([])
        fake["fig1"] = probe
        monkeypatch.setattr(runner, "_RUNNERS", fake)
        assert runner.main(["-e", "fig1", "--no-cache"]) == 0
        assert seen["cache"] is None

    def test_cache_dir_and_jobs_reach_context(self, tmp_path, monkeypatch):
        seen = {}

        def probe(p, ctx):
            seen["ctx"] = ctx

        fake = _fake_runners([])
        fake["fig1"] = probe
        monkeypatch.setattr(runner, "_RUNNERS", fake)
        assert runner.main(
            ["-e", "fig1", "--jobs", "3", "--cache-dir", str(tmp_path / "c")]
        ) == 0
        assert seen["ctx"].jobs == 3
        assert str(seen["ctx"].cache.root) == str(tmp_path / "c")
