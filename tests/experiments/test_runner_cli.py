"""Runner CLI wiring tests (cheap paths only)."""

import pytest

from repro.experiments import runner


class TestWiring:
    def test_every_experiment_has_a_runner(self):
        for name in runner.EXPERIMENTS + runner.EXTENSIONS:
            assert name in runner._RUNNERS

    def test_profiles_advertised(self):
        from repro.experiments.config import PROFILES

        assert {"quick", "default", "paper"} <= set(PROFILES)

    def test_extensions_choice_accepted(self, monkeypatch):
        """--experiment extensions resolves to the extension harnesses."""
        called = []
        monkeypatch.setattr(
            runner, "_RUNNERS", {name: (lambda n: lambda p: called.append(n))(name)
                                 for name in runner.EXPERIMENTS + runner.EXTENSIONS}
        )
        assert runner.main(["-e", "extensions", "-p", "quick"]) == 0
        assert called == list(runner.EXTENSIONS)

    def test_all_choice_runs_paper_artifacts_only(self, monkeypatch):
        called = []
        monkeypatch.setattr(
            runner, "_RUNNERS", {name: (lambda n: lambda p: called.append(n))(name)
                                 for name in runner.EXPERIMENTS + runner.EXTENSIONS}
        )
        assert runner.main(["-e", "all", "-p", "quick"]) == 0
        assert called == list(runner.EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            runner.main(["-e", "nope"])
