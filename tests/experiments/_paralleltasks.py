"""Toy task functions for the parallel-executor tests.

Spawned workers import tasks by dotted path, so these must live in a
real module (a closure or a function defined inside a test body cannot
cross the process boundary).
"""

from __future__ import annotations

import os
import signal
from pathlib import Path

from repro.obs import registry as obs_registry
from repro.obs import trace as obs_trace


def square(x: int, seed: int = 0) -> dict:
    return {"x": x, "seed": seed, "value": x * x}


def boom(x: int) -> dict:
    raise ValueError(f"task {x} exploded")


def instrumented(x: int) -> int:
    """Emit a counter and a child span so merging can be asserted."""
    obs_registry.get_registry().counter(
        "paralleltest_work_total", "toy work items", labels={"kind": "unit"}
    ).inc()
    with obs_trace.span("paralleltest:inner"):
        pass
    return x


def worker_pid(x: int) -> int:
    """Report which worker process ran the task (pool-reuse assertions)."""
    return os.getpid()


def die(x: int) -> int:
    """Kill the worker hard — simulates an OOM-killed/crashed child."""
    os.kill(os.getpid(), signal.SIGKILL)
    return x  # pragma: no cover — never reached


def touch_and_square(marker_dir: str, x: int) -> dict:
    """Leave a per-invocation marker file so cache skips are observable."""
    path = Path(marker_dir) / f"ran_{x}.marker"
    path.write_text(str(x))
    return {"value": x * x}
