"""Robustness harness and JSON persistence tests."""

import json

import numpy as np
import pytest

from repro.experiments.persistence import load_result, save_result, to_jsonable
from repro.experiments.robustness import RobustnessResult, run_robustness
from .test_harnesses import TINY


class TestRobustnessResult:
    def _result(self):
        res = RobustnessResult(scenario="mul_exp", level="machines", seeds=(1, 2, 3))
        res.mse = {"a": [1.0, 2.0, 3.0], "b": [2.0, 1.0, 4.0]}
        res.mae = {"a": [0.1, 0.2, 0.3], "b": [0.2, 0.1, 0.4]}
        return res

    def test_summary(self):
        s = self._result().summary("mse")
        assert s["a"] == (pytest.approx(2.0), pytest.approx(np.std([1, 2, 3])))

    def test_win_counts(self):
        wins = self._result().win_counts("mse")
        assert wins == {"a": 2, "b": 1}

    def test_mean_rank(self):
        ranks = self._result().mean_rank("mse")
        assert ranks["a"] < ranks["b"]
        assert ranks["a"] + ranks["b"] == pytest.approx(3.0)


class TestRunRobustness:
    def test_multi_seed_run(self):
        res = run_robustness(
            TINY, models=("persistence", "mean"), seeds=(1, 2)
        )
        assert res.seeds == (1, 2)
        for model in ("persistence", "mean"):
            assert len(res.mse[model]) == 2
            assert all(v > 0 for v in res.mse[model])
        # wins across seeds total the seed count
        assert sum(res.win_counts().values()) == 2

    def test_seed_variation_exists(self):
        res = run_robustness(TINY, models=("persistence",), seeds=(1, 2))
        assert res.mse["persistence"][0] != res.mse["persistence"][1]


class TestPersistence:
    def test_jsonable_conversions(self):
        out = to_jsonable(
            {
                ("a", "b"): np.float64(1.5),
                "arr": np.arange(3),
                "nested": [np.int32(2), (1, 2)],
                "s": slice(0, 5),
            }
        )
        assert out["a|b"] == 1.5
        assert out["arr"] == [0, 1, 2]
        assert out["nested"] == [2, [1, 2]]
        assert out["s"] == {"__slice__": [0, 5, None]}

    def test_dataclass_roundtrip(self, tmp_path):
        res = RobustnessResult(scenario="uni", level="containers", seeds=(1,))
        res.mse = {"m": [0.5]}
        res.mae = {"m": [0.1]}
        path = save_result(res, tmp_path / "r.json", experiment="robustness")
        payload = load_result(path)
        assert payload["experiment"] == "robustness"
        assert payload["result"]["scenario"] == "uni"
        assert payload["result"]["mse"]["m"] == [0.5]
        assert "written_at" in payload

    def test_table2_result_serializes(self, tmp_path):
        from repro.experiments.accuracy import Table2Result

        res = Table2Result(profile="quick")
        res.metrics[("uni", "rptcn", "containers")] = {"mse": 0.004, "mae": 0.04}
        path = save_result(res, tmp_path / "t2.json", experiment="table2")
        payload = load_result(path)
        assert payload["result"]["metrics"]["uni|rptcn|containers"]["mse"] == 0.004

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_valid_json_on_disk(self, tmp_path):
        path = save_result({"x": 1}, tmp_path / "x.json")
        json.loads(path.read_text())  # must not raise


class TestFeatureImportances:
    def test_importances_identify_informative_feature(self, rng):
        from repro.models.gbt import GradientBoostedTrees

        x = rng.random((400, 5))
        y = 3.0 * x[:, 2] + rng.normal(0, 0.05, 400)  # only feature 2 matters
        model = GradientBoostedTrees(n_estimators=30, max_depth=3).fit(x, y)
        imp = model.feature_importances(5)
        assert imp.sum() == pytest.approx(1.0)
        assert imp[2] > 0.8

    def test_requires_fit(self):
        from repro.models.gbt import GradientBoostedTrees

        with pytest.raises(RuntimeError):
            GradientBoostedTrees().feature_importances(3)
