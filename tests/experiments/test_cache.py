"""Content-addressed result cache correctness.

The cache must hit only when *everything* that determines a result is
unchanged — experiment, function, parameters, and the source code the
computation flows through — and must never serve a torn or hand-edited
entry.
"""

import json

import pytest

from repro.experiments.cache import (
    DEFAULT_FINGERPRINT_MODULES,
    ResultCache,
    _compute_fingerprint,
    code_fingerprint,
)
from repro.experiments.parallel import TaskSpec
from repro.obs.registry import MetricRegistry


def spec(**over):
    base = dict(
        experiment="table2",
        key=("uni", "lstm", "machines"),
        fn="repro.experiments.accuracy.run_table2_cell",
        params={"scenario": "uni", "model": "lstm", "level": "machines", "seed": 7},
    )
    base.update(over)
    return TaskSpec(**base)


class TestDigest:
    def test_digest_is_stable(self, tmp_path):
        cache = ResultCache(tmp_path, registry=MetricRegistry())
        assert cache.task_digest(spec()) == cache.task_digest(spec())

    def test_digest_changes_with_params(self, tmp_path):
        cache = ResultCache(tmp_path, registry=MetricRegistry())
        a = cache.task_digest(spec())
        b = cache.task_digest(spec(params={"scenario": "uni", "model": "lstm",
                                           "level": "machines", "seed": 8}))
        assert a != b

    def test_digest_changes_with_experiment_and_fn(self, tmp_path):
        cache = ResultCache(tmp_path, registry=MetricRegistry())
        a = cache.task_digest(spec())
        assert a != cache.task_digest(spec(experiment="robustness"))
        assert a != cache.task_digest(spec(fn="repro.experiments.accuracy.other"))

    def test_digest_changes_with_profile(self, tmp_path):
        from repro.experiments.config import ExperimentProfile

        cache = ResultCache(tmp_path, registry=MetricRegistry())
        p1 = ExperimentProfile(name="t", n_steps=450, n_machines=2,
                               containers_per_machine=1, n_entities=1, epochs=3)
        p2 = ExperimentProfile(name="t", n_steps=450, n_machines=2,
                               containers_per_machine=1, n_entities=1, epochs=4)
        a = cache.task_digest(spec(params={"prof": p1}))
        b = cache.task_digest(spec(params={"prof": p2}))
        assert a != b

    def test_code_fingerprint_tracks_source_bytes(self, tmp_path, monkeypatch):
        """Editing any fingerprinted source file must change the digest."""
        pkg = tmp_path / "fp_probe_pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("X = 1\n")
        monkeypatch.syspath_prepend(str(tmp_path))

        before = _compute_fingerprint(("fp_probe_pkg",))
        (pkg / "__init__.py").write_text("X = 2\n")
        after = _compute_fingerprint(("fp_probe_pkg",))
        assert before != after

    def test_default_fingerprint_covers_compute_path(self):
        assert "repro.models" in DEFAULT_FINGERPRINT_MODULES
        assert "repro.nn" in DEFAULT_FINGERPRINT_MODULES
        assert len(code_fingerprint()) == 16


class TestStorage:
    def test_roundtrip_hit(self, tmp_path):
        reg = MetricRegistry()
        cache = ResultCache(tmp_path, registry=reg)
        digest = cache.task_digest(spec())
        hit, _ = cache.get(digest)
        assert not hit and cache.misses == 1

        cache.put(digest, {"mse": 0.5, "mae": 0.3})
        hit, value = cache.get(digest)
        assert hit and value == {"mse": 0.5, "mae": 0.3}
        assert cache.hits == 1 and cache.stores == 1
        assert len(cache) == 1

    def test_distinct_digests_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path, registry=MetricRegistry())
        d1, d2 = cache.task_digest(spec()), cache.task_digest(spec(experiment="x"))
        cache.put(d1, {"v": 1})
        cache.put(d2, {"v": 2})
        assert cache.get(d1)[1] == {"v": 1}
        assert cache.get(d2)[1] == {"v": 2}

    def test_corrupt_entry_discarded_and_recomputed(self, tmp_path):
        """A torn/tampered file must fail verification, be deleted, and miss."""
        cache = ResultCache(tmp_path, registry=MetricRegistry())
        digest = cache.task_digest(spec())
        path = cache.put(digest, {"mse": 0.5})

        doc = json.loads(path.read_text())
        doc["payload"]["mse"] = 99.0  # tamper without fixing the checksum
        path.write_text(json.dumps(doc))

        hit, value = cache.get(digest)
        assert not hit and value is None
        assert cache.invalidated == 1
        assert not path.exists()

        # recompute path: a fresh put makes it servable again
        cache.put(digest, {"mse": 0.5})
        hit, value = cache.get(digest)
        assert hit and value == {"mse": 0.5}

    def test_truncated_entry_discarded(self, tmp_path):
        cache = ResultCache(tmp_path, registry=MetricRegistry())
        digest = cache.task_digest(spec())
        path = cache.put(digest, {"mse": 0.5})
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        hit, _ = cache.get(digest)
        assert not hit
        assert cache.invalidated == 1

    def test_schema_mismatch_discarded(self, tmp_path):
        cache = ResultCache(tmp_path, registry=MetricRegistry())
        digest = cache.task_digest(spec())
        path = cache.put(digest, {"mse": 0.5})
        doc = json.loads(path.read_text())
        doc["schema"] = "repro-cache/v0"
        path.write_text(json.dumps(doc))
        hit, _ = cache.get(digest)
        assert not hit

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path, registry=MetricRegistry())
        for i in range(3):
            cache.put(cache.task_digest(spec(experiment=f"e{i}")), {"i": i})
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0
        assert cache.clear() == 0  # idempotent on empty/missing root

    def test_events_reach_metric_registry(self, tmp_path):
        reg = MetricRegistry()
        cache = ResultCache(tmp_path, registry=reg)
        digest = cache.task_digest(spec())
        cache.get(digest)
        cache.put(digest, {"v": 1})
        cache.get(digest)
        events = {
            s["labels"]["event"]: s["value"]
            for s in reg.snapshot()["series"]
            if s["name"] == "experiment_cache_events_total"
        }
        assert events == {"miss": 1.0, "store": 1.0, "hit": 1.0}

    def test_non_jsonable_value_rejected(self, tmp_path):
        cache = ResultCache(tmp_path, registry=MetricRegistry())
        with pytest.raises(TypeError):
            cache.put(cache.task_digest(spec()), {"bad": object()})
