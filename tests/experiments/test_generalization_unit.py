"""Generalization harness unit tests."""

import pytest

from repro.experiments.generalization import GeneralizationResult, run_generalization
from .test_harnesses import TINY


class TestGeneralizationResult:
    def _result(self):
        res = GeneralizationResult(model="m", source_id="src")
        res.targets["a"] = {
            "transfer": {"mse": 0.02, "mae": 0.1},
            "in_domain": {"mse": 0.01, "mae": 0.08},
        }
        res.targets["b"] = {
            "transfer": {"mse": 0.03, "mae": 0.12},
            "in_domain": {"mse": 0.03, "mae": 0.12},
        }
        return res

    def test_gap(self):
        res = self._result()
        assert res.gap("a") == pytest.approx(2.0)
        assert res.gap("b") == pytest.approx(1.0)

    def test_mean_gap(self):
        assert self._result().mean_gap() == pytest.approx(1.5)


class TestRunGeneralization:
    @pytest.fixture(scope="class")
    def result(self):
        return run_generalization(TINY, model="persistence", n_targets=2)

    def test_targets_include_cross_level(self, result):
        kinds = set(result.targets)
        assert any(t.startswith("m_") for t in kinds), "a machine target is required"
        assert any(t.startswith("c_") for t in kinds), "a container target is required"

    def test_source_not_among_targets(self, result):
        assert result.source_id not in result.targets

    def test_metrics_populated(self, result):
        for entry in result.targets.values():
            assert entry["transfer"]["mse"] > 0
            assert entry["in_domain"]["mse"] > 0

    def test_persistence_transfers_perfectly(self, result):
        """Persistence has no fitted state, so transfer == in-domain."""
        for target in result.targets:
            assert result.gap(target) == pytest.approx(1.0)
