"""Smoke/integration tests for every experiment harness at tiny scale."""

import numpy as np
import pytest

from repro.experiments.accuracy import SCENARIO_MODELS, Table2Result, run_table2
from repro.experiments.characterization import (
    build_cluster,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig7,
)
from repro.experiments.config import ExperimentProfile, get_profile
from repro.experiments.convergence import run_fig9, run_fig10
from repro.experiments.curves import run_fig8

#: miniature profile so the full-matrix harnesses stay fast in CI
TINY = ExperimentProfile(
    name="tiny",
    n_steps=450,
    n_machines=2,
    containers_per_machine=1,
    n_entities=1,
    epochs=3,
    gbt_estimators=15,
)


class TestProfiles:
    def test_known_profiles(self):
        for name in ("quick", "default", "paper"):
            assert get_profile(name).name == name

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            get_profile("nope")


class TestCharacterizationHarnesses:
    @pytest.fixture(scope="class")
    def cluster(self):
        return build_cluster(TINY)

    def test_fig1(self, cluster):
        res = run_fig1(TINY, trace=cluster)
        assert set(res.series) == {"cpu_util_percent", "mem_util_percent", "disk_io_percent"}
        assert res.dynamism() > 0.0

    def test_fig2(self, cluster):
        res = run_fig2(TINY, trace=cluster, n_windows=5)
        assert 4 <= len(res.stats) <= 6
        assert len(res.mean_line) == len(res.stats)
        for s in res.stats:
            assert s.q1 <= s.median <= s.q3

    def test_fig3(self, cluster):
        res = run_fig3(TINY, trace=cluster)
        assert (res.fractions >= 0).all() and (res.fractions <= 1).all()
        assert 0.0 <= res.overall_fraction <= 1.0

    def test_fig7_top4_matches_paper(self, cluster):
        res = run_fig7(TINY, trace=cluster)
        assert res.matrix.shape == (8, 8)
        # the paper's Fig. 7 finding on container c_18104
        assert set(res.top_correlated(4)) == {"cpu_util_percent", "mpki", "cpi", "mem_gps"}

    def test_fig7_specific_entity(self, cluster):
        eid = cluster.containers[-1].entity_id
        res = run_fig7(TINY, trace=cluster, entity_id=eid)
        assert res.entity_id == eid


class TestTable2Harness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(TINY)

    def test_full_matrix_populated(self, result):
        for scenario, models in SCENARIO_MODELS.items():
            for model in models:
                for level in ("containers", "machines"):
                    assert (scenario, model, level) in result.metrics

    def test_arima_only_in_uni(self, result):
        arima_cells = [k for k in result.metrics if k[1] == "arima"]
        assert all(k[0] == "uni" for k in arima_cells)

    def test_metrics_positive(self, result):
        for vals in result.metrics.values():
            assert vals["mse"] > 0 and vals["mae"] > 0
            assert vals["mae"] <= 1.0  # normalized scale

    def test_best_model_and_improvements(self, result):
        best = result.best_model("mul_exp", "containers")
        assert best in SCENARIO_MODELS["mul_exp"]
        lo, hi = result.improvement_range("mae")
        assert lo <= hi

    def test_unknown_cell(self, result):
        with pytest.raises(KeyError):
            result.best_model("bogus", "containers")


class TestFig8Harness:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig8(TINY, models=("lstm", "rptcn"))

    def test_truth_has_jump(self, result):
        """The mutation must land inside the test segment."""
        t = result.truth
        assert 0 < result.jump_index < len(t) - 1
        pre, post = t[: result.jump_index], t[result.jump_index + 1 :]
        assert post.mean() > pre.mean() + 0.2

    def test_predictions_aligned(self, result):
        for pred in result.predictions.values():
            assert pred.shape == result.truth.shape

    def test_mae_diagnostics(self, result):
        for m in result.predictions:
            assert result.pre_jump_mae[m] >= 0
            assert result.post_jump_mae[m] >= 0
            assert result.tracking_error(m) >= 0
        assert result.best_post_jump() in result.predictions


class TestConvergenceHarnesses:
    def test_fig9_curves(self):
        res = run_fig9(TINY)
        assert set(res.curves) == {"lstm", "cnn_lstm", "rptcn", "xgboost"}
        for model in ("lstm", "cnn_lstm", "rptcn"):
            assert len(res.curves[model]) == TINY.epochs  # no early stop
        assert res.level == "containers"
        assert [r.model for r in res.records] == sorted(
            res.curves, key=lambda m: res.curves[m][-1]
        )

    def test_fig10_uses_validation_loss(self):
        res = run_fig10(TINY)
        assert res.monitor == "val_loss"
        assert res.level == "machines"
        assert all(len(c) > 0 for c in res.curves.values())


class TestResilienceHarness:
    def test_degradation_curve_structure(self):
        from repro.experiments import run_resilience

        res = run_resilience(TINY, levels=(0.0, 0.1))
        assert [r.level for r in res.per_level] == [0.0, 0.1]
        assert res.baseline_mae == res.per_level[0].mae_vs_clean
        assert res.degradation(0.0) == pytest.approx(1.0)
        clean, faulted = res.per_level
        # the clean level injects nothing; the faulted one injects everything
        assert all(v == 0 for v in clean.injected.values())
        assert sum(faulted.injected.values()) > 0
        assert faulted.n_quarantined > 0
        for r in res.per_level:
            assert np.isfinite(r.mae_vs_clean)
            assert 0.0 < r.availability <= 1.0
            assert r.n_served <= r.n_emitted

    def test_is_bounded_threshold(self):
        from repro.experiments import run_resilience

        res = run_resilience(TINY, levels=(0.0, 0.05))
        worst = max(res.degradation(r.level) for r in res.per_level)
        assert res.is_bounded(worst + 0.01)
        assert not res.is_bounded(worst - 0.01)


class TestRunnerCLI:
    def test_main_single_experiment(self, capsys):
        from repro.experiments import runner

        # fig7 is the cheapest harness
        assert runner.main(["-e", "fig7", "-p", "quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 7" in out
        assert "top-4" in out

    def test_main_rejects_unknown(self):
        from repro.experiments import runner

        with pytest.raises(SystemExit):
            runner.main(["-e", "bogus"])
