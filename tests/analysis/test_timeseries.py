"""ACF / PACF / ADF / decomposition tests against known processes."""

import numpy as np
import pytest
from scipy.signal import lfilter

from repro.analysis.timeseries import acf, adf_test, pacf, seasonal_decompose


def ar1(n, phi, sigma=1.0, seed=0):
    rng = np.random.default_rng(seed)
    return lfilter([1.0], [1.0, -phi], rng.normal(0, sigma, n))


class TestACF:
    def test_lag0_is_one(self, rng):
        assert acf(rng.random(100), 5)[0] == pytest.approx(1.0)

    def test_ar1_geometric_decay(self):
        series = ar1(100_000, 0.8)
        rho = acf(series, 5)
        for k in range(1, 6):
            assert rho[k] == pytest.approx(0.8**k, abs=0.03)

    def test_white_noise_near_zero(self, rng):
        rho = acf(rng.standard_normal(50_000), 10)
        assert np.abs(rho[1:]).max() < 0.03

    def test_matches_direct_computation(self, rng):
        x = rng.random(300)
        rho = acf(x, 4)
        xc = x - x.mean()
        direct = np.array(
            [1.0] + [float((xc[:-k] * xc[k:]).sum() / (xc**2).sum()) for k in range(1, 5)]
        )
        np.testing.assert_allclose(rho, direct, atol=1e-10)

    def test_constant_series(self):
        rho = acf(np.full(50, 3.0), 3)
        np.testing.assert_array_equal(rho, [1.0, 0.0, 0.0, 0.0])

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            acf(rng.random(10), 10)
        with pytest.raises(ValueError):
            acf(np.array([1.0]), 0)


class TestPACF:
    def test_ar1_cuts_off_after_lag1(self):
        series = ar1(100_000, 0.7)
        p = pacf(series, 5)
        assert p[1] == pytest.approx(0.7, abs=0.03)
        assert np.abs(p[2:]).max() < 0.05

    def test_ar2_cuts_off_after_lag2(self):
        rng = np.random.default_rng(1)
        series = lfilter([1.0], [1.0, -0.5, -0.3], rng.normal(0, 1, 100_000))
        p = pacf(series, 5)
        assert abs(p[2]) > 0.2  # significant at lag 2
        assert np.abs(p[3:]).max() < 0.05

    def test_lag0(self, rng):
        assert pacf(rng.random(100), 0)[0] == 1.0


class TestADF:
    def test_stationary_ar_rejected_unit_root(self):
        series = ar1(3000, 0.5, seed=2)
        res = adf_test(series)
        assert res.is_stationary
        assert res.statistic < -3.5

    def test_random_walk_not_stationary(self):
        rng = np.random.default_rng(3)
        walk = np.cumsum(rng.normal(0, 1, 3000))
        res = adf_test(walk)
        assert not res.is_stationary

    def test_differenced_walk_stationary(self):
        rng = np.random.default_rng(4)
        walk = np.cumsum(rng.normal(0, 1, 3000))
        assert adf_test(np.diff(walk)).is_stationary

    def test_validation(self):
        with pytest.raises(ValueError):
            adf_test(np.arange(5.0))


class TestDecomposition:
    def _seasonal_series(self, n=600, period=24, seed=5):
        rng = np.random.default_rng(seed)
        t = np.arange(n)
        return (
            0.01 * t  # trend
            + 2.0 * np.sin(2 * np.pi * t / period)  # seasonality
            + rng.normal(0, 0.1, n)  # noise
        )

    def test_components_sum_to_series(self):
        series = self._seasonal_series()
        dec = seasonal_decompose(series, period=24)
        mask = ~np.isnan(dec.trend)
        np.testing.assert_allclose(
            dec.trend[mask] + dec.seasonal[mask] + dec.resid[mask], series[mask]
        )

    def test_seasonal_component_periodic(self):
        dec = seasonal_decompose(self._seasonal_series(), period=24)
        np.testing.assert_allclose(dec.seasonal[:24], dec.seasonal[24:48])

    def test_recovers_amplitude(self):
        dec = seasonal_decompose(self._seasonal_series(), period=24)
        assert dec.seasonal.max() == pytest.approx(2.0, abs=0.15)

    def test_seasonal_strength_ordering(self, rng):
        strong = seasonal_decompose(self._seasonal_series(), 24).seasonal_strength()
        noise_series = rng.standard_normal(600)
        weak = seasonal_decompose(noise_series, 24).seasonal_strength()
        assert strong > 0.9
        assert weak < strong

    def test_odd_period(self):
        series = self._seasonal_series(period=21)
        dec = seasonal_decompose(series, period=21)
        assert dec.period == 21
        assert np.isnan(dec.trend[0]) and np.isnan(dec.trend[-1])

    def test_validation(self):
        with pytest.raises(ValueError):
            seasonal_decompose(np.arange(10.0), period=8)
        with pytest.raises(ValueError):
            seasonal_decompose(np.arange(100.0), period=1)


class TestOnTraces:
    def test_machine_vs_container_seasonality(self):
        """Machines (diurnal) decompose with higher seasonal strength than
        high-dynamic containers at the diurnal period."""
        from repro.traces.generator import ClusterTraceGenerator, TraceConfig

        period = 200
        gen = ClusterTraceGenerator(
            TraceConfig(n_machines=1, containers_per_machine=1, n_steps=1200,
                        seed=6, diurnal_period=period,
                        container_mix={"regime_switching": 1.0},
                        machine_container_coupling=0.1)
        )
        trace = gen.generate()
        m = seasonal_decompose(trace.machines[0].cpu, period).seasonal_strength()
        c = seasonal_decompose(trace.containers[0].cpu, period).seasonal_strength()
        assert m > c
