"""Changepoint-detection and time-to-track tests."""

import numpy as np
import pytest

from repro.analysis.dynamics import (
    detect_changepoints,
    mutation_density,
    time_to_track,
)


def step_series(rng, n=400, cp=200, low=0.2, high=0.7, noise=0.02):
    series = np.concatenate([np.full(cp, low), np.full(n - cp, high)])
    return series + rng.normal(0, noise, n)


class TestDetect:
    def test_finds_single_step(self, rng):
        series = step_series(rng)
        cps = detect_changepoints(series)
        assert len(cps) >= 1
        assert min(abs(c - 200) for c in cps) <= 10

    def test_no_false_alarm_on_stationary_noise(self, rng):
        series = 0.5 + rng.normal(0, 0.02, 2000)
        assert detect_changepoints(series, threshold=8.0) == []

    def test_two_steps_found(self, rng):
        series = np.concatenate(
            [np.full(200, 0.2), np.full(200, 0.7), np.full(200, 0.3)]
        ) + rng.normal(0, 0.02, 600)
        cps = detect_changepoints(series)
        assert len(cps) >= 2
        assert min(abs(c - 200) for c in cps) <= 10
        assert min(abs(c - 400) for c in cps) <= 10

    def test_min_gap_suppresses_duplicates(self, rng):
        series = step_series(rng)
        cps = detect_changepoints(series, min_gap=50)
        gaps = np.diff(cps)
        assert (gaps >= 50).all() if len(cps) > 1 else True

    def test_validation(self):
        with pytest.raises(ValueError):
            detect_changepoints(np.zeros(2))
        with pytest.raises(ValueError):
            detect_changepoints(np.zeros(100), threshold=0)

    def test_regime_switching_denser_than_stationary(self, rng):
        """The high-dynamic archetype scores far above stationary noise.

        (A smooth sinusoid is itself a continuous mean shift to CUSUM, so
        the clean contrast is against a level-stationary series.)
        """
        from repro.traces.workloads import regime_switching_load

        reg = regime_switching_load(4000, rng, dwell_mean=150, noise=0.02)
        flat = 0.5 + rng.normal(0, 0.02, 4000)
        assert mutation_density(reg) > 5 * max(mutation_density(flat), 0.25)


class TestTimeToTrack:
    def test_immediate_tracking(self, rng):
        truth = step_series(rng)
        assert time_to_track(truth, truth.copy(), changepoint=200) == 0

    def test_lagged_tracking(self, rng):
        truth = step_series(rng, noise=0.0)
        pred = np.roll(truth, 8)  # tracks with an 8-step lag
        pred[:8] = truth[0]
        t = time_to_track(truth, pred, changepoint=200, tolerance=0.05)
        assert t == pytest.approx(8, abs=1)

    def test_never_corrected_returns_none(self, rng):
        truth = step_series(rng, noise=0.0)
        pred = np.full_like(truth, truth[0])  # stuck at the old level
        assert time_to_track(truth, pred, changepoint=200, tolerance=0.05) is None

    def test_sustain_requirement(self, rng):
        truth = np.full(50, 1.0)
        pred = truth.copy()
        # from the changepoint onward, alternate outside the band; the last
        # bad sample is index 37, so sustained tracking starts at index 38
        pred[5:39:2] = 0.0
        assert time_to_track(truth, pred, 5, tolerance=0.1, sustain=3) == 38 - 5

    def test_validation(self):
        with pytest.raises(ValueError):
            time_to_track(np.zeros(5), np.zeros(4), 0)
        with pytest.raises(ValueError):
            time_to_track(np.zeros(5), np.zeros(5), 9)
        with pytest.raises(ValueError):
            time_to_track(np.zeros(5), np.zeros(5), 0, tolerance=0)
