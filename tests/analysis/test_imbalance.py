"""Imbalance metric tests."""

import numpy as np
import pytest

from repro.analysis.imbalance import (
    cluster_imbalance,
    cross_resource_imbalance,
    spatial_imbalance,
    temporal_imbalance,
)
from repro.traces.generator import ClusterTraceGenerator, TraceConfig


@pytest.fixture(scope="module")
def trace():
    return ClusterTraceGenerator(
        TraceConfig(n_machines=6, containers_per_machine=2, n_steps=800, seed=41)
    ).generate()


class TestSpatial:
    def test_uniform_load_zero_cv(self):
        matrix = np.full((4, 50), 30.0)
        np.testing.assert_allclose(spatial_imbalance(matrix), 0.0)

    def test_skewed_load_positive_cv(self):
        matrix = np.vstack([np.full(50, 10.0), np.full(50, 90.0)])
        cv = spatial_imbalance(matrix)
        assert (cv > 0.5).all()

    def test_known_value(self):
        matrix = np.array([[10.0], [30.0]])
        # mean 20, std 10 -> cv 0.5
        assert spatial_imbalance(matrix)[0] == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            spatial_imbalance(np.zeros((1, 10)))


class TestTemporal:
    def test_constant_machine_zero(self):
        matrix = np.full((2, 30), 40.0)
        np.testing.assert_allclose(temporal_imbalance(matrix), 0.0)

    def test_bursty_machine_higher_than_steady(self, rng):
        steady = np.full(200, 40.0) + rng.normal(0, 1, 200)
        bursty = np.where(rng.random(200) < 0.1, 90.0, 10.0)
        cv = temporal_imbalance(np.vstack([steady, bursty]))
        assert cv[1] > 3 * cv[0]

    def test_zero_mean_machine_safe(self):
        matrix = np.zeros((2, 10))
        np.testing.assert_allclose(temporal_imbalance(matrix), 0.0)


class TestCrossResource:
    def test_per_machine_gap(self, trace):
        gaps = cross_resource_imbalance(trace)
        assert gaps.shape == (trace.n_machines,)
        assert (gaps >= 0).all()

    def test_empty_trace_rejected(self):
        from repro.traces.schema import ClusterTrace

        with pytest.raises(ValueError):
            cross_resource_imbalance(ClusterTrace())


class TestSummary:
    def test_synthetic_cluster_is_imbalanced(self, trace):
        """The generator reproduces the ref-[5] imbalance the paper cites."""
        summary = cluster_imbalance(trace)
        assert summary.mean_spatial_cv > 0.0
        assert summary.mean_temporal_cv > 0.0
        assert summary.mean_cpu_mem_gap > 0.0
        assert summary.max_spatial_cv >= summary.mean_spatial_cv

    def test_threshold_flag(self):
        from repro.analysis.imbalance import ImbalanceSummary

        assert ImbalanceSummary(0.3, 0.5, 0.1, 5.0).is_imbalanced
        assert not ImbalanceSummary(0.1, 0.2, 0.1, 5.0).is_imbalanced
