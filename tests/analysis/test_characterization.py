"""Characterization statistics tests (Figs. 1-3 data)."""

import numpy as np
import pytest

from repro.analysis.characterization import (
    boxplot_stats_per_window,
    fraction_below,
    resource_series,
    utilization_summary,
)
from repro.traces.generator import ClusterTraceGenerator, TraceConfig


@pytest.fixture(scope="module")
def trace():
    return ClusterTraceGenerator(
        TraceConfig(n_machines=4, containers_per_machine=2, n_steps=1200, seed=23)
    ).generate()


class TestResourceSeries:
    def test_default_indicators(self, trace):
        series = resource_series(trace.containers[0])
        assert set(series) == {"cpu_util_percent", "mem_util_percent", "disk_io_percent"}
        assert all(len(v) == 1200 for v in series.values())

    def test_returns_copies(self, trace):
        series = resource_series(trace.containers[0])
        series["cpu_util_percent"][0] = -1.0
        assert trace.containers[0].cpu[0] >= 0.0


class TestBoxplot:
    def test_quartile_ordering(self, trace):
        stats = boxplot_stats_per_window(trace.machines[0].cpu, window=200)
        for s in stats:
            assert s.minimum <= s.q1 <= s.median <= s.q3 <= s.maximum
            assert s.minimum <= s.mean <= s.maximum
            assert s.iqr >= 0

    def test_window_count(self):
        series = np.random.default_rng(0).random(1000)
        stats = boxplot_stats_per_window(series, window=250)
        assert len(stats) == 4
        assert [s.start_index for s in stats] == [0, 250, 500, 750]

    def test_known_values(self):
        series = np.arange(100.0)
        stats = boxplot_stats_per_window(series, window=100)
        s = stats[0]
        assert s.median == pytest.approx(49.5)
        assert s.minimum == 0.0 and s.maximum == 99.0

    def test_partial_tail_window(self):
        series = np.random.default_rng(0).random(1050)
        stats = boxplot_stats_per_window(series, window=500)
        # 1050 = 2 full + a 50-sample tail (>= window/4 not met -> dropped)
        assert len(stats) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            boxplot_stats_per_window(np.zeros(10), window=2)
        with pytest.raises(ValueError):
            boxplot_stats_per_window(np.zeros((5, 2)), window=4)


class TestFractionBelow:
    def test_known_matrix(self):
        matrix = np.array([[10.0, 90.0], [20.0, 80.0], [30.0, 10.0]])
        frac = fraction_below(matrix, threshold=50.0)
        np.testing.assert_allclose(frac, [1.0, 1.0 / 3.0])

    def test_windowed_average(self):
        matrix = np.array([[10.0, 90.0, 10.0, 90.0]])
        frac = fraction_below(matrix, threshold=50.0, window=2)
        np.testing.assert_allclose(frac, [0.5, 0.5])

    def test_bounded(self, trace):
        frac = fraction_below(trace.machine_cpu_matrix(), window=100)
        assert (frac >= 0.0).all() and (frac <= 1.0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            fraction_below(np.zeros(5))


class TestSummary:
    def test_keys_and_ranges(self, trace):
        s = utilization_summary(trace)
        assert set(s) == {
            "mean_cpu",
            "cluster_avg_below_60_frac",
            "machines_mostly_below_50_frac",
            "p75_cluster_avg",
        }
        assert 0.0 <= s["cluster_avg_below_60_frac"] <= 1.0
        assert 0.0 <= s["machines_mostly_below_50_frac"] <= 1.0

    def test_calibration_matches_paper_claims(self, trace):
        """§II: most machines under 50% CPU; cluster average under 0.6 most of the time."""
        s = utilization_summary(trace)
        assert s["machines_mostly_below_50_frac"] >= 0.5
        assert s["cluster_avg_below_60_frac"] >= 0.7
