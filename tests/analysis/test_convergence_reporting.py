"""Convergence summaries and text reporting tests."""

import numpy as np
import pytest

from repro.analysis.convergence import compare_convergence, epochs_to_threshold
from repro.analysis.reporting import (
    format_table,
    format_table2,
    render_ascii_series,
    series_to_rows,
)


class TestEpochsToThreshold:
    def test_immediate_convergence(self):
        assert epochs_to_threshold([1.0, 1.0, 1.0]) == 1

    def test_gradual(self):
        # drop 1.0 -> 0.0; 90% of drop reached at value 0.1
        curve = [1.0, 0.5, 0.2, 0.05, 0.0]
        assert epochs_to_threshold(curve, 0.9) == 4

    def test_full_fraction(self):
        curve = [1.0, 0.5, 0.0]
        assert epochs_to_threshold(curve, 1.0) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            epochs_to_threshold([])
        with pytest.raises(ValueError):
            epochs_to_threshold([1.0], fraction=0.0)


class TestCompare:
    def test_sorted_by_final(self):
        records = compare_convergence(
            {"slow": [1.0, 0.9, 0.8], "fast": [1.0, 0.2, 0.1]}
        )
        assert [r.model for r in records] == ["fast", "slow"]

    def test_record_fields(self):
        rec = compare_convergence({"m": [2.0, 1.0, 0.5]})[0]
        assert rec.initial_loss == 2.0
        assert rec.final_loss == 0.5
        assert rec.best_loss == 0.5
        assert rec.epochs == 3
        assert rec.converged

    def test_diverged_model_flagged(self):
        rec = compare_convergence({"m": [1.0, 0.1, 0.9]})[0]
        assert not rec.converged

    def test_empty_curve_rejected(self):
        with pytest.raises(ValueError):
            compare_convergence({"m": []})


class TestTables:
    def test_alignment_and_content(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3.25]])
        lines = out.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.5000" in out and "xyz" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_table2_scaling_and_missing_cells(self):
        metrics = {
            ("uni", "arima", "containers"): {"mse": 0.004, "mae": 0.05},
            ("mul_exp", "rptcn", "machines"): {"mse": 0.005, "mae": 0.05},
        }
        out = format_table2(metrics)
        assert "0.4000" in out  # 0.004 x 100
        assert "-" in out  # missing machine cell for arima


class TestAscii:
    def test_sparkline_length_capped(self, rng):
        out = render_ascii_series(rng.random(1000), width=40)
        chart = out.split("] ")[-1]
        assert len(chart) <= 40

    def test_monotone_series_renders_monotone(self):
        out = render_ascii_series(np.linspace(0, 1, 8), width=8)
        chart = out.split("] ")[-1]
        assert chart == "".join(sorted(chart))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_ascii_series(np.array([]))


class TestRows:
    def test_series_to_rows(self):
        rows = series_to_rows({"a": np.array([1.0, 2.0]), "b": np.array([3.0, 4.0])})
        assert rows[0] == ["t", "a", "b"]
        assert rows[1] == [0, 1.0, 3.0]
        assert rows[2] == [1, 2.0, 4.0]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            series_to_rows({"a": np.zeros(2), "b": np.zeros(3)})

    def test_empty(self):
        with pytest.raises(ValueError):
            series_to_rows({})
