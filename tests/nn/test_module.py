"""Module registration, traversal, mode switching and serialization."""

import numpy as np
import pytest

from repro.nn.layers import Dropout, Linear, Sequential
from repro.nn.losses import HuberLoss, MAELoss, MSELoss
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class Tiny(Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = Linear(3, 4, rng=rng)
        self.fc2 = Linear(4, 2, rng=rng)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


class TestRegistration:
    def test_named_parameters_dotted(self, rng):
        m = Tiny(rng)
        names = dict(m.named_parameters())
        assert "fc1.weight" in names and "fc2.bias" in names and "scale" in names

    def test_num_parameters(self, rng):
        m = Tiny(rng)
        assert m.num_parameters() == (3 * 4 + 4) + (4 * 2 + 2) + 1

    def test_modules_walk(self, rng):
        m = Tiny(rng)
        kinds = [type(x).__name__ for x in m.modules()]
        assert kinds == ["Tiny", "Linear", "Linear"]

    def test_reassignment_replaces(self, rng):
        m = Tiny(rng)
        m.fc1 = Linear(3, 4, rng=rng)
        assert len(list(m.parameters())) == 5  # not duplicated


class TestModes:
    def test_eval_train_deep(self, rng):
        m = Sequential(Linear(2, 2, rng=rng), Sequential(Dropout(0.5, rng=rng)))
        m.eval()
        assert all(not x.training for x in m.modules())
        m.train()
        assert all(x.training for x in m.modules())

    def test_zero_grad(self, rng):
        m = Tiny(rng)
        out = m(Tensor(rng.random((2, 3))))
        out.sum().backward()
        assert any(p.grad is not None for p in m.parameters())
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())


class TestSerialization:
    def test_state_dict_roundtrip(self, rng):
        m1, m2 = Tiny(rng), Tiny(np.random.default_rng(999))
        x = rng.random((2, 3))
        assert not np.allclose(m1(Tensor(x)).data, m2(Tensor(x)).data)
        m2.load_state_dict(m1.state_dict())
        np.testing.assert_array_equal(m1(Tensor(x)).data, m2(Tensor(x)).data)

    def test_state_dict_is_a_copy(self, rng):
        m = Tiny(rng)
        state = m.state_dict()
        state["scale"][...] = 42.0
        assert m.scale.data[0] == 1.0

    def test_mismatched_keys_raise(self, rng):
        m = Tiny(rng)
        state = m.state_dict()
        del state["scale"]
        with pytest.raises(KeyError, match="missing"):
            m.load_state_dict(state)

    def test_mismatched_shape_raises(self, rng):
        m = Tiny(rng)
        state = m.state_dict()
        state["scale"] = np.ones(3)
        with pytest.raises(ValueError, match="shape mismatch"):
            m.load_state_dict(state)

    def test_save_load_file(self, rng, tmp_path):
        m1, m2 = Tiny(rng), Tiny(np.random.default_rng(999))
        path = tmp_path / "weights.npz"
        m1.save(path)
        m2.load(path)
        x = rng.random((1, 3))
        np.testing.assert_array_equal(m1(Tensor(x)).data, m2(Tensor(x)).data)

    def test_save_load_extensionless_path(self, rng, tmp_path):
        m1, m2 = Tiny(rng), Tiny(np.random.default_rng(999))
        m1.save(tmp_path / "weights")  # np.savez appends .npz; load must agree
        assert (tmp_path / "weights.npz").exists()
        m2.load(tmp_path / "weights")
        np.testing.assert_array_equal(m1.scale.data, m2.scale.data)

    def test_save_load_float32_dtype_policy(self, rng, tmp_path):
        from repro.nn.tensor import dtype_policy

        with dtype_policy(np.float32):
            m1 = Tiny(np.random.default_rng(7)).to_dtype(np.float32)
            path = tmp_path / "f32.npz"
            m1.save(path)
            m2 = Tiny(np.random.default_rng(999)).to_dtype(np.float32)
            m2.load(path)
            for (_, a), (__, b) in zip(m1.named_parameters(), m2.named_parameters()):
                assert b.data.dtype == np.float32
                np.testing.assert_array_equal(a.data, b.data)
            x = rng.random((2, 3)).astype(np.float32)
            out = m2(Tensor(x))
            assert out.data.dtype == np.float32
            np.testing.assert_array_equal(m1(Tensor(x)).data, out.data)

    def test_load_missing_file_raises_filenotfound(self, rng, tmp_path):
        with pytest.raises(FileNotFoundError):
            Tiny(rng).load(tmp_path / "absent.npz")

    def test_load_corrupt_file_raises_clear_error(self, rng, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(ValueError, match="corrupt or truncated"):
            Tiny(rng).load(path)

    def test_load_truncated_file_raises_clear_error(self, rng, tmp_path):
        path = tmp_path / "weights.npz"
        m = Tiny(rng)
        m.save(path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(ValueError, match="corrupt or truncated"):
            Tiny(rng).load(path)

    def test_save_failure_leaves_no_temp_files(self, rng, tmp_path):
        m = Tiny(rng)
        path = tmp_path / "weights.npz"
        m.save(path)
        before = sorted(p.name for p in tmp_path.iterdir())
        m.save(path)  # overwrite goes through a temp file + os.replace
        assert sorted(p.name for p in tmp_path.iterdir()) == before == ["weights.npz"]


class TestLosses:
    def test_mse_value(self):
        loss = MSELoss()(Tensor([1.0, 2.0]), Tensor([0.0, 0.0]))
        assert loss.item() == pytest.approx((1 + 4) / 2)

    def test_mae_value(self):
        loss = MAELoss()(Tensor([1.0, -2.0]), Tensor([0.0, 0.0]))
        assert loss.item() == pytest.approx(1.5)

    def test_reductions(self):
        pred, target = Tensor([1.0, 3.0]), Tensor([0.0, 0.0])
        assert MSELoss(reduction="sum")(pred, target).item() == pytest.approx(10.0)
        per = MSELoss(reduction="none")(pred, target)
        np.testing.assert_array_equal(per.data, [1.0, 9.0])

    def test_invalid_reduction(self):
        with pytest.raises(ValueError):
            MSELoss(reduction="bogus")

    def test_huber_quadratic_then_linear(self):
        loss = HuberLoss(delta=1.0, reduction="none")
        out = loss(Tensor([0.5, 3.0]), Tensor([0.0, 0.0]))
        assert out.data[0] == pytest.approx(0.125)  # quadratic region
        assert out.data[1] == pytest.approx(3.0 - 0.5)  # linear region

    def test_huber_gradient_bounded(self):
        pred = Tensor(np.array([100.0]), requires_grad=True)
        HuberLoss(delta=1.0)(pred, Tensor([0.0])).backward()
        assert abs(pred.grad[0]) <= 1.0 + 1e-9

    def test_losses_backprop(self, rng):
        for loss_cls in (MSELoss, MAELoss, HuberLoss):
            pred = Tensor(rng.random(5), requires_grad=True)
            loss_cls()(pred, Tensor(rng.random(5))).backward()
            assert pred.grad is not None
