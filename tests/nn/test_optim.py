"""Optimizer, scheduler and clipping tests."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import (
    SGD,
    Adagrad,
    Adam,
    AdamW,
    CosineAnnealingLR,
    ExponentialLR,
    ReduceLROnPlateau,
    RMSprop,
    StepLR,
    clip_grad_norm,
    clip_grad_value,
)
from repro.nn.tensor import Tensor


def quadratic_param(start=5.0):
    """A parameter to be driven toward 0 by minimizing x^2."""
    return Parameter(np.array([start]))


def step_once(opt, p):
    p.grad = 2.0 * p.data  # d/dx x^2
    opt.step()


class TestSGD:
    def test_vanilla_step(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        step_once(opt, p)
        assert p.data[0] == pytest.approx(5.0 - 0.1 * 10.0)

    def test_momentum_accelerates(self):
        p1, p2 = quadratic_param(), quadratic_param()
        plain = SGD([p1], lr=0.01)
        mom = SGD([p2], lr=0.01, momentum=0.9)
        for _ in range(20):
            step_once(plain, p1)
            step_once(mom, p2)
        assert abs(p2.data[0]) < abs(p1.data[0])

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.1, nesterov=True)

    def test_skips_none_grads(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad set
        assert p.data[0] == 5.0

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.3)
        for _ in range(300):
            step_once(opt, p)
        assert abs(p.data[0]) < 1e-2

    def test_first_step_size_is_lr(self):
        # with bias correction, |first step| ~= lr regardless of grad scale
        for g in (1e-3, 1.0, 1e3):
            p = Parameter(np.array([0.0]))
            opt = Adam([p], lr=0.1)
            p.grad = np.array([g])
            opt.step()
            assert abs(p.data[0]) == pytest.approx(0.1, rel=1e-3)

    def test_adamw_decouples_decay(self):
        p = Parameter(np.array([1.0]))
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0])
        opt.step()
        # decoupled decay shrinks weight; Adam moment update of zero grad adds nothing
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([quadratic_param()], betas=(1.0, 0.9))


class TestRMSpropAdagrad:
    def test_rmsprop_converges(self):
        p = quadratic_param()
        opt = RMSprop([p], lr=0.05)
        for _ in range(200):
            step_once(opt, p)
        assert abs(p.data[0]) < 0.1

    def test_adagrad_step_shrinks_over_time(self):
        p = quadratic_param()
        opt = Adagrad([p], lr=0.5)
        step_once(opt, p)
        first_step = abs(5.0 - p.data[0])
        prev = p.data[0]
        step_once(opt, p)
        assert abs(prev - p.data[0]) < first_step


class TestSchedulers:
    def _opt(self):
        return SGD([quadratic_param()], lr=1.0)

    def test_step_lr(self):
        opt = self._opt()
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == pytest.approx(1.0)
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_exponential_lr(self):
        opt = self._opt()
        sched = ExponentialLR(opt, gamma=0.5)
        for _ in range(3):
            sched.step()
        assert opt.lr == pytest.approx(0.125)

    def test_cosine_reaches_eta_min(self):
        opt = self._opt()
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.01)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.01)

    def test_plateau_reduces_after_patience(self):
        opt = self._opt()
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=2)
        sched.step(1.0)  # establishes best
        for _ in range(3):  # 3 bad epochs > patience 2
            sched.step(1.0)
        assert opt.lr == pytest.approx(0.5)

    def test_plateau_respects_improvement(self):
        opt = self._opt()
        sched = ReduceLROnPlateau(opt, factor=0.5, patience=1)
        for metric in (1.0, 0.9, 0.8, 0.7):
            sched.step(metric)
        assert opt.lr == pytest.approx(1.0)


class TestClipping:
    def test_clip_norm_scales(self):
        p = Parameter(np.zeros(4))
        p.grad = np.array([3.0, 0.0, 4.0, 0.0])  # norm 5
        total = clip_grad_norm([p], max_norm=1.0)
        assert total == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_clip_norm_noop_when_small(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.3, 0.4])
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.3, 0.4])

    def test_clip_value(self):
        p = Parameter(np.zeros(3))
        p.grad = np.array([-5.0, 0.5, 5.0])
        clip_grad_value([p], 1.0)
        np.testing.assert_array_equal(p.grad, [-1.0, 0.5, 1.0])

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], 0.0)
        with pytest.raises(ValueError):
            clip_grad_value([], -1.0)
