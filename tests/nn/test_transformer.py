"""Transformer layer tests: causality, shapes, gradients, learning."""

import numpy as np
import pytest

from repro.nn.layers.transformer import (
    MultiHeadSelfAttention,
    TransformerEncoderBlock,
    positional_encoding,
)
from repro.nn.tensor import Tensor

from ..conftest import check_gradients


class TestPositionalEncoding:
    def test_shape_and_range(self):
        enc = positional_encoding(20, 16)
        assert enc.shape == (20, 16)
        assert np.abs(enc).max() <= 1.0

    def test_positions_distinct(self):
        enc = positional_encoding(50, 32)
        # no two positions share an encoding
        assert len(np.unique(enc.round(9), axis=0)) == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            positional_encoding(0, 8)


class TestMultiHeadSelfAttention:
    def test_output_shape(self, rng):
        layer = MultiHeadSelfAttention(16, n_heads=4, rng=rng)
        assert layer(Tensor(rng.random((3, 7, 16)))).shape == (3, 7, 16)

    def test_dim_divisibility(self, rng):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, n_heads=3, rng=rng)

    def test_causal_masking_no_future_leak(self, rng):
        layer = MultiHeadSelfAttention(8, n_heads=2, causal=True, rng=rng)
        x = rng.random((1, 10, 8))
        base = layer(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 7, :] += 5.0
        out = layer(Tensor(x2)).data
        np.testing.assert_allclose(out[0, :7], base[0, :7], atol=1e-12)
        assert not np.allclose(out[0, 7:], base[0, 7:])

    def test_non_causal_attends_everywhere(self, rng):
        layer = MultiHeadSelfAttention(8, n_heads=2, causal=False, rng=rng)
        x = rng.random((1, 6, 8))
        base = layer(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 5, :] += 5.0
        out = layer(Tensor(x2)).data
        assert not np.allclose(out[0, 0], base[0, 0])  # earlier steps change too

    def test_attention_rows_normalized(self, rng):
        layer = MultiHeadSelfAttention(8, n_heads=2, rng=rng)
        amap = layer.attention_map(Tensor(rng.random((2, 5, 8))))
        np.testing.assert_allclose(amap.sum(axis=-1), 1.0, atol=1e-9)
        # causal: strictly-upper entries are (numerically) zero
        upper = np.triu_indices(5, k=1)
        assert amap[..., upper[0], upper[1]].max() < 1e-6

    def test_gradients(self, rng):
        layer = MultiHeadSelfAttention(4, n_heads=2, rng=rng)
        x = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        check_gradients(lambda: (layer(x) ** 2).sum(), [x], atol=1e-4)


class TestEncoderBlock:
    def test_shape_preserved(self, rng):
        block = TransformerEncoderBlock(16, n_heads=4, rng=rng)
        block.eval()
        assert block(Tensor(rng.random((2, 9, 16)))).shape == (2, 9, 16)

    def test_residual_path_at_init(self, rng):
        """Pre-norm blocks keep the input signal flowing at init."""
        block = TransformerEncoderBlock(8, n_heads=2, dropout=0.0, rng=rng)
        block.eval()
        x = rng.standard_normal((1, 5, 8))
        out = block(Tensor(x)).data
        # output correlates strongly with input thanks to the residuals
        corr = np.corrcoef(out.ravel(), x.ravel())[0, 1]
        assert corr > 0.5

    def test_backprop_through_stack(self, rng):
        block = TransformerEncoderBlock(8, n_heads=2, dropout=0.0, rng=rng)
        x = Tensor(rng.random((2, 4, 8)), requires_grad=True)
        (block(x) ** 2).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in block.parameters())


class TestTransformerForecaster:
    def test_learns_sine(self):
        from repro.models import TransformerForecaster

        from ..models.test_deep_models import sine_windows

        x, y = sine_windows()
        m = TransformerForecaster(dim=16, n_heads=2, n_blocks=1, epochs=25, seed=4)
        m.fit(x[:250], y[:250], x[250:320], y[250:320])
        pred = m.predict(x[320:])
        mse = np.mean((pred - y[320:]) ** 2)
        const = np.mean((y[320:] - y[:250].mean()) ** 2)
        assert mse < 0.5 * const

    def test_registered(self):
        from repro.models import FORECASTER_REGISTRY

        assert "transformer" in FORECASTER_REGISTRY
