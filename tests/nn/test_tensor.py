"""Unit tests for the autograd Tensor: forward values and graph mechanics."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, is_grad_enabled, no_grad


class TestConstruction:
    def test_wraps_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_factories(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert Tensor.ones(4).data.sum() == 4.0
        r = Tensor.randn(5, 2, rng=np.random.default_rng(0))
        assert r.shape == (5, 2)

    def test_ensure_passthrough(self):
        t = Tensor([1.0])
        assert Tensor.ensure(t) is t
        assert isinstance(Tensor.ensure(2.0), Tensor)

    def test_item_and_len(self):
        assert Tensor([[3.5]]).item() == 3.5
        assert len(Tensor([1, 2, 3])) == 3


class TestArithmeticForward:
    def test_add_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.arange(3.0))
        np.testing.assert_array_equal(
            (a + b).data, np.broadcast_to(1.0 + np.arange(3.0), (2, 3))
        )

    def test_scalar_radd_rmul(self):
        t = Tensor([2.0])
        assert (3.0 + t).data[0] == 5.0
        assert (3.0 * t).data[0] == 6.0

    def test_sub_rsub(self):
        t = Tensor([2.0])
        assert (t - 1.0).data[0] == 1.0
        assert (1.0 - t).data[0] == -1.0

    def test_div_rdiv(self):
        t = Tensor([4.0])
        assert (t / 2.0).data[0] == 2.0
        assert (2.0 / t).data[0] == 0.5

    def test_pow(self):
        np.testing.assert_allclose((Tensor([3.0]) ** 2).data, [9.0])

    def test_pow_tensor_exponent_rejected(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([3.0])

    def test_matmul_2d(self):
        a = np.arange(6.0).reshape(2, 3)
        b = np.arange(12.0).reshape(3, 4)
        np.testing.assert_array_equal((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_neg(self):
        np.testing.assert_array_equal((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])


class TestBackwardBasics:
    def test_scalar_chain(self):
        x = Tensor(3.0, requires_grad=True)
        y = x * x + 2.0 * x + 1.0
        y.backward()
        assert x.grad == pytest.approx(2 * 3.0 + 2.0)

    def test_non_scalar_backward_requires_grad_arg(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(RuntimeError):
            y.backward()

    def test_backward_on_constant_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_grad_accumulates_across_uses(self):
        x = Tensor(2.0, requires_grad=True)
        y = x + x  # dy/dx = 2
        y.backward()
        assert x.grad == pytest.approx(2.0)

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor(2.0, requires_grad=True)
        (x * 3.0).backward()
        (x * 3.0).backward()
        assert x.grad == pytest.approx(6.0)

    def test_zero_grad(self):
        x = Tensor(2.0, requires_grad=True)
        (x * 3.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_broadcast_add_unbroadcasts_grad(self):
        a = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones((4, 3)))
        np.testing.assert_array_equal(b.grad, 4.0 * np.ones(3))

    def test_broadcast_keepdim_axis(self):
        a = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.ones((4, 1)), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_array_equal(b.grad, 3.0 * np.ones((4, 1)))

    def test_deep_chain_no_recursion_error(self):
        # iterative topo sort must survive chains far beyond Python's
        # default recursion limit (long BPTT)
        x = Tensor(1.0, requires_grad=True)
        y = x
        for _ in range(5000):
            y = y + 0.0
        y.backward()
        assert x.grad == pytest.approx(1.0)

    def test_diamond_graph(self):
        x = Tensor(3.0, requires_grad=True)
        a = x * 2.0
        b = x * 5.0
        (a * b).backward()  # d/dx (10 x^2) = 20x
        assert x.grad == pytest.approx(60.0)


class TestNoGrad:
    def test_disables_graph(self):
        x = Tensor(1.0, requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._parents == ()

    def test_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_detach(self):
        x = Tensor([1.0], requires_grad=True)
        d = x.detach()
        assert not d.requires_grad
        assert d.data is x.data


class TestReductions:
    def test_sum_axis_values(self):
        x = Tensor(np.arange(6.0).reshape(2, 3))
        np.testing.assert_array_equal(x.sum(axis=0).data, [3.0, 5.0, 7.0])

    def test_mean_matches_numpy(self):
        x = np.random.default_rng(0).random((3, 4))
        np.testing.assert_allclose(Tensor(x).mean(axis=1).data, x.mean(axis=1))

    def test_var(self):
        x = np.random.default_rng(0).random((5, 3))
        np.testing.assert_allclose(Tensor(x).var(axis=0).data, x.var(axis=0))

    def test_max_min(self):
        x = np.array([[1.0, 5.0], [3.0, 2.0]])
        assert Tensor(x).max().item() == 5.0
        assert Tensor(x).min().item() == 1.0
        np.testing.assert_array_equal(Tensor(x).max(axis=0).data, [3.0, 5.0])

    def test_max_ties_split_gradient(self):
        x = Tensor(np.array([2.0, 2.0, 1.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5, 0.0])


class TestShapeOps:
    def test_reshape_roundtrip_grad(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones(6))

    def test_transpose_default_reverses(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.transpose().shape == (4, 3, 2)

    def test_swapaxes(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.swapaxes(1, 2).shape == (2, 4, 3)

    def test_getitem_grad_scatter(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        x[1:3].sum().backward()
        np.testing.assert_array_equal(x.grad, [0, 1, 1, 0, 0])

    def test_getitem_repeated_index_accumulates(self):
        x = Tensor(np.arange(3.0), requires_grad=True)
        x[np.array([0, 0, 1])].sum().backward()
        np.testing.assert_array_equal(x.grad, [2, 1, 0])

    def test_pad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        p = x.pad(((1, 1), (0, 2)))
        assert p.shape == (4, 4)
        p.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones((2, 2)))

    def test_flatten_from(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.flatten_from(1).shape == (2, 12)


class TestCombinators:
    def test_concatenate_grads(self):
        a = Tensor(np.ones(2), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        c = Tensor.concatenate([a, b])
        assert c.shape == (5,)
        (c * np.arange(5.0)).sum().backward()
        np.testing.assert_array_equal(a.grad, [0, 1])
        np.testing.assert_array_equal(b.grad, [2, 3, 4])

    def test_stack(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        s = Tensor.stack([a, b], axis=0)
        assert s.shape == (2, 3)
        s.sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones(3))

    def test_where(self):
        cond = np.array([True, False, True])
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        w = Tensor.where(cond, a, b)
        np.testing.assert_array_equal(w.data, [1, 0, 1])
        w.sum().backward()
        np.testing.assert_array_equal(a.grad, [1, 0, 1])
        np.testing.assert_array_equal(b.grad, [0, 1, 0])


class TestElementwise:
    def test_sigmoid_stable_at_extremes(self):
        t = Tensor([-1000.0, 0.0, 1000.0]).sigmoid()
        np.testing.assert_allclose(t.data, [0.0, 0.5, 1.0], atol=1e-12)

    def test_relu(self):
        np.testing.assert_array_equal(
            Tensor([-1.0, 0.0, 2.0]).relu().data, [0.0, 0.0, 2.0]
        )

    def test_clip(self):
        np.testing.assert_array_equal(
            Tensor([-2.0, 0.5, 2.0]).clip(0.0, 1.0).data, [0.0, 0.5, 1.0]
        )

    def test_abs(self):
        np.testing.assert_array_equal(Tensor([-2.0, 3.0]).abs().data, [2.0, 3.0])

    def test_exp_log_inverse(self):
        x = np.array([0.5, 1.5])
        np.testing.assert_allclose(Tensor(x).log().exp().data, x)

    def test_comparisons_return_bool_arrays(self):
        x = Tensor([1.0, 2.0, 3.0])
        assert (x > 1.5).tolist() == [False, True, True]
        assert (x <= 2.0).tolist() == [True, True, False]
