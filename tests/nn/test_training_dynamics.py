"""Training-dynamics regression tests for the deep stack.

Guards the properties the reproduction's claims rest on: RPTCN's small
initial loss (zero head), gradient flow through every component, and the
weight-norm reparameterization staying stable over optimization.
"""

import numpy as np
import pytest

from repro.models import RPTCNForecaster
from repro.models.rptcn import RPTCN
from repro.nn.losses import MSELoss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


@pytest.fixture
def tiny_data(rng):
    x = rng.random((48, 10, 4))
    y = x[:, -1, 0:1] * 0.8 + 0.1
    return x, y


class TestInitialization:
    def test_initial_predictions_zero(self, rng, tiny_data):
        x, _ = tiny_data
        net = RPTCN(4, channels=(8, 8), rng=rng)
        net.eval()
        out = net(Tensor(x))
        np.testing.assert_array_equal(out.data, 0.0)

    def test_initial_loss_bounded_by_target_power(self, rng, tiny_data):
        """With a zero head, initial MSE = E[y^2] exactly."""
        x, y = tiny_data
        net = RPTCN(4, channels=(8, 8), rng=rng)
        net.eval()
        loss = MSELoss()(net(Tensor(x)), Tensor(y)).item()
        assert loss == pytest.approx(float((y**2).mean()))


class TestGradientFlow:
    def test_every_parameter_receives_gradient(self, rng, tiny_data):
        x, y = tiny_data
        net = RPTCN(4, channels=(8, 8), fc_units=16, rng=rng)
        loss = MSELoss()(net(Tensor(x)), Tensor(y))
        loss.backward()
        dead = [n for n, p in net.named_parameters() if p.grad is None]
        assert not dead, f"parameters with no gradient: {dead}"

    def test_nonzero_gradients_beyond_head(self, rng, tiny_data):
        """The zero head must not block gradients into the backbone.

        (dLoss/dbackbone flows through head.weight's *gradient*, so after
        ONE step the head is nonzero and the backbone starts to learn.)
        """
        x, y = tiny_data
        net = RPTCN(4, channels=(8, 8), rng=rng)
        opt = Adam(net.parameters(), lr=1e-2)
        loss_fn = MSELoss()
        for _ in range(2):
            opt.zero_grad()
            loss_fn(net(Tensor(x)), Tensor(y)).backward()
            opt.step()
        # second step: backbone parameters have nonzero grads
        grads = {n: p.grad for n, p in net.named_parameters() if "backbone" in n}
        assert any(g is not None and np.abs(g).max() > 0 for g in grads.values())


class TestStability:
    def test_short_training_never_nan(self, rng, tiny_data):
        x, y = tiny_data
        m = RPTCNForecaster(channels=(8, 8), epochs=8, seed=0, lr=5e-3)
        m.fit(x, y)
        assert np.isfinite(m.history.train_loss).all()
        pred = m.predict(x)
        assert np.isfinite(pred).all()

    def test_weight_norm_g_stays_finite(self, rng, tiny_data):
        x, y = tiny_data
        m = RPTCNForecaster(channels=(8, 8), epochs=6, seed=1)
        m.fit(x, y)
        for name, p in m.model.named_parameters():
            assert np.isfinite(p.data).all(), f"{name} became non-finite"

    def test_loss_decreases(self, rng, tiny_data):
        x, y = tiny_data
        m = RPTCNForecaster(channels=(8, 8), epochs=15, seed=2)
        m.fit(x, y)
        losses = m.history.train_loss
        assert losses[-1] < losses[0]
