"""Finite-difference gradient checks for every differentiable op and layer.

These are the load-bearing tests of the nn substrate: if backward rules
are right, training correctness reduces to optimizer arithmetic.
"""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import (
    GRU,
    LSTM,
    BahdanauAttention,
    BatchNorm1d,
    CausalConv1d,
    FeatureAttention,
    LayerNorm,
    LuongAttention,
    TemporalAttention,
    WeightNormConv1d,
)
from repro.nn.tensor import Tensor

from ..conftest import check_gradients


def leaf(rng, *shape) -> Tensor:
    return Tensor(rng.standard_normal(shape), requires_grad=True)


class TestElementwiseGrads:
    @pytest.mark.parametrize(
        "op",
        [
            lambda x: x.exp(),
            lambda x: x.tanh(),
            lambda x: x.sigmoid(),
            lambda x: x.relu(),
            lambda x: x.abs(),
            lambda x: x.sqrt().sum() + x.log(),  # positive-domain combo
            lambda x: x**3,
            lambda x: x.clip(-0.5, 0.5),
        ],
    )
    def test_unary(self, rng, op):
        x = Tensor(rng.random((3, 4)) + 0.5, requires_grad=True)  # keep positive
        check_gradients(lambda: op(Tensor.ensure(x)).sum(), [x])

    def test_binary_broadcast(self, rng):
        a = leaf(rng, 2, 3)
        b = leaf(rng, 3)
        check_gradients(lambda: (a * b + a / (b.abs() + 2.0) - b).sum(), [a, b])

    def test_where(self, rng):
        a = leaf(rng, 4)
        b = leaf(rng, 4)
        cond = np.array([True, False, True, False])
        check_gradients(lambda: (Tensor.where(cond, a * 2.0, b * 3.0) ** 2).sum(), [a, b])


class TestMatmulGrads:
    def test_2d_2d(self, rng):
        a, b = leaf(rng, 3, 4), leaf(rng, 4, 2)
        check_gradients(lambda: ((a @ b) ** 2).sum(), [a, b])

    def test_batched(self, rng):
        a, b = leaf(rng, 2, 3, 4), leaf(rng, 2, 4, 2)
        check_gradients(lambda: ((a @ b) ** 2).sum(), [a, b])

    def test_batched_broadcast(self, rng):
        a, b = leaf(rng, 2, 3, 4), leaf(rng, 4, 2)
        check_gradients(lambda: ((a @ b) ** 2).sum(), [a, b])

    def test_1d_1d(self, rng):
        a, b = leaf(rng, 5), leaf(rng, 5)
        check_gradients(lambda: (a @ b) * 2.0, [a, b])

    def test_1d_2d(self, rng):
        a, b = leaf(rng, 3), leaf(rng, 3, 4)
        check_gradients(lambda: ((a @ b) ** 2).sum(), [a, b])

    def test_2d_1d(self, rng):
        a, b = leaf(rng, 3, 4), leaf(rng, 4)
        check_gradients(lambda: ((a @ b) ** 2).sum(), [a, b])


class TestReductionGrads:
    @pytest.mark.parametrize("axis", [None, 0, 1, (0, 1)])
    def test_sum(self, rng, axis):
        x = leaf(rng, 3, 4)
        check_gradients(lambda: (x.sum(axis=axis) ** 2).sum(), [x])

    @pytest.mark.parametrize("keepdims", [True, False])
    def test_mean(self, rng, keepdims):
        x = leaf(rng, 2, 5)
        check_gradients(lambda: (x.mean(axis=1, keepdims=keepdims) ** 2).sum(), [x])

    def test_var(self, rng):
        x = leaf(rng, 4, 3)
        check_gradients(lambda: x.var(axis=0).sum(), [x])

    def test_max(self, rng):
        # distinct values so finite differences don't straddle ties
        x = Tensor(rng.permutation(12.0 * np.arange(12)).reshape(3, 4), requires_grad=True)
        check_gradients(lambda: (x.max(axis=0) ** 2).sum(), [x])

    def test_min(self, rng):
        x = Tensor(rng.permutation(7.0 * np.arange(8)).reshape(2, 4), requires_grad=True)
        check_gradients(lambda: x.min(axis=1).sum(), [x])


class TestFunctionalGrads:
    def test_softmax(self, rng):
        x = leaf(rng, 3, 5)
        w = rng.standard_normal((3, 5))
        check_gradients(lambda: (F.softmax(Tensor.ensure(x), axis=-1) * w).sum(), [x])

    def test_log_softmax(self, rng):
        x = leaf(rng, 2, 4)
        w = rng.standard_normal((2, 4))
        check_gradients(lambda: (F.log_softmax(Tensor.ensure(x), axis=-1) * w).sum(), [x])

    @pytest.mark.parametrize("dilation,padding", [(1, 0), (2, (4, 0)), (1, 1), (3, (6, 0))])
    def test_conv1d(self, rng, dilation, padding):
        x = leaf(rng, 2, 3, 12)
        w = leaf(rng, 4, 3, 3)
        b = leaf(rng, 4)
        check_gradients(
            lambda: (F.conv1d(x, w, b, padding=padding, dilation=dilation) ** 2).sum(),
            [x, w, b],
        )

    def test_conv1d_stride(self, rng):
        x = leaf(rng, 1, 2, 10)
        w = leaf(rng, 3, 2, 3)
        check_gradients(lambda: (F.conv1d(x, w, stride=2) ** 2).sum(), [x, w])

    def test_max_pool1d(self, rng):
        x = Tensor(rng.permutation(24.0 * np.arange(24)).reshape(1, 2, 12), requires_grad=True)
        check_gradients(lambda: (F.max_pool1d(x, 3) ** 2).sum(), [x])

    def test_avg_pool1d(self, rng):
        x = leaf(rng, 2, 3, 8)
        check_gradients(lambda: (F.avg_pool1d(x, 2) ** 2).sum(), [x])


class TestLayerGrads:
    def test_weight_norm_conv(self, rng):
        layer = WeightNormConv1d(2, 3, 3, dilation=2, rng=rng)
        x = leaf(rng, 2, 2, 9)
        params = [layer.v, layer.g, layer.bias, x]
        check_gradients(lambda: (layer(x) ** 2).sum(), params)

    def test_layer_norm(self, rng):
        layer = LayerNorm(6)
        x = leaf(rng, 3, 6)
        check_gradients(lambda: (layer(x) ** 2).sum(), [x, layer.gamma, layer.beta])

    def test_batch_norm_train_mode(self, rng):
        layer = BatchNorm1d(4)
        x = leaf(rng, 5, 4)

        def loss():
            # freeze running stats side effects out of the probe
            layer.running_mean = np.zeros(4)
            layer.running_var = np.ones(4)
            return (layer(x) ** 2).sum()

        check_gradients(loss, [x, layer.gamma, layer.beta])

    def test_feature_attention(self, rng):
        layer = FeatureAttention(5, rng=rng)
        x = leaf(rng, 3, 5)
        check_gradients(
            lambda: (layer(x) ** 2).sum(), [x, layer.score.weight, layer.score.bias]
        )

    def test_temporal_attention(self, rng):
        layer = TemporalAttention(4, hidden=3, rng=rng)
        x = leaf(rng, 2, 6, 4)
        check_gradients(lambda: (layer(x) ** 2).sum(), [x, layer.proj.weight])

    def test_bahdanau_attention(self, rng):
        layer = BahdanauAttention(4, 3, hidden=5, rng=rng)
        keys = leaf(rng, 2, 6, 4)
        query = leaf(rng, 2, 3)
        check_gradients(lambda: (layer(keys, query) ** 2).sum(), [keys, query])

    def test_luong_attention_general(self, rng):
        layer = LuongAttention(4, 3, mode="general", rng=rng)
        keys = leaf(rng, 2, 5, 4)
        query = leaf(rng, 2, 3)
        check_gradients(lambda: (layer(keys, query) ** 2).sum(), [keys, query])

    def test_causal_conv_layer(self, rng):
        layer = CausalConv1d(2, 2, 3, dilation=2, rng=rng)
        x = leaf(rng, 1, 2, 10)
        check_gradients(lambda: (layer(x) ** 2).sum(), [x, layer.weight, layer.bias])

    def test_lstm_through_time(self, rng):
        layer = LSTM(2, 3, rng=rng)
        x = leaf(rng, 2, 4, 2)
        params = [x] + list(layer.parameters())
        check_gradients(lambda: (layer(x) ** 2).sum(), params, atol=1e-4)

    def test_gru_through_time(self, rng):
        layer = GRU(2, 3, rng=rng)
        x = leaf(rng, 2, 4, 2)
        params = [x] + list(layer.parameters())
        check_gradients(lambda: (layer(x) ** 2).sum(), params, atol=1e-4)
