"""Parity suite for the substrate's fast kernels.

The conv1d GEMM/fold kernels and the fused LSTM sequence kernel replace
slower but transparently correct implementations (per-call einsum with
``optimize=True``, ``np.add.at`` scatter, stepwise autograd cells). These
tests pin the fast paths to naive references across a grid of
stride/dilation/padding/kernel-size combinations, and check the fused
LSTM's hand-written BPTT against the stepwise autograd chain.
"""

import itertools

import numpy as np
import pytest

from repro.nn import _plans
from repro.nn import functional as F
from repro.nn.layers import LSTM, LSTMCell
from repro.nn.tensor import Tensor, no_grad

# ---------------------------------------------------------------------------
# references
# ---------------------------------------------------------------------------


def naive_conv1d(x, w, b, stride, padding, dilation):
    """Loop-nest reference for 1-D cross-correlation (no vectorization)."""
    pad_l, pad_r = padding if isinstance(padding, tuple) else (padding, padding)
    xp = np.pad(x, ((0, 0), (0, 0), (pad_l, pad_r)))
    n, c_in, length = xp.shape
    c_out, _, k = w.shape
    l_out = (length - (k - 1) * dilation - 1) // stride + 1
    out = np.zeros((n, c_out, l_out))
    for ni in range(n):
        for oi in range(c_out):
            for ti in range(l_out):
                acc = 0.0 if b is None else b[oi]
                for ci in range(c_in):
                    for ki in range(k):
                        acc += w[oi, ci, ki] * xp[ni, ci, ti * stride + ki * dilation]
                out[ni, oi, ti] = acc
    return out


def einsum_conv1d_with_grads(x, w, b, grad_out, stride, padding, dilation):
    """The pre-change conv1d path: einsum(optimize=True) + np.add.at scatter."""
    pad_l, pad_r = padding if isinstance(padding, tuple) else (padding, padding)
    n, c_in, length = x.shape
    c_out, _, k = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (pad_l, pad_r)))
    idx = np.asarray(_plans.gather_indices(xp.shape[-1], k, dilation, stride))
    cols = xp[:, :, idx]
    out = np.einsum("oik,nikt->not", w, cols, optimize=True)
    if b is not None:
        out = out + b[None, :, None]
    gw = np.einsum("not,nikt->oik", grad_out, cols, optimize=True)
    gb = grad_out.sum(axis=(0, 2))
    gcols = np.einsum("oik,not->nikt", w, grad_out, optimize=True)
    gxp = np.zeros((n, c_in, length + pad_l + pad_r))
    np.add.at(gxp, (slice(None), slice(None), idx), gcols)
    gx = gxp[:, :, pad_l : pad_l + length]
    return out, gx, gw, gb


CONV_GRID = [
    (k, stride, dilation, padding)
    for k, stride, dilation, padding in itertools.product(
        [1, 2, 3, 5], [1, 2, 3], [1, 2, 3], [0, 2, (3, 0), (1, 2)]
    )
]


@pytest.mark.parametrize("k,stride,dilation,padding", CONV_GRID)
def test_conv1d_forward_matches_naive_reference(k, stride, dilation, padding):
    rng = np.random.default_rng(k * 100 + stride * 10 + dilation)
    x = rng.standard_normal((2, 3, 20))
    w = rng.standard_normal((4, 3, k))
    b = rng.standard_normal(4)
    out = F.conv1d(
        Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding, dilation=dilation
    )
    ref = naive_conv1d(x, w, b, stride, padding, dilation)
    np.testing.assert_allclose(out.data, ref, atol=1e-10)


@pytest.mark.parametrize("k,stride,dilation,padding", CONV_GRID)
def test_conv1d_backward_matches_prechange_einsum_path(k, stride, dilation, padding):
    rng = np.random.default_rng(k * 1000 + stride * 10 + dilation)
    x = rng.standard_normal((2, 3, 20))
    w = rng.standard_normal((4, 3, k))
    b = rng.standard_normal(4)

    xt = Tensor(x, requires_grad=True)
    wt = Tensor(w, requires_grad=True)
    bt = Tensor(b, requires_grad=True)
    out = F.conv1d(xt, wt, bt, stride=stride, padding=padding, dilation=dilation)
    grad_out = np.asarray(
        np.random.default_rng(7).standard_normal(out.shape), dtype=np.float64
    )
    out.backward(grad_out)

    ref_out, gx, gw, gb = einsum_conv1d_with_grads(
        x, w, b, grad_out, stride, padding, dilation
    )
    np.testing.assert_allclose(out.data, ref_out, atol=1e-10)
    np.testing.assert_allclose(xt.grad, gx, atol=1e-10)
    np.testing.assert_allclose(wt.grad, gw, atol=1e-10)
    np.testing.assert_allclose(bt.grad, gb, atol=1e-10)


def test_fold_cols_is_bit_exact_against_add_at():
    """The strided-slice fold must reproduce np.add.at exactly, not approximately."""
    rng = np.random.default_rng(0)
    for k, stride, dilation in itertools.product([1, 3, 5], [1, 2], [1, 2, 4]):
        length = 30
        idx = np.asarray(_plans.gather_indices(length, k, dilation, stride))
        gcols = rng.standard_normal((2, 3, k, idx.shape[1]))
        ref = np.zeros((2, 3, length))
        np.add.at(ref, (slice(None), slice(None), idx), gcols)
        fold = _plans.fold_cols(gcols, length, stride, dilation)
        np.testing.assert_array_equal(fold, ref)


def test_planned_einsum_matches_einsum():
    rng = np.random.default_rng(1)
    a = rng.standard_normal((4, 5, 6))
    b = rng.standard_normal((6, 3))
    got = _plans.planned_einsum("ijk,kl->ijl", a, b)
    np.testing.assert_allclose(got, np.einsum("ijk,kl->ijl", a, b), atol=0)
    # plan cache is keyed on the shape signature, so a second shape works too
    c = rng.standard_normal((2, 2, 6))
    np.testing.assert_allclose(
        _plans.planned_einsum("ijk,kl->ijl", c, b), np.einsum("ijk,kl->ijl", c, b), atol=0
    )


# ---------------------------------------------------------------------------
# fused LSTM vs stepwise reference
# ---------------------------------------------------------------------------


def stepwise_lstm_forward(cell: LSTMCell, x: Tensor) -> Tensor:
    """The pre-change LSTM layer loop: one autograd cell call per step."""
    n, t, _ = x.shape
    st = None
    outputs = []
    for step in range(t):
        h, c = cell(x[:, step, :], st)
        st = (h, c)
        outputs.append(h)
    return Tensor.stack(outputs, axis=1)


def test_fused_lstm_forward_matches_stepwise():
    rng = np.random.default_rng(3)
    cell = LSTMCell(4, 6, rng=rng)
    x = rng.standard_normal((5, 9, 4))
    fused = F.lstm(Tensor(x), cell.w_ih, cell.w_hh, cell.bias)
    stepwise = stepwise_lstm_forward(cell, Tensor(x))
    np.testing.assert_allclose(fused.data, stepwise.data, atol=1e-10)


def test_fused_lstm_gradients_match_stepwise():
    rng = np.random.default_rng(4)
    cell = LSTMCell(3, 5, rng=rng)
    x = rng.standard_normal((4, 7, 3))

    xt = Tensor(x, requires_grad=True)
    out = F.lstm(xt, cell.w_ih, cell.w_hh, cell.bias)
    (out * out).sum().backward()
    fused_grads = {
        "x": xt.grad.copy(),
        "w_ih": cell.w_ih.grad.copy(),
        "w_hh": cell.w_hh.grad.copy(),
        "bias": cell.bias.grad.copy(),
    }

    cell.zero_grad()
    xt2 = Tensor(x, requires_grad=True)
    out2 = stepwise_lstm_forward(cell, xt2)
    (out2 * out2).sum().backward()

    np.testing.assert_allclose(fused_grads["x"], xt2.grad, atol=1e-9)
    np.testing.assert_allclose(fused_grads["w_ih"], cell.w_ih.grad, atol=1e-9)
    np.testing.assert_allclose(fused_grads["w_hh"], cell.w_hh.grad, atol=1e-9)
    np.testing.assert_allclose(fused_grads["bias"], cell.bias.grad, atol=1e-9)


def test_fused_lstm_initial_state_gradients():
    rng = np.random.default_rng(5)
    cell = LSTMCell(3, 4, rng=rng)
    x = rng.standard_normal((2, 6, 3))
    h0 = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
    c0 = Tensor(rng.standard_normal((2, 4)), requires_grad=True)

    out = F.lstm(Tensor(x), cell.w_ih, cell.w_hh, cell.bias, state=(h0, c0))
    (out * out).sum().backward()
    fused_h0, fused_c0 = h0.grad.copy(), c0.grad.copy()

    cell.zero_grad()
    h0b = Tensor(h0.data.copy(), requires_grad=True)
    c0b = Tensor(c0.data.copy(), requires_grad=True)
    st = (h0b, c0b)
    outputs = []
    for step in range(x.shape[1]):
        h, c = cell(Tensor(x[:, step, :]), st)
        st = (h, c)
        outputs.append(h)
    out2 = Tensor.stack(outputs, axis=1)
    (out2 * out2).sum().backward()

    np.testing.assert_allclose(fused_h0, h0b.grad, atol=1e-9)
    np.testing.assert_allclose(fused_c0, c0b.grad, atol=1e-9)


def test_fused_lstm_finite_difference_gradcheck():
    """Direct finite-difference check on the fused kernel's input gradient."""
    rng = np.random.default_rng(6)
    cell = LSTMCell(2, 3, rng=rng)
    x = rng.standard_normal((2, 4, 2))

    xt = Tensor(x, requires_grad=True)
    (F.lstm(xt, cell.w_ih, cell.w_hh, cell.bias).sum()).backward()
    analytic = xt.grad.copy()

    eps = 1e-6
    numeric = np.zeros_like(x)
    with no_grad():
        for pos in np.ndindex(x.shape):
            xp = x.copy()
            xp[pos] += eps
            up = F.lstm(Tensor(xp), cell.w_ih, cell.w_hh, cell.bias).data.sum()
            xp[pos] -= 2 * eps
            down = F.lstm(Tensor(xp), cell.w_ih, cell.w_hh, cell.bias).data.sum()
            numeric[pos] = (up - down) / (2 * eps)
    np.testing.assert_allclose(analytic, numeric, atol=1e-6)


def test_lstm_layer_inference_builds_no_graph():
    rng = np.random.default_rng(8)
    layer = LSTM(3, 4, num_layers=2, rng=rng)
    x = Tensor(rng.standard_normal((2, 5, 3)))
    with no_grad():
        out = layer(x)
    assert out._backward is None
    assert out._parents == ()
    assert not out.requires_grad
    # and matches the grad-mode forward exactly
    out_grad_mode = layer(x)
    np.testing.assert_array_equal(out.data, out_grad_mode.data)


def test_conv1d_inference_builds_no_graph():
    rng = np.random.default_rng(9)
    x = Tensor(rng.standard_normal((2, 3, 12)))
    w = Tensor(rng.standard_normal((4, 3, 3)), requires_grad=True)
    with no_grad():
        out = F.conv1d(x, w, padding=(2, 0), dilation=1)
    assert out._backward is None and out._parents == ()
    out2 = F.conv1d(x, w, padding=(2, 0), dilation=1)
    np.testing.assert_array_equal(out.data, out2.data)
