"""LSTM / GRU behavioural tests."""

import numpy as np
import pytest

from repro.nn.layers import GRU, LSTM, GRUCell, LSTMCell
from repro.nn.tensor import Tensor


class TestLSTMCell:
    def test_output_shapes(self, rng):
        cell = LSTMCell(3, 5, rng=rng)
        h, c = cell(Tensor(rng.random((4, 3))))
        assert h.shape == (4, 5)
        assert c.shape == (4, 5)

    def test_forget_bias_initialized_to_one(self, rng):
        cell = LSTMCell(3, 5, rng=rng)
        np.testing.assert_array_equal(cell.bias.data[5:10], np.ones(5))
        np.testing.assert_array_equal(cell.bias.data[:5], np.zeros(5))

    def test_state_threading(self, rng):
        cell = LSTMCell(2, 3, rng=rng)
        x = Tensor(rng.random((1, 2)))
        h1, c1 = cell(x)
        h2, c2 = cell(x, (h1, c1))
        assert not np.allclose(h1.data, h2.data)

    def test_hidden_bounded_by_tanh(self, rng):
        cell = LSTMCell(2, 4, rng=rng)
        h, _ = cell(Tensor(100.0 * rng.random((8, 2))))
        assert (np.abs(h.data) <= 1.0).all()


class TestLSTM:
    def test_sequence_shape(self, rng):
        layer = LSTM(3, 6, num_layers=2, rng=rng)
        out = layer(Tensor(rng.random((4, 9, 3))))
        assert out.shape == (4, 9, 6)

    def test_parameters_per_layer(self, rng):
        layer = LSTM(3, 4, num_layers=2, rng=rng)
        # 3 parameter tensors per cell (w_ih, w_hh, bias)
        assert len(list(layer.parameters())) == 6

    def test_causality(self, rng):
        """Output at step t must not depend on inputs after t."""
        layer = LSTM(2, 3, rng=rng)
        x = rng.random((1, 8, 2))
        base = layer(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 5, :] += 10.0
        out = layer(Tensor(x2)).data
        np.testing.assert_allclose(out[0, :5], base[0, :5])
        assert not np.allclose(out[0, 5:], base[0, 5:])

    def test_deterministic_given_rng_seed(self):
        a = LSTM(2, 3, rng=np.random.default_rng(7))
        b = LSTM(2, 3, rng=np.random.default_rng(7))
        x = np.random.default_rng(0).random((2, 5, 2))
        np.testing.assert_array_equal(a(Tensor(x)).data, b(Tensor(x)).data)

    def test_batch_independence(self, rng):
        """Each batch row is processed independently."""
        layer = LSTM(2, 3, rng=rng)
        x = rng.random((3, 6, 2))
        full = layer(Tensor(x)).data
        single = layer(Tensor(x[1:2])).data
        np.testing.assert_allclose(full[1:2], single, atol=1e-12)


class TestGRU:
    def test_sequence_shape(self, rng):
        layer = GRU(3, 5, num_layers=2, rng=rng)
        assert layer(Tensor(rng.random((2, 7, 3)))).shape == (2, 7, 5)

    def test_cell_interpolation_property(self, rng):
        """With update gate z -> 1, the GRU keeps its previous state."""
        cell = GRUCell(2, 3, rng=rng)
        # force z ~ 1 via a huge update-gate bias
        cell.b_ih.data[3:6] = 50.0
        h0 = Tensor(rng.random((1, 3)))
        h1 = cell(Tensor(rng.random((1, 2))), h0)
        np.testing.assert_allclose(h1.data, h0.data, atol=1e-6)

    def test_gru_causality(self, rng):
        layer = GRU(2, 3, rng=rng)
        x = rng.random((1, 6, 2))
        base = layer(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 4, :] += 5.0
        out = layer(Tensor(x2)).data
        np.testing.assert_allclose(out[0, :4], base[0, :4])


class TestTraining:
    def test_lstm_learns_identity_task(self, rng):
        """A small LSTM should learn to output the last input in a few steps."""
        from repro.nn.layers import Linear
        from repro.nn.losses import MSELoss
        from repro.nn.module import Module
        from repro.nn.optim import Adam

        class Net(Module):
            def __init__(self):
                super().__init__()
                self.lstm = LSTM(1, 8, rng=rng)
                self.head = Linear(8, 1, rng=rng)

            def forward(self, x):
                return self.head(self.lstm(x)[:, -1, :])

        net = Net()
        opt = Adam(net.parameters(), lr=1e-2)
        loss_fn = MSELoss()
        x = rng.random((64, 5, 1))
        y = x[:, -1, :]
        first = None
        for _ in range(60):
            opt.zero_grad()
            loss = loss_fn(net(Tensor(x)), Tensor(y))
            loss.backward()
            opt.step()
            first = first if first is not None else loss.item()
        assert loss.item() < 0.25 * first
