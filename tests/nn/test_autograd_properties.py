"""Hypothesis property tests on autograd algebraic identities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import functional as F
from repro.nn.tensor import Tensor

small = arrays(
    np.float64,
    st.tuples(st.integers(1, 5), st.integers(1, 5)),
    elements=st.floats(-5, 5, allow_nan=False, width=64),
)


def grad_of(expr_fn, x_data):
    x = Tensor(x_data, requires_grad=True)
    expr_fn(x).backward()
    return x.grad


class TestLinearity:
    @given(small, st.floats(-3, 3, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_backward_scales_with_constant(self, data, c):
        """d/dx [c * f(x)] = c * d/dx f(x)."""
        g1 = grad_of(lambda x: (x * x).sum(), data.copy())
        g2 = grad_of(lambda x: (x * x).sum() * c, data.copy())
        np.testing.assert_allclose(g2, c * g1, atol=1e-9)

    @given(small)
    @settings(max_examples=60, deadline=None)
    def test_sum_of_grads_is_grad_of_sum(self, data):
        ga = grad_of(lambda x: (x * 2.0).sum(), data.copy())
        gb = grad_of(lambda x: (x * x).sum(), data.copy())
        gab = grad_of(lambda x: (x * 2.0).sum() + (x * x).sum(), data.copy())
        np.testing.assert_allclose(gab, ga + gb, atol=1e-9)

    @given(small)
    @settings(max_examples=40, deadline=None)
    def test_detach_blocks_gradient(self, data):
        x = Tensor(data, requires_grad=True)
        (x.detach() * x).sum().backward()
        # only the non-detached path contributes: grad = x.data
        np.testing.assert_allclose(x.grad, data, atol=1e-9)


class TestIdentities:
    @given(small)
    @settings(max_examples=40, deadline=None)
    def test_sigmoid_tanh_identity(self, data):
        """sigmoid(x) = (tanh(x/2) + 1) / 2, values and gradients."""
        a = Tensor(data.copy(), requires_grad=True)
        b = Tensor(data.copy(), requires_grad=True)
        sa = a.sigmoid()
        sb = (b * 0.5).tanh() * 0.5 + 0.5
        np.testing.assert_allclose(sa.data, sb.data, atol=1e-12)
        sa.sum().backward()
        sb.sum().backward()
        np.testing.assert_allclose(a.grad, b.grad, atol=1e-10)

    @given(small)
    @settings(max_examples=40, deadline=None)
    def test_softmax_shift_invariance(self, data):
        s1 = F.softmax(Tensor(data), axis=-1)
        s2 = F.softmax(Tensor(data + 1000.0), axis=-1)
        np.testing.assert_allclose(s1.data, s2.data, atol=1e-9)

    @given(small)
    @settings(max_examples=40, deadline=None)
    def test_log_softmax_consistency(self, data):
        ls = F.log_softmax(Tensor(data), axis=-1)
        s = F.softmax(Tensor(data), axis=-1)
        np.testing.assert_allclose(np.exp(ls.data), s.data, atol=1e-9)

    @given(small)
    @settings(max_examples=40, deadline=None)
    def test_mean_equals_sum_over_n(self, data):
        g_mean = grad_of(lambda x: x.mean(), data.copy())
        g_sum = grad_of(lambda x: x.sum(), data.copy())
        np.testing.assert_allclose(g_mean, g_sum / data.size, atol=1e-12)


class TestConvLinearity:
    @given(
        arrays(np.float64, (1, 2, 8), elements=st.floats(-2, 2, allow_nan=False, width=64)),
        arrays(np.float64, (3, 2, 3), elements=st.floats(-2, 2, allow_nan=False, width=64)),
        arrays(np.float64, (3, 2, 3), elements=st.floats(-2, 2, allow_nan=False, width=64)),
    )
    @settings(max_examples=30, deadline=None)
    def test_conv_linear_in_weights(self, x, w1, w2):
        """conv(x, w1 + w2) = conv(x, w1) + conv(x, w2)."""
        xt = Tensor(x)
        out_sum = F.conv1d(xt, Tensor(w1 + w2))
        out_parts = F.conv1d(xt, Tensor(w1)).data + F.conv1d(xt, Tensor(w2)).data
        np.testing.assert_allclose(out_sum.data, out_parts, atol=1e-9)

    @given(
        arrays(np.float64, (2, 1, 10), elements=st.floats(-2, 2, allow_nan=False, width=64))
    )
    @settings(max_examples=30, deadline=None)
    def test_identity_kernel(self, x):
        """A [1] kernel with no padding reproduces the input."""
        w = Tensor(np.ones((1, 1, 1)))
        out = F.conv1d(Tensor(x), w)
        np.testing.assert_allclose(out.data, x, atol=1e-12)

    @given(
        arrays(np.float64, (1, 1, 12), elements=st.floats(-2, 2, allow_nan=False, width=64))
    )
    @settings(max_examples=30, deadline=None)
    def test_shift_kernel_delays(self, x):
        """Causal [1, 0] kernel (weight on the oldest tap) delays by d."""
        w = np.zeros((1, 1, 2))
        w[0, 0, 0] = 1.0  # oldest tap
        d = 2
        out = F.conv1d(Tensor(x), Tensor(w), padding=(d, 0), dilation=d)
        np.testing.assert_allclose(out.data[0, 0, d:], x[0, 0, :-d], atol=1e-12)
        np.testing.assert_allclose(out.data[0, 0, :d], 0.0, atol=1e-12)
