"""Substrate configuration hooks: default-seed weight init and dtype policy."""

import numpy as np
import pytest

from repro.nn import (
    Linear,
    Tensor,
    default_rng,
    dtype_policy,
    get_default_dtype,
    set_default_dtype,
    set_default_seed,
)
from repro.nn.layers import LSTM, Conv1d


@pytest.fixture(autouse=True)
def _restore_global_config():
    yield
    set_default_seed(0)
    set_default_dtype(np.float64)


class TestDefaultSeedHook:
    def test_layers_without_rng_are_reproducible(self):
        set_default_seed(123)
        a = Conv1d(2, 3, kernel_size=3)
        set_default_seed(123)
        b = Conv1d(2, 3, kernel_size=3)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_applies_across_layer_families(self):
        set_default_seed(7)
        models_a = (Linear(4, 2), LSTM(3, 5), Conv1d(1, 1, 3))
        set_default_seed(7)
        models_b = (Linear(4, 2), LSTM(3, 5), Conv1d(1, 1, 3))
        for ma, mb in zip(models_a, models_b):
            for pa, pb in zip(ma.parameters(), mb.parameters()):
                np.testing.assert_array_equal(pa.data, pb.data)

    def test_stream_advances_between_constructions(self):
        set_default_seed(0)
        a = Linear(4, 4)
        b = Linear(4, 4)
        assert not np.array_equal(a.weight.data, b.weight.data)

    def test_default_rng_is_seeded_generator(self):
        set_default_seed(42)
        assert default_rng().uniform() == np.random.default_rng(42).uniform()


class TestDtypePolicy:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.dtype(np.float64)
        assert Tensor([1.0, 2.0]).dtype == np.float64

    def test_float32_policy_materializes_single_precision(self):
        with dtype_policy(np.float32):
            t = Tensor(np.arange(4.0))
            assert t.dtype == np.float32
            assert (t * t).dtype == np.float32
        assert Tensor([0.0]).dtype == np.float64

    def test_rejects_non_float_dtypes(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int64)

    def test_module_to_dtype_casts_parameters(self):
        layer = Linear(3, 2, rng=np.random.default_rng(0))
        layer.to_dtype(np.float32)
        assert all(p.dtype == np.float32 for p in layer.parameters())
        with dtype_policy(np.float32):
            layer.eval()
            from repro.nn.tensor import no_grad

            with no_grad():
                out = layer(Tensor(np.ones((2, 3))))
        assert out.dtype == np.float32

    def test_float32_inference_close_to_float64(self):
        rng = np.random.default_rng(1)
        layer = LSTM(3, 8, rng=rng)
        x = rng.standard_normal((4, 6, 3))
        from repro.nn.tensor import no_grad

        layer.eval()
        with no_grad():
            ref = layer(Tensor(x)).data
        layer.to_dtype(np.float32)
        with dtype_policy(np.float32), no_grad():
            got = layer(Tensor(x)).data
        layer.to_dtype(np.float64)
        assert got.dtype == np.float32
        np.testing.assert_allclose(got, ref, atol=1e-5)


class TestTrainerPredictPreallocation:
    def test_predict_matches_batched_concat(self):
        from repro.nn import MSELoss
        from repro.nn.optim import SGD
        from repro.training.trainer import Trainer

        rng = np.random.default_rng(2)
        model = Linear(5, 2, rng=rng)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1), MSELoss(), rng=rng)
        x = rng.standard_normal((23, 5))
        got = trainer.predict(x, batch_size=7)
        from repro.nn.tensor import no_grad

        model.eval()
        with no_grad():
            ref = model(Tensor(x)).data
        np.testing.assert_allclose(got, ref, atol=1e-12)
        assert got.shape == (23, 2)

    def test_predict_empty_input(self):
        from repro.nn import MSELoss
        from repro.nn.optim import SGD
        from repro.training.trainer import Trainer

        rng = np.random.default_rng(3)
        model = Linear(4, 1, rng=rng)
        trainer = Trainer(model, SGD(model.parameters(), lr=0.1), MSELoss(), rng=rng)
        out = trainer.predict(np.empty((0, 4)))
        assert out.shape[0] == 0
