"""Behavioural tests for layers: shapes, modes, invariants."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import (
    ELU,
    GELU,
    AvgPool1d,
    CausalConv1d,
    Conv1d,
    Dropout,
    Flatten,
    GlobalAvgPool1d,
    Lambda,
    LeakyReLU,
    Linear,
    MaxPool1d,
    ModuleList,
    ReLU,
    Sequential,
    Sigmoid,
    Softmax,
    SpatialDropout1d,
    Tanh,
    WeightNormConv1d,
)
from repro.nn.tensor import Tensor


class TestLinear:
    def test_shape(self, rng):
        layer = Linear(4, 7, rng=rng)
        assert layer(Tensor(rng.random((5, 4)))).shape == (5, 7)

    def test_batched_3d_input(self, rng):
        layer = Linear(4, 2, rng=rng)
        assert layer(Tensor(rng.random((3, 6, 4)))).shape == (3, 6, 2)

    def test_wrong_width_raises(self, rng):
        layer = Linear(4, 2, rng=rng)
        with pytest.raises(ValueError, match="last dim"):
            layer(Tensor(rng.random((5, 3))))

    def test_no_bias(self, rng):
        layer = Linear(3, 2, bias=False, rng=rng)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((1, 3))))
        np.testing.assert_array_equal(out.data, np.zeros((1, 2)))

    def test_matches_manual_affine(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.random((4, 3))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)


class TestConv:
    def test_causal_preserves_length(self, rng):
        for k, d in [(2, 1), (3, 2), (5, 4)]:
            layer = CausalConv1d(3, 4, k, dilation=d, rng=rng)
            assert layer(Tensor(rng.random((2, 3, 20)))).shape == (2, 4, 20)

    def test_causality_no_future_leak(self, rng):
        """Perturbing x at step t must not change outputs before t."""
        layer = CausalConv1d(1, 1, 3, dilation=2, rng=rng)
        x = rng.random((1, 1, 16))
        base = layer(Tensor(x)).data.copy()
        x2 = x.copy()
        t = 9
        x2[0, 0, t] += 10.0
        out = layer(Tensor(x2)).data
        np.testing.assert_array_equal(out[0, 0, :t], base[0, 0, :t])
        assert out[0, 0, t] != base[0, 0, t]

    def test_receptive_field_formula(self, rng):
        layer = Conv1d(1, 1, kernel_size=3, dilation=4, rng=rng)
        assert layer.receptive_field == (3 - 1) * 4 + 1

    def test_receptive_field_is_tight(self, rng):
        """Output at the last step depends on exactly the last RF inputs."""
        layer = CausalConv1d(1, 1, 3, dilation=3, bias=False, rng=rng)
        layer.weight.data[...] = 1.0
        rf = layer.receptive_field
        n = 20
        x = np.zeros((1, 1, n))
        x[0, 0, n - rf] = 1.0  # oldest step inside the field
        assert layer(Tensor(x)).data[0, 0, -1] == 1.0
        x = np.zeros((1, 1, n))
        x[0, 0, n - rf - 1] = 1.0  # one step too old
        assert layer(Tensor(x)).data[0, 0, -1] == 0.0

    def test_channel_mismatch_raises(self, rng):
        layer = Conv1d(3, 4, 3, rng=rng)
        with pytest.raises(ValueError, match="channel mismatch"):
            layer(Tensor(rng.random((1, 2, 10))))

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            Conv1d(1, 1, 0)
        with pytest.raises(ValueError):
            Conv1d(1, 1, 3, dilation=0)

    def test_too_short_input_raises(self, rng):
        layer = Conv1d(1, 1, kernel_size=5, rng=rng)
        with pytest.raises(ValueError, match="empty output"):
            layer(Tensor(rng.random((1, 1, 3))))


class TestWeightNorm:
    def test_matches_unnormalized_at_init(self, rng):
        """g is initialized to ||v||, so w == v initially."""
        layer = WeightNormConv1d(2, 3, 3, rng=rng)
        w = layer._weight().data
        np.testing.assert_allclose(w, layer.v.data, rtol=1e-6)

    def test_norm_equals_g(self, rng):
        layer = WeightNormConv1d(2, 3, 3, rng=rng)
        layer.g.data[...] = 2.5
        w = layer._weight().data
        norms = np.sqrt((w**2).sum(axis=(1, 2)))
        np.testing.assert_allclose(norms, 2.5, rtol=1e-6)

    def test_scale_invariance_of_direction(self, rng):
        """Scaling v leaves the effective weight unchanged."""
        layer = WeightNormConv1d(2, 3, 3, rng=rng)
        w1 = layer._weight().data.copy()
        layer.v.data *= 7.0
        np.testing.assert_allclose(layer._weight().data, w1, rtol=1e-6)


class TestActivations:
    def test_relu_tanh_sigmoid_shapes(self, rng):
        x = Tensor(rng.standard_normal((3, 4)))
        for layer in (ReLU(), Tanh(), Sigmoid(), LeakyReLU(), ELU(), GELU()):
            assert layer(x).shape == (3, 4)

    def test_softmax_rows_sum_to_one(self, rng):
        out = Softmax(axis=-1)(Tensor(rng.standard_normal((5, 7))))
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(5))

    def test_leaky_relu_slope(self):
        out = LeakyReLU(0.1)(Tensor([-10.0, 10.0]))
        np.testing.assert_allclose(out.data, [-1.0, 10.0])

    def test_elu_negative_branch(self):
        out = ELU(1.0)(Tensor([-100.0]))
        assert out.data[0] == pytest.approx(-1.0, abs=1e-6)

    def test_gelu_matches_reference(self):
        # reference values of the tanh-approximated GELU
        x = Tensor([0.0, 1.0, -1.0])
        out = GELU()(x).data
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(0.8412, abs=1e-3)
        assert out[2] == pytest.approx(-0.1588, abs=1e-3)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        for layer in (Dropout(0.5, rng=rng), SpatialDropout1d(0.5, rng=rng)):
            layer.eval()
            x = Tensor(rng.random((4, 3, 5)))
            np.testing.assert_array_equal(layer(x).data, x.data)

    def test_train_mode_zeroes_and_scales(self, rng):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100)))
        out = layer(x).data
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted scaling 1/(1-p)
        assert 0.3 < (out == 0).mean() < 0.7

    def test_spatial_dropout_drops_whole_channels(self):
        layer = SpatialDropout1d(0.5, rng=np.random.default_rng(3))
        x = Tensor(np.ones((8, 16, 10)))
        out = layer(x).data
        # each (sample, channel) row is all-zero or all-scaled
        per_channel = out.reshape(8 * 16, 10)
        for row in per_channel:
            assert (row == 0).all() or (row == 2.0).all()

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            SpatialDropout1d(-0.1)

    def test_expected_magnitude_preserved(self):
        layer = Dropout(0.3, rng=np.random.default_rng(1))
        x = Tensor(np.ones((200, 200)))
        assert layer(x).data.mean() == pytest.approx(1.0, abs=0.02)


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(8.0).reshape(1, 1, 8))
        out = MaxPool1d(2)(x)
        np.testing.assert_array_equal(out.data[0, 0], [1, 3, 5, 7])

    def test_avg_pool_values(self):
        x = Tensor(np.arange(8.0).reshape(1, 1, 8))
        out = AvgPool1d(4)(x)
        np.testing.assert_array_equal(out.data[0, 0], [1.5, 5.5])

    def test_global_avg_pool(self, rng):
        x = rng.random((2, 3, 7))
        out = GlobalAvgPool1d()(Tensor(x))
        np.testing.assert_allclose(out.data, x.mean(axis=-1))


class TestContainers:
    def test_sequential_applies_in_order(self, rng):
        model = Sequential(Linear(3, 5, rng=rng), ReLU(), Linear(5, 2, rng=rng))
        assert model(Tensor(rng.random((4, 3)))).shape == (4, 2)
        assert len(model) == 3

    def test_sequential_parameters_collected(self, rng):
        model = Sequential(Linear(3, 5, rng=rng), Linear(5, 2, rng=rng))
        assert model.num_parameters() == (3 * 5 + 5) + (5 * 2 + 2)

    def test_sequential_append_and_index(self, rng):
        model = Sequential(Linear(2, 2, rng=rng))
        model.append(ReLU())
        assert isinstance(model[1], ReLU)

    def test_module_list_registers(self, rng):
        ml = ModuleList([Linear(2, 2, rng=rng), Linear(2, 2, rng=rng)])
        assert len(list(ml.parameters())) == 4
        with pytest.raises(RuntimeError):
            ml(Tensor(np.zeros((1, 2))))

    def test_flatten_and_lambda(self, rng):
        x = Tensor(rng.random((2, 3, 4)))
        assert Flatten()(x).shape == (2, 12)
        assert Lambda(lambda t: t * 2.0)(x).data[0, 0, 0] == pytest.approx(
            2 * x.data[0, 0, 0]
        )

    def test_train_eval_propagates(self, rng):
        model = Sequential(Linear(2, 2, rng=rng), Dropout(0.5, rng=rng))
        model.eval()
        assert not model[1].training
        model.train()
        assert model[1].training
