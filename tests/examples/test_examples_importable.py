"""Every example must at least import and expose a main() entry point.

Full executions are exercised manually / in the docs; this guards against
API drift silently breaking the examples directory.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    assert hasattr(module, "main"), f"{path.name} must define main()"
    assert callable(module.main)


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    required = {
        "quickstart",
        "mutation_tracking",
        "multi_resource",
        "trace_analysis",
        "predictive_autoscaling",
        "prediction_aware_scheduling",
        "online_serving",
        "model_selection",
        "interpretability",
    }
    assert required <= names, f"missing examples: {required - names}"


def test_examples_have_docstrings():
    for path in EXAMPLES:
        first = path.read_text().lstrip()
        assert first.startswith('"""'), f"{path.name} lacks a module docstring"
