"""Public-API surface tests: everything __all__ promises actually exists."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.nn",
    "repro.nn.layers",
    "repro.nn.optim",
    "repro.models",
    "repro.traces",
    "repro.data",
    "repro.training",
    "repro.analysis",
    "repro.experiments",
    "repro.allocation",
    "repro.scheduling",
    "repro.streaming",
    "repro.obs",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} must declare __all__"
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol!r}"


@pytest.mark.parametrize("name", PACKAGES)
def test_package_docstrings(name):
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20, (
        f"{name} needs a real module docstring"
    )


def test_version():
    import repro

    assert repro.__version__.count(".") == 2


def test_registry_is_complete():
    """Every forecaster module registered its public classes."""
    from repro.models import FORECASTER_REGISTRY

    expected = {
        "arima", "lstm", "cnn_lstm", "xgboost", "rptcn", "tcn",
        "gru", "bilstm", "mlp", "holt", "seq2seq", "transformer",
        "persistence", "mean", "drift",
        "quantile_xgboost", "quantile_rptcn",
        "ensemble", "hybrid_arima_nn", "clustered",
    }
    assert expected <= set(FORECASTER_REGISTRY)
