"""ClusterReport arithmetic, aggregation, and the comparison table."""

import dataclasses

import pytest

from repro.cluster import ClusterReport, aggregate_reports, format_policy_table


def report(**over) -> ClusterReport:
    base = dict(
        policy="reactive",
        n_machines=10,
        n_jobs=16,
        ticks=80,
        job_ticks=800,
        sla_violation_rate=0.01,
        mean_violation_depth=0.05,
        overload_rate=0.0,
        mean_utilization=0.5,
        stranded_frac=0.2,
        waste_frac=0.3,
        mean_reservation=0.4,
        machine_ticks=400,
        migrations=20,
        forced_placements=0,
        jobs_completed=10,
        forecast_coverage=1.0,
    )
    base.update(over)
    return ClusterReport(**base)


class TestCost:
    def test_cost_per_job_is_machine_ticks_over_completions(self):
        assert report().cost_per_job() == pytest.approx(40.0)
        assert report(jobs_completed=0).cost_per_job() == 400.0  # guarded denominator

    def test_cost_penalizes_violations(self):
        r = report()
        assert r.cost(violation_penalty=100.0) > r.cost(violation_penalty=1.0)
        clean = report(sla_violation_rate=0.0)
        assert clean.cost() == pytest.approx(clean.cost_per_job())


class TestAggregate:
    def test_single_report_passes_through(self):
        r = report()
        assert aggregate_reports([r]) is r

    def test_means_rates_and_rounds_counts(self):
        agg = aggregate_reports(
            [
                report(sla_violation_rate=0.01, machine_ticks=400, migrations=3),
                report(sla_violation_rate=0.03, machine_ticks=401, migrations=4),
            ]
        )
        assert agg.sla_violation_rate == pytest.approx(0.02)
        assert agg.machine_ticks == 400  # round(400.5) banker's-rounds to 400
        assert isinstance(agg.machine_ticks, int)
        assert agg.migrations == 4
        assert agg.policy == "reactive"

    def test_cost_per_job_becomes_ratio_of_means(self):
        agg = aggregate_reports(
            [
                report(machine_ticks=300, jobs_completed=10),
                report(machine_ticks=500, jobs_completed=10),
            ]
        )
        assert agg.cost_per_job() == pytest.approx(40.0)

    def test_refuses_mixed_policies_and_empty(self):
        with pytest.raises(ValueError, match="policies"):
            aggregate_reports([report(), report(policy="oracle")])
        with pytest.raises(ValueError, match="at least one"):
            aggregate_reports([])

    def test_report_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            report().policy = "other"


class TestTable:
    def test_table_lists_policies_and_relative_cost(self):
        table = format_policy_table(
            [report(), report(policy="oracle", machine_ticks=440)]
        )
        assert "reactive" in table and "oracle" in table
        assert "+10.0%" in table  # 440 vs 400 machine-ticks, same completions
        assert "vs reactive" in table

    def test_table_without_baseline_row(self):
        table = format_policy_table([report(policy="oracle")])
        assert "-" in table  # relative column degrades gracefully
