"""Shared demand-vs-supply primitives and their re-exports."""

import numpy as np
import pytest

from repro.cluster.replay import EXCESS_EPS, ExcessStats, excess_stats


class TestExcessStats:
    def test_hand_computed_vector(self):
        demand = np.array([0.5, 0.9, 0.2, 0.7])
        supply = np.array([0.6, 0.6, 0.6, 0.6])
        s = excess_stats(demand, supply)
        assert s.n_samples == 4
        assert s.rate == pytest.approx(0.5)  # 0.9 and 0.7 exceed
        assert s.mean_depth == pytest.approx((0.3 + 0.1) / 2)
        assert s.mean_slack == pytest.approx((0.1 + 0.0 + 0.4 + 0.0) / 4)
        assert s.mean_served == pytest.approx((0.5 + 0.6 + 0.2 + 0.6) / 4)
        assert s.peak_demand == pytest.approx(0.9)

    def test_scalar_supply_broadcasts_over_matrix(self):
        load = np.array([[0.4, 1.2], [0.8, 0.9]])
        s = excess_stats(load, 1.0)
        assert s.n_samples == 4
        assert s.rate == pytest.approx(0.25)
        assert s.mean_depth == pytest.approx(0.2)
        assert s.peak_demand == pytest.approx(1.2)

    def test_sub_eps_excess_is_not_a_breach(self):
        s = excess_stats(np.array([1.0 + EXCESS_EPS / 2]), 1.0)
        assert s.rate == 0.0
        assert s.mean_depth == 0.0

    def test_empty_demand_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            excess_stats(np.array([]), 1.0)

    def test_frozen_record(self):
        s = excess_stats(np.array([0.5]), 1.0)
        with pytest.raises(AttributeError):
            s.rate = 1.0


class TestReExports:
    """The open-loop simulators re-export the shared primitives."""

    def test_allocation_simulator_reexports(self):
        from repro.allocation import simulator as alloc_sim

        assert alloc_sim.excess_stats is excess_stats
        assert alloc_sim.ExcessStats is ExcessStats
        assert alloc_sim.EXCESS_EPS == EXCESS_EPS

    def test_scheduling_simulator_reexports(self):
        from repro.scheduling import simulator as sched_sim

        assert sched_sim.excess_stats is excess_stats
        assert sched_sim.ExcessStats is ExcessStats
        assert sched_sim.EXCESS_EPS == EXCESS_EPS
