"""ClusterState: placement mechanics and conservation invariants."""

import numpy as np
import pytest

from repro.cluster import ClusterState


class TestLifecycle:
    def test_admit_best_fit_prefers_tightest_machine(self):
        st = ClusterState(n_machines=3, n_jobs=4)
        st.admit(0, 0.7)  # machine 0 -> free 0.3
        st.admit(1, 0.4)  # machine 1 -> free 0.6
        # 0.25 fits both; best-fit picks the tighter machine 0
        assert st.admit(2, 0.25) == 0

    def test_forced_placement_when_nothing_fits(self):
        st = ClusterState(n_machines=2, n_jobs=3)
        st.admit(0, 0.9)
        st.admit(1, 0.8)
        machine = st.admit(2, 0.5)  # nowhere fits
        assert machine == 1  # most free capacity (0.2)
        assert st.n_forced_placements == 1
        assert st.reserved[1] == pytest.approx(1.3)  # overcommit is recorded
        st.check_invariants()

    def test_depart_powers_machine_off(self):
        st = ClusterState(n_machines=2, n_jobs=2)
        st.admit(0, 0.5)
        st.depart(0)
        assert not st.powered_on.any()
        assert st.reserved[0] == 0.0  # float dust flushed
        assert st.placement[0] == -1
        st.check_invariants()

    def test_double_admit_and_ghost_depart_rejected(self):
        st = ClusterState(n_machines=2, n_jobs=2)
        st.admit(0, 0.5)
        with pytest.raises(ValueError, match="already active"):
            st.admit(0, 0.5)
        with pytest.raises(ValueError, match="not active"):
            st.depart(1)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ClusterState(0, 1)
        with pytest.raises(ValueError):
            ClusterState(1, 1, capacity=0.0)


class TestResizeAndMaintenance:
    def test_resize_updates_machine_aggregates(self):
        st = ClusterState(n_machines=2, n_jobs=2)
        st.admit(0, 0.3)
        st.admit(1, 0.3)
        st.resize(np.array([0, 1]), np.array([0.5, 0.1]))
        np.testing.assert_allclose(st.reservation[:2], [0.5, 0.1])
        st.check_invariants()

    def test_resize_validation(self):
        st = ClusterState(n_machines=2, n_jobs=2)
        st.admit(0, 0.3)
        with pytest.raises(ValueError, match="active"):
            st.resize(np.array([1]), np.array([0.5]))
        with pytest.raises(ValueError, match="positive"):
            st.resize(np.array([0]), np.array([0.0]))

    def test_rebalance_clears_overcommit_when_room_exists(self):
        st = ClusterState(n_machines=2, n_jobs=3)
        st.admit(0, 0.4)
        st.admit(1, 0.4)  # best-fit stacks both on machine 0
        assert st.jobs_on[0] == 2
        st.resize(np.array([0, 1]), np.array([0.7, 0.6]))  # 1.3 > capacity
        moves = st.rebalance()
        assert moves == 1
        assert (st.reserved <= st.capacity + 1e-9).all()
        assert st.n_migrations == 1
        st.check_invariants()

    def test_rebalance_leaves_uncleara_ble_overcommit(self):
        st = ClusterState(n_machines=1, n_jobs=2)
        st.admit(0, 0.9)
        st.admit(1, 0.9)  # forced onto the only machine
        assert st.rebalance() == 0  # nowhere to go
        assert st.reserved[0] > st.capacity

    def test_consolidate_drains_emptiest_machine(self):
        st = ClusterState(n_machines=3, n_jobs=3)
        st.admit(0, 0.6)
        st.admit(1, 0.3)  # joins machine 0 (best fit)
        # open a second machine with a small job, then drain it
        st.admit(2, 0.9)
        st.depart(0)  # machine 0 now holds only job 1 (0.3)
        assert st.powered_on.sum() == 2
        moves = st.consolidate(max_drains=2)
        assert moves == 0  # 0.3 does not fit next to 0.9 — no partial drain
        st.resize(np.array([2]), np.array([0.5]))
        moves = st.consolidate(max_drains=2)
        assert moves == 1
        assert st.powered_on.sum() == 1
        st.check_invariants()

    def test_machine_demand_sums_active_jobs_only(self):
        st = ClusterState(n_machines=2, n_jobs=3)
        st.admit(0, 0.5)
        st.admit(1, 0.5)
        usage = np.array([0.2, 0.3, 99.0])  # job 2 inactive — ignored
        load = st.machine_demand(usage)
        assert load.sum() == pytest.approx(0.5)


class TestInvariantFuzz:
    def test_random_churn_preserves_invariants(self, rng):
        st = ClusterState(n_machines=6, n_jobs=30, capacity=1.0)
        for step in range(300):
            op = rng.integers(0, 4)
            inactive = np.flatnonzero(~st.active)
            active = np.flatnonzero(st.active)
            if op == 0 and inactive.size:
                st.admit(int(rng.choice(inactive)), float(rng.uniform(0.05, 0.6)))
            elif op == 1 and active.size:
                st.depart(int(rng.choice(active)))
            elif op == 2 and active.size:
                st.resize(active, rng.uniform(0.05, 0.6, active.size))
                st.rebalance()
            elif op == 3:
                st.consolidate(max_drains=2)
            st.check_invariants()
