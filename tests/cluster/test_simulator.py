"""The closed loop end-to-end: determinism, conservation, policy ordering."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterSimulator,
    ClusterState,
    FleetForecastSource,
    make_policy,
    make_schedule,
)
from repro.cluster import simulator as simulator_mod

#: cheap deterministic fleet settings (no GBT fitting)
FLEET = dict(
    min_errors=8, forecaster_name="holt", window=6, refit_interval=10, refit_streams=8
)
CONFIG = ClusterConfig(n_machines=10)


def small_run(policy_name: str, seed: int = 3, **policy_kwargs):
    sched = make_schedule(n_jobs=16, ticks=80, seed=seed, min_life=40, max_life=60)
    pol = make_policy(policy_name, **policy_kwargs)
    source = (
        FleetForecastSource(n_jobs=sched.n_jobs, **FLEET)
        if pol.needs_forecasts
        else None
    )
    return ClusterSimulator(sched, pol, CONFIG, source=source).run()


class TestSchedule:
    def test_usage_nan_exactly_outside_lifetime(self):
        sched = make_schedule(n_jobs=8, ticks=60, seed=1, min_life=20, max_life=30)
        alive = np.isfinite(sched.usage)
        for j in range(sched.n_jobs):
            ticks_alive = np.flatnonzero(alive[:, j])
            assert ticks_alive[0] == sched.arrival[j]
            assert ticks_alive[-1] == sched.departure[j] - 1
            assert alive[sched.arrival[j] : sched.departure[j], j].all()
        assert sched.job_ticks == int(alive.sum())

    def test_horizon_validation(self):
        with pytest.raises(ValueError, match="min_life"):
            make_schedule(n_jobs=4, ticks=10, min_life=30)


class TestDeterminism:
    @pytest.mark.parametrize("policy", ["reactive", "quantile"])
    def test_same_seed_bit_identical_report(self, policy):
        assert small_run(policy, seed=5) == small_run(policy, seed=5)

    def test_different_seed_different_trace(self):
        assert small_run("reactive", seed=5) != small_run("reactive", seed=6)

    def test_report_identical_across_worker_counts(self, tmp_path):
        """The experiment's parallel cells match serial execution exactly."""
        from repro.experiments.parallel import TaskSpec, run_tasks

        tasks = [
            TaskSpec(
                experiment="autoscale-test",
                key=("quick", "reactive", 1),
                fn="repro.experiments.autoscale._autoscale_cell",
                params=dict(policy="reactive", trace_seed=1, profile="quick"),
            )
        ]
        serial = run_tasks(tasks, jobs=1, cache=None)
        parallel = run_tasks(tasks, jobs=2, cache=None)
        assert serial[0].ok and parallel[0].ok
        assert serial[0].value == parallel[0].value


class TestConservation:
    def test_invariants_hold_after_every_mutation(self, monkeypatch):
        """Run the full loop on a state that self-checks after each operation."""

        class CheckedState(ClusterState):
            def admit(self, job, reservation):
                m = super().admit(job, reservation)
                self.check_invariants()
                return m

            def depart(self, job):
                super().depart(job)
                self.check_invariants()

            def resize(self, jobs, reservations):
                super().resize(jobs, reservations)
                self.check_invariants()

            def rebalance(self):
                moves = super().rebalance()
                self.check_invariants()
                return moves

            def consolidate(self, max_drains=1):
                moves = super().consolidate(max_drains)
                self.check_invariants()
                return moves

        monkeypatch.setattr(simulator_mod, "ClusterState", CheckedState)
        report = small_run("quantile", seed=7)
        assert report.job_ticks > 0

    def test_report_accounting_bounds(self):
        sched = make_schedule(n_jobs=16, ticks=80, seed=3, min_life=40, max_life=60)
        report = small_run("reactive", seed=3)
        assert report.job_ticks == sched.job_ticks
        assert report.machine_ticks <= CONFIG.n_machines * sched.ticks
        assert report.jobs_completed == int(sched.completes.sum())
        for frac in (
            report.sla_violation_rate,
            report.overload_rate,
            report.mean_utilization,
            report.stranded_frac,
            report.waste_frac,
            report.forecast_coverage,
        ):
            assert 0.0 <= frac <= 1.0
        # served + stranded + job-level waste cannot exceed what was powered on
        assert report.mean_utilization + report.stranded_frac <= 1.0 + 1e-9

    def test_policy_needing_forecasts_requires_source(self):
        sched = make_schedule(n_jobs=8, ticks=60, seed=1, min_life=20, max_life=30)
        with pytest.raises(ValueError, match="forecast source"):
            ClusterSimulator(sched, make_policy("quantile"), CONFIG, source=None)


class TestOrdering:
    """Perfect information dominates; the no-op baseline never violates."""

    def test_oracle_dominates_and_request_never_violates(self):
        reports = {
            name: small_run(name, seed=11)
            for name in ("request", "reactive", "predictive", "quantile", "oracle")
        }
        assert reports["request"].sla_violation_rate == 0.0
        oracle = reports["oracle"].sla_violation_rate
        for name in ("reactive", "predictive", "quantile"):
            assert oracle <= reports[name].sla_violation_rate
        # ... and paying for the full request is the most expensive way to be safe
        assert reports["request"].cost_per_job() > reports["oracle"].cost_per_job()
