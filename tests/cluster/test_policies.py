"""Autoscaling policies: sizing rules, fallbacks, and the escape rule."""

import numpy as np
import pytest

from repro.cluster import POLICY_NAMES, PolicyInputs, make_policy


def inputs(**over) -> PolicyInputs:
    """A 4-job PolicyInputs with sensible defaults, overridable per test."""
    n = 4
    base = dict(
        last_observed=np.full(n, 0.3),
        point=np.full(n, 0.4),
        headroom_q=np.full(n, 0.05),
        truth_next=np.full(n, 0.45),
        request=np.full(n, 0.8),
        active=np.ones(n, dtype=bool),
        throttled=np.zeros(n, dtype=bool),
    )
    base.update(over)
    return PolicyInputs(**base)


class TestLadder:
    def test_registry_covers_the_ladder(self):
        assert POLICY_NAMES == ("request", "reactive", "predictive", "quantile", "oracle")
        with pytest.raises(KeyError, match="unknown policy"):
            make_policy("nope")

    def test_request_reserves_the_request(self):
        res = make_policy("request").reservations(inputs())
        np.testing.assert_allclose(res, 0.8)

    def test_reactive_is_last_observed_plus_headroom(self):
        res = make_policy("reactive", headroom=0.1).reservations(inputs())
        np.testing.assert_allclose(res, 0.4)

    def test_predictive_uses_point_forecast(self):
        res = make_policy("predictive", headroom=0.1).reservations(inputs())
        np.testing.assert_allclose(res, 0.5)

    def test_oracle_uses_truth(self):
        res = make_policy("oracle", headroom=0.1).reservations(inputs())
        np.testing.assert_allclose(res, 0.55)

    def test_quantile_is_point_plus_band_plus_safety(self):
        pol = make_policy("quantile", safety=0.02)
        res = pol.reservations(inputs())
        np.testing.assert_allclose(res, 0.4 + 0.05 + 0.02)

    def test_quantile_routes_through_allocation_subsystem(self):
        from repro.allocation.allocator import QuantileAllocator

        pol = make_policy("quantile", tau=0.97)
        assert isinstance(pol.allocator, QuantileAllocator)
        assert pol.allocator.tau == 0.97


class TestFallbacks:
    def test_stale_point_falls_back_to_reactive(self):
        obs = inputs(point=np.full(4, np.nan))
        for name in ("predictive", "quantile"):
            res = make_policy(name, headroom=0.1).reservations(obs)
            np.testing.assert_allclose(res, 0.4)  # last_observed + headroom

    def test_uncalibrated_band_falls_back_to_reactive(self):
        obs = inputs(headroom_q=np.full(4, np.nan))
        res = make_policy("quantile", headroom=0.1).reservations(obs)
        np.testing.assert_allclose(res, 0.4)

    def test_unobserved_job_gets_its_request(self):
        obs = inputs(
            last_observed=np.full(4, np.nan),
            point=np.full(4, np.nan),
            truth_next=np.full(4, np.nan),
        )
        for name in POLICY_NAMES:
            res = make_policy(name).reservations(obs)
            np.testing.assert_allclose(res, 0.8)

    def test_oracle_departing_job_sized_reactively(self):
        obs = inputs(truth_next=np.full(4, np.nan))
        res = make_policy("oracle", headroom=0.1).reservations(obs)
        np.testing.assert_allclose(res, 0.4)


class TestClipAndEscape:
    def test_reservations_clipped_to_floor_and_request(self):
        obs = inputs(point=np.array([0.0, 2.0, 0.4, 0.4]))
        res = make_policy("predictive", headroom=0.0, floor=0.02).reservations(obs)
        assert res[0] == pytest.approx(0.02)
        assert res[1] == pytest.approx(0.8)

    def test_throttled_job_escapes_upward(self):
        """A censored slot must grow past its observation, whatever the model says."""
        throttled = np.array([True, False, False, False])
        obs = inputs(point=np.full(4, 0.1), throttled=throttled,
                     last_observed=np.full(4, 0.3))
        res = make_policy("predictive", headroom=0.1).reservations(obs)
        assert res[0] == pytest.approx(0.4)  # last_observed + headroom, not 0.2
        assert res[1] == pytest.approx(0.2)  # untouched slot follows the forecast

    def test_escape_is_noop_for_reactive(self):
        throttled = np.array([True, True, False, False])
        pol = make_policy("reactive", headroom=0.1)
        with_thr = pol.reservations(inputs(throttled=throttled))
        without = pol.reservations(inputs())
        np.testing.assert_allclose(with_thr, without)


class TestValidation:
    def test_headroom_floor_safety_bounds(self):
        with pytest.raises(ValueError, match="headroom"):
            make_policy("reactive", headroom=-0.1)
        with pytest.raises(ValueError, match="floor"):
            make_policy("reactive", floor=0.0)
        with pytest.raises(ValueError, match="safety"):
            make_policy("quantile", safety=-0.01)
