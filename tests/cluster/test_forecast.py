"""FleetForecastSource: staleness, residual calibration, censor handling."""

import numpy as np
import pytest

from repro.cluster import FleetForecastSource

#: cheap deterministic fleet settings used throughout (no GBT fitting)
FLEET = dict(forecaster_name="holt", window=4, refit_interval=6, refit_streams=4)


def source(n_jobs=3, **over):
    kwargs = dict(min_errors=4, headroom_every=1, **FLEET)
    kwargs.update(over)
    return FleetForecastSource(n_jobs=n_jobs, **kwargs)


class TestStaleness:
    def test_everything_nan_before_any_data(self):
        src = source()
        fc = src.forecast(need_headroom=True)
        assert np.isnan(fc.point).all()
        assert np.isnan(fc.headroom).all()
        assert fc.coverage == 0.0

    def test_point_appears_once_windows_fill_and_model_fits(self):
        src = source()
        for t in range(40):
            src.observe(np.full(3, 0.4 + 0.01 * (t % 3)))
        fc = src.forecast()
        assert np.isfinite(fc.point).all()
        assert fc.coverage == 1.0

    def test_absent_jobs_stay_nan(self):
        src = source()
        row = np.array([0.4, np.nan, 0.5])
        for _ in range(40):
            src.observe(row)
        fc = src.forecast()
        assert np.isfinite(fc.point[0]) and np.isfinite(fc.point[2])
        assert np.isnan(fc.point[1])

    def test_observe_shape_validated(self):
        with pytest.raises(ValueError, match="observed"):
            source(n_jobs=3).observe(np.zeros(2))


class TestResidualBand:
    def test_headroom_nan_below_min_errors_then_finite(self):
        src = source(min_errors=6)
        vals = 0.4 + 0.05 * np.sin(np.arange(60.0))
        for t in range(8):
            src.observe(np.full(3, vals[t]))
        fc = src.forecast(need_headroom=True)  # few scored forecasts yet
        assert np.isnan(fc.headroom).all()
        for t in range(8, 40):
            src.observe(np.full(3, vals[t]))
            fc = src.forecast(need_headroom=True)
        assert np.isfinite(fc.headroom).all()
        assert (fc.headroom >= 0.0).all()  # one-sided band, floored at zero

    def test_band_tracks_sizing_residuals(self):
        """A volatile stream earns a wider band than a constant one."""
        src = source(n_jobs=2, min_errors=4, tau=0.9)
        rng = np.random.default_rng(0)
        fc = None
        for _ in range(60):
            row = np.array([0.5, float(np.clip(0.5 + rng.normal(0, 0.2), 0, 1))])
            src.observe(row)
            fc = src.forecast(need_headroom=True)
        assert fc.headroom[1] > fc.headroom[0]

    def test_tau_and_cadence_validated(self):
        with pytest.raises(ValueError, match="tau"):
            source(tau=1.0)
        with pytest.raises(ValueError, match="headroom_every"):
            source(headroom_every=0)
        with pytest.raises(ValueError, match="censor"):
            source(censor_growth=0.5)


class TestCensorMultiplier:
    def test_censored_ticks_inflate_the_band(self):
        src = source()
        vals = 0.4 + 0.05 * np.sin(np.arange(60.0))
        for t in range(40):
            src.observe(np.full(3, vals[t]))
            src.forecast(need_headroom=True)
        base = src.forecast(need_headroom=True).headroom.copy()
        censored = np.array([True, False, False])
        src.observe(np.full(3, vals[40]), censored=censored)
        fc = src.forecast(need_headroom=True)
        assert fc.headroom[0] > base[0] * 1.2  # grown by censor_growth
        assert src._censor_mult[0] == pytest.approx(src.censor_growth)

    def test_multiplier_caps_and_decays(self):
        src = source(censor_growth=2.0, censor_cap=3.0, censor_decay=0.5)
        row = np.full(3, 0.5)
        hot = np.array([True, False, False])
        for _ in range(5):
            src.observe(row, censored=hot)
        assert src._censor_mult[0] == pytest.approx(3.0)  # capped
        for _ in range(10):
            src.observe(row, censored=np.zeros(3, bool))
        assert src._censor_mult[0] == pytest.approx(1.0)  # decayed to identity
