"""Trainer loop and callback tests."""

import numpy as np
import pytest

from repro.nn.layers import Linear, Sequential, Tanh
from repro.nn.losses import MSELoss
from repro.nn.optim import Adam
from repro.training.callbacks import (
    CSVLogger,
    EarlyStopping,
    History,
    LambdaCallback,
    ModelCheckpoint,
)
from repro.training.trainer import Trainer


@pytest.fixture
def problem(rng):
    """A learnable regression problem: y = 0.5 x0 - 0.3 x1."""
    x = rng.random((200, 2))
    y = (x @ np.array([0.5, -0.3]))[:, None]
    return x[:140], y[:140], x[140:], y[140:]


def make_trainer(rng, lr=0.05):
    model = Sequential(Linear(2, 8, rng=rng), Tanh(), Linear(8, 1, rng=rng))
    return Trainer(model, Adam(model.parameters(), lr=lr), MSELoss(), rng=rng)


class TestTrainer:
    def test_loss_decreases(self, rng, problem):
        xt, yt, xv, yv = problem
        trainer = make_trainer(rng)
        hist = trainer.fit(xt, yt, xv, yv, epochs=30, batch_size=16)
        assert hist.train_loss[-1] < 0.2 * hist.train_loss[0]
        assert len(hist.val_loss) == hist.epochs_run

    def test_evaluate_matches_manual(self, rng, problem):
        xt, yt, _, _ = problem
        trainer = make_trainer(rng)
        loss = trainer.evaluate(xt, yt)
        from repro.nn.tensor import Tensor

        trainer.model.eval()
        manual = MSELoss()(trainer.model(Tensor(xt)), Tensor(yt)).item()
        assert loss == pytest.approx(manual, rel=1e-9)

    def test_predict_shape_and_eval_mode(self, rng, problem):
        xt, yt, xv, _ = problem
        trainer = make_trainer(rng)
        trainer.fit(xt, yt, epochs=2)
        pred = trainer.predict(xv)
        assert pred.shape == (len(xv), 1)

    def test_grad_clipping_runs(self, rng, problem):
        xt, yt, _, _ = problem
        model = Sequential(Linear(2, 4, rng=rng), Linear(4, 1, rng=rng))
        trainer = Trainer(
            model, Adam(model.parameters(), lr=0.01), MSELoss(), grad_clip_norm=0.1, rng=rng
        )
        hist = trainer.fit(xt, yt, epochs=3)
        assert hist.epochs_run == 3

    def test_reproducible_given_seed(self, problem):
        xt, yt, _, _ = problem
        losses = []
        for _ in range(2):
            rng = np.random.default_rng(5)
            trainer = make_trainer(rng)
            hist = trainer.fit(xt, yt, epochs=3, batch_size=16)
            losses.append(hist.train_loss)
        assert losses[0] == losses[1]


class TestEarlyStopping:
    def test_stops_and_restores_best(self, rng, problem):
        xt, yt, xv, yv = problem
        trainer = make_trainer(rng, lr=0.3)  # aggressive lr to force val bounce
        es = EarlyStopping(patience=2, restore_best_weights=True)
        hist = trainer.fit(xt, yt, xv, yv, epochs=200, callbacks=[es])
        if hist.stopped_early:
            assert hist.epochs_run < 200
            # restored weights reproduce the best validation loss
            assert trainer.evaluate(xv, yv) == pytest.approx(es.best, rel=1e-6)

    def test_monitor_missing_raises(self, rng, problem):
        xt, yt, _, _ = problem
        trainer = make_trainer(rng)
        with pytest.raises(KeyError, match="val_loss"):
            trainer.fit(xt, yt, epochs=2, callbacks=[EarlyStopping()])

    def test_patience_zero_stops_on_first_non_improvement(self, rng):
        from repro.nn.module import Module

        es = EarlyStopping(patience=0, restore_best_weights=False)

        class M(Module):
            def forward(self, x):  # pragma: no cover
                return x

        m = M()
        es.on_train_begin(m)
        es.on_epoch_end(0, {"val_loss": 1.0}, m)
        assert not es.stop_training
        es.on_epoch_end(1, {"val_loss": 1.5}, m)
        assert es.stop_training


class TestOtherCallbacks:
    def test_history_records(self, rng, problem):
        xt, yt, xv, yv = problem
        trainer = make_trainer(rng)
        hist_cb = History()
        trainer.fit(xt, yt, xv, yv, epochs=4, callbacks=[hist_cb])
        assert hist_cb.epochs == [0, 1, 2, 3]
        assert len(hist_cb["loss"]) == 4
        assert len(hist_cb["val_loss"]) == 4

    def test_checkpoint_saves_best(self, rng, problem, tmp_path):
        xt, yt, xv, yv = problem
        trainer = make_trainer(rng)
        path = tmp_path / "best.npz"
        trainer.fit(xt, yt, xv, yv, epochs=5, callbacks=[ModelCheckpoint(path)])
        assert path.exists()

    def test_csv_logger(self, rng, problem, tmp_path):
        xt, yt, xv, yv = problem
        trainer = make_trainer(rng)
        path = tmp_path / "log.csv"
        trainer.fit(xt, yt, xv, yv, epochs=3, callbacks=[CSVLogger(path)])
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "epoch,loss,val_loss"
        assert len(lines) == 4

    def test_lambda_callback(self, rng, problem):
        xt, yt, _, _ = problem
        trainer = make_trainer(rng)
        seen = []
        cb = LambdaCallback(on_epoch_end=lambda e, logs, m: seen.append(e))
        trainer.fit(xt, yt, epochs=3, callbacks=[cb])
        assert seen == [0, 1, 2]
