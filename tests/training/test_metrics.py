"""Metric tests with hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.training.metrics import mae, mape, mse, r2_score, rmse, smape

pair = st.integers(2, 40).flatmap(
    lambda n: st.tuples(
        arrays(np.float64, n, elements=st.floats(-1e3, 1e3, allow_nan=False, width=64)),
        arrays(np.float64, n, elements=st.floats(-1e3, 1e3, allow_nan=False, width=64)),
    )
)


class TestValues:
    def test_mse_paper_eq9(self):
        assert mse([1.0, 2.0, 3.0], [1.0, 1.0, 1.0]) == pytest.approx((0 + 1 + 4) / 3)

    def test_mae_paper_eq10(self):
        assert mae([1.0, -2.0], [0.0, 0.0]) == pytest.approx(1.5)

    def test_rmse_is_sqrt_mse(self):
        y, p = [1.0, 5.0], [0.0, 0.0]
        assert rmse(y, p) == pytest.approx(np.sqrt(mse(y, p)))

    def test_mape_percent(self):
        assert mape([100.0], [90.0]) == pytest.approx(10.0)

    def test_smape_symmetric(self):
        assert smape([100.0], [90.0]) == pytest.approx(smape([90.0], [100.0]))

    def test_r2_perfect_and_mean(self, rng):
        y = rng.random(50)
        assert r2_score(y, y) == pytest.approx(1.0)
        assert r2_score(y, np.full(50, y.mean())) == pytest.approx(0.0, abs=1e-12)

    def test_r2_constant_truth(self):
        y = np.full(10, 2.0)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1.0) == 0.0


class TestProperties:
    @given(pair)
    @settings(max_examples=80, deadline=None)
    def test_nonnegative_and_zero_iff_equal(self, data):
        y, p = data
        assert mse(y, p) >= 0.0
        assert mae(y, p) >= 0.0
        assert mse(y, y) == 0.0
        assert mae(y, y) == 0.0

    @given(pair)
    @settings(max_examples=80, deadline=None)
    def test_mae_bounds_rmse(self, data):
        """Cauchy-Schwarz: MAE <= RMSE always."""
        y, p = data
        assert mae(y, p) <= rmse(y, p) + 1e-9

    @given(pair)
    @settings(max_examples=80, deadline=None)
    def test_symmetry(self, data):
        y, p = data
        assert mse(y, p) == pytest.approx(mse(p, y))
        assert mae(y, p) == pytest.approx(mae(p, y))

    @given(pair, st.floats(-100, 100, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_translation_invariance(self, data, shift):
        y, p = data
        assert mse(y + shift, p + shift) == pytest.approx(mse(y, p), rel=1e-6, abs=1e-9)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            mae(np.zeros(0), np.zeros(0))
