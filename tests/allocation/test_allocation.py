"""Allocation policies and replay-simulator tests."""

import numpy as np
import pytest

from repro.allocation import (
    OracleAllocator,
    PredictiveAllocator,
    QuantileAllocator,
    ReactiveAllocator,
    StaticAllocator,
    simulate_allocation,
)
from repro.models import PersistenceForecaster


@pytest.fixture
def segment(rng):
    """Windows + next-step truth from a wandering utilization series."""
    from repro.data.windowing import make_windows

    series = np.clip(0.4 + np.cumsum(rng.normal(0, 0.02, 400)), 0.05, 0.95)
    x, y = make_windows(series[:, None], series, window=8)
    return x, y[:, 0]


class TestPolicies:
    def test_static_constant(self, segment):
        x, y = segment
        res = StaticAllocator(level=0.9).reserve(x, y)
        np.testing.assert_array_equal(res, np.full(len(x), 0.9))

    def test_static_level_validation(self):
        with pytest.raises(ValueError):
            StaticAllocator(level=0.0)
        with pytest.raises(ValueError):
            StaticAllocator(level=1.5)

    def test_reactive_is_last_plus_headroom(self, segment):
        x, y = segment
        res = ReactiveAllocator(headroom=0.1).reserve(x, y)
        np.testing.assert_allclose(res, np.clip(x[:, -1, 0] + 0.1, 0, 1))

    def test_oracle_never_violates(self, segment):
        x, y = segment
        report = simulate_allocation(OracleAllocator(headroom=0.05), x, y)
        assert report.violation_rate == 0.0
        assert report.mean_overprovision == pytest.approx(0.05, abs=1e-9)

    def test_predictive_requires_fitted(self):
        with pytest.raises(ValueError, match="fitted"):
            PredictiveAllocator(PersistenceForecaster())

    def test_predictive_with_persistence_equals_reactive(self, segment):
        x, y = segment
        f = PersistenceForecaster().fit(x, y[:, None])
        pred = PredictiveAllocator(f, headroom=0.1).reserve(x, y)
        react = ReactiveAllocator(headroom=0.1).reserve(x, y)
        np.testing.assert_allclose(pred, react)

    def test_headroom_validation(self):
        with pytest.raises(ValueError):
            ReactiveAllocator(headroom=-0.1)


class TestQuantileAllocator:
    def test_explicit_vector_path_clips_to_unit_range(self):
        """The cluster autoscaler's route: a precomputed quantile vector."""
        alloc = QuantileAllocator(tau=0.95)
        res = alloc.reserve(None, None, quantiles=np.array([-0.1, 0.4, 1.7]))
        np.testing.assert_allclose(res, [0.0, 0.4, 1.0])

    def test_vector_path_preserves_nan_staleness(self):
        """NaN entries pass through — the caller's stale-slot signal."""
        alloc = QuantileAllocator(tau=0.95)
        res = alloc.reserve(None, None, quantiles=np.array([np.nan, 0.5]))
        assert np.isnan(res[0]) and res[1] == pytest.approx(0.5)

    def test_no_forecaster_and_no_vector_rejected(self, segment):
        x, y = segment
        with pytest.raises(ValueError, match="explicit"):
            QuantileAllocator(tau=0.95).reserve(x, y)

    def test_forecaster_must_expose_quantiles_and_be_fitted(self):
        with pytest.raises(TypeError, match="predict_quantile"):
            QuantileAllocator(forecaster=PersistenceForecaster())

    def test_tau_validation(self):
        with pytest.raises(ValueError, match="tau"):
            QuantileAllocator(tau=1.0)
        assert QuantileAllocator(tau=0.99).name == "quantile[q99]"


class TestSimulator:
    def test_report_accounting_identity(self, segment):
        x, y = segment
        report = simulate_allocation(ReactiveAllocator(headroom=0.05), x, y)
        # reservation = demand + over - under (in expectation over intervals)
        lhs = report.mean_reservation
        rhs = (
            y.mean()
            + report.mean_overprovision
            - report.violation_rate * report.mean_violation_depth
        )
        assert lhs == pytest.approx(rhs, abs=1e-9)

    def test_zero_headroom_reactive_violates_half_the_time(self, segment):
        """Reserving exactly the last value under-serves whenever demand rises."""
        x, y = segment
        report = simulate_allocation(ReactiveAllocator(headroom=0.0), x, y)
        assert 0.25 < report.violation_rate < 0.75

    def test_more_headroom_fewer_violations_more_waste(self, segment):
        x, y = segment
        lo = simulate_allocation(ReactiveAllocator(headroom=0.02), x, y)
        hi = simulate_allocation(ReactiveAllocator(headroom=0.2), x, y)
        assert hi.violation_rate <= lo.violation_rate
        assert hi.mean_overprovision > lo.mean_overprovision

    def test_cost_penalizes_violations(self, segment):
        x, y = segment
        report = simulate_allocation(ReactiveAllocator(headroom=0.0), x, y)
        assert report.cost(violation_penalty=100.0) > report.cost(violation_penalty=1.0)

    def test_oracle_beats_reactive_on_volatile_demand(self, rng):
        """On big-step demand, reactive lag is expensive; the oracle is not.

        (On near-static demand the oracle's constant headroom waste can
        exceed reactive's tiny violation cost, so this bound is a property
        of *volatile* workloads — exactly the paper's setting.)
        """
        from repro.data.windowing import make_windows
        from repro.traces.workloads import regime_switching_load

        series = regime_switching_load(500, rng, dwell_mean=40.0, noise=0.02)
        x, y = make_windows(series[:, None], series, window=8)
        y = y[:, 0]
        h = 0.05
        oracle = simulate_allocation(OracleAllocator(headroom=h), x, y)
        react = simulate_allocation(ReactiveAllocator(headroom=h), x, y)
        assert oracle.cost() < react.cost()
        assert oracle.violation_rate < react.violation_rate

    def test_input_validation(self, segment):
        x, y = segment
        with pytest.raises(ValueError):
            simulate_allocation(OracleAllocator(), x, y[:-1])
        with pytest.raises(ValueError):
            simulate_allocation(OracleAllocator(), x[:, :, 0], y)
        with pytest.raises(ValueError):
            simulate_allocation(OracleAllocator(), x[:0], y[:0])


class TestEndToEnd:
    def test_predictive_beats_static_on_dynamic_workload(self):
        """The paper's motivation: prediction cuts waste vs peak provisioning."""
        from repro.data import PipelineConfig, PredictionPipeline
        from repro.models import create_forecaster
        from repro.traces import ClusterTraceGenerator, TraceConfig

        entity = ClusterTraceGenerator(
            TraceConfig(n_machines=1, containers_per_machine=1, n_steps=600, seed=77,
                        container_mix={"regime_switching": 1.0})
        ).generate().containers[0]
        pipe = PredictionPipeline(PipelineConfig(scenario="uni", window=10))
        prepared = pipe.prepare(entity)
        xt, yt = prepared.dataset.train
        xe, ye = prepared.dataset.test

        f = create_forecaster("xgboost", n_estimators=40,
                              target_col=prepared.target_col)
        f.fit(xt, yt)

        pred = simulate_allocation(PredictiveAllocator(f, headroom=0.1), xe, ye[:, 0])
        static = simulate_allocation(StaticAllocator(level=0.95), xe, ye[:, 0])
        assert pred.mean_overprovision < static.mean_overprovision
