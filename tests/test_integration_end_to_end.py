"""Cross-module integration: the whole system on one synthetic cluster.

Generate → corrupt → persist → reload → clean → screen → expand →
window → train → predict → allocate → schedule → serve online. Exercises
every subpackage against the same data, the way a downstream user would.
"""

import numpy as np
import pytest

from repro.allocation import PredictiveAllocator, StaticAllocator, simulate_allocation
from repro.data import PipelineConfig, PredictionPipeline
from repro.models import create_forecaster
from repro.scheduling import JobGenerator, PredictivePackingScheduler, RequestPackingScheduler, simulate_schedule
from repro.streaming import OnlinePredictor
from repro.traces import (
    ClusterTraceGenerator,
    CorruptionConfig,
    TraceConfig,
    corrupt_trace,
    read_trace_csv,
    write_trace_csv,
)


@pytest.fixture(scope="module")
def cluster():
    return ClusterTraceGenerator(
        TraceConfig(n_machines=2, containers_per_machine=2, n_steps=700, seed=99)
    ).generate()


class TestFullStory:
    def test_persist_corrupt_reload_predict(self, cluster, tmp_path_factory):
        """The complete data lifecycle ends in a working forecaster."""
        tmp = tmp_path_factory.mktemp("trace")
        dirty = corrupt_trace(cluster, CorruptionConfig(seed=5))
        write_trace_csv(dirty, tmp)
        reloaded = read_trace_csv(tmp)
        entity = reloaded.containers[0]

        pipe = PredictionPipeline(PipelineConfig(scenario="mul_exp", window=10))
        result = pipe.run(entity, "xgboost", {"n_estimators": 40})
        assert result.metrics["mse"] < 0.15
        assert result.pipeline.cleaning_report.n_dropped_incomplete > 0

    def test_forecast_feeds_allocation(self, cluster):
        """Pipeline output plugs directly into the allocator."""
        entity = cluster.containers[0]
        pipe = PredictionPipeline(PipelineConfig(scenario="uni", window=10))
        prepared = pipe.prepare(entity)
        xt, yt = prepared.dataset.train
        xe, ye = prepared.dataset.test

        f = create_forecaster("xgboost", n_estimators=40,
                              target_col=prepared.target_col)
        f.fit(xt, yt)
        predictive = simulate_allocation(PredictiveAllocator(f, headroom=0.1), xe, ye[:, 0])
        static = simulate_allocation(StaticAllocator(level=0.95), xe, ye[:, 0])
        assert predictive.mean_overprovision < static.mean_overprovision
        assert predictive.n_intervals == len(ye)

    def test_same_archetypes_drive_scheduling(self):
        """The workload archetypes power the job generator consistently."""
        jobs = JobGenerator(duration=400, seed=7).generate(30)
        request = simulate_schedule(RequestPackingScheduler(), jobs)
        predictive = simulate_schedule(
            PredictivePackingScheduler(probe_len=50, margin=0.08), jobs
        )
        assert predictive.n_machines <= request.n_machines
        assert request.overload_rate == 0.0

    def test_trace_stream_serves_online(self, cluster):
        """A raw entity stream runs through the online predictor."""
        entity = cluster.containers[1]
        stream = entity.cpu / 100.0
        predictor = OnlinePredictor(
            "holt", window=10, buffer_capacity=300, refit_interval=100, min_fit_size=50
        )
        results = predictor.run(stream)
        assert predictor.stats.n_predictions > 0.8 * len(results) - 60
        assert np.isfinite(predictor.stats.mae)
        assert predictor.stats.n_refits >= 1

    def test_registry_covers_paper_table(self):
        """Every model of the paper's Table II is constructible by name."""
        for name in ("arima", "lstm", "cnn_lstm", "xgboost", "rptcn"):
            f = create_forecaster(name)
            assert f.name == name
