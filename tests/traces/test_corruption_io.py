"""Corruption injection and CSV round-trip tests."""

import numpy as np
import pytest

from repro.traces.corruption import CorruptionConfig, corrupt_entity, corrupt_trace
from repro.traces.generator import ClusterTraceGenerator, TraceConfig
from repro.traces.io import read_trace_csv, write_trace_csv


@pytest.fixture(scope="module")
def trace():
    return ClusterTraceGenerator(
        TraceConfig(n_machines=2, containers_per_machine=2, n_steps=600, seed=9)
    ).generate()


class TestCorruption:
    def test_missing_rates_approximate_config(self, trace):
        cfg = CorruptionConfig(missing_cell_rate=0.05, missing_row_rate=0.0, seed=1)
        rng = np.random.default_rng(1)
        out = corrupt_entity(trace.containers[0], cfg, rng)
        nan_frac = np.isnan(out.values).mean()
        assert 0.02 < nan_frac < 0.10

    def test_missing_rows(self, trace):
        cfg = CorruptionConfig(missing_cell_rate=0.0, missing_row_rate=0.05, seed=2)
        rng = np.random.default_rng(2)
        out = corrupt_entity(trace.containers[0], cfg, rng)
        all_nan_rows = np.isnan(out.values).all(axis=1)
        assert 0.01 < all_nan_rows.mean() < 0.12

    def test_duplicates_extend_length(self, trace):
        cfg = CorruptionConfig(duplicate_rate=0.05, missing_cell_rate=0.0,
                               missing_row_rate=0.0, outlier_rate=0.0, seed=3)
        rng = np.random.default_rng(3)
        out = corrupt_entity(trace.containers[0], cfg, rng)
        assert len(out) > len(trace.containers[0])
        # duplicated timestamps exist
        assert len(np.unique(out.timestamps)) < len(out.timestamps)

    def test_outliers_exceed_original_range(self, trace):
        cfg = CorruptionConfig(outlier_rate=0.02, outlier_scale=5.0,
                               missing_cell_rate=0.0, missing_row_rate=0.0,
                               duplicate_rate=0.0, seed=4)
        rng = np.random.default_rng(4)
        orig = trace.containers[0]
        out = corrupt_entity(orig, cfg, rng)
        assert np.nanmax(out.values) > np.nanmax(orig.values)

    def test_original_untouched(self, trace):
        orig = trace.containers[0].values.copy()
        corrupt_trace(trace, CorruptionConfig(seed=5))
        np.testing.assert_array_equal(trace.containers[0].values, orig)

    def test_deterministic(self, trace):
        a = corrupt_trace(trace, CorruptionConfig(seed=6))
        b = corrupt_trace(trace, CorruptionConfig(seed=6))
        np.testing.assert_array_equal(a.containers[0].values, b.containers[0].values)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CorruptionConfig(missing_cell_rate=1.5)
        with pytest.raises(ValueError):
            CorruptionConfig(outlier_scale=0.5)


class TestIO:
    def test_roundtrip_values(self, trace, tmp_path):
        write_trace_csv(trace, tmp_path)
        back = read_trace_csv(tmp_path)
        assert back.n_machines == trace.n_machines
        assert back.n_containers == trace.n_containers
        for orig in trace.containers:
            loaded = back.get(orig.entity_id)
            np.testing.assert_allclose(loaded.values, orig.values, rtol=1e-4, atol=1e-4)
            np.testing.assert_array_equal(loaded.timestamps, orig.timestamps)
            assert loaded.machine_id == orig.machine_id

    def test_roundtrip_preserves_nans(self, trace, tmp_path):
        corrupted = corrupt_trace(trace, CorruptionConfig(missing_cell_rate=0.05, seed=8))
        write_trace_csv(corrupted, tmp_path)
        back = read_trace_csv(tmp_path)
        orig = corrupted.containers[0]
        loaded = back.get(orig.entity_id)
        np.testing.assert_array_equal(np.isnan(loaded.values), np.isnan(orig.values))

    def test_malformed_rows_rejected(self, tmp_path):
        (tmp_path / "machine_usage.csv").write_text("m_1,0,1,2\n")
        with pytest.raises(ValueError, match="malformed"):
            read_trace_csv(tmp_path)

    def test_headerless_accepted(self, trace, tmp_path):
        write_trace_csv(trace, tmp_path)
        # strip the header to simulate the raw v2018 format
        path = tmp_path / "machine_usage.csv"
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[1:]) + "\n")
        (tmp_path / "container_usage.csv").unlink()
        back = read_trace_csv(tmp_path)
        assert back.n_machines == trace.n_machines
