"""Generator calibration tests: schema, correlations, cluster statistics."""

import numpy as np
import pytest

from repro.traces.generator import ClusterTraceGenerator, TraceConfig
from repro.traces.schema import INDICATORS, indicator_names


@pytest.fixture(scope="module")
def trace():
    cfg = TraceConfig(n_machines=6, containers_per_machine=3, n_steps=2500, seed=11)
    return ClusterTraceGenerator(cfg).generate()


class TestStructure:
    def test_counts(self, trace):
        assert trace.n_machines == 6
        assert trace.n_containers == 18

    def test_container_host_links(self, trace):
        machine_ids = {m.entity_id for m in trace.machines}
        assert all(c.machine_id in machine_ids for c in trace.containers)

    def test_timestamps_regular(self, trace):
        for e in trace:
            assert (np.diff(e.timestamps) == trace.interval_seconds).all()

    def test_value_ranges(self, trace):
        for e in trace:
            for i, ind in enumerate(INDICATORS):
                col = e.values[:, i]
                assert col.min() >= ind.lo - 1e-9, f"{e.entity_id}.{ind.name} below lo"
                assert col.max() <= ind.hi + 1e-9, f"{e.entity_id}.{ind.name} above hi"

    def test_deterministic(self):
        cfg = TraceConfig(n_machines=2, containers_per_machine=1, n_steps=300, seed=5)
        a = ClusterTraceGenerator(cfg).generate()
        b = ClusterTraceGenerator(cfg).generate()
        np.testing.assert_array_equal(a.machines[0].values, b.machines[0].values)
        np.testing.assert_array_equal(a.containers[0].values, b.containers[0].values)

    def test_workload_provenance_recorded(self, trace):
        assert all(c.workload in
                   ("regime_switching", "bursty", "spiky_batch", "periodic", "ramp")
                   for c in trace.containers)


class TestCorrelationCalibration:
    """The paper's Fig. 7 finding: top CPU correlates are mpki, cpi, mem_gps."""

    def test_microarch_indicators_rank_top(self, trace):
        names = indicator_names()
        cpu_idx = names.index("cpu_util_percent")
        strong = {"mpki", "cpi", "mem_gps"}
        weak = {"net_in", "net_out", "disk_io_percent"}
        wins = 0
        for c in trace.containers:
            corr = np.corrcoef(c.values.T)[cpu_idx]
            strongest_weak = max(abs(corr[names.index(w)]) for w in weak)
            weakest_strong = min(abs(corr[names.index(s)]) for s in strong)
            wins += weakest_strong > strongest_weak
        # the ordering must hold for the vast majority of containers
        assert wins >= 0.8 * trace.n_containers

    def test_disk_io_weakly_correlated(self, trace):
        names = indicator_names()
        cpu_idx, disk_idx = names.index("cpu_util_percent"), names.index("disk_io_percent")
        corrs = [np.corrcoef(c.values.T)[cpu_idx, disk_idx] for c in trace.containers]
        assert np.median(np.abs(corrs)) < 0.5


class TestClusterCalibration:
    """§II statistics: 40-60% band, machines mostly below 50% CPU."""

    def test_machine_mean_cpu_in_band(self, trace):
        mean = trace.machine_cpu_matrix().mean()
        assert 30.0 < mean < 60.0

    def test_most_machines_below_50(self, trace):
        cpu = trace.machine_cpu_matrix()
        frac_below = (cpu < 50.0).mean(axis=1)
        assert (frac_below > 0.5).mean() >= 0.6

    def test_machines_smoother_than_containers(self, trace):
        def dynamism(e):
            return np.abs(np.diff(e.cpu)).mean()

        m_dyn = np.mean([dynamism(m) for m in trace.machines])
        c_dyn = np.mean([dynamism(c) for c in trace.containers])
        assert m_dyn < c_dyn


class TestGenerateEntity:
    def test_archetype_and_metadata(self):
        gen = ClusterTraceGenerator(TraceConfig(n_steps=400))
        e = gen.generate_entity("mutation", entity_id="m_x", kind="machine", jump_at=0.5)
        assert e.entity_id == "m_x"
        assert e.kind == "machine"
        assert e.workload == "mutation"
        assert len(e) == 400

    def test_unknown_archetype(self):
        gen = ClusterTraceGenerator(TraceConfig(n_steps=400))
        with pytest.raises(KeyError, match="unknown archetype"):
            gen.generate_entity("nope")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(n_machines=0)
        with pytest.raises(ValueError):
            TraceConfig(n_steps=4)
        with pytest.raises(ValueError):
            TraceConfig(container_mix={"bogus": 1.0})
        with pytest.raises(ValueError):
            TraceConfig(container_mix={})
