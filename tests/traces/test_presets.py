"""Cluster preset tests."""

import pytest

from repro.traces.generator import ClusterTraceGenerator, TraceConfig
from repro.traces.presets import PRESETS, preset


class TestPresets:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_all_presets_valid_configs(self, name):
        cfg = preset(name)
        assert isinstance(cfg, TraceConfig)  # __post_init__ validated it

    def test_overrides_applied(self):
        cfg = preset("dev", seed=99, n_steps=700)
        assert cfg.seed == 99
        assert cfg.n_steps == 700

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="unknown preset"):
            preset("bogus")

    def test_dev_preset_generates_fast(self):
        trace = ClusterTraceGenerator(preset("dev", n_steps=300)).generate()
        assert trace.n_machines == 2
        assert trace.n_containers == 4

    def test_high_dynamic_mix_restricted(self):
        cfg = preset("high_dynamic")
        assert set(cfg.container_mix) == {"regime_switching", "bursty"}

    def test_paper_like_resolves_diurnal_cycle(self):
        cfg = preset("paper_like")
        assert cfg.n_steps >= cfg.diurnal_period

    def test_invalid_override_rejected(self):
        with pytest.raises(ValueError):
            preset("dev", n_steps=2)  # TraceConfig validation still applies
