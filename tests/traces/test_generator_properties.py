"""Hypothesis property tests on the indicator coupling model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.traces.generator import ClusterTraceGenerator
from repro.traces.schema import INDICATORS

loads = arrays(
    np.float64,
    st.integers(32, 300),
    elements=st.floats(0.0, 1.0, allow_nan=False, width=64),
)


class TestCouplingProperties:
    @given(loads, st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_indicators_within_schema_bounds(self, load, seed):
        rng = np.random.default_rng(seed)
        values = ClusterTraceGenerator.indicators_from_load(load, rng)
        assert values.shape == (len(load), len(INDICATORS))
        for i, ind in enumerate(INDICATORS):
            col = values[:, i]
            assert col.min() >= ind.lo - 1e-9
            assert col.max() <= ind.hi + 1e-9
            assert np.isfinite(col).all()

    @given(loads, st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_cpu_tracks_latent_load(self, load, seed):
        """The CPU column follows the latent load closely (small noise)."""
        rng = np.random.default_rng(seed)
        values = ClusterTraceGenerator.indicators_from_load(load, rng)
        cpu = values[:, 0] / 100.0
        # interior of the range: clipping-free comparison
        interior = (load > 0.1) & (load < 0.9)
        if interior.sum() >= 8:
            err = np.abs(cpu[interior] - load[interior])
            assert err.mean() < 0.05

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_deterministic_per_seed(self, seed):
        load = np.linspace(0, 1, 64)
        a = ClusterTraceGenerator.indicators_from_load(load, np.random.default_rng(seed))
        b = ClusterTraceGenerator.indicators_from_load(load, np.random.default_rng(seed))
        np.testing.assert_array_equal(a, b)
