"""Workload-archetype properties: ranges, shapes, dynamics."""

import numpy as np
import pytest

from repro.traces.workloads import (
    WORKLOAD_ARCHETYPES,
    ar1_noise,
    bursty_load,
    mutation_load,
    periodic_load,
    ramp_load,
    regime_switching_load,
    spiky_batch_load,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestAR1:
    def test_zero_mean_unit_variance(self, rng):
        x = ar1_noise(200_000, rng, phi=0.9, sigma=1.0)
        assert abs(x.mean()) < 0.05
        assert x.std() == pytest.approx(1.0, abs=0.05)

    def test_autocorrelation_matches_phi(self, rng):
        phi = 0.8
        x = ar1_noise(100_000, rng, phi=phi)
        r1 = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert r1 == pytest.approx(phi, abs=0.03)

    def test_nonstationary_phi_rejected(self, rng):
        with pytest.raises(ValueError):
            ar1_noise(100, rng, phi=1.0)


class TestArchetypes:
    @pytest.mark.parametrize("name", sorted(WORKLOAD_ARCHETYPES))
    def test_bounded_in_unit_interval(self, rng, name):
        load = WORKLOAD_ARCHETYPES[name](3000, rng)
        assert load.shape == (3000,)
        assert load.min() >= 0.0 and load.max() <= 1.0

    @pytest.mark.parametrize("name", sorted(WORKLOAD_ARCHETYPES))
    def test_deterministic_given_seed(self, name):
        a = WORKLOAD_ARCHETYPES[name](500, np.random.default_rng(7))
        b = WORKLOAD_ARCHETYPES[name](500, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_periodic_has_dominant_period(self, rng):
        period = 500
        load = periodic_load(4000, rng, period=period, noise=0.01)
        detrended = load - load.mean()
        spectrum = np.abs(np.fft.rfft(detrended))
        spectrum[0] = 0.0
        freqs = np.fft.rfftfreq(len(load))
        dominant = 1.0 / freqs[np.argmax(spectrum)]
        assert dominant == pytest.approx(period, rel=0.2)

    def test_bursty_spends_most_time_near_base(self, rng):
        load = bursty_load(20_000, rng, base=0.25, burst_rate=0.005)
        assert np.median(load) < 0.4

    def test_regime_switching_has_plateaus(self, rng):
        load = regime_switching_load(5000, rng, noise=0.01)
        # step sizes are tiny within regimes, big at switches
        steps = np.abs(np.diff(load))
        assert (steps < 0.05).mean() > 0.9  # mostly flat
        assert steps.max() > 0.2  # but with abrupt jumps

    def test_regime_switching_needs_two_levels(self, rng):
        with pytest.raises(ValueError):
            regime_switching_load(100, rng, levels=(0.5,))

    def test_ramp_trends_upward(self, rng):
        load = ramp_load(2000, rng, start=0.1, end=0.8, noise=0.02)
        assert load[-200:].mean() > load[:200].mean() + 0.4

    def test_spiky_batch_mostly_idle(self, rng):
        load = spiky_batch_load(10_000, rng, idle=0.08, spike_rate=0.01)
        assert np.median(load) < 0.2
        assert load.max() > 0.5

    def test_mutation_jump_position_and_levels(self, rng):
        n, jump_at = 1000, 0.7
        load = mutation_load(n, rng, low=0.2, high=0.8, jump_at=jump_at, noise=0.02)
        k = int(n * jump_at)
        assert load[:k].mean() == pytest.approx(0.2, abs=0.05)
        assert load[k + 10 :].mean() == pytest.approx(0.8, abs=0.05)

    def test_mutation_jump_validation(self, rng):
        with pytest.raises(ValueError):
            mutation_load(100, rng, jump_at=1.5)
