"""Table I schema and trace container tests."""

import numpy as np
import pytest

from repro.traces.schema import (
    CONTAINER_COLUMNS,
    INDICATORS,
    MACHINE_COLUMNS,
    ClusterTrace,
    EntityTrace,
    indicator_names,
)


class TestIndicators:
    def test_count_and_order_match_table1(self):
        assert indicator_names() == [
            "cpu_util_percent",
            "mem_util_percent",
            "cpi",
            "mem_gps",
            "mpki",
            "net_in",
            "net_out",
            "disk_io_percent",
        ]

    def test_meanings_present(self):
        for ind in INDICATORS:
            assert ind.meaning
            assert ind.hi > ind.lo

    def test_column_layouts(self):
        assert MACHINE_COLUMNS[:2] == ("machine_id", "time_stamp")
        assert CONTAINER_COLUMNS[:3] == ("container_id", "machine_id", "time_stamp")
        assert MACHINE_COLUMNS[2:] == tuple(indicator_names())


def make_entity(t=10, kind="machine", **kw) -> EntityTrace:
    return EntityTrace(
        entity_id="e_1",
        kind=kind,
        timestamps=np.arange(t) * 10,
        values=np.random.default_rng(0).random((t, len(INDICATORS))),
        **kw,
    )


class TestEntityTrace:
    def test_len(self):
        assert len(make_entity(7)) == 7

    def test_indicator_view_not_copy(self):
        e = make_entity()
        col = e.indicator("cpu_util_percent")
        col[0] = 42.0
        assert e.values[0, 0] == 42.0

    def test_unknown_indicator_raises(self):
        with pytest.raises(KeyError, match="unknown indicator"):
            make_entity().indicator("bogus")

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="values must be"):
            EntityTrace("x", "machine", np.arange(3), np.zeros((3, 2)))
        with pytest.raises(ValueError, match="length mismatch"):
            EntityTrace("x", "machine", np.arange(3), np.zeros((4, len(INDICATORS))))

    def test_complete_mask(self):
        e = make_entity(5)
        e.values[2, 3] = np.nan
        mask = e.complete_mask()
        assert mask.tolist() == [True, True, False, True, True]

    def test_to_frame(self):
        frame = make_entity(4).to_frame()
        assert set(frame) == {"time_stamp", *indicator_names()}
        assert len(frame["cpi"]) == 4


class TestClusterTrace:
    def test_iter_and_get(self):
        m = make_entity(kind="machine")
        trace = ClusterTrace(machines=[m])
        assert list(trace) == [m]
        assert trace.get("e_1") is m
        with pytest.raises(KeyError):
            trace.get("nope")

    def test_machine_cpu_matrix(self):
        trace = ClusterTrace(machines=[make_entity(6), make_entity(6)])
        assert trace.machine_cpu_matrix().shape == (2, 6)

    def test_empty_matrix_raises(self):
        with pytest.raises(ValueError):
            ClusterTrace().machine_cpu_matrix()
