"""Shared fixtures and numerical-gradient helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.tensor import Tensor


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued ``fn`` w.r.t. ``x``.

    ``fn`` must read the *current contents* of ``x`` on every call
    (the helper mutates it in place and restores it).
    """
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = fn()
        x[idx] = orig - eps
        f_minus = fn()
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2.0 * eps)
        it.iternext()
    return grad


def check_gradients(build_loss, tensors: list[Tensor], atol: float = 1e-5) -> None:
    """Assert autograd gradients match finite differences.

    ``build_loss`` constructs the scalar loss Tensor from the given leaf
    tensors (re-reading their ``.data``), so it can be re-evaluated for
    the finite-difference probe.
    """
    for t in tensors:
        t.grad = None
    loss = build_loss()
    loss.backward()
    for i, t in enumerate(tensors):
        assert t.grad is not None, f"tensor {i} got no gradient"
        num = numerical_gradient(lambda: build_loss().item(), t.data)
        np.testing.assert_allclose(
            t.grad, num, atol=atol, rtol=1e-4, err_msg=f"gradient mismatch for tensor {i}"
        )
