"""Batch-independence contract: stacked predict == row-wise predict.

Micro-batched serving (``repro.streaming.fleet``) stacks the due windows
of many streams into one ``(B, window, features)`` batch and makes a
single ``model.predict`` call, scattering the rows back to their
streams. That is only sound if every forecaster treats batch rows as
independent — see the batch contract on
:meth:`repro.models.base.Forecaster.predict`. This module asserts it,
bit-for-bit, for every forecaster in the registry.
"""

from __future__ import annotations

import inspect

import numpy as np
import pytest

from repro.data.windowing import make_windows
from repro.models import FORECASTER_REGISTRY, create_forecaster
from repro.models.base import NeuralForecaster

#: keep fits fast; inspect filters these down to what each ctor accepts
_FAST_CANDIDATES = {"epochs": 1, "seed": 0, "n_estimators": 10, "channels": (4, 4)}
#: explicit per-forecaster overrides where the generic candidates don't fit
_OVERRIDES = {
    "arima": {"order": (1, 0, 0)},
    "ensemble": {"members": [("mean", {}), ("persistence", {})]},
    "hybrid_arima_nn": {
        "order": (1, 0, 0),
        "nn_kwargs": {"epochs": 1, "channels": (4, 4), "seed": 0},
    },
}


def _fast_kwargs(name: str) -> dict:
    if name in _OVERRIDES:
        return dict(_OVERRIDES[name])
    params = inspect.signature(FORECASTER_REGISTRY[name].__init__).parameters
    return {k: v for k, v in _FAST_CANDIDATES.items() if k in params}


def _windowed_data(window: int = 12, features: int = 2):
    rng = np.random.default_rng(99)
    n = 120
    t = np.arange(n, dtype=float)
    target = 0.5 + 0.2 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 0.02, n)
    feats = np.column_stack([target] + [
        np.roll(target, k + 1) + rng.normal(0, 0.02, n) for k in range(features - 1)
    ])
    return make_windows(feats, target, window, horizon=1)


@pytest.mark.parametrize("name", sorted(FORECASTER_REGISTRY))
def test_stacked_predict_equals_rowwise(name):
    x, y = _windowed_data()
    model = create_forecaster(name, **_fast_kwargs(name))
    model.fit(x[:-7], y[:-7])
    batch = x[-7:]
    stacked = np.asarray(model.predict(batch))
    rowwise = np.concatenate(
        [np.asarray(model.predict(batch[i : i + 1])) for i in range(len(batch))]
    )
    assert stacked.shape == rowwise.shape
    err = f"{name}: predict is not row-independent — micro-batching unsound"
    if isinstance(model, NeuralForecaster) or name == "hybrid_arima_nn":
        # GEMM-backed forwards reduce in a batch-size-dependent order, so
        # rows agree to within a few ulps rather than bit-for-bit; any
        # genuine cross-row dependence would show up orders of magnitude
        # above this tolerance
        np.testing.assert_allclose(stacked, rowwise, rtol=1e-9, atol=1e-12, err_msg=err)
    else:
        np.testing.assert_array_equal(stacked, rowwise, err_msg=err)
