"""The warm-start contract: resume when possible, cold-fit otherwise.

``Forecaster.warm_fit`` feeds the async refit engine's warm path
(ISSUE 9): callers treat it as "give me an updated model", so a model
that cannot resume must fall back to a full fit rather than raise.
Neural models resume the live Trainer (Adam moments and all) and splice
the resumed epochs into their lifetime history; the pruned GRU
additionally re-clamps its magnitude masks so a warm refit never
silently densifies the network.
"""

import numpy as np
import pytest

from repro.data.windowing import make_windows
from repro.models import create_forecaster


def _data(n=80, seed=0, features=1, window=8):
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=float)
    series = 0.5 + 0.2 * np.sin(2 * np.pi * t / 16) + rng.normal(0, 0.02, n)
    feats = np.repeat(series[:, None], features, axis=1)
    return make_windows(feats, series, window=window)


class TestClassicalDefault:
    @pytest.mark.parametrize("name", ["mean", "holt", "persistence"])
    def test_warm_fit_is_exactly_the_cold_path(self, name):
        x, y = _data()
        x2, y2 = _data(seed=1)
        warm = create_forecaster(name).fit(x, y).warm_fit(x2, y2, epochs=3)
        cold = create_forecaster(name).fit(x2, y2)
        assert not warm.supports_warm_fit
        np.testing.assert_array_equal(warm.predict(x2[:5]), cold.predict(x2[:5]))

    def test_unfitted_warm_fit_just_fits(self):
        x, y = _data()
        model = create_forecaster("mean").warm_fit(x, y)
        assert model.fitted


class TestNeuralResume:
    def test_resume_reuses_network_and_splices_history(self):
        x, y = _data(seed=0)
        x2, y2 = _data(seed=1)
        model = create_forecaster("mlp", epochs=4, seed=0).fit(x, y)
        net, trainer = model.model, model.trainer
        before = model.history.epochs_run
        assert model.supports_warm_fit
        model.warm_fit(x2, y2, epochs=2)
        # genuine continuation: same network object, same Trainer (and
        # therefore the same Adam instance with its moments)
        assert model.model is net and model.trainer is trainer
        assert model.history.epochs_run == before + 2
        assert len(model.history.train_loss) == before + 2

    def test_default_budget_is_quarter_of_cold_epochs(self):
        x, y = _data()
        model = create_forecaster("mlp", epochs=8, seed=0).fit(x, y)
        before = model.history.epochs_run
        model.warm_fit(x, y)
        assert model.history.epochs_run == before + 2  # 8 // 4

    def test_shape_mismatch_falls_back_to_cold_fit(self):
        x, y = _data(window=8)
        model = create_forecaster("mlp", epochs=2, seed=0).fit(x, y)
        net = model.model
        x2, y2 = _data(window=12)  # different window: the net cannot resume
        model.warm_fit(x2, y2)
        assert model.model is not net  # rebuilt, not resumed
        assert model._fit_shape == (12, 1)
        assert np.isfinite(model.predict(x2[:3])).all()

    def test_warm_fit_rejects_nonpositive_budget(self):
        x, y = _data()
        model = create_forecaster("mlp", epochs=2, seed=0).fit(x, y)
        with pytest.raises(ValueError, match="epochs"):
            model.warm_fit(x, y, epochs=0)


class TestPrunedGRU:
    KW = dict(hidden=8, epochs=2, finetune_epochs=1, seed=0)

    def test_fit_reaches_requested_sparsity(self):
        x, y = _data(n=60)
        model = create_forecaster("gru_pruned", sparsity=0.5, **self.KW).fit(x, y)
        assert model.sparsity_achieved == pytest.approx(0.5, abs=0.05)
        for name, param in model.model.named_parameters():
            mask = model._masks.get(name)
            if mask is not None:
                assert (param.data[~mask] == 0.0).all()

    def test_warm_fit_preserves_masks_and_sparsity(self):
        x, y = _data(n=60, seed=0)
        x2, y2 = _data(n=60, seed=1)
        model = create_forecaster("gru_pruned", sparsity=0.5, **self.KW).fit(x, y)
        masks_before = {k: v.copy() for k, v in model._masks.items()}
        sparsity_before = model.sparsity_achieved
        model.warm_fit(x2, y2, epochs=2)
        # the masks are part of the model: identical after the resume,
        # and every pruned weight is still exactly zero
        assert set(model._masks) == set(masks_before)
        for name, mask in masks_before.items():
            np.testing.assert_array_equal(model._masks[name], mask)
        assert model.sparsity_achieved == sparsity_before
        for name, param in model.model.named_parameters():
            mask = model._masks.get(name)
            if mask is not None:
                assert (param.data[~mask] == 0.0).all()

    def test_zero_sparsity_disables_pruning(self):
        x, y = _data(n=60)
        model = create_forecaster("gru_pruned", sparsity=0.0, **self.KW).fit(x, y)
        assert model.sparsity_achieved == 0.0
        assert model._masks == {}

    def test_validation(self):
        with pytest.raises(ValueError, match="sparsity"):
            create_forecaster("gru_pruned", sparsity=1.0)
        with pytest.raises(ValueError, match="finetune_epochs"):
            create_forecaster("gru_pruned", finetune_epochs=-1)

    def test_serialization_roundtrip_keeps_masks(self):
        from repro.models.base import Forecaster

        x, y = _data(n=60)
        model = create_forecaster("gru_pruned", sparsity=0.5, **self.KW).fit(x, y)
        clone = Forecaster.from_bytes(model.to_bytes())
        assert clone.sparsity_achieved == model.sparsity_achieved
        np.testing.assert_array_equal(clone.predict(x[:4]), model.predict(x[:4]))
