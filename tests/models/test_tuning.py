"""Grid-search tuning tests."""

import numpy as np
import pytest

from repro.models.tuning import grid_search


@pytest.fixture
def windows(rng):
    from repro.data.windowing import make_windows

    series = np.sin(np.linspace(0, 25, 350)) * 0.4 + 0.5
    x, y = make_windows(series[:, None], series, window=10)
    return x[:200], y[:200], x[200:260], y[200:260]


class TestGridSearch:
    def test_tries_every_combination(self, windows):
        xt, yt, xv, yv = windows
        res = grid_search(
            "xgboost",
            {"max_depth": [2, 3], "learning_rate": [0.1, 0.3]},
            xt, yt, xv, yv,
            fixed_kwargs={"n_estimators": 15},
        )
        assert len(res.trials) == 4
        tried = {tuple(sorted(t.params.items())) for t in res.trials}
        assert len(tried) == 4

    def test_best_is_minimum_val_mse(self, windows):
        xt, yt, xv, yv = windows
        res = grid_search(
            "xgboost", {"max_depth": [1, 4]}, xt, yt, xv, yv,
            fixed_kwargs={"n_estimators": 20},
        )
        assert res.best.val_mse == min(t.val_mse for t in res.trials)
        assert res.ranked()[0].val_mse <= res.ranked()[-1].val_mse

    def test_records_fit_time(self, windows):
        xt, yt, xv, yv = windows
        res = grid_search(
            "xgboost", {"max_depth": [2]}, xt, yt, xv, yv,
            fixed_kwargs={"n_estimators": 10},
        )
        assert res.trials[0].fit_seconds > 0

    def test_works_with_deep_model(self, windows):
        xt, yt, xv, yv = windows
        res = grid_search(
            "rptcn", {"fc_units": [8, 16]}, xt, yt, xv, yv,
            fixed_kwargs={"epochs": 2, "channels": (4, 4), "seed": 0},
        )
        assert len(res.trials) == 2
        assert all(t.val_mse > 0 for t in res.trials)

    def test_empty_grid_rejected(self, windows):
        xt, yt, xv, yv = windows
        with pytest.raises(ValueError):
            grid_search("xgboost", {}, xt, yt, xv, yv)

    def test_best_on_empty_result(self):
        from repro.models.tuning import GridSearchResult

        with pytest.raises(RuntimeError):
            GridSearchResult().best
