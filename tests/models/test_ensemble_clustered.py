"""Ensemble / hybrid / cluster-then-predict tests."""

import numpy as np
import pytest

from repro.models import (
    ClusteredForecaster,
    EnsembleForecaster,
    HybridARIMANNForecaster,
    KMeans,
    window_features,
)

from .test_deep_models import sine_windows


class TestKMeans:
    def test_recovers_separated_blobs(self, rng):
        blobs = np.concatenate(
            [rng.normal(c, 0.1, size=(100, 2)) for c in (0.0, 5.0, 10.0)]
        )
        km = KMeans(3, seed=1).fit(blobs)
        labels = km.predict(blobs)
        # each true blob maps to a single cluster
        for start in (0, 100, 200):
            assert len(np.unique(labels[start : start + 100])) == 1
        # clusters are distinct across blobs
        assert len({labels[0], labels[100], labels[200]}) == 3

    def test_centroids_near_blob_means(self, rng):
        blobs = np.concatenate([rng.normal(c, 0.05, (80, 1)) for c in (0.0, 1.0)])
        km = KMeans(2, seed=0).fit(blobs)
        got = np.sort(km.centroids_[:, 0])
        np.testing.assert_allclose(got, [0.0, 1.0], atol=0.05)

    def test_inertia_decreases_with_k(self, rng):
        x = rng.random((200, 3))
        inertias = [KMeans(k, seed=0).fit(x).inertia_ for k in (1, 2, 4, 8)]
        assert inertias == sorted(inertias, reverse=True)

    def test_deterministic_given_seed(self, rng):
        x = rng.random((100, 2))
        a = KMeans(3, seed=5).fit(x).centroids_
        b = KMeans(3, seed=5).fit(x).centroids_
        np.testing.assert_array_equal(a, b)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            KMeans(0)
        with pytest.raises(ValueError):
            KMeans(5).fit(rng.random((3, 2)))
        with pytest.raises(RuntimeError):
            KMeans(2).predict(rng.random((3, 2)))


class TestWindowFeatures:
    def test_shape(self, rng):
        feats = window_features(rng.random((20, 8, 3)), target_col=1)
        assert feats.shape == (20, 5)

    def test_discriminates_flat_from_noisy(self, rng):
        flat = np.full((1, 16, 1), 0.5)
        noisy = rng.random((1, 16, 1))
        ff = window_features(flat)[0]
        fn = window_features(noisy)[0]
        assert ff[1] < fn[1]  # std
        assert ff[3] < fn[3]  # roughness


class TestEnsemble:
    def test_uniform_average(self):
        x, y = sine_windows(n=250)
        ens = EnsembleForecaster(
            members=[("persistence", {}), ("mean", {})], weighting="uniform"
        )
        ens.fit(x[:150], y[:150])
        pred = ens.predict(x[150:160])
        manual = 0.5 * (
            x[150:160, -1, 0:1] + x[150:160, :, 0].mean(axis=1, keepdims=True)
        )
        np.testing.assert_allclose(pred, manual)

    def test_inverse_mse_prefers_better_member(self):
        x, y = sine_windows(n=300)
        ens = EnsembleForecaster(
            members=[("persistence", {}), ("mean", {})], weighting="inverse_mse"
        )
        ens.fit(x[:180], y[:180], x[180:230], y[180:230])
        # persistence is much better than window-mean on a smooth sine
        assert ens.weights_[0] > ens.weights_[1]
        assert ens.weights_.sum() == pytest.approx(1.0)

    def test_inverse_mse_requires_validation(self):
        x, y = sine_windows(n=200)
        ens = EnsembleForecaster(members=[("mean", {})], weighting="inverse_mse")
        with pytest.raises(ValueError, match="validation"):
            ens.fit(x, y)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnsembleForecaster(members=[])
        with pytest.raises(ValueError):
            EnsembleForecaster(weighting="bogus")


class TestHybrid:
    def test_beats_or_matches_arima_alone(self, rng):
        """On a linear+nonlinear+noise series the residual NN helps.

        (On a noiseless sine ARIMA is already exact, so the comparison
        needs a target with structure the linear model cannot express.)
        """
        from repro.data.windowing import make_windows
        from repro.models import ARIMAForecaster
        from repro.training.metrics import mse as mse_fn

        t = np.linspace(0, 40, 600)
        series = (
            0.5
            + 0.3 * np.sin(t)  # linear-representable part
            + 0.15 * np.sign(np.sin(3 * t))  # square wave: nonlinear
            + rng.normal(0, 0.02, 600)
        )
        x, y = make_windows(series[:, None], series, window=12)
        hybrid = HybridARIMANNForecaster(
            order=(2, 0, 0), nn_name="mlp",
            nn_kwargs={"hidden": (32,), "epochs": 40, "seed": 0},
        )
        hybrid.fit(x[:350], y[:350], x[350:450], y[350:450])
        arima = ARIMAForecaster(order=(2, 0, 0)).fit(x[:350], y[:350])
        err_h = mse_fn(y[450:], hybrid.predict(x[450:]))
        err_a = mse_fn(y[450:], arima.predict(x[450:]))
        assert err_h < 1.1 * err_a  # residual learning must not hurt, and
        # typically helps on the nonlinear component

    def test_decomposition_structure(self):
        x, y = sine_windows(n=300)
        hybrid = HybridARIMANNForecaster(
            order=(1, 0, 0), nn_name="mlp", nn_kwargs={"hidden": (8,), "epochs": 2},
        )
        hybrid.fit(x[:200], y[:200])
        pred = hybrid.predict(x[200:210])
        arima_part = hybrid._arima_part(x[200:210])
        nn_part = hybrid.nn.predict(x[200:210])
        np.testing.assert_allclose(pred, arima_part + nn_part)

    def test_multistep_rejected(self):
        with pytest.raises(ValueError):
            HybridARIMANNForecaster(horizon=3)


class TestClustered:
    def _mixed_windows(self, rng):
        """Two regimes with different dynamics in one dataset."""
        from repro.data.windowing import make_windows

        t = np.arange(400)
        smooth = 0.5 + 0.3 * np.sin(t / 15.0)
        noisy = np.clip(0.5 + rng.normal(0, 0.15, 400), 0, 1)
        xs, ys = make_windows(smooth[:, None], smooth, window=10)
        xn, yn = make_windows(noisy[:, None], noisy, window=10)
        x = np.concatenate([xs, xn])
        y = np.concatenate([ys, yn])
        return x, y

    def test_routes_and_predicts(self, rng):
        x, y = self._mixed_windows(rng)
        f = ClusteredForecaster(
            k=2, member="xgboost", member_kwargs={"n_estimators": 20}, seed=1
        )
        f.fit(x, y)
        assert len(f.models) >= 1
        pred = f.predict(x[:50])
        assert pred.shape == (50, 1)

    def test_small_clusters_fall_back(self, rng):
        x, y = self._mixed_windows(rng)
        f = ClusteredForecaster(
            k=2, member="mean", min_cluster_size=10**9, seed=1
        )
        f.fit(x, y)
        assert len(f.models) == 0  # everything routes to the fallback
        assert f.predict(x[:5]).shape == (5, 1)

    def test_registered(self):
        from repro.models import FORECASTER_REGISTRY

        assert {"ensemble", "hybrid_arima_nn", "clustered"} <= set(FORECASTER_REGISTRY)
