"""TCN / RPTCN / LSTM / CNN-LSTM forecaster tests."""

import numpy as np
import pytest

from repro.models import (
    CNNLSTMForecaster,
    LSTMForecaster,
    RPTCN,
    RPTCNForecaster,
    TCN,
    TCNForecaster,
    TemporalBlock,
)
from repro.nn.tensor import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(21)


def sine_windows(n=400, window=12, horizon=1, features=3, seed=0):
    """Synthetic multivariate windows with a learnable target."""
    from repro.data.windowing import make_windows

    rng = np.random.default_rng(seed)
    t = np.linspace(0, 30, n)
    target = 0.5 + 0.4 * np.sin(t)
    feats = np.column_stack(
        [target] + [target + rng.normal(0, 0.05, n) for _ in range(features - 1)]
    )
    return make_windows(feats, target, window=window, horizon=horizon)


class TestTemporalBlock:
    def test_preserves_length(self, rng):
        block = TemporalBlock(4, 8, kernel_size=3, dilation=2, rng=rng)
        out = block(Tensor(rng.random((2, 4, 20))))
        assert out.shape == (2, 8, 20)

    def test_identity_shortcut_when_channels_match(self, rng):
        block = TemporalBlock(6, 6, kernel_size=3, dilation=1, rng=rng)
        assert block.downsample is None

    def test_projection_shortcut_when_channels_differ(self, rng):
        block = TemporalBlock(4, 8, kernel_size=3, dilation=1, rng=rng)
        assert block.downsample is not None

    def test_output_nonnegative_after_final_relu(self, rng):
        block = TemporalBlock(3, 5, kernel_size=3, dilation=1, rng=rng)
        out = block(Tensor(rng.standard_normal((2, 3, 15))))
        assert (out.data >= 0).all()


class TestTCNBackbone:
    def test_default_dilations_double(self, rng):
        tcn = TCN(3, channels=(8, 8, 8), rng=rng)
        assert [b.dilation for b in tcn.blocks] == [1, 2, 4]

    def test_receptive_field_formula(self, rng):
        # RF = 1 + sum over blocks of 2*(K-1)*d
        tcn = TCN(3, channels=(8, 8, 8), kernel_size=3, rng=rng)
        assert tcn.receptive_field == 1 + 2 * 2 * (1 + 2 + 4)

    def test_causality_of_full_stack(self, rng):
        tcn = TCN(2, channels=(4, 4), rng=rng)
        tcn.eval()
        x = rng.random((1, 2, 30))
        base = tcn(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, :, 20] += 5.0
        out = tcn(Tensor(x2)).data
        np.testing.assert_allclose(out[:, :, :20], base[:, :, :20])

    def test_dilations_override(self, rng):
        tcn = TCN(3, channels=(8, 8), dilations=(1, 3), rng=rng)
        assert [b.dilation for b in tcn.blocks] == [1, 3]

    def test_dilations_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            TCN(3, channels=(8, 8), dilations=(1,), rng=rng)


class TestRPTCNArchitecture:
    def test_paper_figure5_config(self, rng):
        """Kernel 3, dilations [1, 2, 4] as in Fig. 5."""
        net = RPTCN(4, channels=(8, 8, 8), kernel_size=3, dilations=(1, 2, 4), rng=rng)
        out = net(Tensor(rng.random((5, 12, 4))))
        assert out.shape == (5, 1)

    def test_multistep_head(self, rng):
        net = RPTCN(4, horizon=3, rng=rng)
        assert net(Tensor(rng.random((2, 12, 4)))).shape == (2, 3)

    def test_attention_variants(self, rng):
        for kind in ("feature", "temporal", "none"):
            net = RPTCN(3, attention=kind, rng=rng)
            assert net(Tensor(rng.random((2, 10, 3)))).shape == (2, 1)

    def test_fc_ablation(self, rng):
        net = RPTCN(3, use_fc=False, rng=rng)
        assert net.fc is None
        assert net(Tensor(rng.random((2, 10, 3)))).shape == (2, 1)

    def test_invalid_attention(self, rng):
        with pytest.raises(ValueError):
            RPTCN(3, attention="bogus", rng=rng)

    def test_attention_weights_inspectable(self, rng):
        net = RPTCN(3, fc_units=16, rng=rng)
        net.eval()
        w = net.attention_weights(Tensor(rng.random((4, 10, 3))))
        assert w.shape == (4, 16)
        assert (w >= 0).all()

    def test_attention_weights_none_when_ablated(self, rng):
        net = RPTCN(3, attention="none", rng=rng)
        assert net.attention_weights(Tensor(rng.random((1, 10, 3)))) is None

    def test_zero_head_init_gives_zero_output(self, rng):
        net = RPTCN(3, rng=rng)
        net.eval()
        out = net(Tensor(rng.random((3, 10, 3))))
        np.testing.assert_array_equal(out.data, np.zeros((3, 1)))


class TestForecasterLearning:
    @pytest.mark.parametrize(
        "cls,kwargs",
        [
            (RPTCNForecaster, {"channels": (8, 8), "epochs": 25}),
            (TCNForecaster, {"channels": (8, 8), "epochs": 25}),
            (LSTMForecaster, {"hidden": 16, "epochs": 25}),
            (CNNLSTMForecaster, {"filters": 8, "hidden": 16, "epochs": 25}),
        ],
    )
    def test_learns_sine_better_than_mean(self, cls, kwargs):
        x, y = sine_windows()
        model = cls(seed=3, **kwargs)
        model.fit(x[:250], y[:250], x[250:320], y[250:320])
        pred = model.predict(x[320:])
        truth = y[320:]
        mse_model = np.mean((pred - truth) ** 2)
        mse_const = np.mean((truth - y[:250].mean()) ** 2)
        assert mse_model < 0.5 * mse_const, f"{cls.__name__} failed to learn"

    def test_deterministic_given_seed(self):
        x, y = sine_windows(n=150)
        preds = []
        for _ in range(2):
            m = RPTCNForecaster(channels=(4, 4), epochs=3, seed=11)
            m.fit(x[:80], y[:80])
            preds.append(m.predict(x[80:90]))
        np.testing.assert_array_equal(preds[0], preds[1])

    def test_early_stopping_engages(self):
        x, y = sine_windows(n=200)
        m = LSTMForecaster(hidden=8, epochs=200, patience=3, seed=0)
        m.fit(x[:100], y[:100], x[100:140], y[100:140])
        assert m.history is not None
        assert m.history.epochs_run < 200

    def test_loss_curves_available(self):
        x, y = sine_windows(n=150)
        m = RPTCNForecaster(channels=(4, 4), epochs=4, seed=0)
        m.fit(x[:80], y[:80], x[80:100], y[80:100])
        curves = m.loss_curves
        assert len(curves["loss"]) == len(curves["val_loss"]) > 0

    def test_predict_before_fit_raises(self):
        m = RPTCNForecaster()
        with pytest.raises(RuntimeError, match="not fitted"):
            m.predict(np.zeros((1, 10, 2)))

    def test_input_validation(self):
        m = RPTCNForecaster(epochs=1)
        with pytest.raises(ValueError):
            m.fit(np.zeros((10, 5)), np.zeros((10, 1)))  # 2-D x
        with pytest.raises(ValueError):
            m.fit(np.zeros((10, 5, 2)), np.zeros((9, 1)))  # misaligned y

    def test_multistep_forecaster(self):
        x, y = sine_windows(horizon=3)
        m = RPTCNForecaster(horizon=3, channels=(4, 4), epochs=5, seed=0)
        m.fit(x[:100], y[:100])
        assert m.predict(x[100:110]).shape == (10, 3)
