"""GRU / MLP / Holt forecaster tests."""

import numpy as np
import pytest

from repro.models import GRUForecaster, HoltForecaster, MLPForecaster
from repro.models.exponential import holt_linear, simple_exponential_smoothing

from .test_deep_models import sine_windows


class TestSES:
    def test_constant_series_fixed_point(self):
        levels = simple_exponential_smoothing(np.full(20, 5.0), alpha=0.3)
        np.testing.assert_allclose(levels, 5.0)

    def test_alpha_one_is_identity(self, rng):
        x = rng.random(30)
        np.testing.assert_allclose(simple_exponential_smoothing(x, 1.0), x)

    def test_matches_recursion(self, rng):
        x = rng.random(50)
        alpha = 0.4
        levels = simple_exponential_smoothing(x, alpha)
        manual = np.empty_like(x)
        manual[0] = x[0]
        for t in range(1, len(x)):
            manual[t] = alpha * x[t] + (1 - alpha) * manual[t - 1]
        np.testing.assert_allclose(levels, manual)

    def test_validation(self):
        with pytest.raises(ValueError):
            simple_exponential_smoothing(np.zeros(5), 0.0)
        with pytest.raises(ValueError):
            simple_exponential_smoothing(np.zeros((2, 2)), 0.5)


class TestHolt:
    def test_tracks_linear_trend_exactly(self):
        series = 1.0 + 0.5 * np.arange(50)
        levels, trends = holt_linear(series, alpha=0.5, beta=0.5)
        assert levels[-1] == pytest.approx(series[-1], abs=1e-6)
        assert trends[-1] == pytest.approx(0.5, abs=1e-6)

    def test_forecaster_extrapolates_trend(self):
        t = np.arange(200.0)
        series = 0.002 * t + 0.1
        from repro.data.windowing import make_windows

        x, y = make_windows(series[:, None], series, window=10, horizon=3)
        f = HoltForecaster(horizon=3).fit(x[:100], y[:100])
        pred = f.predict(x[100:110])
        np.testing.assert_allclose(pred, y[100:110], atol=1e-6)

    def test_grid_selects_high_alpha_for_noiseless(self):
        series = np.sin(np.arange(300) / 10.0)
        from repro.data.windowing import make_windows

        x, y = make_windows(series[:, None], series, window=10)
        f = HoltForecaster().fit(x, y)
        assert f.alpha_ is not None and f.alpha_ >= 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            holt_linear(np.array([1.0]), 0.5, 0.5)
        with pytest.raises(ValueError):
            holt_linear(np.arange(10.0), 0.5, 1.5)


class TestGRUAndMLP:
    @pytest.mark.parametrize(
        "cls,kwargs",
        [
            (GRUForecaster, {"hidden": 12, "epochs": 25}),
            (MLPForecaster, {"hidden": (32,), "epochs": 30}),
        ],
    )
    def test_learns_sine(self, cls, kwargs):
        x, y = sine_windows()
        m = cls(seed=9, **kwargs)
        m.fit(x[:250], y[:250], x[250:320], y[250:320])
        pred = m.predict(x[320:])
        truth = y[320:]
        mse_model = np.mean((pred - truth) ** 2)
        mse_const = np.mean((truth - y[:250].mean()) ** 2)
        assert mse_model < 0.5 * mse_const

    def test_registered(self):
        from repro.models import FORECASTER_REGISTRY

        assert {"gru", "mlp", "holt"} <= set(FORECASTER_REGISTRY)

    def test_mlp_validation(self):
        with pytest.raises(ValueError):
            MLPForecaster(hidden=())
