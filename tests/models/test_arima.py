"""ARIMA estimation and forecasting tests."""

import numpy as np
import pytest
from scipy.signal import lfilter

from repro.models.arima import ARIMA, ARIMAForecaster, select_arima_order


def simulate_arma(n, phi=(), theta=(), c=0.0, sigma=0.1, seed=0, burn=200):
    """Simulate an ARMA process with known coefficients."""
    rng = np.random.default_rng(seed)
    e = rng.normal(0, sigma, n + burn)
    # x_t = c + sum phi x_{t-i} + e_t + sum theta e_{t-j}
    x = lfilter(np.concatenate(([1.0], np.asarray(theta))),
                np.concatenate(([1.0], -np.asarray(phi))), e)
    x += c / max(1.0 - sum(phi), 1e-9)
    return x[burn:]


class TestEstimation:
    def test_recovers_ar1_coefficient(self):
        series = simulate_arma(4000, phi=(0.7,), sigma=0.1, seed=1)
        model = ARIMA(1, 0, 0).fit(series)
        assert model.phi_[0] == pytest.approx(0.7, abs=0.05)

    def test_recovers_ar2(self):
        series = simulate_arma(6000, phi=(0.5, 0.3), sigma=0.1, seed=2)
        model = ARIMA(2, 0, 0).fit(series)
        assert model.phi_[0] == pytest.approx(0.5, abs=0.08)
        assert model.phi_[1] == pytest.approx(0.3, abs=0.08)

    def test_recovers_ma1(self):
        series = simulate_arma(6000, theta=(0.6,), sigma=0.1, seed=3)
        model = ARIMA(0, 0, 1).fit(series)
        assert model.theta_[0] == pytest.approx(0.6, abs=0.08)

    def test_arma11(self):
        series = simulate_arma(8000, phi=(0.6,), theta=(0.3,), sigma=0.1, seed=4)
        model = ARIMA(1, 0, 1).fit(series)
        assert model.phi_[0] == pytest.approx(0.6, abs=0.12)
        assert model.theta_[0] == pytest.approx(0.3, abs=0.15)

    def test_constant_recovered(self):
        series = simulate_arma(4000, phi=(0.5,), c=1.0, sigma=0.1, seed=5)
        model = ARIMA(1, 0, 0).fit(series)
        # unconditional mean = c / (1 - phi) = 2
        mean = model.const_ / (1 - model.phi_[0])
        assert mean == pytest.approx(2.0, abs=0.2)

    def test_differencing_handles_random_walk(self):
        rng = np.random.default_rng(6)
        series = np.cumsum(rng.normal(0, 1, 2000))
        model = ARIMA(1, 1, 0).fit(series)
        # differenced walk is white noise: phi ~ 0
        assert abs(model.phi_[0]) < 0.1

    def test_sigma2_estimates_noise_variance(self):
        series = simulate_arma(5000, phi=(0.5,), sigma=0.2, seed=7)
        model = ARIMA(1, 0, 0).fit(series)
        assert model.sigma2_ == pytest.approx(0.04, rel=0.2)

    def test_too_short_series(self):
        with pytest.raises(ValueError, match="too short"):
            ARIMA(2, 0, 2).fit(np.arange(5.0))

    def test_order_validation(self):
        with pytest.raises(ValueError):
            ARIMA(-1, 0, 0)
        with pytest.raises(ValueError):
            ARIMA(0, 1, 0, include_constant=False)


class TestForecast:
    def test_ar1_forecast_decays_to_mean(self):
        series = simulate_arma(3000, phi=(0.8,), sigma=0.05, seed=8)
        model = ARIMA(1, 0, 0).fit(series)
        fc = model.forecast(50)
        mean = model.const_ / (1 - model.phi_[0])
        # long-horizon forecast converges to the unconditional mean
        assert abs(fc[-1] - mean) < abs(fc[0] - mean) + 0.05

    def test_d1_forecast_continues_level(self):
        rng = np.random.default_rng(9)
        series = 10.0 + np.cumsum(rng.normal(0, 0.01, 1000))
        model = ARIMA(1, 1, 0).fit(series)
        fc = model.forecast(5)
        assert np.all(np.abs(fc - series[-1]) < 1.0)

    def test_forecast_from_explicit_history(self):
        series = simulate_arma(2000, phi=(0.7,), sigma=0.1, seed=10)
        model = ARIMA(1, 0, 0).fit(series)
        hist = series[500:520]
        fc = model.forecast(1, history=hist)
        # one-step AR(1) forecast ~ c + phi * last
        expected = model.const_ + model.phi_[0] * hist[-1]
        assert fc[0] == pytest.approx(expected, abs=1e-9)

    def test_forecast_validation(self):
        model = ARIMA(1, 0, 0)
        with pytest.raises(RuntimeError):
            model.forecast(1)
        model.fit(simulate_arma(500, phi=(0.5,), seed=11))
        with pytest.raises(ValueError):
            model.forecast(0)


class TestOrderSelection:
    def test_aic_prefers_true_order_neighbourhood(self):
        series = simulate_arma(3000, phi=(0.8,), sigma=0.1, seed=12)
        p, d, q = select_arima_order(series, max_p=2, max_q=1)
        assert d == 0
        assert p >= 1  # AR structure detected

    def test_aic_ordering(self):
        series = simulate_arma(3000, phi=(0.8,), sigma=0.1, seed=13)
        good = ARIMA(1, 0, 0).fit(series)
        # overparameterized model pays the 2k penalty
        big = ARIMA(3, 0, 2).fit(series)
        assert good.aic < big.aic + 10  # allow tiny likelihood gains


class TestForecasterWrapper:
    def _windows(self, seed=14):
        from repro.data.windowing import make_windows

        series = simulate_arma(600, phi=(0.7,), sigma=0.1, seed=seed)
        return make_windows(series[:, None], series, window=12)

    def test_fit_predict_shapes(self):
        x, y = self._windows()
        f = ARIMAForecaster(order=(1, 0, 0)).fit(x[:400], y[:400])
        pred = f.predict(x[400:])
        assert pred.shape == (len(x) - 400, 1)

    def test_beats_mean_on_ar_process(self):
        x, y = self._windows()
        f = ARIMAForecaster(order=(1, 0, 0)).fit(x[:400], y[:400])
        pred = f.predict(x[400:])
        truth = y[400:, 0]
        mse_arima = np.mean((pred[:, 0] - truth) ** 2)
        mse_mean = np.mean((truth.mean() - truth) ** 2)
        assert mse_arima < 0.7 * mse_mean

    def test_auto_order(self):
        x, y = self._windows()
        f = ARIMAForecaster(auto_max_p=2, auto_max_q=1).fit(x[:300], y[:300])
        assert f.model is not None
        assert f.predict(x[300:310]).shape == (10, 1)

    def test_training_series_reassembly(self):
        x, y = self._windows()
        series = ARIMAForecaster._training_series(x, y, 0)
        # contiguity: the reassembled series is window + n_targets long
        assert len(series) == x.shape[1] + len(y)
        np.testing.assert_array_equal(series[: x.shape[1]], x[0, :, 0])
