"""Naive baselines and registry mechanics."""

import numpy as np
import pytest

from repro.models import (
    DriftForecaster,
    FORECASTER_REGISTRY,
    MeanForecaster,
    PersistenceForecaster,
    create_forecaster,
    register_forecaster,
)
from repro.models.base import Forecaster


@pytest.fixture
def windows(rng):
    x = rng.random((30, 8, 3))
    y = rng.random((30, 2))
    return x, y


class TestRegistry:
    def test_all_paper_models_registered(self):
        required = {"arima", "lstm", "cnn_lstm", "xgboost", "rptcn", "tcn"}
        assert required <= set(FORECASTER_REGISTRY)

    def test_create_by_name(self):
        f = create_forecaster("persistence", horizon=2)
        assert isinstance(f, PersistenceForecaster)
        assert f.horizon == 2

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown forecaster"):
            create_forecaster("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(KeyError, match="already registered"):

            @register_forecaster("persistence")
            class Dup(Forecaster):  # pragma: no cover
                def fit(self, x, y, x_val=None, y_val=None):
                    return self

                def predict(self, x):
                    return x

    def test_name_attribute_set(self):
        assert PersistenceForecaster.name == "persistence"
        assert FORECASTER_REGISTRY["rptcn"].name == "rptcn"


class TestPersistence:
    def test_repeats_last_value(self, windows):
        x, y = windows
        f = PersistenceForecaster(horizon=2, target_col=1).fit(x, y)
        pred = f.predict(x)
        np.testing.assert_array_equal(pred[:, 0], x[:, -1, 1])
        np.testing.assert_array_equal(pred[:, 0], pred[:, 1])

    def test_requires_fit(self, windows):
        x, _ = windows
        with pytest.raises(RuntimeError):
            PersistenceForecaster().predict(x)


class TestMean:
    def test_predicts_window_mean(self, windows):
        x, y = windows
        f = MeanForecaster(horizon=2).fit(x, y)
        np.testing.assert_allclose(f.predict(x)[:, 0], x[:, :, 0].mean(axis=1))


class TestDrift:
    def test_extrapolates_linear_trend_exactly(self):
        t = np.arange(10.0)
        x = np.tile(t[None, :, None], (3, 1, 1))
        y = np.full((3, 2), np.nan)
        f = DriftForecaster(horizon=2).fit(x, y)
        pred = f.predict(x)
        np.testing.assert_allclose(pred, [[10.0, 11.0]] * 3)

    def test_horizon_validation(self):
        with pytest.raises(ValueError):
            DriftForecaster(horizon=0)
