"""Quantile forecasting, BiLSTM and seq2seq tests."""

import numpy as np
import pytest

from repro.models import (
    BiLSTMForecaster,
    PinballLoss,
    QuantileGBTForecaster,
    QuantileRPTCNForecaster,
    Seq2SeqForecaster,
)
from repro.nn.tensor import Tensor

from .test_deep_models import sine_windows


def noisy_windows(n=600, window=10, seed=3, noise=0.08):
    """Heteroscedastic-free noisy level series: quantiles are analytic."""
    from repro.data.windowing import make_windows

    rng = np.random.default_rng(seed)
    base = 0.5 + 0.2 * np.sin(np.linspace(0, 12, n))
    series = base + rng.normal(0, noise, n)
    return make_windows(series[:, None], series, window=window)


class TestPinballLoss:
    def test_asymmetry(self):
        loss = PinballLoss(0.9, reduction="none")
        under = loss(Tensor([0.0]), Tensor([1.0])).data[0]  # pred below target
        over = loss(Tensor([2.0]), Tensor([1.0])).data[0]  # pred above target
        assert under == pytest.approx(0.9)
        assert over == pytest.approx(0.1)

    def test_median_is_mae_half(self, rng):
        pred, target = Tensor(rng.random(50)), Tensor(rng.random(50))
        pin = PinballLoss(0.5)(pred, target).item()
        mae = float(np.abs(pred.data - target.data).mean())
        assert pin == pytest.approx(0.5 * mae)

    def test_minimizer_is_quantile(self, rng):
        """The constant minimizing pinball loss is the tau-quantile."""
        y = rng.random(20_000)
        tau = 0.8
        candidates = np.linspace(0, 1, 201)
        losses = [
            np.maximum(tau * (y - c), (tau - 1) * (y - c)).mean() for c in candidates
        ]
        best = candidates[int(np.argmin(losses))]
        assert best == pytest.approx(np.quantile(y, tau), abs=0.02)

    def test_backprop(self, rng):
        pred = Tensor(rng.random(10), requires_grad=True)
        PinballLoss(0.7)(pred, Tensor(rng.random(10))).backward()
        assert pred.grad is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            PinballLoss(0.0)
        with pytest.raises(ValueError):
            PinballLoss(1.0)


class TestQuantileGBT:
    def test_quantiles_ordered_and_calibrated(self):
        x, y = noisy_windows()
        # regularized leaves keep per-leaf sample counts high, which is what
        # keeps quantile boosting calibrated out-of-sample
        f = QuantileGBTForecaster(
            taus=(0.1, 0.5, 0.9), n_estimators=100, max_depth=2,
            learning_rate=0.1, min_child_weight=30,
        )
        f.fit(x[:400], y[:400])
        pred = f.predict(x[400:])
        truth = y[400:, 0]
        # columns ordered by tau (on average)
        assert pred[:, 0].mean() < pred[:, 1].mean() < pred[:, 2].mean()
        # empirical coverage near nominal (loose: the test split drifts)
        cov_90 = (truth <= pred[:, 2]).mean()
        cov_10 = (truth <= pred[:, 0]).mean()
        assert 0.70 < cov_90 <= 1.0
        assert 0.0 <= cov_10 < 0.40

    def test_in_sample_calibration_exact(self, rng):
        """On signal-free data the booster hits nominal coverage."""
        from repro.models.quantile import _QuantileGBT

        x = rng.random((1500, 3))
        y = rng.normal(0, 1, 1500)
        for tau in (0.1, 0.9):
            m = _QuantileGBT(tau, n_estimators=80, learning_rate=0.1, max_depth=3)
            m.fit(x, y)
            coverage = (y <= m.predict(x)).mean()
            assert coverage == pytest.approx(tau, abs=0.05)

    def test_predict_quantile_lookup(self):
        x, y = noisy_windows(n=300)
        f = QuantileGBTForecaster(taus=(0.5, 0.9), n_estimators=20)
        f.fit(x[:200], y[:200])
        q = f.predict_quantile(x[200:210], 0.9)
        assert q.shape == (10,)
        with pytest.raises(KeyError):
            f.predict_quantile(x[:1], 0.77)

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantileGBTForecaster(taus=())
        with pytest.raises(ValueError):
            QuantileGBTForecaster(taus=(1.2,))


class TestQuantileRPTCN:
    def test_coverage(self):
        x, y = noisy_windows()
        f = QuantileRPTCNForecaster(
            taus=(0.5, 0.9), channels=(8, 8), epochs=25, seed=1
        )
        f.fit(x[:400], y[:400])
        pred = f.predict(x[400:])
        truth = y[400:, 0]
        cov_90 = (truth <= pred[:, 1]).mean()
        assert 0.7 < cov_90 <= 1.0
        assert pred[:, 0].mean() < pred[:, 1].mean()

    def test_rejects_multistep_targets(self):
        x, y = noisy_windows(n=200)
        y2 = np.repeat(y, 2, axis=1)
        with pytest.raises(ValueError, match="1-step"):
            QuantileRPTCNForecaster(epochs=1).fit(x, y2)


class TestBiLSTMSeq2Seq:
    def test_bilstm_learns(self):
        x, y = sine_windows()
        m = BiLSTMForecaster(hidden=12, epochs=20, seed=2)
        m.fit(x[:250], y[:250], x[250:320], y[250:320])
        pred = m.predict(x[320:])
        mse = np.mean((pred - y[320:]) ** 2)
        const = np.mean((y[320:] - y[:250].mean()) ** 2)
        assert mse < 0.5 * const

    def test_seq2seq_multistep(self):
        x, y = sine_windows(horizon=4)
        m = Seq2SeqForecaster(horizon=4, hidden=16, epochs=20, seed=2)
        m.fit(x[:250], y[:250])
        pred = m.predict(x[250:300])
        assert pred.shape == (50, 4)
        mse = np.mean((pred - y[250:300]) ** 2)
        const = np.mean((y[250:300] - y[:250].mean()) ** 2)
        assert mse < 0.6 * const

    def test_registered(self):
        from repro.models import FORECASTER_REGISTRY

        assert {"bilstm", "seq2seq", "quantile_xgboost", "quantile_rptcn"} <= set(
            FORECASTER_REGISTRY
        )


class TestQuantileAllocation:
    def test_quantile_allocator_calibrates_violations(self):
        from repro.allocation import QuantileAllocator, simulate_allocation

        x, y = noisy_windows(n=800)
        f = QuantileGBTForecaster(taus=(0.5, 0.95), n_estimators=60, max_depth=3)
        f.fit(x[:500], y[:500])
        report = simulate_allocation(
            QuantileAllocator(f, tau=0.95), x[500:], y[500:, 0]
        )
        # violation probability should track 1 - tau (loosely, small sample)
        assert report.violation_rate < 0.25
        assert report.policy == "quantile[q95]"

    def test_requires_quantile_interface(self):
        from repro.allocation import QuantileAllocator
        from repro.models import PersistenceForecaster

        with pytest.raises(TypeError):
            QuantileAllocator(PersistenceForecaster())
