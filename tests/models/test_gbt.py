"""Gradient-boosted-trees tests, including hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.gbt import (
    GBTForecaster,
    GradientBoostedTrees,
    RegressionTree,
    TreeParams,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestRegressionTree:
    def test_single_split_recovers_step_function(self, rng):
        x = rng.random((200, 1))
        y = np.where(x[:, 0] > 0.5, 1.0, -1.0)
        g = 0.0 - y  # gradients of squared loss from pred=0
        tree = RegressionTree(TreeParams(max_depth=1, reg_lambda=0.0)).fit(
            x, g, np.ones(200)
        )
        pred = tree.predict(x)
        assert np.corrcoef(pred, y)[0, 1] > 0.99
        assert tree.threshold[0] == pytest.approx(0.5, abs=0.05)

    def test_max_depth_respected(self, rng):
        x = rng.random((300, 3))
        g = rng.standard_normal(300)
        for depth in (1, 2, 3):
            tree = RegressionTree(TreeParams(max_depth=depth)).fit(x, g, np.ones(300))
            assert tree.depth <= depth

    def test_pure_node_becomes_leaf(self):
        x = np.ones((10, 1))  # no split possible on a constant feature
        g = np.arange(10.0)
        tree = RegressionTree(TreeParams(max_depth=3)).fit(x, g, np.ones(10))
        assert tree.n_nodes == 1

    def test_leaf_weight_formula(self):
        """Leaf value must be -G/(H+lambda)."""
        x = np.ones((4, 1))
        g = np.array([1.0, 2.0, 3.0, 4.0])
        h = np.ones(4)
        tree = RegressionTree(TreeParams(max_depth=2, reg_lambda=2.0)).fit(x, g, h)
        assert tree.predict(x)[0] == pytest.approx(-10.0 / (4.0 + 2.0))

    def test_min_child_weight_blocks_tiny_splits(self, rng):
        x = rng.random((20, 1))
        g = rng.standard_normal(20)
        tree = RegressionTree(TreeParams(max_depth=5, min_child_weight=15.0)).fit(
            x, g, np.ones(20)
        )
        assert tree.n_nodes == 1  # no split can give both children >= 15 weight

    def test_gamma_prunes_weak_splits(self, rng):
        x = rng.random((200, 1))
        g = rng.normal(0, 0.01, 200)  # almost nothing to gain
        tree = RegressionTree(TreeParams(max_depth=3, gamma=100.0)).fit(
            x, g, np.ones(200)
        )
        assert tree.n_nodes == 1

    def test_column_subset_respected(self, rng):
        x = rng.random((300, 4))
        y = 10.0 * x[:, 2]  # only feature 2 matters
        g = -y
        tree = RegressionTree(TreeParams(max_depth=2)).fit(
            x, g, np.ones(300), feature_ids=np.array([0, 1])
        )
        used = {f for f in tree.feature if f != -1}
        assert used <= {0, 1}

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            RegressionTree(TreeParams(max_depth=0))
        with pytest.raises(ValueError):
            RegressionTree(TreeParams()).fit(rng.random((5, 2)), np.zeros(4), np.ones(4))


class TestBoosting:
    def test_fits_nonlinear_function(self, rng):
        x = rng.random((600, 2))
        y = np.sin(6 * x[:, 0]) + x[:, 1] ** 2
        model = GradientBoostedTrees(n_estimators=120, learning_rate=0.2, max_depth=3)
        model.fit(x, y)
        mse = np.mean((model.predict(x) - y) ** 2)
        assert mse < 0.01

    def test_monotone_train_loss(self, rng):
        """With full sampling, the staged training loss never increases."""
        x = rng.random((300, 3))
        y = x.sum(axis=1) + rng.normal(0, 0.05, 300)
        model = GradientBoostedTrees(n_estimators=50, learning_rate=0.3)
        model.fit(x, y)
        losses = model.staged_train_loss(x, y)
        diffs = np.diff(losses)
        assert (diffs <= 1e-10).all()

    def test_early_stopping_truncates(self, rng):
        x = rng.random((300, 3))
        y = rng.standard_normal(300)  # pure noise: validation stops improving fast
        xv = rng.random((100, 3))
        yv = rng.standard_normal(100)
        model = GradientBoostedTrees(
            n_estimators=300, learning_rate=0.3, early_stopping_rounds=5
        )
        model.fit(x, y, xv, yv)
        assert len(model.trees) < 300
        assert model.best_iteration_ == len(model.trees) - 1

    def test_base_score_is_target_mean(self, rng):
        x = rng.random((100, 2))
        y = rng.random(100) + 5.0
        model = GradientBoostedTrees(n_estimators=1).fit(x, y)
        assert model.base_score_ == pytest.approx(y.mean())

    def test_subsampling_reproducible(self, rng):
        x = rng.random((200, 3))
        y = x.sum(axis=1)
        preds = []
        for _ in range(2):
            m = GradientBoostedTrees(n_estimators=20, subsample=0.7, colsample=0.7, seed=5)
            m.fit(x, y)
            preds.append(m.predict(x))
        np.testing.assert_array_equal(preds[0], preds[1])

    @given(st.floats(0.05, 1.0), st.integers(1, 5))
    @settings(max_examples=15, deadline=None)
    def test_predictions_within_target_hull_property(self, lr, depth):
        """Squared-loss GBT predictions stay inside [min(y), max(y)]...

        ...up to overshoot bounded by the learning rate; with lr <= 1 and
        mean base score the ensemble cannot leave the hull on training data
        it has memorized, a standard sanity property for regression trees.
        """
        rng = np.random.default_rng(0)
        x = rng.random((150, 2))
        y = rng.random(150)
        m = GradientBoostedTrees(n_estimators=30, learning_rate=lr, max_depth=depth)
        m.fit(x, y)
        pred = m.predict(x)
        margin = 0.5 * (y.max() - y.min())
        assert pred.min() >= y.min() - margin
        assert pred.max() <= y.max() + margin

    def test_hyperparameter_validation(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostedTrees(subsample=0.0)


class TestForecasterWrapper:
    def test_windowed_fit_predict(self, rng):
        from repro.data.windowing import make_windows

        t = np.linspace(0, 20, 500)
        series = np.sin(t) * 0.5 + 0.5
        x, y = make_windows(series[:, None], series, window=10)
        f = GBTForecaster(n_estimators=60).fit(x[:300], y[:300], x[300:400], y[300:400])
        pred = f.predict(x[400:])
        mse = np.mean((pred - y[400:]) ** 2)
        assert mse < 0.01  # sine continuation is easy for trees

    def test_multistep_trains_one_model_per_step(self, rng):
        from repro.data.windowing import make_windows

        series = rng.random(300)
        x, y = make_windows(series[:, None], series, window=8, horizon=3)
        f = GBTForecaster(horizon=3, n_estimators=10).fit(x, y)
        assert len(f.models) == 3
        assert f.predict(x[:5]).shape == (5, 3)

    def test_loss_curves_exposed(self, rng):
        from repro.data.windowing import make_windows

        series = rng.random(400)
        x, y = make_windows(series[:, None], series, window=8)
        f = GBTForecaster(n_estimators=15).fit(x[:200], y[:200], x[200:300], y[200:300])
        assert len(f.loss_curves["val_loss"]) >= 1
