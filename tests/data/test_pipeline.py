"""Algorithm-1 pipeline integration tests."""

import numpy as np
import pytest

from repro.data.pipeline import PipelineConfig, PredictionPipeline
from repro.traces.corruption import CorruptionConfig, corrupt_entity
from repro.traces.generator import ClusterTraceGenerator, TraceConfig


@pytest.fixture(scope="module")
def entity():
    gen = ClusterTraceGenerator(
        TraceConfig(n_machines=1, containers_per_machine=1, n_steps=800, seed=17)
    )
    return gen.generate().containers[0]


class TestPrepare:
    def test_uni_single_feature(self, entity):
        res = PredictionPipeline(PipelineConfig(scenario="uni")).prepare(entity)
        assert res.feature_names == ["cpu_util_percent"]
        assert res.target_col == 0

    def test_mul_selects_top_half(self, entity):
        res = PredictionPipeline(PipelineConfig(scenario="mul")).prepare(entity)
        assert len(res.selected_indicators) == 4  # ceil(8/2)
        assert res.selected_indicators[0] == "cpu_util_percent"
        # the generator's coupling model puts the microarch indicators on top
        assert set(res.selected_indicators[1:]) == {"mpki", "cpi", "mem_gps"}

    def test_mul_exp_expands_lags(self, entity):
        res = PredictionPipeline(PipelineConfig(scenario="mul_exp")).prepare(entity)
        assert len(res.feature_names) == 12  # 4 indicators x 3 lags
        assert res.feature_names[res.target_col] == "cpu_util_percent_lag0"

    def test_features_normalized(self, entity):
        res = PredictionPipeline(PipelineConfig(scenario="mul")).prepare(entity)
        xt, _ = res.dataset.train
        assert xt.min() >= -1e-9 and xt.max() <= 1.5  # test rows may exceed 1 slightly

    def test_622_split(self, entity):
        res = PredictionPipeline(PipelineConfig()).prepare(entity)
        n_train, n_val, n_test = res.dataset.split.sizes()
        total = n_train + n_val + n_test
        assert n_train / total == pytest.approx(0.6, abs=0.01)

    def test_denormalize_roundtrip(self, entity):
        res = PredictionPipeline(PipelineConfig(scenario="uni")).prepare(entity)
        _, y = res.dataset.test
        recovered = res.denormalize_target(y[:, 0])
        # back on the raw percent scale
        assert recovered.max() <= 110.0 and recovered.min() >= -10.0
        assert recovered.std() > y[:, 0].std()  # scale restored

    def test_corrupted_input_cleaned(self, entity):
        rng = np.random.default_rng(0)
        dirty = corrupt_entity(entity, CorruptionConfig(seed=1), rng)
        res = PredictionPipeline(PipelineConfig()).prepare(dirty)
        assert res.cleaning_report.n_dropped_incomplete > 0
        xt, _ = res.dataset.train
        assert not np.isnan(xt).any()

    def test_too_short_series_raises(self, entity):
        from dataclasses import replace

        tiny = replace(entity, timestamps=entity.timestamps[:30], values=entity.values[:30])
        with pytest.raises(ValueError, match="too short"):
            PredictionPipeline(PipelineConfig(window=12)).prepare(tiny)


class TestExtensions:
    def test_difference_features(self, entity):
        res = PredictionPipeline(
            PipelineConfig(scenario="mul", add_differences=True)
        ).prepare(entity)
        assert any(n.endswith("_diff1") for n in res.feature_names)
        assert len(res.feature_names) == 8  # 4 + 4 diffs

    def test_weighted_expansion(self, entity):
        res = PredictionPipeline(
            PipelineConfig(scenario="mul_exp", correlation_weighted=True, max_weighted_lags=4)
        ).prepare(entity)
        cpu_cols = [n for n in res.feature_names if n.startswith("cpu_util_percent_")]
        assert len(cpu_cols) == 4  # target has |rho| = 1 -> max lags
        assert res.feature_names[res.target_col] == "cpu_util_percent_lag0"

    def test_alternative_target(self, entity):
        res = PredictionPipeline(
            PipelineConfig(target="mem_util_percent", scenario="mul")
        ).prepare(entity)
        assert res.selected_indicators[0] == "mem_util_percent"


class TestRun:
    def test_run_with_persistence(self, entity):
        pipe = PredictionPipeline(PipelineConfig(scenario="mul_exp"))
        res = pipe.run(entity, "persistence")
        assert set(res.metrics) == {"mse", "mae", "rmse"}
        assert res.predictions.shape == res.truths.shape
        assert res.metrics["mse"] > 0

    def test_run_reuses_prepared(self, entity):
        pipe = PredictionPipeline(PipelineConfig(scenario="uni"))
        prepared = pipe.prepare(entity)
        r1 = pipe.run(entity, "persistence", prepared=prepared)
        r2 = pipe.run(entity, "mean", prepared=prepared)
        assert r1.pipeline is r2.pipeline

    def test_run_with_forecaster_instance(self, entity):
        from repro.models import PersistenceForecaster

        pipe = PredictionPipeline(PipelineConfig(scenario="uni"))
        res = pipe.run(entity, PersistenceForecaster())
        assert res.metrics["mae"] > 0

    def test_multistep_horizon(self, entity):
        pipe = PredictionPipeline(PipelineConfig(scenario="uni", horizon=3))
        res = pipe.run(entity, "drift")
        assert res.predictions.shape[1] == 3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(scenario="bogus")
        with pytest.raises(ValueError):
            PipelineConfig(target="bogus")
        with pytest.raises(ValueError):
            PipelineConfig(window=1)
