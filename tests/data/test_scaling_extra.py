"""Additional scaler edge cases: out-of-range data, dtype handling."""

import numpy as np
import pytest

from repro.data.scaling import MinMaxScaler, StandardScaler


class TestOutOfTrainingRange:
    """With train-only fitting (the pipeline's protocol), evaluation data
    can exceed [0, 1]; the scalers must pass it through linearly."""

    def test_minmax_extrapolates_linearly(self):
        sc = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        out = sc.transform(np.array([[20.0], [-10.0]]))
        np.testing.assert_allclose(out[:, 0], [2.0, -1.0])
        back = sc.inverse_transform(out)
        np.testing.assert_allclose(back[:, 0], [20.0, -10.0])

    def test_standard_extrapolates_linearly(self):
        sc = StandardScaler().fit(np.array([[0.0], [2.0]]))
        out = sc.transform(np.array([[4.0]]))
        back = sc.inverse_transform(out)
        np.testing.assert_allclose(back[:, 0], [4.0])


class TestDtypes:
    def test_integer_input_accepted(self):
        sc = MinMaxScaler().fit(np.array([[1], [2], [3]], dtype=np.int64))
        out = sc.transform(np.array([[2]], dtype=np.int32))
        assert out.dtype == np.float64
        assert out[0, 0] == pytest.approx(0.5)

    def test_fit_transform_shortcut(self):
        x = np.arange(10.0)[:, None]
        a = MinMaxScaler().fit_transform(x)
        sc = MinMaxScaler().fit(x)
        np.testing.assert_array_equal(a, sc.transform(x))


class TestColumnIndependence:
    def test_columns_scaled_independently(self, rng):
        x = np.column_stack([rng.random(50), rng.random(50) * 1000])
        out = MinMaxScaler().fit_transform(x)
        # both columns span [0, 1] despite the 1000x scale difference
        np.testing.assert_allclose(out.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.max(axis=0), 1.0, atol=1e-12)

    def test_single_column_equivalence(self, rng):
        x = rng.random((40, 3))
        full = MinMaxScaler().fit(x)
        solo = MinMaxScaler().fit(x[:, 1][:, None])
        np.testing.assert_allclose(
            full.transform(x)[:, 1], solo.transform(x[:, 1][:, None])[:, 0]
        )
