"""Rolling-origin cross-validation tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.crossval import cross_validate, rolling_origin_folds
from repro.models import PersistenceForecaster


class TestFolds:
    def test_basic_structure(self):
        folds = rolling_origin_folds(100, n_folds=3, min_train_fraction=0.4)
        assert len(folds) == 3
        assert folds[0].train == slice(0, 40)
        assert folds[-1].test.stop == 100

    def test_no_future_leakage(self):
        for fold in rolling_origin_folds(200, n_folds=5):
            assert fold.train.stop <= fold.test.start

    def test_expanding_train_grows(self):
        folds = rolling_origin_folds(100, n_folds=3, expanding=True)
        sizes = [f.sizes()[0] for f in folds]
        assert sizes == sorted(sizes)
        assert all(f.train.start == 0 for f in folds)

    def test_sliding_train_fixed_length(self):
        folds = rolling_origin_folds(100, n_folds=3, expanding=False)
        sizes = {f.sizes()[0] for f in folds}
        assert len(sizes) == 1  # constant training length

    @given(st.integers(20, 2000), st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_cover_tail_property(self, n, k):
        """Folds' test blocks tile the post-prefix region exactly."""
        try:
            folds = rolling_origin_folds(n, n_folds=k)
        except ValueError:
            return  # legitimately infeasible combination
        stops = [f.test for f in folds]
        # contiguous, ordered, ending at n
        for a, b in zip(stops[:-1], stops[1:]):
            assert a.stop == b.start
        assert stops[-1].stop == n

    def test_validation(self):
        with pytest.raises(ValueError):
            rolling_origin_folds(5)
        with pytest.raises(ValueError):
            rolling_origin_folds(100, n_folds=0)
        with pytest.raises(ValueError):
            rolling_origin_folds(100, min_train_fraction=1.0)
        with pytest.raises(ValueError):
            rolling_origin_folds(12, n_folds=10)


class TestCrossValidate:
    @pytest.fixture
    def windows(self, rng):
        from repro.data.windowing import make_windows

        series = np.sin(np.linspace(0, 20, 300)) * 0.4 + 0.5
        return make_windows(series[:, None], series, window=8)

    def test_by_name(self, windows):
        x, y = windows
        res = cross_validate("persistence", x, y, n_folds=3)
        assert len(res["mse"]) == 3
        assert res["mean_mse"] == pytest.approx(np.mean(res["mse"]))
        assert res["mean_mae"] > 0

    def test_by_factory(self, windows):
        x, y = windows
        res = cross_validate(lambda: PersistenceForecaster(), x, y, n_folds=2)
        assert len(res["folds"]) == 2

    def test_fresh_model_per_fold(self, windows):
        """Factories must be re-invoked per fold (no state carryover)."""
        x, y = windows
        created = []

        def factory():
            m = PersistenceForecaster()
            created.append(m)
            return m

        cross_validate(factory, x, y, n_folds=4)
        assert len(created) == 4
