"""Scaler tests, including hypothesis round-trip properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.scaling import MinMaxScaler, StandardScaler

finite_matrix = arrays(
    np.float64,
    st.tuples(st.integers(2, 30), st.integers(1, 6)),
    elements=st.floats(-1e6, 1e6, allow_nan=False, width=64),
)


class TestMinMax:
    def test_range_is_unit_interval(self, rng):
        x = rng.normal(50, 20, size=(100, 3))
        out = MinMaxScaler().fit_transform(x)
        np.testing.assert_allclose(out.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.max(axis=0), 1.0, atol=1e-12)

    def test_matches_paper_formula(self, rng):
        x = rng.random((50, 2)) * 100
        sc = MinMaxScaler().fit(x)
        expected = (x - x.min(axis=0)) / (x.max(axis=0) - x.min(axis=0))
        np.testing.assert_allclose(sc.transform(x), expected)

    @given(finite_matrix)
    @settings(max_examples=60, deadline=None)
    def test_inverse_roundtrip_property(self, x):
        sc = MinMaxScaler().fit(x)
        back = sc.inverse_transform(sc.transform(x))
        np.testing.assert_allclose(back, x, atol=1e-6 * (1 + np.abs(x).max()))

    @given(finite_matrix)
    @settings(max_examples=60, deadline=None)
    def test_transform_bounded_on_training_data(self, x):
        out = MinMaxScaler().fit_transform(x)
        assert (out >= -1e-9).all() and (out <= 1 + 1e-9).all()

    def test_constant_column_maps_to_zero(self):
        x = np.column_stack([np.full(10, 7.0), np.arange(10.0)])
        out = MinMaxScaler().fit_transform(x)
        np.testing.assert_array_equal(out[:, 0], np.zeros(10))

    def test_1d_convenience(self, rng):
        x = rng.random(20)
        sc = MinMaxScaler().fit(x)
        out = sc.transform(x)
        assert out.ndim == 1
        np.testing.assert_allclose(sc.inverse_transform(out), x)

    def test_column_inverse(self, rng):
        x = rng.random((30, 4)) * np.array([1, 10, 100, 1000])
        sc = MinMaxScaler().fit(x)
        norm = sc.transform(x)
        np.testing.assert_allclose(sc.inverse_transform_column(norm[:, 2], 2), x[:, 2])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="fitted"):
            MinMaxScaler().transform(np.zeros((2, 2)))

    def test_nan_rejected(self):
        x = np.array([[1.0], [np.nan]])
        with pytest.raises(ValueError, match="NaN"):
            MinMaxScaler().fit(x)


class TestStandard:
    def test_zero_mean_unit_std(self, rng):
        x = rng.normal(5, 3, size=(500, 2))
        out = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-10)

    @given(finite_matrix)
    @settings(max_examples=60, deadline=None)
    def test_inverse_roundtrip_property(self, x):
        sc = StandardScaler().fit(x)
        back = sc.inverse_transform(sc.transform(x))
        np.testing.assert_allclose(back, x, atol=1e-6 * (1 + np.abs(x).max()))

    def test_constant_column_safe(self):
        x = np.full((10, 1), 3.0)
        out = StandardScaler().fit_transform(x)
        np.testing.assert_array_equal(out, np.zeros((10, 1)))
