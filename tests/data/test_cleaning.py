"""DataClean stage tests."""

import numpy as np
import pytest

from repro.data.cleaning import clean_entity, clean_matrix
from repro.traces.corruption import CorruptionConfig, corrupt_entity
from repro.traces.generator import ClusterTraceGenerator, TraceConfig


def dirty_matrix(rng, t=50, k=4):
    values = rng.random((t, k))
    ts = np.arange(t) * 10
    values[3, 1] = np.nan  # missing cell
    values[10, :] = np.nan  # missing row
    return ts, values


class TestDropPolicy:
    def test_drops_incomplete_rows(self, rng):
        ts, values = dirty_matrix(rng)
        out_ts, out_vals, report = clean_matrix(ts, values, policy="drop")
        assert not np.isnan(out_vals).any()
        assert report.n_dropped_incomplete == 2
        assert len(out_ts) == len(out_vals) == 48

    def test_clean_input_untouched(self, rng):
        ts = np.arange(20)
        values = rng.random((20, 3))
        out_ts, out_vals, report = clean_matrix(ts, values)
        np.testing.assert_array_equal(out_vals, values)
        assert report.drop_fraction == 0.0


class TestInterpolatePolicy:
    def test_fills_all_nans(self, rng):
        ts, values = dirty_matrix(rng)
        _, out_vals, report = clean_matrix(ts, values, policy="interpolate")
        assert not np.isnan(out_vals).any()
        assert len(out_vals) == 50
        assert report.n_interpolated_cells == 1 + 4

    def test_interpolation_is_linear(self):
        ts = np.arange(5)
        values = np.array([[0.0], [np.nan], [2.0], [np.nan], [4.0]])
        _, out, _ = clean_matrix(ts, values, policy="interpolate")
        np.testing.assert_allclose(out[:, 0], [0, 1, 2, 3, 4])

    def test_all_missing_column_raises(self):
        values = np.full((10, 2), np.nan)
        values[:, 0] = 1.0
        with pytest.raises(ValueError, match="entirely missing"):
            clean_matrix(np.arange(10), values, policy="interpolate")


class TestDedupe:
    def test_duplicate_timestamps_removed(self, rng):
        ts = np.array([0, 10, 10, 20])
        values = rng.random((4, 2))
        out_ts, out_vals, report = clean_matrix(ts, values)
        assert report.n_deduplicated == 1
        np.testing.assert_array_equal(out_ts, [0, 10, 20])
        # the first occurrence is the one kept
        np.testing.assert_array_equal(out_vals[1], values[1])


class TestWinsorize:
    def test_outliers_clamped(self, rng):
        values = rng.normal(0.5, 0.01, size=(200, 1))
        values[7, 0] = 100.0
        _, out, report = clean_matrix(np.arange(200), values, winsorize_z=5.0)
        assert out[7, 0] < 1.0
        assert report.n_winsorized_cells >= 1

    def test_inliers_untouched(self, rng):
        values = rng.normal(0.5, 0.1, size=(300, 2))
        _, out, _ = clean_matrix(np.arange(300), values, winsorize_z=50.0)
        np.testing.assert_array_equal(out, values)


class TestEntityIntegration:
    def test_corrupted_entity_cleans_end_to_end(self):
        gen = ClusterTraceGenerator(TraceConfig(n_machines=1, containers_per_machine=1,
                                                n_steps=500, seed=3))
        entity = gen.generate().containers[0]
        rng = np.random.default_rng(0)
        dirty = corrupt_entity(entity, CorruptionConfig(seed=0), rng)
        cleaned, report = clean_entity(dirty, policy="drop")
        assert not np.isnan(cleaned.values).any()
        assert cleaned.complete_mask().all()
        assert report.n_output <= report.n_input
        assert cleaned.entity_id == entity.entity_id

    def test_invalid_policy(self, rng):
        with pytest.raises(ValueError, match="policy"):
            clean_matrix(np.arange(5), rng.random((5, 2)), policy="magic")
