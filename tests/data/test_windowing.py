"""Sliding-window and chronological-split tests with hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.windowing import (
    SplitIndices,
    WindowDataset,
    chronological_split,
    make_windows,
)


class TestMakeWindows:
    def test_shapes(self, rng):
        # windows start at 0..88: start + window + horizon <= 100 -> 89 windows
        x, y = make_windows(rng.random((100, 3)), rng.random(100), window=10, horizon=2)
        assert x.shape == (89, 10, 3)
        assert y.shape == (89, 2)

    def test_window_contents(self):
        t = np.arange(20.0)
        feats = t[:, None]
        x, y = make_windows(feats, t, window=4, horizon=1)
        np.testing.assert_array_equal(x[0, :, 0], [0, 1, 2, 3])
        np.testing.assert_array_equal(y[0], [4])
        np.testing.assert_array_equal(x[5, :, 0], [5, 6, 7, 8])
        np.testing.assert_array_equal(y[5], [9])

    def test_multistep_targets(self):
        t = np.arange(20.0)
        _, y = make_windows(t[:, None], t, window=3, horizon=4)
        np.testing.assert_array_equal(y[0], [3, 4, 5, 6])

    def test_stride(self):
        t = np.arange(30.0)
        x, _ = make_windows(t[:, None], t, window=5, horizon=1, stride=3)
        np.testing.assert_array_equal(x[1, :, 0], [3, 4, 5, 6, 7])

    def test_1d_features_promoted(self, rng):
        x, _ = make_windows(rng.random(50), rng.random(50), window=5)
        assert x.shape[2] == 1

    def test_no_target_leak_into_window(self):
        """y[i] must come strictly after every step in x[i]."""
        t = np.arange(50.0)
        x, y = make_windows(t[:, None], t, window=7, horizon=3)
        for i in range(len(x)):
            assert y[i].min() > x[i, :, 0].max()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            make_windows(rng.random((10, 2)), rng.random(9), 3)
        with pytest.raises(ValueError):
            make_windows(rng.random((10, 2)), rng.random(10), 0)
        with pytest.raises(ValueError):
            make_windows(rng.random((5, 2)), rng.random(5), window=5, horizon=1)


class TestSplit:
    def test_paper_622_ratio(self):
        s = chronological_split(1000)
        assert s.sizes() == (600, 200, 200)

    def test_contiguous_and_ordered(self):
        s = chronological_split(100)
        assert s.train.stop == s.val.start
        assert s.val.stop == s.test.start
        assert s.test.stop == 100

    @given(st.integers(10, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_partition_property(self, n):
        s = chronological_split(n)
        sizes = s.sizes()
        assert sum(sizes) == n
        assert all(sz > 0 for sz in sizes)

    def test_custom_ratios(self):
        s = chronological_split(100, (0.8, 0.1, 0.1))
        assert s.sizes() == (80, 10, 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            chronological_split(2)
        with pytest.raises(ValueError):
            chronological_split(100, (0.5, 0.5, 0.5))
        with pytest.raises(ValueError):
            chronological_split(4, (0.9, 0.05, 0.05))


class TestWindowDataset:
    def test_splits_are_chronological(self, rng):
        ds = WindowDataset(rng.random((200, 2)), rng.random(200), window=8)
        xt, _ = ds.train
        xv, _ = ds.val
        xe, _ = ds.test
        assert len(xt) + len(xv) + len(xe) == len(ds)

    def test_no_temporal_overlap_between_train_and_test_targets(self):
        t = np.arange(300.0)
        ds = WindowDataset(t[:, None], t, window=5)
        _, yt = ds.train
        _, ye = ds.test
        assert yt.max() < ye.min()

    def test_batches_cover_all_samples(self, rng):
        ds = WindowDataset(rng.random((150, 2)), rng.random(150), window=6)
        seen = 0
        for xb, yb in ds.batches("train", batch_size=16, rng=rng):
            assert len(xb) == len(yb) <= 16
            seen += len(xb)
        assert seen == len(ds.train[0])

    def test_batches_deterministic_with_seed(self, rng):
        ds = WindowDataset(rng.random((100, 2)), rng.random(100), window=4)
        b1 = [xb for xb, _ in ds.batches("train", 8, rng=np.random.default_rng(3))]
        b2 = [xb for xb, _ in ds.batches("train", 8, rng=np.random.default_rng(3))]
        for a, b in zip(b1, b2):
            np.testing.assert_array_equal(a, b)

    def test_no_shuffle_preserves_order(self, rng):
        t = np.arange(100.0)
        ds = WindowDataset(t[:, None], t, window=4)
        batches = list(ds.batches("train", 8, shuffle=False))
        firsts = [yb[0, 0] for _, yb in batches]
        assert firsts == sorted(firsts)
