"""Feature-expansion tests (paper Fig. 4 and §V-C extensions)."""

import numpy as np
import pytest

from repro.data.expansion import (
    difference_expand,
    horizontal_expand,
    vertical_expand,
    weighted_horizontal_expand,
)


@pytest.fixture
def matrix(rng):
    return rng.random((20, 3))


class TestHorizontal:
    def test_paper_default_shape(self, matrix):
        out, names = horizontal_expand(matrix, ["a", "b", "c"])
        assert out.shape == (18, 9)  # T - maxlag, k * 3
        assert names[:3] == ["a_lag2", "a_lag1", "a_lag0"]

    def test_lag_alignment(self, matrix):
        """Row t of the expansion must hold x[t+2], x[t+1], x[t] per column."""
        out, _ = horizontal_expand(matrix, ["a", "b", "c"], lags=(2, 1, 0))
        t = 5
        np.testing.assert_array_equal(out[t, 0], matrix[t, 0])        # a_lag2 = value at t
        np.testing.assert_array_equal(out[t, 1], matrix[t + 1, 0])    # a_lag1
        np.testing.assert_array_equal(out[t, 2], matrix[t + 2, 0])    # a_lag0 (current)

    def test_lag0_only_is_identity(self, matrix):
        out, names = horizontal_expand(matrix, ["a", "b", "c"], lags=(0,))
        np.testing.assert_array_equal(out, matrix)
        assert names == ["a_lag0", "b_lag0", "c_lag0"]

    def test_eq11_structure(self, matrix):
        """Eq. 11: each indicator contributes exactly len(lags) columns, grouped."""
        out, names = horizontal_expand(matrix, ["cpu", "mpki", "cpi"])
        assert [n.rsplit("_", 1)[0] for n in names] == (
            ["cpu"] * 3 + ["mpki"] * 3 + ["cpi"] * 3
        )

    def test_validation(self, matrix):
        with pytest.raises(ValueError):
            horizontal_expand(matrix[:, 0])
        with pytest.raises(ValueError):
            horizontal_expand(matrix, lags=())
        with pytest.raises(ValueError):
            horizontal_expand(matrix, lags=(-1, 0))
        with pytest.raises(ValueError):
            horizontal_expand(matrix[:2], lags=(5, 0))
        with pytest.raises(ValueError):
            horizontal_expand(matrix, ["only_one"])


class TestVertical:
    def test_multiplies_window(self):
        assert vertical_expand(12, 2) == 24
        assert vertical_expand(12) == 24

    def test_validation(self):
        with pytest.raises(ValueError):
            vertical_expand(0)
        with pytest.raises(ValueError):
            vertical_expand(12, 0)


class TestDifference:
    def test_shape_and_names(self, matrix):
        out, names = difference_expand(matrix, ["a", "b", "c"])
        assert out.shape == (19, 6)
        assert names == ["a", "b", "c", "a_diff1", "b_diff1", "c_diff1"]

    def test_difference_values(self):
        x = np.array([[1.0], [3.0], [6.0]])
        out, _ = difference_expand(x, ["a"])
        np.testing.assert_array_equal(out[:, 0], [3.0, 6.0])
        np.testing.assert_array_equal(out[:, 1], [2.0, 3.0])

    def test_too_short(self):
        with pytest.raises(ValueError):
            difference_expand(np.zeros((1, 2)))


class TestWeighted:
    def test_lag_counts_proportional_to_correlation(self, matrix):
        corr = np.array([1.0, 0.5, 0.1])
        out, names = weighted_horizontal_expand(matrix, corr, ["a", "b", "c"], max_lags=4)
        a_cols = [n for n in names if n.startswith("a_")]
        b_cols = [n for n in names if n.startswith("b_")]
        c_cols = [n for n in names if n.startswith("c_")]
        assert len(a_cols) == 4  # strongest gets max_lags copies
        assert len(b_cols) == 2
        assert len(c_cols) == 1  # weakest gets only the current value

    def test_every_indicator_keeps_current_value(self, matrix):
        corr = np.array([1.0, 0.01, 0.01])
        _, names = weighted_horizontal_expand(matrix, corr, ["a", "b", "c"])
        for prefix in ("a", "b", "c"):
            assert f"{prefix}_lag0" in names

    def test_negative_correlations_use_magnitude(self, matrix):
        out_pos, _ = weighted_horizontal_expand(matrix, np.array([1.0, 0.5, 0.1]))
        out_neg, _ = weighted_horizontal_expand(matrix, np.array([-1.0, -0.5, -0.1]))
        assert out_pos.shape == out_neg.shape

    def test_validation(self, matrix):
        with pytest.raises(ValueError):
            weighted_horizontal_expand(matrix, np.array([1.0]))  # wrong corr length
        with pytest.raises(ValueError):
            weighted_horizontal_expand(matrix, np.array([1.0, 1.0, 1.0]), max_lags=0)
