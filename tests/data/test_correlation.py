"""PCC and screening tests, with hypothesis invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.data.correlation import (
    correlation_matrix,
    pearson,
    rank_by_correlation,
    select_top_half,
)

series = arrays(
    np.float64,
    st.integers(3, 50),
    elements=st.floats(-100, 100, allow_nan=False, width=64),
)


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 5) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_independent_near_zero(self, rng):
        x, y = rng.random(50_000), rng.random(50_000)
        assert abs(pearson(x, y)) < 0.02

    def test_matches_numpy(self, rng):
        x, y = rng.random(100), rng.random(100)
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_constant_series_returns_zero(self):
        assert pearson(np.full(10, 3.0), np.arange(10.0)) == 0.0

    @given(series, series)
    @settings(max_examples=80, deadline=None)
    def test_bounded_property(self, x, y):
        n = min(len(x), len(y))
        assert -1.0 <= pearson(x[:n], y[:n]) <= 1.0

    @given(series)
    @settings(max_examples=50, deadline=None)
    def test_self_correlation_property(self, x):
        r = pearson(x, x)
        assert r == pytest.approx(1.0) or r == 0.0  # 0 iff constant

    @given(series, series)
    @settings(max_examples=50, deadline=None)
    def test_symmetry_property(self, x, y):
        n = min(len(x), len(y))
        assert pearson(x[:n], y[:n]) == pytest.approx(pearson(y[:n], x[:n]))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            pearson(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            pearson(np.zeros(1), np.zeros(1))


class TestCorrelationMatrix:
    def test_symmetric_unit_diagonal(self, rng):
        m = correlation_matrix(rng.random((100, 5)))
        np.testing.assert_allclose(m, m.T)
        np.testing.assert_allclose(np.diag(m), np.ones(5))

    def test_matches_pairwise_pearson(self, rng):
        x = rng.random((60, 4))
        m = correlation_matrix(x)
        for i in range(4):
            for j in range(4):
                assert m[i, j] == pytest.approx(pearson(x[:, i], x[:, j]), abs=1e-10)

    def test_constant_column_zero_row(self, rng):
        x = rng.random((30, 3))
        x[:, 1] = 5.0
        m = correlation_matrix(x)
        np.testing.assert_array_equal(m[1, [0, 2]], [0.0, 0.0])
        assert m[1, 1] == 1.0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            correlation_matrix(np.zeros(5))


class TestScreening:
    def _data(self, rng, t=400):
        base = rng.random(t)
        cols = {
            "target": base,
            "strong": base + rng.normal(0, 0.05, t),
            "medium": base + rng.normal(0, 0.5, t),
            "weak": rng.random(t),
        }
        names = list(cols)
        return np.column_stack(list(cols.values())), names

    def test_ranking_order(self, rng):
        values, names = self._data(rng)
        ranking = rank_by_correlation(values, names, "target")
        assert [n for n, _ in ranking[:3]] == ["target", "strong", "medium"]

    def test_target_always_first(self, rng):
        values, names = self._data(rng)
        ranking = rank_by_correlation(values, names, "target")
        assert ranking[0] == ("target", pytest.approx(1.0))

    def test_top_half_size(self, rng):
        values, names = self._data(rng)
        selected, ranking = select_top_half(values, names, "target")
        assert len(selected) == 2  # ceil(4/2)
        assert selected == ["target", "strong"]
        assert len(ranking) == 4

    def test_top_half_minimum_two(self, rng):
        values = np.column_stack([rng.random(50), rng.random(50)])
        selected, _ = select_top_half(values, ["a", "b"], "a")
        assert len(selected) == 2

    def test_unknown_target(self, rng):
        with pytest.raises(KeyError):
            rank_by_correlation(rng.random((10, 2)), ["a", "b"], "c")

    def test_uses_absolute_correlation(self, rng):
        t = 300
        base = rng.random(t)
        values = np.column_stack([base, -base + rng.normal(0, 0.01, t), rng.random(t)])
        ranking = rank_by_correlation(values, ["t", "anti", "noise"], "t")
        assert ranking[1][0] == "anti"  # strong negative ranks above noise
        assert ranking[1][1] < 0
