"""FIG9 bench — training-loss convergence on containers (paper Fig. 9).

Paper claims: "the loss value of RPTCN is very small at the beginning,
while the loss value of other models is relatively large", and RPTCN
"has always maintained a small loss value".
"""

import numpy as np

from repro.analysis.reporting import format_table, render_ascii_series
from repro.experiments.convergence import run_fig9

from .conftest import run_once


def test_fig9_training_convergence(benchmark, profile):
    res = run_once(benchmark, run_fig9, profile)

    print("\nFig. 9 — training loss on containers")
    for model, curve in res.curves.items():
        print(render_ascii_series(np.asarray(curve), label=model))
    rows = [
        [r.model, r.initial_loss, r.final_loss, r.best_loss, r.epochs_to_90pct]
        for r in res.records
    ]
    print(format_table(["model", "initial", "final", "best", "ep@90%"], rows))

    rptcn = res.model_record("rptcn")
    lstm = res.model_record("lstm")
    cnn = res.model_record("cnn_lstm")

    # RPTCN starts small (zero-init head) — below the LSTM-family starts
    assert rptcn.initial_loss <= max(lstm.initial_loss, cnn.initial_loss)

    # and converges to a competitive final loss (within 2x of the best)
    best_final = min(r.final_loss for r in res.records)
    assert rptcn.final_loss <= 2.0 * best_final

    # fast convergence: 90% of RPTCN's improvement within half the epochs
    assert rptcn.epochs_to_90pct <= max(2, rptcn.epochs // 2 + 1)

    # all deep models actually learned something
    for model in ("lstm", "cnn_lstm", "rptcn"):
        rec = res.model_record(model)
        assert rec.best_loss < rec.initial_loss or rec.initial_loss < 0.01
