"""FIG1 bench — container resource-utilization series (paper Fig. 1).

Regenerates the per-container CPU / memory / disk series and checks the
paper's qualitative claim: container resource usage "fluctuates
significantly and represents no regularity for a long time period".
"""

import numpy as np

from repro.analysis.reporting import render_ascii_series
from repro.experiments.characterization import run_fig1

from .conftest import run_once


def test_fig1_container_series(benchmark, profile):
    res = run_once(benchmark, run_fig1, profile)

    print(f"\nFig. 1 — container {res.entity_id} resource utilization")
    for name, series in res.series.items():
        print(render_ascii_series(series, label=name[:12]))

    cpu = res.series["cpu_util_percent"]
    # high-dynamic: significant step-to-step movement...
    assert res.dynamism() > 0.5, "container CPU should fluctuate significantly"
    # ...and wide overall range
    assert cpu.max() - cpu.min() > 20.0

    # "no regularity": the strongest autocorrelation beyond a short horizon
    # stays well below a periodic signal's
    centered = cpu - cpu.mean()
    ac = np.correlate(centered, centered, mode="full")[len(cpu) - 1 :]
    ac /= ac[0]
    long_lag = np.abs(ac[len(cpu) // 4 : len(cpu) // 2])
    assert long_lag.max() < 0.9, "container series should not be strongly periodic"
