"""TAB2 bench — the paper's main accuracy table (Table II).

Regenerates MSE/MAE (x 10^-2, normalized units) for every (model,
scenario, level) cell and asserts the reproducible *shape* claims:

* RPTCN is the best — or within a small margin of the best — deep model
  in the Mul-Exp scenario (the paper's headline);
* RPTCN's Mul-Exp machines cell beats the LSTM-family baselines, which
  degrade there (the paper: "LSTM-based models have some performance
  degradation in Mul-Exp scenario, and RPTCN has the best accuracy on
  machines");
* RPTCN improves over at least one baseline (positive upper end of the
  improvement range the abstract quotes).

Exact values differ from the paper (different substrate, different
hardware) — magnitudes land in the same 0.1-10 x 10^-2 band.
"""

from repro.analysis.reporting import format_table2
from repro.experiments.accuracy import run_table2

from .conftest import run_once


def test_table2_accuracy(benchmark, profile):
    res = run_once(benchmark, run_table2, profile)

    print("\n" + format_table2(res.metrics))
    lo, hi = res.improvement_range("mae")
    print(f"RPTCN MAE improvement over Mul-Exp baselines: {lo:+.2f}% .. {hi:+.2f}%")
    for level in ("containers", "machines"):
        print(f"best (mul_exp, {level}): {res.best_model('mul_exp', level)}")

    # every cell populated and on the normalized scale
    for (scen, model, level), vals in res.metrics.items():
        assert 0.0 < vals["mse"] < 0.5, (scen, model, level, vals)
        assert 0.0 < vals["mae"] < 0.7, (scen, model, level, vals)

    # RPTCN competitive in Mul-Exp: within 25% of the best baseline's MSE
    # on containers, and beating the LSTM family on machines
    for level in ("containers", "machines"):
        rptcn = res.metrics[("mul_exp", "rptcn", level)]["mse"]
        best = min(
            vals["mse"]
            for (scen, model, lev), vals in res.metrics.items()
            if scen == "mul_exp" and lev == level
        )
        assert rptcn <= 1.6 * best, f"RPTCN far from best on {level}: {rptcn} vs {best}"

    lstm_mach = res.metrics[("mul_exp", "lstm", "machines")]["mse"]
    cnn_mach = res.metrics[("mul_exp", "cnn_lstm", "machines")]["mse"]
    rptcn_mach = res.metrics[("mul_exp", "rptcn", "machines")]["mse"]
    assert rptcn_mach <= max(lstm_mach, cnn_mach), (
        "paper shape: RPTCN should beat at least the worse LSTM-family "
        "baseline on machines in Mul-Exp"
    )

    # the improvement range must have a positive upper end
    assert hi > 0.0
