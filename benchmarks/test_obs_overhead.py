"""Observability overhead guard (marker ``perf_smoke``) -> ``BENCH_obs.json``.

The :mod:`repro.obs` instrumentation wired through ``Trainer.fit`` and
``OnlinePredictor.run`` must stay cheap enough to leave enabled in
production: this test runs each workload twice in lockstep — one
instrumented worker, one with observability disabled, alternating every
few milliseconds of work — and asserts the instrumented side stays
within 10% of the plain side.

Two choices keep the measurement honest on a busy machine:

* **CPU time, not wall time** (``time.process_time``): instrumentation
  overhead is pure CPU work, and CPU time is blind to other processes
  stealing the core mid-measurement.
* **Fine-grained interleaving**: the two workers advance through the
  *same* stream/epochs in alternating chunks, so a load burst or
  frequency change hits both sides almost equally instead of landing on
  whichever config happened to be running.

The measured ratios land in ``BENCH_obs.json`` at the repo root, keyed
by the ``RPTCN_BENCH_LABEL`` env var, so successive PRs accumulate an
overhead trajectory next to ``BENCH_kernels.json``:

    python -m pytest benchmarks/test_obs_overhead.py -q
"""

import gc
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.nn.layers import Linear, Sequential, Tanh
from repro.nn.losses import MSELoss
from repro.nn.optim import Adam
from repro.obs.registry import MetricRegistry
from repro.streaming import OnlinePredictor, PageHinkley
from repro.training.trainer import Trainer

#: instrumented CPU time may exceed uninstrumented by at most this factor
MAX_OVERHEAD_RATIO = 1.10
#: full interleaved passes per workload; the min ratio is reported
PASSES = 3


def _interleaved_cpu_ratio(make_worker, chunks):
    """CPU-time ratio instrumented/plain over chunk-interleaved workers.

    ``make_worker()`` returns a fresh ``step(chunk)`` callable; two are
    created per pass and advanced through the same ``chunks`` in
    alternation, one with observability on, one with it off.
    Returns ``(ratio, cpu_on, cpu_off)`` for the best (lowest-ratio) pass.
    """
    best = (float("inf"), 0.0, 0.0)
    try:
        for _ in range(PASSES):
            workers = {True: make_worker(), False: make_worker()}
            cpu = {True: 0.0, False: 0.0}
            gc.collect()
            for chunk in chunks:
                for enabled in (True, False):
                    obs.set_enabled(enabled)
                    t0 = time.process_time()
                    workers[enabled](chunk)
                    cpu[enabled] += time.process_time() - t0
            ratio = cpu[True] / cpu[False]
            if ratio < best[0]:
                best = (ratio, cpu[True], cpu[False])
    finally:
        obs.set_enabled(True)
    return best


def _make_serve_worker():
    predictor = OnlinePredictor(
        "holt", window=12, buffer_capacity=200, refit_interval=100, min_fit_size=60,
        detector=PageHinkley(threshold=0.25, min_instances=30),
        registry=MetricRegistry(),
    )

    def step(rows):
        for row in rows:
            predictor.process(row)

    return step


def _make_train_worker():
    rng = np.random.default_rng(0)
    model = Sequential(Linear(16, 64, rng=rng), Tanh(), Linear(64, 1, rng=rng))
    trainer = Trainer(
        model, Adam(model.parameters(), lr=0.01), MSELoss(),
        rng=rng, registry=MetricRegistry(),
    )
    x = rng.random((512, 16))
    y = x[:, :1]

    def step(_epoch):
        trainer.fit(x, y, epochs=1, batch_size=64)

    return step


@pytest.mark.perf_smoke
def test_perf_smoke_obs_overhead():
    """Instrumented Trainer.fit / OnlinePredictor.run within 10% of plain."""
    from repro.traces import ClusterTraceGenerator, TraceConfig

    gen = ClusterTraceGenerator(TraceConfig(n_steps=1200, seed=0))
    stream = gen.generate_entity("mutation", entity_id="c_obs", low=0.3, high=0.7).cpu / 100.0
    stream = stream[:, None]
    record_chunks = [stream[i : i + 50] for i in range(0, len(stream), 50)]

    _make_serve_worker()(stream[:200])  # warm caches and lazy imports
    _make_train_worker()(0)

    serve_ratio, serve_on, serve_off = _interleaved_cpu_ratio(
        _make_serve_worker, record_chunks
    )
    train_ratio, train_on, train_off = _interleaved_cpu_ratio(
        _make_train_worker, range(12)
    )

    snapshot = {
        "workloads": {
            "trainer_fit": "Linear(16,64)+Tanh+Linear(64,1), Adam, 512x16, 12 epochs, batch 64",
            "online_serving": "holt predictor, 1200-step mutation stream",
        },
        "method": f"chunk-interleaved instrumented/plain workers, CPU time, min of {PASSES} passes",
        "cpu_seconds": {
            "trainer_fit_instrumented": round(train_on, 6),
            "trainer_fit_plain": round(train_off, 6),
            "online_serving_instrumented": round(serve_on, 6),
            "online_serving_plain": round(serve_off, 6),
        },
        "overhead_ratio": {
            "trainer_fit": round(train_ratio, 4),
            "online_serving": round(serve_ratio, 4),
        },
        "max_allowed_ratio": MAX_OVERHEAD_RATIO,
    }

    path = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
    data = {"schema": "bench-obs/v1", "entries": {}}
    if path.exists():
        data = json.loads(path.read_text())
    label = os.environ.get("RPTCN_BENCH_LABEL", "working-tree")
    data["entries"][label] = snapshot
    path.write_text(json.dumps(data, indent=2) + "\n")

    assert train_ratio <= MAX_OVERHEAD_RATIO, (
        f"training instrumentation overhead {train_ratio:.3f}x exceeds "
        f"{MAX_OVERHEAD_RATIO}x ({train_on * 1e3:.1f}ms vs {train_off * 1e3:.1f}ms CPU)"
    )
    assert serve_ratio <= MAX_OVERHEAD_RATIO, (
        f"serving instrumentation overhead {serve_ratio:.3f}x exceeds "
        f"{MAX_OVERHEAD_RATIO}x ({serve_on * 1e3:.1f}ms vs {serve_off * 1e3:.1f}ms CPU)"
    )
