"""Sharded fleet scaling snapshot (marker ``perf_smoke``) -> ``BENCH_serving.json``.

Serves one large synthetic fleet through the single-process
:class:`~repro.streaming.fleet.FleetPredictor` and through
:class:`~repro.streaming.shard.ShardedFleetPredictor` at increasing
shard counts — each shard count twice, behind the lock-step barrier and
through the two-deep tick pipeline — recording records/sec into the
BENCH_serving.json entry the fleet bench writes (``shard_scaling`` and
``shard_pipeline`` blocks). Correctness rides along unconditionally:
shards=1 must be bit-identical to the single-process fleet on every
emitted tick, pipelined ticks must be bit-identical to barrier ticks at
every shard count, and no worker may fail during the run.

The scaling gates are machine-dependent: on >= ``MIN_CORES_FOR_SCALING``
usable cores, shards=4 must reach ``MIN_SPEEDUP_AT_4`` x the
single-process records/sec at ``N_STREAMS``, and the pipelined pass
must reach ``MIN_PIPELINE_SPEEDUP`` x its barrier pass. On smaller
machines (CI single-core runners included) the workers time-slice the
same core, so the gates downgrade to parity-only and the recorded
numbers are informational — ``check_regression.py`` skips wall-clock
comparison across differing core counts for the same reason.

    python -m pytest benchmarks/test_shard_serving.py -q
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.fleet import run_shard_scaling

from ._machine import machine_info, usable_cores

#: fleet size the scaling claim is made at (ISSUE 6 acceptance: N >= 4096)
N_STREAMS = 4096
#: cores needed before multi-process scaling is physically possible
MIN_CORES_FOR_SCALING = 4
#: with >= MIN_CORES_FOR_SCALING usable cores, shards=4 must reach this
MIN_SPEEDUP_AT_4 = 2.0
#: ISSUE 10 acceptance: pipelined >= 1.2x barrier at shards=4 on >=4 cores
MIN_PIPELINE_SPEEDUP = 1.2

#: one scaling run feeds both the shard_scaling and shard_pipeline blocks
_RESULT_CACHE: dict[int, object] = {}


def _shards_list() -> tuple[int, ...]:
    return (1, 2, 4) if usable_cores() >= MIN_CORES_FOR_SCALING else (1, 2)


def _scaling_result(profile):
    key = id(profile)
    if key not in _RESULT_CACHE:
        _RESULT_CACHE[key] = run_shard_scaling(
            profile, n_streams=N_STREAMS, shards_list=_shards_list()
        )
    return _RESULT_CACHE[key]


def _write_bench_block(name: str, block: dict) -> None:
    path = Path(__file__).resolve().parent.parent / "BENCH_serving.json"
    data = {"schema": "bench-serving/v1", "entries": {}}
    if path.exists():
        data = json.loads(path.read_text())
    label = os.environ.get("RPTCN_BENCH_LABEL", "working-tree")
    entry = data["entries"].setdefault(label, {})
    entry.update(machine_info())
    entry[name] = block
    path.write_text(json.dumps(data, indent=2) + "\n")


@pytest.mark.perf_smoke
def test_perf_smoke_shard_scaling(profile):
    """shards=1 bit-parity always; shards=4 >= 2x single-process on >=4 cores."""
    res = _scaling_result(profile)

    scaling = {
        "n_streams": res.n_streams,
        "ticks": res.ticks,
        "parity_shard1": res.parity_shard1,
        "single_records_per_sec": round(res.single_records_per_sec, 1),
        "single_wall_seconds": round(res.single_seconds, 4),
        "per_shards": {
            f"shards{r.shards}": {
                "records_per_sec": round(r.records_per_sec, 1),
                "speedup_vs_single_x": round(r.speedup_vs_single, 2),
                "wall_seconds": round(r.seconds, 4),
                "worker_failures": r.worker_failures,
            }
            for r in res.per_shards
        },
    }
    _write_bench_block("shard_scaling", scaling)

    assert res.parity_shard1, "shards=1 ticks diverged from single-process fleet"
    assert all(r.worker_failures == 0 for r in res.per_shards), (
        f"shard workers failed during the bench: "
        f"{[(r.shards, r.worker_failures) for r in res.per_shards]}"
    )
    if usable_cores() >= MIN_CORES_FOR_SCALING:
        at4 = res.result_at(4)
        assert at4.speedup_vs_single >= MIN_SPEEDUP_AT_4, (
            f"shards=4 served {at4.records_per_sec:,.0f} rec/s vs single-process "
            f"{res.single_records_per_sec:,.0f} rec/s at N={N_STREAMS} — only "
            f"x{at4.speedup_vs_single:.2f}, need x{MIN_SPEEDUP_AT_4:.1f} "
            f"on a {usable_cores()}-core machine"
        )


@pytest.mark.perf_smoke
def test_perf_smoke_shard_pipeline(profile):
    """Pipelined == barrier bit-for-bit always; >= 1.2x faster at 4 shards on >=4 cores."""
    res = _scaling_result(profile)

    pipeline = {
        "n_streams": res.n_streams,
        "ticks": res.ticks,
        "per_shards": {
            f"shards{r.shards}": {
                "pipeline_records_per_sec": round(r.pipeline_records_per_sec, 1),
                "pipeline_wall_seconds": round(r.pipeline_seconds, 4),
                "pipeline_vs_barrier_x": round(r.pipeline_speedup, 2),
                "parity": r.pipeline_parity,
            }
            for r in res.per_shards
        },
    }
    _write_bench_block("shard_pipeline", pipeline)

    bad_parity = [r.shards for r in res.per_shards if not r.pipeline_parity]
    assert not bad_parity, (
        f"pipelined ticks diverged from barrier ticks at shards={bad_parity}"
    )
    if usable_cores() >= MIN_CORES_FOR_SCALING:
        at4 = res.result_at(4)
        assert at4.pipeline_speedup >= MIN_PIPELINE_SPEEDUP, (
            f"pipelined shards=4 served {at4.pipeline_records_per_sec:,.0f} rec/s "
            f"vs barrier {at4.records_per_sec:,.0f} rec/s at N={N_STREAMS} — only "
            f"x{at4.pipeline_speedup:.2f}, need x{MIN_PIPELINE_SPEEDUP:.1f} "
            f"on a {usable_cores()}-core machine"
        )
