"""Sharded fleet scaling snapshot (marker ``perf_smoke``) -> ``BENCH_serving.json``.

Serves one large synthetic fleet through the single-process
:class:`~repro.streaming.fleet.FleetPredictor` and through
:class:`~repro.streaming.shard.ShardedFleetPredictor` at increasing
shard counts, recording records/sec per shard count into the same
BENCH_serving.json entry the fleet bench writes (``shard_scaling``
block). Correctness rides along unconditionally: shards=1 must be
bit-identical to the single-process fleet on every emitted tick, and no
worker may fail during the run.

The scaling gate is machine-dependent: on >= ``MIN_CORES_FOR_SCALING``
usable cores, shards=4 must reach ``MIN_SPEEDUP_AT_4`` x the
single-process records/sec at ``N_STREAMS``. On smaller machines (CI
single-core runners included) the workers time-slice the same core, so
the gate downgrades to parity-only and the recorded numbers are
informational — ``check_regression.py`` skips wall-clock comparison
across differing core counts for the same reason.

    python -m pytest benchmarks/test_shard_serving.py -q
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.fleet import run_shard_scaling

from ._machine import machine_info, usable_cores

#: fleet size the scaling claim is made at (ISSUE 6 acceptance: N >= 4096)
N_STREAMS = 4096
#: cores needed before multi-process scaling is physically possible
MIN_CORES_FOR_SCALING = 4
#: with >= MIN_CORES_FOR_SCALING usable cores, shards=4 must reach this
MIN_SPEEDUP_AT_4 = 2.0


def _shards_list() -> tuple[int, ...]:
    return (1, 2, 4) if usable_cores() >= MIN_CORES_FOR_SCALING else (1, 2)


@pytest.mark.perf_smoke
def test_perf_smoke_shard_scaling(profile):
    """shards=1 bit-parity always; shards=4 >= 2x single-process on >=4 cores."""
    shards_list = _shards_list()
    res = run_shard_scaling(profile, n_streams=N_STREAMS, shards_list=shards_list)

    scaling = {
        "n_streams": res.n_streams,
        "ticks": res.ticks,
        "parity_shard1": res.parity_shard1,
        "single_records_per_sec": round(res.single_records_per_sec, 1),
        "single_wall_seconds": round(res.single_seconds, 4),
        "per_shards": {
            f"shards{r.shards}": {
                "records_per_sec": round(r.records_per_sec, 1),
                "speedup_vs_single_x": round(r.speedup_vs_single, 2),
                "wall_seconds": round(r.seconds, 4),
                "worker_failures": r.worker_failures,
            }
            for r in res.per_shards
        },
    }

    path = Path(__file__).resolve().parent.parent / "BENCH_serving.json"
    data = {"schema": "bench-serving/v1", "entries": {}}
    if path.exists():
        data = json.loads(path.read_text())
    label = os.environ.get("RPTCN_BENCH_LABEL", "working-tree")
    entry = data["entries"].setdefault(label, {})
    entry.update(machine_info())
    entry["shard_scaling"] = scaling
    path.write_text(json.dumps(data, indent=2) + "\n")

    assert res.parity_shard1, "shards=1 ticks diverged from single-process fleet"
    assert all(r.worker_failures == 0 for r in res.per_shards), (
        f"shard workers failed during the bench: "
        f"{[(r.shards, r.worker_failures) for r in res.per_shards]}"
    )
    if usable_cores() >= MIN_CORES_FOR_SCALING:
        at4 = res.result_at(4)
        assert at4.speedup_vs_single >= MIN_SPEEDUP_AT_4, (
            f"shards=4 served {at4.records_per_sec:,.0f} rec/s vs single-process "
            f"{res.single_records_per_sec:,.0f} rec/s at N={N_STREAMS} — only "
            f"x{at4.speedup_vs_single:.2f}, need x{MIN_SPEEDUP_AT_4:.1f} "
            f"on a {usable_cores()}-core machine"
        )
