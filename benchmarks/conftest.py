"""Shared benchmark configuration.

Every ``test_*`` here both *times* its harness (pytest-benchmark) and
*prints* the regenerated paper artifact, then asserts the qualitative
shape the paper reports. Set ``RPTCN_BENCH_PROFILE=default`` (or
``paper``) for higher-fidelity, slower runs; the default ``quick``
profile keeps the whole suite in single-digit minutes.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.config import get_profile


@pytest.fixture(scope="session")
def profile():
    return get_profile(os.environ.get("RPTCN_BENCH_PROFILE", "quick"))


def run_once(benchmark, fn, *args, **kwargs):
    """Time a harness exactly once (they are seconds-long, not microseconds)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
