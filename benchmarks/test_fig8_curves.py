"""FIG8 bench — predicted vs. true around a mutation point (paper Fig. 8).

Paper claims: the CPU utilization "increases abruptly after the 350th
sampling point, and then maintains a high CPU resource utilization";
baselines predict the rise but with large error, while "RPTCN can
accurately predict the range of sudden increase".
"""

from repro.analysis.dynamics import time_to_track
from repro.analysis.reporting import format_table, render_ascii_series
from repro.experiments.curves import run_fig8

from .conftest import run_once


def test_fig8_mutation_tracking(benchmark, profile):
    res = run_once(benchmark, run_fig8, profile)

    print(f"\nFig. 8 — mutation at test index {res.jump_index}")
    print(render_ascii_series(res.truth, label="truth"))
    for model, pred in res.predictions.items():
        print(render_ascii_series(pred, label=model))
    ttt = {
        m: time_to_track(res.truth, pred, res.jump_index, tolerance=0.15)
        for m, pred in res.predictions.items()
    }
    rows = [
        [m, res.pre_jump_mae[m], res.post_jump_mae[m], res.tracking_error(m),
         "never" if ttt[m] is None else ttt[m]]
        for m in res.predictions
    ]
    print(format_table(
        ["model", "pre-jump MAE", "post-jump MAE", "overall MAE", "steps to track"],
        rows,
    ))
    print("best post-jump tracker:", res.best_post_jump())

    truth = res.truth
    k = res.jump_index
    # the jump is inside the test segment and sustained
    assert 0 < k < len(truth) - 2
    assert truth[k + 1 :].mean() > truth[:k].mean() + 0.2

    # every model at least predicts the rise (mean after > mean before)
    for model, pred in res.predictions.items():
        assert pred[k + 1 :].mean() > pred[:k].mean(), f"{model} missed the rise"

    # paper shape: RPTCN tracks the post-jump level at least as well as
    # the median baseline
    post = sorted(res.post_jump_mae.values())
    median_baseline = post[len(post) // 2]
    assert res.post_jump_mae["rptcn"] <= 1.05 * median_baseline
