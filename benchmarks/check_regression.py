#!/usr/bin/env python
"""Gate BENCH_*.json snapshots against the committed baselines.

CI regenerates the perf-smoke snapshots (``BENCH_parallel.json``,
``BENCH_obs.json``, ``BENCH_serving.json``, ...) on every run; this
script diffs the fresh
numbers against the copies committed at ``--baseline-ref`` (default
``HEAD``) and fails when a wall-clock figure regressed by more than the
threshold. Usable locally the same way CI uses it:

    python -m pytest benchmarks -m perf_smoke -q   # refresh snapshots
    python benchmarks/check_regression.py          # diff vs HEAD

Comparison rules, by metric name anywhere in the entry:

* ``*seconds*``  — lower is better; a regression needs both the relative
  threshold exceeded *and* an absolute slowdown above ``ABS_FLOOR_SECONDS``
  (sub-50 ms timings are scheduler noise, not signal);
* ``*per_sec*``  — higher is better (throughput);
* ``*mae*`` / ``*mse*`` — accuracy, lower is better; compared at a
  tighter relative threshold (``ACCURACY_THRESHOLD``) because model
  error is deterministic under the seeded harness, with a tiny absolute
  floor for float noise;
* everything else (ratios, counts, shapes) is informational only —
  dedicated test assertions gate those.

When ``$GITHUB_STEP_SUMMARY`` is set (GitHub Actions), the same diff is
appended there as a markdown table so the comparison shows up on the
run's summary page without digging through logs.

Baseline entries are matched by label (``RPTCN_BENCH_LABEL``); when the
fresh label is absent from the committed file, the baseline's last entry
is used — snapshots accumulate across PRs, so the last entry is the most
recent committed measurement. ``RPTCN_BENCH_TOLERANCE`` overrides
``--threshold`` (CI escape hatch for known-noisy runners).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

#: ignore "regressions" smaller than this many absolute seconds
ABS_FLOOR_SECONDS = 0.05

#: max allowed relative accuracy (MAE/MSE) regression — tighter than the
#: wall-clock threshold because seeded model error is deterministic
ACCURACY_THRESHOLD = 0.05

#: ignore accuracy deltas below this absolute size (float summation noise)
ABS_FLOOR_ACCURACY = 1e-6

REPO_ROOT = Path(__file__).resolve().parent.parent


def committed_baseline(path: Path, ref: str) -> dict | None:
    """The file's content at ``ref``, or None if it is not committed there."""
    rel = path.resolve().relative_to(REPO_ROOT)
    proc = subprocess.run(
        ["git", "show", f"{ref}:{rel.as_posix()}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


def numeric_leaves(entry, prefix: str = "") -> dict[str, float]:
    """Flatten an entry to dotted-path -> number (None and strings dropped)."""
    out: dict[str, float] = {}
    if isinstance(entry, dict):
        for key, value in entry.items():
            out.update(numeric_leaves(value, f"{prefix}.{key}" if prefix else key))
    elif isinstance(entry, (int, float)) and not isinstance(entry, bool):
        out[prefix] = float(entry)
    return out


def pick_baseline_entry(baseline: dict, label: str) -> tuple[str, dict] | None:
    entries = baseline.get("entries") or {}
    if not entries:
        return None
    if label in entries:
        return label, entries[label]
    last_label = list(entries)[-1]  # JSON objects keep insertion order
    return last_label, entries[last_label]


def entry_cores(nums: dict[str, float]) -> int | None:
    """The affinity-visible core count recorded in an entry, if any.

    Prefers ``cpu_affinity`` (what the process could actually use) over
    ``cpu_count`` (the host's processors); matches the key at any depth.
    """
    for key in ("cpu_affinity", "cpu_count"):
        hits = [v for p, v in nums.items() if p == key or p.endswith(f".{key}")]
        if hits:
            return int(hits[0])
    return None


def metric_kind(path: str) -> tuple[str, str] | None:
    """Classify a dotted metric path: (kind, regression direction) or None.

    Accuracy wins over wall-clock when a path somehow matches both;
    matching is on the lowercased path so ``MAE``/``mae`` both hit.
    """
    low = path.lower()
    if "mae" in low or "mse" in low:
        return "accuracy", "worse error"
    if "seconds" in low:
        return "wall", "slower"
    if "per_sec" in low:
        return "throughput", "less throughput"
    return None


def compare(
    fresh: dict, base: dict, threshold: float
) -> tuple[list[str], list[str], list[tuple[str, float, float, float, str]]]:
    """Return (regressions, report_lines, rows) for one pair of entries.

    ``rows`` are ``(path, old, new, delta_pct, status)`` tuples feeding
    the markdown summary; ``status`` is ``ok``/``REGRESSION``/``skipped``.
    """
    fresh_nums = numeric_leaves(fresh)
    base_nums = numeric_leaves(base)
    regressions: list[str] = []
    lines: list[str] = []
    rows: list[tuple[str, float, float, float, str]] = []
    fresh_cores, base_cores = entry_cores(fresh_nums), entry_cores(base_nums)
    cores_differ = (
        fresh_cores is not None and base_cores is not None and fresh_cores != base_cores
    )
    if cores_differ:
        lines.append(
            f"  skipped    wall-clock comparison: fresh ran on {fresh_cores} "
            f"core(s), baseline on {base_cores} — not comparable "
            "(accuracy still checked)"
        )
    for path in sorted(fresh_nums):
        if path not in base_nums:
            continue
        kind = metric_kind(path)
        if kind is None:
            continue
        metric, direction = kind
        new, old = fresh_nums[path], base_nums[path]
        if metric == "accuracy":
            regressed = (
                new > old * (1.0 + ACCURACY_THRESHOLD)
                and new - old > ABS_FLOOR_ACCURACY
            )
        elif cores_differ:
            # wall-clock/throughput across differing core counts is noise
            delta = (new / old - 1.0) * 100.0 if old else float("inf")
            rows.append((path, old, new, delta, "skipped"))
            continue
        elif metric == "wall":
            regressed = (
                new > old * (1.0 + threshold) and new - old > ABS_FLOOR_SECONDS
            )
        else:  # throughput
            regressed = old > 0 and new < old * (1.0 - threshold)
        delta = (new / old - 1.0) * 100.0 if old else float("inf")
        marker = "REGRESSION" if regressed else "ok"
        lines.append(f"  {marker:<10} {path}: {old:g} -> {new:g} ({delta:+.1f}%)")
        rows.append((path, old, new, delta, marker))
        if regressed:
            regressions.append(f"{path} {direction}: {old:g} -> {new:g} ({delta:+.1f}%)")
    return regressions, lines, rows


def write_step_summary(
    sections: list[tuple[str, str, str, list[tuple[str, float, float, float, str]]]],
    threshold: float,
    failed: bool,
) -> None:
    """Append a markdown diff table to ``$GITHUB_STEP_SUMMARY`` if set."""
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not summary_path:
        return
    out = ["## Benchmark regression check", ""]
    verdict = "❌ regressions detected" if failed else "✅ no regressions"
    out.append(
        f"{verdict} (wall-clock threshold {threshold:.0%}, "
        f"accuracy threshold {ACCURACY_THRESHOLD:.0%})"
    )
    for file_name, fresh_label, base_label, rows in sections:
        out += ["", f"### {file_name} — `{fresh_label}` vs committed `{base_label}`", ""]
        if not rows:
            out.append("_no comparable metrics_")
            continue
        out += [
            "| metric | baseline | fresh | Δ | status |",
            "| --- | ---: | ---: | ---: | :---: |",
        ]
        for path, old, new, delta, status in rows:
            icon = {"ok": "✅", "REGRESSION": "❌", "skipped": "⏭️"}.get(status, status)
            out.append(f"| `{path}` | {old:g} | {new:g} | {delta:+.1f}% | {icon} |")
    with open(summary_path, "a", encoding="utf-8") as fh:
        fh.write("\n".join(out) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="BENCH_*.json files to check (default: all at the repo root)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=float(os.environ.get("RPTCN_BENCH_TOLERANCE", 0.25)),
        help="max allowed relative regression (default 0.25 = 25%%; "
        "env RPTCN_BENCH_TOLERANCE overrides)",
    )
    parser.add_argument(
        "--baseline-ref",
        default="HEAD",
        help="git ref holding the committed baselines (default HEAD)",
    )
    args = parser.parse_args(argv)

    files = args.files or sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not files:
        print("no BENCH_*.json snapshots found — nothing to check")
        return 0

    label = os.environ.get("RPTCN_BENCH_LABEL", "working-tree")
    all_regressions: list[str] = []
    sections: list[tuple[str, str, str, list[tuple[str, float, float, float, str]]]] = []
    for path in files:
        baseline = committed_baseline(path, args.baseline_ref)
        if baseline is None:
            print(f"{path.name}: no committed baseline at {args.baseline_ref} — skipped")
            continue
        fresh_doc = json.loads(Path(path).read_text())
        fresh_entry = (fresh_doc.get("entries") or {}).get(label)
        if fresh_entry is None:
            print(f"{path.name}: no fresh entry labelled {label!r} — skipped")
            continue
        picked = pick_baseline_entry(baseline, label)
        if picked is None:
            print(f"{path.name}: committed baseline has no entries — skipped")
            continue
        base_label, base_entry = picked
        regressions, lines, rows = compare(fresh_entry, base_entry, args.threshold)
        print(f"{path.name}: {label!r} vs committed {base_label!r} "
              f"(threshold {args.threshold:.0%})")
        for line in lines:
            print(line)
        all_regressions.extend(f"{path.name}: {r}" for r in regressions)
        sections.append((path.name, label, base_label, rows))

    write_step_summary(sections, args.threshold, failed=bool(all_regressions))
    if all_regressions:
        print("\nperformance regressions detected:", file=sys.stderr)
        for r in all_regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    print("\nno performance regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
