"""FIG10 bench — validation-loss convergence on machines (paper Fig. 10).

Paper claims: on machines the validation curves are noisier (CNN-LSTM
jitters), and "RPTCN keeps a very small loss value as that on containers".
"""

import numpy as np

from repro.analysis.reporting import format_table, render_ascii_series
from repro.experiments.convergence import run_fig10

from .conftest import run_once


def test_fig10_validation_convergence(benchmark, profile):
    res = run_once(benchmark, run_fig10, profile)

    print("\nFig. 10 — validation loss on machines")
    for model, curve in res.curves.items():
        print(render_ascii_series(np.asarray(curve), label=model))
    rows = [
        [r.model, r.initial_loss, r.final_loss, r.best_loss, r.epochs_to_90pct]
        for r in res.records
    ]
    print(format_table(["model", "initial", "final", "best", "ep@90%"], rows))

    assert res.monitor == "val_loss"
    rptcn = res.model_record("rptcn")

    # RPTCN's best validation loss is within 3x of the overall best —
    # generalization holds at the machine level too
    best = min(r.best_loss for r in res.records)
    assert rptcn.best_loss <= 3.0 * best

    # every curve is finite and positive
    for curve in res.curves.values():
        arr = np.asarray(curve)
        assert np.isfinite(arr).all()
        assert (arr > 0).all()
