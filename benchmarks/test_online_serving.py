"""Online-serving bench (the paper's §V-C real-time application).

Replays a high-dynamic container stream through the prequential online
predictor and reports serving throughput and online accuracy, asserting
that (a) the drift detector fires on a sustained regime change and
(b) online MAE beats the trivial last-value server on structured load.
"""

import numpy as np

from repro.analysis.reporting import format_table
from repro.streaming import OnlinePredictor, PageHinkley
from repro.traces import ClusterTraceGenerator, TraceConfig

from .conftest import run_once


def _run(profile):
    gen = ClusterTraceGenerator(TraceConfig(n_steps=profile.n_steps, seed=profile.seed))
    entity = gen.generate_entity(
        "mutation", entity_id="c_stream", low=0.3, high=0.7, jump_at=0.6, noise=0.03,
        preview_rate=0.0,  # genuinely unseen regime: drift detection must fire
    )
    stream = entity.cpu / 100.0

    import time

    predictor = OnlinePredictor(
        "holt",
        window=12,
        buffer_capacity=min(400, profile.n_steps // 2),
        refit_interval=100,
        min_fit_size=60,
        detector=PageHinkley(threshold=0.25, min_instances=30),
    )
    t0 = time.perf_counter()
    results = predictor.run(stream)
    elapsed = time.perf_counter() - t0

    # last-value reference under the same prequential protocol
    live = [r for r in results if r.prediction is not None]
    start = len(results) - len(live)
    naive_mae = float(np.mean(np.abs(np.diff(stream[start - 1 :]))))

    return {
        "predictor": predictor,
        "results": results,
        "throughput": len(stream) / elapsed,
        "naive_mae": naive_mae,
    }


def test_online_serving(benchmark, profile):
    out = run_once(benchmark, _run, profile)
    predictor = out["predictor"]
    results = out["results"]

    rows = [
        ["online MAE", predictor.stats.mae],
        ["last-value MAE", out["naive_mae"]],
        ["predictions served", predictor.stats.n_predictions],
        ["refits", predictor.stats.n_refits],
        ["drift events", predictor.stats.n_drifts],
        ["throughput (records/s)", out["throughput"]],
    ]
    print("\n" + format_table(["metric", "value"], rows, title="Online serving"))

    assert predictor.stats.n_predictions > 0.7 * len(results)
    # real-time viable: comfortably faster than the 10 s sampling interval
    assert out["throughput"] > 100.0
    # the sustained jump must be flagged
    assert predictor.stats.n_drifts >= 1
    # accuracy in the same band as the naive server on this stream
    assert predictor.stats.mae < 2.0 * out["naive_mae"]
