"""Fleet serving throughput snapshot (marker ``perf_smoke``) -> ``BENCH_serving.json``.

Serves the same synthetic fleet trace through one micro-batched
:class:`~repro.streaming.fleet.FleetPredictor` and through N independent
:class:`~repro.streaming.online.OnlinePredictor` loops at each fleet
size, and records records/sec for both sides. Correctness rides along:
at N=1 every record the fleet emits must be bit-identical to the scalar
predictor's, and at the largest fleet the micro-batched path must hold
at least ``MIN_SPEEDUP_AT_SCALE``x the scalar throughput — the headline
number of the fleet-serving design.

The speedup comes from vectorization (one gate pass, one model forward,
one buffer append per tick), not from parallelism, so the assertion is
core-count independent.

    python -m pytest benchmarks/test_fleet_serving.py -q
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.fleet import run_fleet

from ._machine import machine_info

#: the fleet must beat N scalar predictors by at least this factor at scale
MIN_SPEEDUP_AT_SCALE = 5.0
#: fleet sizes measured (the last one carries the speedup assertion); the
#: small sizes exist to locate the fleet-vs-scalar crossover N
N_LIST = (1, 2, 4, 8, 64, 1024)


@pytest.mark.perf_smoke
def test_perf_smoke_fleet_serving(profile):
    """N=1 bit-parity with the scalar loop; >=5x records/sec at N=1024."""
    res = run_fleet(profile, n_list=N_LIST)

    snapshot = {
        "model": res.model,
        "ticks": res.ticks,
        **machine_info(),
        "parity_n1": res.parity_n1,
        "crossover_n": res.crossover_n,
        "min_speedup_at_scale": MIN_SPEEDUP_AT_SCALE,
        "scales": {
            f"n{r.n_streams:04d}": {
                "fleet_records_per_sec": round(r.fleet_records_per_sec, 1),
                "scalar_records_per_sec": round(r.scalar_records_per_sec, 1),
                "speedup_x": round(r.speedup, 2),
                "fleet_wall_seconds": round(r.fleet_seconds, 4),
                "scalar_wall_seconds": round(r.scalar_seconds, 4),
            }
            for r in res.per_scale
        },
    }

    path = Path(__file__).resolve().parent.parent / "BENCH_serving.json"
    data = {"schema": "bench-serving/v1", "entries": {}}
    if path.exists():
        data = json.loads(path.read_text())
    label = os.environ.get("RPTCN_BENCH_LABEL", "working-tree")
    # merge, don't replace: test_shard_serving adds its scaling block to
    # the same entry and the two tests run in either order
    data["entries"].setdefault(label, {}).update(snapshot)
    path.write_text(json.dumps(data, indent=2) + "\n")

    assert res.parity_n1, "fleet N=1 records diverged from OnlinePredictor"
    at_scale = res.result_at(max(N_LIST))
    assert at_scale.speedup >= MIN_SPEEDUP_AT_SCALE, (
        f"fleet served {at_scale.fleet_records_per_sec:,.0f} rec/s vs scalar "
        f"{at_scale.scalar_records_per_sec:,.0f} rec/s at N={at_scale.n_streams} "
        f"— only x{at_scale.speedup:.1f}, need x{MIN_SPEEDUP_AT_SCALE:.0f}"
    )
