"""FIG7 bench — indicator correlation heatmap (paper Fig. 7).

Paper finding on container c_18104: "the top four indicators which have a
stronger correlation with CPU utilization are cpu, mpki, cpi, mem_gps."
"""

from repro.analysis.reporting import format_table
from repro.experiments.characterization import run_fig7

from .conftest import run_once


def test_fig7_correlation_heatmap(benchmark, profile):
    res = run_once(benchmark, run_fig7, profile)

    short = [n[:8] for n in res.names]
    rows = [[short[i], *[f"{v:+.2f}" for v in res.matrix[i]]] for i in range(len(short))]
    print("\n" + format_table(
        ["", *short], rows, title=f"Fig. 7 — correlation matrix of {res.entity_id}"
    ))
    print("ranking:", [(n, round(r, 3)) for n, r in res.ranking])

    # symmetric with unit diagonal
    assert abs(res.matrix - res.matrix.T).max() < 1e-12
    assert all(abs(res.matrix[i, i] - 1.0) < 1e-12 for i in range(8))

    # the paper's top-4 set
    assert set(res.top_correlated(4)) == {"cpu_util_percent", "mpki", "cpi", "mem_gps"}

    # and the bottom half contains the weak indicators
    bottom = {name for name, _ in res.ranking[4:]}
    assert "disk_io_percent" in bottom
