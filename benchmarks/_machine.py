"""Machine identity for benchmark snapshots.

``os.cpu_count()`` reports the host's processors, which in a container
or a cgroup-pinned CI runner can differ from the cores the process may
actually use (``sched_getaffinity``). Benchmarks record both so
``check_regression.py`` can tell "this code got slower" apart from
"this ran on a smaller machine" and skip wall-clock comparison across
differing core counts.
"""

from __future__ import annotations

import os

__all__ = ["machine_info", "usable_cores"]


def usable_cores() -> int:
    """Cores this process can actually schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def machine_info() -> dict[str, int]:
    """The identity block every BENCH entry embeds."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "cpu_affinity": usable_cores(),
    }
