"""Generalization bench — the paper's §V claim, quantified.

A model trained on one container is applied unchanged to sibling
containers and to a machine; the transfer/in-domain error ratio measures
how "widely usable" the fitted model really is. The pipeline's PCC
screening helps here: all entities share the same screened feature
space, so the weights transfer structurally.
"""

from repro.analysis.reporting import format_table
from repro.experiments.generalization import run_generalization

from .conftest import run_once


def test_generalization(benchmark, profile):
    res = run_once(benchmark, run_generalization, profile, model="rptcn")

    rows = []
    for target, entry in res.targets.items():
        rows.append(
            [
                target,
                entry["transfer"]["mse"] * 100,
                entry["in_domain"]["mse"] * 100,
                f"x{res.gap(target):.2f}",
            ]
        )
    print("\n" + format_table(
        ["target", "transfer MSE(e-2)", "in-domain MSE(e-2)", "gap"],
        rows,
        title=f"RPTCN trained on {res.source_id}, transferred without refit",
    ))
    print(f"mean generalization gap: x{res.mean_gap():.2f}")

    # transfer must work at all (no divergence on any target)...
    for target, entry in res.targets.items():
        assert entry["transfer"]["mse"] < 0.25, f"diverged on {target}"

    # ...and stay within an order of magnitude of in-domain training —
    # the operational meaning of the paper's "good generalization"
    assert res.mean_gap() < 10.0
