"""Long-term prediction bench (extension of the paper's headline claim).

The abstract claims improvements "in dynamic and long-term prediction";
this bench sweeps the horizon k and checks that (a) every model degrades
as k grows, and (b) the learned models' advantage over persistence widens
at longer horizons — the regime where prediction actually matters.
"""

from repro.analysis.reporting import format_table
from repro.experiments.horizon import run_horizon_sweep

from .conftest import run_once


def test_horizon_sweep(benchmark, profile):
    res = run_once(benchmark, run_horizon_sweep, profile, horizons=(1, 3, 6))

    rows = []
    for model, per_h in res.metrics.items():
        for h in res.horizons:
            rows.append([model, h, per_h[h]["mse"] * 100, per_h[h]["mae"] * 100])
    print("\n" + format_table(
        ["model", "horizon", "MSE(e-2)", "MAE(e-2)"], rows,
        title="Long-term prediction sweep (Mul-Exp, regime-switching container)",
    ))
    for model in res.metrics:
        print(f"degradation {model}: x{res.degradation(model):.2f} (MAE, k=1 -> k=6)")

    # (a) persistence provably degrades with horizon on dynamic series
    assert res.degradation("persistence") > 1.0

    # (b) at the longest horizon a learned model beats persistence
    h = max(res.horizons)
    best = res.best_at(h, "mse")
    assert best != "persistence", (
        "at long horizons prediction must beat naive persistence"
    )

    # all errors finite and on the normalized scale
    for per_h in res.metrics.values():
        for vals in per_h.values():
            assert 0.0 < vals["mse"] < 1.0
