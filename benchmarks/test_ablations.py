"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's tables: they isolate the contribution of
each RPTCN addition (FC layer, attention) and each pipeline stage
(screening, expansion variants), quantifying the §V-C future-work ideas
the authors sketch (first-order differences, correlation-weighted lags).
"""

import numpy as np
import pytest

from repro.analysis.reporting import format_table
from repro.data.pipeline import PipelineConfig, PredictionPipeline
from repro.models import RPTCNForecaster
from repro.traces.generator import ClusterTraceGenerator, TraceConfig

from .conftest import run_once


@pytest.fixture(scope="module")
def entity():
    gen = ClusterTraceGenerator(
        TraceConfig(n_machines=1, containers_per_machine=1, n_steps=700, seed=33)
    )
    return gen.generate().containers[0]


def _evaluate(entity, config: PipelineConfig, **model_kwargs) -> dict[str, float]:
    pipe = PredictionPipeline(config)
    kwargs = {"epochs": 12, "seed": 7, "channels": (8, 8, 8), **model_kwargs}
    return pipe.run(entity, "rptcn", kwargs).metrics


def test_ablation_architecture(benchmark, entity):
    """RPTCN components: full model vs no-attention vs no-FC vs bare TCN."""

    def run():
        config = PipelineConfig(scenario="mul_exp", window=12)
        return {
            "full": _evaluate(entity, config),
            "no_attention": _evaluate(entity, config, attention="none"),
            "no_fc": _evaluate(entity, config, use_fc=False),
            "bare_tcn": _evaluate(entity, config, attention="none", use_fc=False),
            "temporal_attention": _evaluate(entity, config, attention="temporal"),
        }

    results = run_once(benchmark, run)
    rows = [[k, v["mse"], v["mae"]] for k, v in results.items()]
    print("\n" + format_table(["variant", "mse", "mae"], rows,
                              title="RPTCN architecture ablation (mul_exp)"))

    # every variant must train to a sane accuracy; the full model must not
    # be catastrophically worse than the best ablation (the paper admits
    # "the improvement is not so obvious")
    best = min(v["mse"] for v in results.values())
    assert results["full"]["mse"] <= 2.5 * best
    for name, vals in results.items():
        assert vals["mse"] < 0.08, f"{name} diverged"


def test_ablation_expansion_variants(benchmark, entity):
    """Pipeline variants: uni / mul / mul_exp / weighted / differences."""

    def run():
        return {
            "uni": _evaluate(entity, PipelineConfig(scenario="uni", window=12)),
            "mul": _evaluate(entity, PipelineConfig(scenario="mul", window=12)),
            "mul_exp": _evaluate(entity, PipelineConfig(scenario="mul_exp", window=12)),
            "weighted": _evaluate(
                entity,
                PipelineConfig(scenario="mul_exp", window=12, correlation_weighted=True),
            ),
            "differences": _evaluate(
                entity, PipelineConfig(scenario="mul", window=12, add_differences=True)
            ),
        }

    results = run_once(benchmark, run)
    rows = [[k, v["mse"], v["mae"]] for k, v in results.items()]
    print("\n" + format_table(["pipeline", "mse", "mae"], rows,
                              title="Input-scenario ablation (RPTCN)"))

    values = [v["mse"] for v in results.values()]
    assert max(values) / min(values) < 10.0, "a pipeline variant diverged"


def test_ablation_receptive_field(benchmark, entity):
    """Kernel/dilation sweep: receptive field vs accuracy (paper §V-C)."""

    def run():
        config = PipelineConfig(scenario="mul_exp", window=16)
        out = {}
        for channels, kernel in [((8,), 2), ((8, 8), 3), ((8, 8, 8), 3)]:
            from repro.models.tcn import TCN

            rf = TCN(1, channels=channels, kernel_size=kernel).receptive_field
            metrics = _evaluate(entity, config, channels=channels, kernel_size=kernel)
            out[f"L{len(channels)}_k{kernel}"] = {"rf": rf, **metrics}
        return out

    results = run_once(benchmark, run)
    rows = [[k, v["rf"], v["mse"], v["mae"]] for k, v in results.items()]
    print("\n" + format_table(["config", "receptive field", "mse", "mae"], rows,
                              title="Receptive-field sweep"))

    rfs = [v["rf"] for v in results.values()]
    assert rfs == sorted(rfs), "sweep should grow the receptive field"
    for vals in results.values():
        assert vals["mse"] < 0.08


def test_ablation_vertical_vs_horizontal(benchmark, entity):
    """Fig. 4 trade-off: vertical (longer window) vs horizontal expansion.

    The paper argues horizontal expansion adds short-term information
    without the training-cost growth of a longer window; this bench
    measures both accuracy and wall-clock.
    """
    import time

    def run():
        out = {}
        for name, config in [
            ("horizontal_w12", PipelineConfig(scenario="mul_exp", window=12)),
            ("vertical_w24", PipelineConfig(scenario="mul", window=24)),
            ("baseline_w12", PipelineConfig(scenario="mul", window=12)),
        ]:
            t0 = time.perf_counter()
            metrics = _evaluate(entity, config)
            out[name] = {**metrics, "seconds": time.perf_counter() - t0}
        return out

    results = run_once(benchmark, run)
    rows = [[k, v["mse"], v["mae"], v["seconds"]] for k, v in results.items()]
    print("\n" + format_table(["expansion", "mse", "mae", "train+eval s"], rows,
                              title="Vertical vs horizontal expansion"))

    # the paper's claim about cost: vertical expansion trains slower than
    # horizontal at matched information content
    assert results["vertical_w24"]["seconds"] > 0.5 * results["horizontal_w12"]["seconds"]
