"""FIG2 bench — cluster CPU boxplots per window (paper Fig. 2).

Checks the paper's claims: the cluster-average CPU has mild periodicity,
the upper quartile is mostly below 0.6 (60 %), and low usage persists.
"""

from repro.analysis.reporting import format_table
from repro.experiments.characterization import run_fig2

from .conftest import run_once


def test_fig2_cpu_boxplot(benchmark, profile):
    res = run_once(benchmark, run_fig2, profile)

    rows = [
        [i, s.minimum, s.q1, s.median, s.q3, s.maximum, s.mean]
        for i, s in enumerate(res.stats)
    ]
    print("\n" + format_table(
        ["win", "min", "q1", "median", "q3", "max", "mean"],
        rows,
        title=f"Fig. 2 — cluster-average CPU per window of {res.window} samples (%)",
    ))
    print("cluster summary:", {k: round(v, 3) for k, v in res.summary.items()})

    # the paper: "the upper quartile of the boxplot at each sampling point
    # is mostly less than 0.6" (60 %)
    q3_below_60 = sum(s.q3 < 60.0 for s in res.stats) / len(res.stats)
    assert q3_below_60 >= 0.7

    # "75% of the time the average CPU usage of the cluster is less than 0.6"
    assert res.summary["cluster_avg_below_60_frac"] >= 0.7

    # low usage is the *persistent* state: windowed means stay in a band
    means = res.mean_line
    assert means.max() < 70.0
    assert means.min() > 10.0
