"""Micro-benchmarks of the substrate kernels.

Not a paper artifact — these time the hot paths (dilated conv forward +
backward, LSTM step, GBT tree growth, ARIMA fit) so performance
regressions in the from-scratch framework are caught by CI history.

``test_perf_smoke_kernel_snapshot`` (marker ``perf_smoke``) additionally
writes an ops/sec snapshot to ``BENCH_kernels.json`` at the repo root, so
successive PRs accumulate a kernel-throughput trajectory:

    python -m pytest benchmarks -m perf_smoke -q
"""

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.models.arima import ARIMA
from repro.models.gbt import GradientBoostedTrees
from repro.nn import functional as F
from repro.nn.layers import LSTM
from repro.nn.tensor import Tensor


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def test_bench_conv1d_forward(benchmark, rng):
    x = Tensor(rng.random((32, 16, 64)))
    w = Tensor(rng.random((16, 16, 3)))

    out = benchmark(lambda: F.conv1d(x, w, padding=(4, 0), dilation=2))
    assert out.shape == (32, 16, 64)


def test_bench_conv1d_backward(benchmark, rng):
    def step():
        x = Tensor(rng.random((16, 8, 64)), requires_grad=True)
        w = Tensor(rng.random((8, 8, 3)), requires_grad=True)
        out = F.conv1d(x, w, padding=(4, 0), dilation=2)
        (out * out).sum().backward()
        return x.grad

    grad = benchmark(step)
    assert grad is not None


def test_bench_lstm_forward(benchmark, rng):
    layer = LSTM(8, 32, rng=rng)
    layer.eval()
    x = Tensor(rng.random((32, 12, 8)))

    from repro.nn.tensor import no_grad

    def fwd():
        with no_grad():
            return layer(x)

    out = benchmark(fwd)
    assert out.shape == (32, 12, 32)


def test_bench_gbt_fit(benchmark, rng):
    x = rng.random((500, 24))
    y = x[:, 0] * 2 + np.sin(x[:, 1] * 6)

    def fit():
        return GradientBoostedTrees(n_estimators=20, max_depth=4).fit(x, y)

    model = benchmark(fit)
    assert len(model.trees) == 20


def test_bench_arima_fit(benchmark, rng):
    from scipy.signal import lfilter

    e = rng.normal(0, 0.1, 1500)
    series = lfilter([1.0], [1.0, -0.7], e)

    model = benchmark(lambda: ARIMA(2, 0, 1).fit(series))
    assert model.fitted


def test_bench_trace_generation(benchmark):
    from repro.traces.generator import ClusterTraceGenerator, TraceConfig

    cfg = TraceConfig(n_machines=8, containers_per_machine=3, n_steps=2000, seed=1)

    trace = benchmark(lambda: ClusterTraceGenerator(cfg).generate())
    assert trace.n_containers == 24


def _ops_per_sec(fn, min_time: float = 0.25) -> float:
    """Calls/second of ``fn``, measured over at least ``min_time`` seconds."""
    fn()  # warm-up (fills the plan caches, which is the steady state)
    calls = 0
    t0 = time.perf_counter()
    while (elapsed := time.perf_counter() - t0) < min_time:
        fn()
        calls += 1
    return calls / elapsed


@pytest.mark.perf_smoke
def test_perf_smoke_kernel_snapshot(rng):
    """Quick ops/sec snapshot of the substrate hot paths -> BENCH_kernels.json.

    Shapes match the micro-benchmarks above so the snapshot numbers are
    comparable with pytest-benchmark history. Entries are keyed by the
    ``RPTCN_BENCH_LABEL`` env var (default ``working-tree``) so each PR can
    record its own row next to its predecessors.
    """
    from repro.nn.tensor import no_grad
    from repro.streaming import OnlinePredictor, PageHinkley
    from repro.traces import ClusterTraceGenerator, TraceConfig

    x = Tensor(rng.random((32, 16, 64)))
    w = Tensor(rng.random((16, 16, 3)))
    conv_fwd = _ops_per_sec(lambda: F.conv1d(x, w, padding=(4, 0), dilation=2))

    def conv_step():
        xg = Tensor(rng.random((16, 8, 64)), requires_grad=True)
        wg = Tensor(rng.random((8, 8, 3)), requires_grad=True)
        out = F.conv1d(xg, wg, padding=(4, 0), dilation=2)
        (out * out).sum().backward()

    conv_bwd = _ops_per_sec(conv_step)

    layer = LSTM(8, 32, rng=rng)
    layer.eval()
    xl = Tensor(rng.random((32, 12, 8)))

    def lstm_fwd():
        with no_grad():
            layer(xl)

    lstm_fwd_ops = _ops_per_sec(lstm_fwd)

    gen = ClusterTraceGenerator(TraceConfig(n_steps=400, seed=0))
    entity = gen.generate_entity("mutation", entity_id="c_smoke", low=0.3, high=0.7)
    stream = entity.cpu / 100.0
    predictor = OnlinePredictor(
        "holt",
        window=12,
        buffer_capacity=200,
        refit_interval=100,
        min_fit_size=60,
        detector=PageHinkley(threshold=0.25, min_instances=30),
    )
    t0 = time.perf_counter()
    predictor.run(stream)
    serving_throughput = len(stream) / (time.perf_counter() - t0)

    snapshot = {
        "shapes": {
            "conv1d_forward": "x(32,16,64) w(16,16,3) pad=(4,0) dil=2",
            "conv1d_backward": "x(16,8,64) w(8,8,3) pad=(4,0) dil=2 (incl. fwd+loss)",
            "lstm_forward": "LSTM(8->32) x(32,12,8) no_grad",
            "online_serving": "holt predictor, 400-step mutation stream",
        },
        "ops_per_sec": {
            "conv1d_forward": round(conv_fwd, 1),
            "conv1d_backward": round(conv_bwd, 1),
            "lstm_forward": round(lstm_fwd_ops, 1),
            "online_serving_records_per_sec": round(serving_throughput, 1),
        },
    }

    path = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"
    data = {"schema": "bench-kernels/v1", "entries": {}}
    if path.exists():
        data = json.loads(path.read_text())
    label = os.environ.get("RPTCN_BENCH_LABEL", "working-tree")
    data["entries"][label] = snapshot
    path.write_text(json.dumps(data, indent=2) + "\n")

    assert conv_fwd > 0 and conv_bwd > 0 and lstm_fwd_ops > 0
    assert serving_throughput > 100.0


def test_bench_pipeline_prepare(benchmark):
    from repro.data.pipeline import PipelineConfig, PredictionPipeline
    from repro.traces.generator import ClusterTraceGenerator, TraceConfig

    entity = ClusterTraceGenerator(
        TraceConfig(n_machines=1, containers_per_machine=1, n_steps=3000, seed=2)
    ).generate().containers[0]
    pipe = PredictionPipeline(PipelineConfig(scenario="mul_exp"))

    res = benchmark(lambda: pipe.prepare(entity))
    assert len(res.feature_names) == 12
