"""Micro-benchmarks of the substrate kernels.

Not a paper artifact — these time the hot paths (dilated conv forward +
backward, LSTM step, GBT tree growth, ARIMA fit) so performance
regressions in the from-scratch framework are caught by CI history.
"""

import numpy as np
import pytest

from repro.models.arima import ARIMA
from repro.models.gbt import GradientBoostedTrees
from repro.nn import functional as F
from repro.nn.layers import LSTM
from repro.nn.tensor import Tensor


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def test_bench_conv1d_forward(benchmark, rng):
    x = Tensor(rng.random((32, 16, 64)))
    w = Tensor(rng.random((16, 16, 3)))

    out = benchmark(lambda: F.conv1d(x, w, padding=(4, 0), dilation=2))
    assert out.shape == (32, 16, 64)


def test_bench_conv1d_backward(benchmark, rng):
    def step():
        x = Tensor(rng.random((16, 8, 64)), requires_grad=True)
        w = Tensor(rng.random((8, 8, 3)), requires_grad=True)
        out = F.conv1d(x, w, padding=(4, 0), dilation=2)
        (out * out).sum().backward()
        return x.grad

    grad = benchmark(step)
    assert grad is not None


def test_bench_lstm_forward(benchmark, rng):
    layer = LSTM(8, 32, rng=rng)
    layer.eval()
    x = Tensor(rng.random((32, 12, 8)))

    from repro.nn.tensor import no_grad

    def fwd():
        with no_grad():
            return layer(x)

    out = benchmark(fwd)
    assert out.shape == (32, 12, 32)


def test_bench_gbt_fit(benchmark, rng):
    x = rng.random((500, 24))
    y = x[:, 0] * 2 + np.sin(x[:, 1] * 6)

    def fit():
        return GradientBoostedTrees(n_estimators=20, max_depth=4).fit(x, y)

    model = benchmark(fit)
    assert len(model.trees) == 20


def test_bench_arima_fit(benchmark, rng):
    from scipy.signal import lfilter

    e = rng.normal(0, 0.1, 1500)
    series = lfilter([1.0], [1.0, -0.7], e)

    model = benchmark(lambda: ARIMA(2, 0, 1).fit(series))
    assert model.fitted


def test_bench_trace_generation(benchmark):
    from repro.traces.generator import ClusterTraceGenerator, TraceConfig

    cfg = TraceConfig(n_machines=8, containers_per_machine=3, n_steps=2000, seed=1)

    trace = benchmark(lambda: ClusterTraceGenerator(cfg).generate())
    assert trace.n_containers == 24


def test_bench_pipeline_prepare(benchmark):
    from repro.data.pipeline import PipelineConfig, PredictionPipeline
    from repro.traces.generator import ClusterTraceGenerator, TraceConfig

    entity = ClusterTraceGenerator(
        TraceConfig(n_machines=1, containers_per_machine=1, n_steps=3000, seed=2)
    ).generate().containers[0]
    pipe = PredictionPipeline(PipelineConfig(scenario="mul_exp"))

    res = benchmark(lambda: pipe.prepare(entity))
    assert len(res.feature_names) == 12
