"""Allocation-cost bench (the application §I-II motivates).

Turns Table II's accuracy numbers into operational consequences: replays
allocation policies over a high-dynamic container's test split and checks
the expected ordering — static wastes most, reactive violates most around
regime switches, the RPTCN-driven policy sits between reactive and the
oracle on combined cost.
"""

from repro.allocation import (
    OracleAllocator,
    PredictiveAllocator,
    QuantileAllocator,
    ReactiveAllocator,
    StaticAllocator,
    simulate_allocation,
)
from repro.analysis.reporting import format_table
from repro.data import PipelineConfig, PredictionPipeline
from repro.models import QuantileGBTForecaster, create_forecaster
from repro.traces import ClusterTraceGenerator, TraceConfig

from .conftest import run_once


def _run(profile):
    entity = ClusterTraceGenerator(
        TraceConfig(
            n_machines=1,
            containers_per_machine=1,
            n_steps=profile.n_steps,
            seed=profile.seed,
            container_mix={"regime_switching": 1.0},
        )
    ).generate().containers[0]

    pipe = PredictionPipeline(PipelineConfig(scenario="mul_exp", window=profile.window))
    prepared = pipe.prepare(entity)
    xt, yt = prepared.dataset.train
    xv, yv = prepared.dataset.val
    xe, ye = prepared.dataset.test

    forecaster = create_forecaster(
        "rptcn",
        target_col=prepared.target_col,
        epochs=profile.epochs,
        seed=profile.seed,
    )
    forecaster.fit(xt, yt, xv, yv)

    quantile_forecaster = QuantileGBTForecaster(
        taus=(0.5, 0.95),
        target_col=prepared.target_col,
        n_estimators=100,
        max_depth=2,
        min_child_weight=30,
    )
    quantile_forecaster.fit(xt, yt)

    headroom = 0.08
    reports = {}
    for policy in (
        StaticAllocator(level=0.95),
        ReactiveAllocator(headroom=headroom, target_col=prepared.target_col),
        PredictiveAllocator(forecaster, headroom=headroom),
        QuantileAllocator(quantile_forecaster, tau=0.95),
        OracleAllocator(headroom=headroom),
    ):
        reports[policy.name] = simulate_allocation(policy, xe, ye[:, 0])
    return reports


def test_allocation_cost(benchmark, profile):
    reports = run_once(benchmark, _run, profile)

    rows = [
        [r.policy, r.mean_reservation, r.mean_overprovision,
         r.violation_rate * 100, r.cost()]
        for r in reports.values()
    ]
    print("\n" + format_table(
        ["policy", "avg reserved", "waste", "violations %", "cost(10x)"], rows,
        title="Allocation replay on a regime-switching container",
    ))

    static = reports["static"]
    oracle = reports["oracle"]
    predictive = next(v for k, v in reports.items() if k.startswith("predictive"))

    # peak provisioning wastes the most capacity
    assert static.mean_overprovision > predictive.mean_overprovision
    assert static.mean_overprovision > oracle.mean_overprovision

    # the oracle never violates with positive headroom
    assert oracle.violation_rate == 0.0

    # prediction keeps reservations near the oracle's bill, far below static
    assert predictive.mean_reservation < 0.8 * static.mean_reservation
    assert predictive.mean_reservation < 2.0 * oracle.mean_reservation
