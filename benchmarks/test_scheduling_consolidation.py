"""Prediction-aware scheduling bench (the paper's §II motivation).

Packs a batch of jobs under three policies and checks the consolidation
story the paper tells: request-based reservation leaves the 40-60 %
utilization gap of Fig. 2; usage-predicted packing reclaims it, at a
bounded overload risk; the oracle bounds what any predictor can achieve.
"""

from repro.analysis.reporting import format_table
from repro.scheduling import (
    JobGenerator,
    OraclePackingScheduler,
    PredictivePackingScheduler,
    RequestPackingScheduler,
    simulate_schedule,
)

from .conftest import run_once


def _run(profile):
    jobs = JobGenerator(
        duration=min(profile.n_steps, 600),
        seed=profile.seed,
        usage_scale=(0.1, 0.4),
    ).generate(60)
    reports = {}
    for sched in (
        RequestPackingScheduler(),
        PredictivePackingScheduler(probe_len=60, margin=0.08),
        OraclePackingScheduler(margin=0.08),
    ):
        reports[sched.name] = simulate_schedule(sched, jobs)
    return reports


def test_scheduling_consolidation(benchmark, profile):
    reports = run_once(benchmark, _run, profile)

    rows = [
        [r.policy, r.n_machines, f"{r.efficiency():.2f}",
         f"{r.mean_utilization * 100:.1f}%", f"{r.overload_rate * 100:.2f}%",
         f"{r.peak_load:.2f}"]
        for r in reports.values()
    ]
    print("\n" + format_table(
        ["policy", "machines", "jobs/machine", "mean util", "overload", "peak load"],
        rows,
        title="Packing 60 jobs under three footprint policies",
    ))

    request = reports["request"]
    predictive = reports["predictive"]
    oracle = reports["oracle"]

    # reservation never overloads but strands capacity
    assert request.overload_rate == 0.0

    # prediction consolidates: fewer machines, higher utilization
    assert predictive.n_machines < request.n_machines
    assert predictive.mean_utilization > request.mean_utilization

    # at a bounded risk
    assert predictive.overload_rate < 0.15

    # the oracle packs by true lifetime peaks: it consolidates relative to
    # requests while provably never overloading (sum of peaks bounds the
    # peak of sums). The probe-based predictor may pack even tighter — it
    # under-sees future peaks — which is exactly where its risk comes from.
    assert oracle.n_machines <= request.n_machines
    assert oracle.overload_rate == 0.0

    # the paper's Fig. 2 gap: request-based utilization sits low
    assert request.mean_utilization < 0.6
