"""Closed-loop autoscaling snapshot (marker ``perf_smoke``) -> ``BENCH_cluster.json``.

Runs the full :func:`~repro.experiments.autoscale.run_autoscale` policy
grid — every autoscaling policy over the same job schedule(s) — times
the whole closed loop, and records per-policy outcomes plus wall-clock
into a ``cluster_loop`` entry. The headline acceptance gate rides along
unconditionally: the calibrated predictive (quantile) policy must beat
the reactive baseline on SLA-violation rate at equal-or-lower
machine-ticks per completed job, and the oracle must dominate both.

Wall-clock figures are machine-dependent; ``check_regression.py``
compares them only across entries with matching ``cpu_affinity``
(the ``machine_info()`` block embedded in every entry).

    python -m pytest benchmarks/test_autoscale_loop.py -q
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.autoscale import run_autoscale

from ._machine import machine_info

#: policy whose victory over ``BASELINE`` the gate asserts
CHALLENGER = "quantile"
BASELINE = "reactive"


@pytest.mark.perf_smoke
def test_perf_smoke_autoscale_loop(profile):
    """Quantile beats reactive on SLA at equal-or-lower cost; oracle dominates."""
    t0 = time.perf_counter()
    res = run_autoscale(profile)
    wall = time.perf_counter() - t0

    agg = {name: res.aggregated(name) for name in res.reports}
    snapshot = {
        "profile": res.profile,
        "n_machines": res.n_machines,
        "n_jobs": res.n_jobs,
        "ticks": res.ticks,
        "seeds": list(res.seeds),
        "wall_seconds": round(wall, 4),
        "gate_pass": res.gate_pass,
        "policies": {
            name: {
                "sla_violation_rate": round(r.sla_violation_rate, 6),
                "overload_rate": round(r.overload_rate, 6),
                "mean_utilization": round(r.mean_utilization, 4),
                "waste_frac": round(r.waste_frac, 4),
                "stranded_frac": round(r.stranded_frac, 4),
                "cost_per_job": round(r.cost_per_job(), 3),
                "migrations": r.migrations,
                "forecast_coverage": round(r.forecast_coverage, 3),
            }
            for name, r in agg.items()
        },
    }

    path = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"
    data = {"schema": "bench-cluster/v1", "entries": {}}
    if path.exists():
        data = json.loads(path.read_text())
    label = os.environ.get("RPTCN_BENCH_LABEL", "working-tree")
    entry = data["entries"].setdefault(label, {})
    entry.update(machine_info())
    entry["cluster_loop"] = snapshot
    path.write_text(json.dumps(data, indent=2) + "\n")

    print()
    print(res.table())

    reactive, quantile = agg[BASELINE], agg[CHALLENGER]
    oracle = agg["oracle"]
    assert quantile.sla_violation_rate < reactive.sla_violation_rate, (
        f"{CHALLENGER} SLA-violation rate {quantile.sla_violation_rate:.4%} is not "
        f"below {BASELINE}'s {reactive.sla_violation_rate:.4%}"
    )
    assert quantile.cost_per_job() <= reactive.cost_per_job(), (
        f"{CHALLENGER} cost/job {quantile.cost_per_job():.2f} exceeds "
        f"{BASELINE}'s {reactive.cost_per_job():.2f}"
    )
    assert oracle.sla_violation_rate <= quantile.sla_violation_rate, (
        f"oracle SLA {oracle.sla_violation_rate:.4%} worse than "
        f"{CHALLENGER}'s {quantile.sla_violation_rate:.4%} — truth should dominate"
    )
    assert res.gate_pass
