"""FIG3 bench — % of machines under 50 % CPU (paper Fig. 3).

Paper claim: "the majority of machines in the cluster are less than 50%
CPU usage in most time periods. In addition, more than 80% of the
machines maintain CPU usage below 50%."
"""

from repro.analysis.reporting import render_ascii_series
from repro.experiments.characterization import run_fig3

from .conftest import run_once


def test_fig3_machines_below_50(benchmark, profile):
    res = run_once(benchmark, run_fig3, profile)

    print("\nFig. 3 — fraction of machines below 50% CPU per window")
    print(render_ascii_series(res.fractions, label="frac<50%"))
    print(f"overall fraction of (machine, time) samples below 50%: "
          f"{res.overall_fraction:.3f}")

    # majority of machines under the threshold in most windows
    assert (res.fractions > 0.5).mean() >= 0.6
    # and the pooled fraction matches the paper's "majority" claim
    assert res.overall_fraction > 0.5
