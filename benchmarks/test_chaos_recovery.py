"""Chaos soak smoke (marker ``perf_smoke``) -> ``BENCH_serving.json``.

Runs the chaos experiment once: SIGKILL one shard of a two-shard fleet
mid-run and check that the supervisor keeps the acceptance promises —
degraded-mode rows are *held* (never NaN) while the breaker is closed,
the killed shard is respawned and restored from its background
checkpoint inside the run, the survivors stay bit-identical to a clean
run, and the no-recovery baseline both loses availability and trips the
crash-loop breaker into quarantine.

Wall-clock recovery time depends on process-spawn latency, so the
gated claims are all in *ticks* and row counts; the recorded seconds
are informational (``check_regression.py`` only gates ``seconds`` /
``per_sec`` keys, and the recovery time key deliberately avoids both).

    python -m pytest benchmarks/test_chaos_recovery.py -q
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.chaos import run_chaos

from ._machine import machine_info

#: the fleet must be whole again within this many ticks of the kill
MAX_RECOVERY_TICKS = 400
#: finite rows served post-kill, as a fraction of the clean run
MIN_SUPERVISED_AVAILABILITY = 0.99
#: an unsupervised kill must visibly cost availability (half the fleet dies)
MAX_UNSUPERVISED_AVAILABILITY = 0.9


@pytest.mark.perf_smoke
def test_perf_smoke_chaos_recovery(profile):
    """Supervised kill: full availability + bounded recovery; terminal otherwise."""
    res = run_chaos(
        profile,
        n_streams=64,
        shards=2,
        ticks=160,
        kill_tick=40,
        checkpoint_interval=8,
        tick_interval=0.08,
    )
    sup, unsup = res.supervised, res.unsupervised

    block = {
        "n_streams": res.n_streams,
        "shards": res.shards,
        "ticks": res.ticks,
        "kill_tick": res.kill_tick,
        "checkpoint_interval": res.checkpoint_interval,
        "survivors_bit_identical": res.survivors_bit_identical,
        "clean_outage_mae": round(res.clean_outage_mae, 6),
        "supervised": {
            "availability": round(sup.availability, 4),
            "nan_victim_rows": sup.nan_victim_rows,
            "recovery_ticks": sup.recovery_ticks,
            "time_to_recovery_s": (
                None if sup.time_to_recovery_s is None
                else round(sup.time_to_recovery_s, 3)
            ),
            "outage_mae": round(sup.outage_mae, 6),
            "respawns": sup.respawns,
        },
        "unsupervised": {
            "availability": round(unsup.availability, 4),
            "nan_victim_rows": unsup.nan_victim_rows,
            "quarantined": unsup.quarantined,
        },
    }

    path = Path(__file__).resolve().parent.parent / "BENCH_serving.json"
    data = {"schema": "bench-serving/v1", "entries": {}}
    if path.exists():
        data = json.loads(path.read_text())
    label = os.environ.get("RPTCN_BENCH_LABEL", "working-tree")
    entry = data["entries"].setdefault(label, {})
    entry.update(machine_info())
    entry["chaos_recovery"] = block
    path.write_text(json.dumps(data, indent=2) + "\n")

    assert res.survivors_bit_identical, (
        "surviving shard diverged from the clean run under chaos"
    )
    assert sup.nan_victim_rows == 0, (
        f"{sup.nan_victim_rows} victim rows went NaN under supervision — "
        "degraded mode must hold the last prediction, not drop rows"
    )
    assert sup.respawns >= 1 and not sup.quarantined, (
        f"supervisor should respawn (respawns={sup.respawns}) without "
        f"quarantining (quarantined={sup.quarantined})"
    )
    assert sup.recovery_ticks is not None and sup.recovery_ticks <= MAX_RECOVERY_TICKS, (
        f"shard not recovered within {MAX_RECOVERY_TICKS} ticks "
        f"(recovery_ticks={sup.recovery_ticks})"
    )
    assert sup.availability >= MIN_SUPERVISED_AVAILABILITY, (
        f"supervised availability {sup.availability:.3f} < "
        f"{MIN_SUPERVISED_AVAILABILITY}"
    )
    assert unsup.availability <= MAX_UNSUPERVISED_AVAILABILITY, (
        f"unsupervised availability {unsup.availability:.3f} suspiciously high — "
        "the kill should take out half the fleet for good"
    )
    assert unsup.quarantined == [0], (
        f"respawn=None failure must durably quarantine shard 0, got "
        f"{unsup.quarantined}"
    )
