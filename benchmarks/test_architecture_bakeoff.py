"""Architecture bake-off: every forecaster family on identical windows.

Beyond the paper's four baselines, the library implements the wider model
zoo of its related-work section (GRU, BiLSTM, MLP, Holt, seq2seq) and the
post-paper question (a causal Transformer). This bench runs all of them
once on the same Mul-Exp container pipeline — a regression canary for the
whole model registry, and a data point on inductive-bias-vs-scale.
"""

import time

from repro.analysis.reporting import format_table
from repro.data.pipeline import PipelineConfig, PredictionPipeline
from repro.traces.generator import ClusterTraceGenerator, TraceConfig

from .conftest import run_once

MODELS = {
    "persistence": {},
    "holt": {},
    "arima": {"order": (2, 1, 1)},
    "xgboost": {"n_estimators": 80},
    "mlp": {"epochs": 20, "seed": 0},
    "lstm": {"epochs": 20, "seed": 0},
    "gru": {"epochs": 20, "seed": 0},
    "bilstm": {"epochs": 20, "seed": 0},
    "cnn_lstm": {"epochs": 20, "seed": 0},
    "seq2seq": {"epochs": 20, "seed": 0},
    "tcn": {"epochs": 20, "seed": 0},
    "rptcn": {"epochs": 20, "seed": 0},
    "transformer": {"epochs": 20, "seed": 0, "dim": 16, "n_heads": 2, "n_blocks": 1},
    # the related-work composite classes (§VI-C and ref [37])
    "ensemble": {
        "members": [("xgboost", {"n_estimators": 40}), ("lstm", {"epochs": 15, "seed": 0})],
        "weighting": "inverse_mse",
    },
    "hybrid_arima_nn": {
        "order": (2, 1, 1),
        "nn_name": "mlp",
        "nn_kwargs": {"hidden": (32,), "epochs": 15, "seed": 0},
    },
    "clustered": {"k": 3, "member": "xgboost", "member_kwargs": {"n_estimators": 40}},
}


def _run(profile):
    entity = ClusterTraceGenerator(
        TraceConfig(n_machines=1, containers_per_machine=1,
                    n_steps=profile.n_steps, seed=profile.seed)
    ).generate().containers[0]
    pipe = PredictionPipeline(PipelineConfig(scenario="mul_exp", window=profile.window))
    prepared = pipe.prepare(entity)

    out = {}
    for name, kwargs in MODELS.items():
        t0 = time.perf_counter()
        run = pipe.run(entity, name, dict(kwargs), prepared=prepared)
        out[name] = {**run.metrics, "seconds": time.perf_counter() - t0}
    return out


def test_architecture_bakeoff(benchmark, profile):
    results = run_once(benchmark, _run, profile)

    rows = sorted(
        ([m, v["mse"] * 100, v["mae"] * 100, f"{v['seconds']:.1f}s"]
         for m, v in results.items()),
        key=lambda r: r[1],
    )
    print("\n" + format_table(
        ["model", "MSE(e-2)", "MAE(e-2)", "fit+eval"], rows,
        title=f"All {len(MODELS)} forecaster families, identical Mul-Exp windows",
    ))

    # every registered family must train and stay on the normalized scale
    for name, vals in results.items():
        assert 0.0 < vals["mse"] < 0.2, f"{name} diverged: {vals}"

    # the naive floor is not embarrassingly far below the learned models:
    # at least one learned model lands within 2x of persistence
    learned = {m: v["mse"] for m, v in results.items() if m != "persistence"}
    assert min(learned.values()) < 2.0 * results["persistence"]["mse"]
