"""Async refit stall gate (marker ``perf_smoke``) -> ``BENCH_serving.json``.

The p99 tail gate for ROADMAP item 3: moving pooled refits off the
serving path must make the ticks *around refit activity* strictly
cheaper than the sync baseline — at equal-or-better prequential MAE.
Under the paced schedule (fits complete within the production tick gap)
plain async is prediction-bit-identical to sync, so the accuracy half
of the gate is exact rather than statistical; the latency half holds
because a submission + an atomic swap cost microseconds while the
in-line fit costs the full training run.

Writes an ``async_refit`` block into the shared BENCH_serving.json
entry (keyed by ``RPTCN_BENCH_LABEL``), which the accuracy-aware
``check_regression.py`` also diffs across runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.refit_stall import run_refit_stall

from ._machine import machine_info
from .conftest import run_once


@pytest.mark.perf_smoke
def test_perf_smoke_async_refit(benchmark, profile):
    """Async p99 around refit ticks < sync p99; paced async MAE == sync MAE."""
    res = run_once(benchmark, run_refit_stall, profile.name)

    snapshot = {
        "async_refit": {
            **machine_info(),
            "n_streams": res.n_streams,
            "ticks": res.ticks,
            "refit_interval": res.refit_interval,
            "model": res.model,
            "gate_latency": res.gate_latency,
            "gate_accuracy": res.gate_accuracy,
            "modes": {
                m.label: {
                    "p50_ms": round(m.p50_ms, 4),
                    "p99_ms": round(m.p99_ms, 4),
                    "refit_p99_ms": round(m.refit_p99_ms, 4),
                    "max_ms": round(m.max_ms, 4),
                    "mae": round(m.mae, 6),
                    "n_refits": m.n_refits,
                    "n_deferred": m.n_deferred,
                    "model_version": m.model_version,
                }
                for m in res.modes
            },
        }
    }

    path = Path(__file__).resolve().parent.parent / "BENCH_serving.json"
    data = {"schema": "bench-serving/v1", "entries": {}}
    if path.exists():
        data = json.loads(path.read_text())
    label = os.environ.get("RPTCN_BENCH_LABEL", "working-tree")
    # merge, don't replace: the fleet/shard/chaos smokes share this entry
    data["entries"].setdefault(label, {}).update(snapshot)
    path.write_text(json.dumps(data, indent=2) + "\n")

    sync = res.mode("sync")
    asyn = res.mode("async")
    assert res.gate_latency, (
        f"async refit ticks did not beat sync: async p99@refit "
        f"{asyn.refit_p99_ms:.2f} ms vs sync {sync.refit_p99_ms:.2f} ms"
    )
    assert res.gate_accuracy, (
        f"paced async MAE regressed: {asyn.mae:.6f} vs sync {sync.mae:.6f} "
        "(paced async must be prediction-bit-identical to sync)"
    )
    # every async mode also must hold the stall win, not just plain async
    for label_ in ("async+warm", "async+pruned"):
        m = res.mode(label_)
        assert m.refit_p99_ms < sync.refit_p99_ms, (
            f"{label_} p99@refit {m.refit_p99_ms:.2f} ms did not beat sync "
            f"{sync.refit_p99_ms:.2f} ms"
        )
