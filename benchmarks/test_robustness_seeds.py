"""Seed-robustness bench: do the Table II shape claims survive reseeding?

Repeats the machines / Mul-Exp cell (the paper's headline win) across
substrate seeds and asserts the *statistical* form of the claim: RPTCN's
mean rank beats the LSTM-family baseline's, rather than any single-seed
ordering.
"""

from repro.analysis.reporting import format_table
from repro.experiments.robustness import run_robustness

from .conftest import run_once


def test_seed_robustness(benchmark, profile):
    res = run_once(
        benchmark,
        run_robustness,
        profile,
        scenario="mul_exp",
        level="machines",
        models=("lstm", "xgboost", "rptcn"),
        seeds=(1, 2, 3),
    )

    summary = res.summary("mse")
    ranks = res.mean_rank("mse")
    wins = res.win_counts("mse")
    rows = [
        [m, f"{mu * 100:.4f} ± {sd * 100:.4f}", f"{ranks[m]:.2f}", wins[m]]
        for m, (mu, sd) in summary.items()
    ]
    print("\n" + format_table(
        ["model", "MSE(e-2) mean±std", "mean rank", "wins"], rows,
        title=f"machines / mul_exp across seeds {res.seeds}",
    ))

    # statistical form of the paper's machines/Mul-Exp claim
    assert ranks["rptcn"] <= ranks["lstm"], (
        f"RPTCN mean rank {ranks['rptcn']:.2f} should beat LSTM {ranks['lstm']:.2f}"
    )
    # RPTCN wins at least one seed outright
    assert wins["rptcn"] >= 1
    # and no model diverges on any seed
    for values in res.mse.values():
        assert all(v < 0.2 for v in values)
