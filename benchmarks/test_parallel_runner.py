"""Parallel runner + result cache snapshot (marker ``perf_smoke``) -> ``BENCH_parallel.json``.

Times the same small Table II grid four ways — serial, 2-way pool,
cold-cache, warm-cache — and records wall-clock for each. Correctness
rides along: the serial and pooled sweeps must agree bit-for-bit, and
the warm rerun must hit the cache for every cell and land well under the
cold time (cache lookups replace training entirely).

Wall time (not CPU time) is the right metric here: the pool's whole
point is wall-clock, and the cache's whole point is skipping work. The
pool is warmed (workers spawned, imports paid) before the timed region,
so the gate measures steady-state dispatch: on >=2 usable cores the
persistent 2-way pool must beat serial outright. On a single core the
gate is skipped — two workers time-slicing one core cannot win — but
the warm-cache speedup is core-count independent and always asserted.

    python -m pytest benchmarks/test_parallel_runner.py -q
"""

import json
import os
import time
from pathlib import Path

import pytest

from ._machine import machine_info, usable_cores
from repro.experiments.accuracy import run_table2
from repro.experiments.cache import ResultCache
from repro.experiments.config import ExperimentProfile
from repro.experiments.parallel import warm_pool
from repro.obs.registry import MetricRegistry

#: warm-cache rerun must land under this fraction of the cold run
MAX_WARM_FRACTION = 0.5
#: with >=2 usable cores, the warmed persistent pool must beat serial
MAX_POOL_SLOWDOWN = 1.0

#: small grid: 4 models x 2 levels under Mul-Exp = 8 independent cells
BENCH_PROFILE = ExperimentProfile(
    name="bench-parallel",
    n_steps=420,
    n_machines=2,
    containers_per_machine=1,
    n_entities=1,
    epochs=4,
    gbt_estimators=25,
)
SCENARIOS = ("mul_exp",)


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


@pytest.mark.perf_smoke
def test_perf_smoke_parallel_and_cache(tmp_path):
    """Serial == pooled numbers; warm cache hits every cell and is fast."""
    serial, t_serial = _timed(
        lambda: run_table2(BENCH_PROFILE, scenarios=SCENARIOS, jobs=1)
    )
    warm_pool(2)  # pay spawn + import before the timed region
    pooled, t_pooled = _timed(
        lambda: run_table2(BENCH_PROFILE, scenarios=SCENARIOS, jobs=2)
    )
    assert serial.errors == {} and pooled.errors == {}
    assert serial.metrics == pooled.metrics, "jobs changed the numbers"

    cache = ResultCache(tmp_path / "cache", registry=MetricRegistry())
    cold, t_cold = _timed(
        lambda: run_table2(BENCH_PROFILE, scenarios=SCENARIOS, jobs=1, cache=cache)
    )
    warm, t_warm = _timed(
        lambda: run_table2(BENCH_PROFILE, scenarios=SCENARIOS, jobs=1, cache=cache)
    )
    n_cells = len(cold.metrics)
    assert cold.metrics == serial.metrics
    assert warm.metrics == cold.metrics
    assert cache.hits == n_cells, f"warm run hit {cache.hits}/{n_cells} cells"

    snapshot = {
        "grid": f"{n_cells} cells: {SCENARIOS[0]} x 2 levels, "
        f"n_steps={BENCH_PROFILE.n_steps}, epochs={BENCH_PROFILE.epochs}",
        **machine_info(),
        "wall_seconds": {
            "serial": round(t_serial, 3),
            "jobs2": round(t_pooled, 3),
            "cache_cold": round(t_cold, 3),
            "cache_warm": round(t_warm, 3),
        },
        "cache": {"hits": cache.hits, "misses": cache.misses, "stores": cache.stores},
        "max_warm_fraction": MAX_WARM_FRACTION,
    }

    path = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"
    data = {"schema": "bench-parallel/v1", "entries": {}}
    if path.exists():
        data = json.loads(path.read_text())
    label = os.environ.get("RPTCN_BENCH_LABEL", "working-tree")
    data["entries"][label] = snapshot
    path.write_text(json.dumps(data, indent=2) + "\n")

    assert t_warm <= MAX_WARM_FRACTION * t_cold, (
        f"warm cache rerun {t_warm:.2f}s not under "
        f"{MAX_WARM_FRACTION:.0%} of cold {t_cold:.2f}s"
    )
    if usable_cores() >= 2:
        assert t_pooled <= MAX_POOL_SLOWDOWN * t_serial, (
            f"warmed 2-way pool took {t_pooled:.2f}s vs serial {t_serial:.2f}s "
            f"(> {MAX_POOL_SLOWDOWN}x) on a {usable_cores()}-core machine"
        )
