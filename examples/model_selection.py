"""Model selection done right for time series: grid search + rolling CV.

The paper fixes its hyper-parameters; a downstream user has to pick them.
This example shows the library's selection tooling on a real pipeline:
(1) grid-search RPTCN's architecture knobs on the validation split,
(2) confirm the winner with rolling-origin cross-validation (the only
sound CV for time series — no fold ever trains on the future),
(3) compare against a tuned XGBoost under the same protocol.

Run:  python examples/model_selection.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.data import PipelineConfig, PredictionPipeline
from repro.data.crossval import cross_validate
from repro.models import grid_search
from repro.traces import ClusterTraceGenerator, TraceConfig


def main() -> None:
    container = ClusterTraceGenerator(
        TraceConfig(n_machines=1, containers_per_machine=1, n_steps=1200, seed=23)
    ).generate().containers[0]

    pipeline = PredictionPipeline(PipelineConfig(scenario="mul_exp", window=12))
    prepared = pipeline.prepare(container)
    xt, yt = prepared.dataset.train
    xv, yv = prepared.dataset.val

    # 1. grid-search RPTCN's architecture on the validation split
    result = grid_search(
        "rptcn",
        {
            "channels": [(8, 8), (16, 16, 16)],
            "fc_units": [16, 32],
        },
        xt, yt, xv, yv,
        fixed_kwargs={"epochs": 20, "seed": 0, "target_col": prepared.target_col},
    )
    rows = [
        [str(t.params), t.val_mse * 100, t.val_mae * 100, f"{t.fit_seconds:.1f}s"]
        for t in result.ranked()
    ]
    print(format_table(
        ["params", "val MSE(e-2)", "val MAE(e-2)", "fit time"], rows,
        title="RPTCN grid search (validation split)",
    ))
    best = result.best
    print(f"\nselected: {best.params}")

    # 2. confirm with rolling-origin cross-validation on the full window set
    import numpy as np

    x_all = np.concatenate([xt, xv])
    y_all = np.concatenate([yt, yv])
    cv_rptcn = cross_validate(
        "rptcn",
        x_all,
        y_all,
        n_folds=3,
        forecaster_kwargs={
            "epochs": 15, "seed": 0, "target_col": prepared.target_col, **best.params,
        },
    )
    cv_gbt = cross_validate(
        "xgboost",
        x_all,
        y_all,
        n_folds=3,
        forecaster_kwargs={"n_estimators": 100, "target_col": prepared.target_col},
    )
    rows = [
        ["rptcn (tuned)",
         f"{cv_rptcn['mean_mse'] * 100:.4f} ± {cv_rptcn['std_mse'] * 100:.4f}",
         f"{cv_rptcn['mean_mae'] * 100:.4f} ± {cv_rptcn['std_mae'] * 100:.4f}"],
        ["xgboost",
         f"{cv_gbt['mean_mse'] * 100:.4f} ± {cv_gbt['std_mse'] * 100:.4f}",
         f"{cv_gbt['mean_mae'] * 100:.4f} ± {cv_gbt['std_mae'] * 100:.4f}"],
    ]
    print("\n" + format_table(
        ["model", "CV MSE(e-2)", "CV MAE(e-2)"], rows,
        title="Rolling-origin cross-validation (3 forward-chaining folds)",
    ))
    print("\nRolling CV gives a variance estimate a single 6:2:2 split cannot — "
          "the honest way to claim one forecaster beats another.")


if __name__ == "__main__":
    main()
