"""Quickstart: Algorithm 1 end-to-end on one high-dynamic container.

Generates a synthetic Alibaba-v2018-like container log, runs the paper's
full pipeline (clean -> normalize -> PCC screen -> horizontal expansion ->
window -> 6:2:2 split), trains RPTCN, and compares it with two baselines.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table, render_ascii_series
from repro.data import PipelineConfig, PredictionPipeline
from repro.traces import ClusterTraceGenerator, TraceConfig


def main() -> None:
    # 1. a synthetic cluster trace (no network needed — see DESIGN.md)
    generator = ClusterTraceGenerator(
        TraceConfig(n_machines=1, containers_per_machine=1, n_steps=1200, seed=42)
    )
    container = generator.generate().containers[0]
    print(f"container {container.entity_id} ({container.workload} workload), "
          f"{len(container)} samples at 10s")
    print(render_ascii_series(container.cpu, label="cpu %"))

    # 2. the paper's pipeline in its best configuration (Mul-Exp)
    pipeline = PredictionPipeline(
        PipelineConfig(scenario="mul_exp", window=12, horizon=1)
    )
    prepared = pipeline.prepare(container)
    print("\nPCC screening kept:", prepared.selected_indicators)
    print("expanded features :", len(prepared.feature_names))

    # 3. train RPTCN and two baselines on identical windows
    rows = []
    for model, kwargs in [
        ("rptcn", {"epochs": 30, "seed": 0}),
        ("lstm", {"epochs": 30, "seed": 0}),
        ("persistence", {}),
    ]:
        result = pipeline.run(container, model, kwargs, prepared=prepared)
        rows.append([model, result.metrics["mse"] * 100, result.metrics["mae"] * 100])

    print("\n" + format_table(
        ["model", "MSE (x1e-2)", "MAE (x1e-2)"], rows,
        title="Test-split accuracy (normalized units, paper Table II format)",
    ))

    # 4. de-normalize the last predictions back to CPU percent
    result = pipeline.run(container, "rptcn", {"epochs": 30, "seed": 0}, prepared=prepared)
    pred_pct = prepared.denormalize_target(result.predictions[:, 0])
    true_pct = prepared.denormalize_target(result.truths[:, 0])
    print("\npredicted vs true CPU%, last 10 test samples:")
    for p, t in zip(pred_pct[-10:], true_pct[-10:]):
        print(f"  pred {p:6.2f}%   true {t:6.2f}%   err {abs(p - t):5.2f}")

    mean_err = float(np.mean(np.abs(pred_pct - true_pct)))
    print(f"\nmean absolute error on the raw scale: {mean_err:.2f} CPU percentage points")


if __name__ == "__main__":
    main()
