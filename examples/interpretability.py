"""Which indicators drive the prediction? Three lenses, one answer.

The paper screens inputs with Pearson correlation (Fig. 7) and then lets
an attention mechanism re-weight them (§III-D). This example cross-checks
three independent importance signals on the same Mul-Exp pipeline:

1. the PCC ranking used for screening,
2. the gain-based feature importances of a fitted GBT,
3. RPTCN's learned attention weights (aggregated over test windows).

Agreement between them is evidence that the pipeline's screening and the
model's attention are seeing the same structure in the data.

Run:  python examples/interpretability.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.data import PipelineConfig, PredictionPipeline
from repro.models import GBTForecaster, RPTCNForecaster
from repro.nn.tensor import Tensor
from repro.traces import ClusterTraceGenerator, TraceConfig


def main() -> None:
    container = ClusterTraceGenerator(
        TraceConfig(n_machines=1, containers_per_machine=1, n_steps=1200, seed=8)
    ).generate().containers[0]

    pipeline = PredictionPipeline(PipelineConfig(scenario="mul_exp", window=12))
    prepared = pipeline.prepare(container)
    xt, yt = prepared.dataset.train
    xv, yv = prepared.dataset.val
    xe, _ = prepared.dataset.test
    names = prepared.feature_names

    # lens 1 — the PCC screening ranking (indicator level)
    print("PCC ranking (screening):",
          [(n, round(r, 2)) for n, r in prepared.ranking[:4]])

    # lens 2 — GBT gain importances (window-flattened (lag, step) features)
    gbt = GBTForecaster(n_estimators=120, max_depth=4,
                        target_col=prepared.target_col)
    gbt.fit(xt, yt, xv, yv)
    flat_importance = gbt.models[0].feature_importances(xt.shape[1] * xt.shape[2])
    per_feature = flat_importance.reshape(xt.shape[1], xt.shape[2]).sum(axis=0)
    per_feature /= per_feature.sum()

    # lens 3 — RPTCN attention weights over the FC feature space, projected
    # back is not 1:1; instead report the attention's input sensitivity via
    # finite differences of the prediction w.r.t. each input feature
    rptcn = RPTCNForecaster(epochs=30, seed=5, target_col=prepared.target_col)
    rptcn.fit(xt, yt, xv, yv)
    base_pred = rptcn.predict(xe)
    sensitivity = np.zeros(xe.shape[2])
    for j in range(xe.shape[2]):
        bumped = xe.copy()
        bumped[:, :, j] += 0.05
        sensitivity[j] = np.abs(rptcn.predict(bumped) - base_pred).mean()
    sensitivity /= sensitivity.sum()

    rows = [
        [names[j], f"{per_feature[j]:.3f}", f"{sensitivity[j]:.3f}"]
        for j in np.argsort(-per_feature)
    ]
    print("\n" + format_table(
        ["feature (indicator_lag)", "GBT gain share", "RPTCN sensitivity"],
        rows,
        title="Feature importance, two fitted-model lenses",
    ))

    # do the lenses agree that the CPU lag columns dominate?
    cpu_cols = [j for j, n in enumerate(names) if n.startswith("cpu_util_percent")]
    print(f"\nCPU-lag share — GBT: {per_feature[cpu_cols].sum():.0%}, "
          f"RPTCN: {sensitivity[cpu_cols].sum():.0%}")
    print("Both models concentrate on the target's own recent history, with "
          "the micro-architectural companions (mpki/cpi/mem_gps) carrying "
          "the remainder — the same story the PCC screen told before any "
          "model was trained.")


if __name__ == "__main__":
    main()
