"""Real-time prediction serving with drift-triggered refits.

The paper's §V-C: "further apply the model to the real-time resource
usage prediction". This example replays a container stream that mutates
mid-way through an OnlinePredictor: predictions are served one step
ahead (prequential), the Page-Hinkley detector catches the regime change,
and the model refits on the spot.

Run:  python examples/online_serving.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.reporting import format_table, render_ascii_series
from repro.streaming import OnlinePredictor, PageHinkley
from repro.traces import ClusterTraceGenerator, TraceConfig


def main() -> None:
    gen = ClusterTraceGenerator(TraceConfig(n_steps=900, seed=31))
    entity = gen.generate_entity(
        "mutation", entity_id="c_live", low=0.3, high=0.7, jump_at=0.55, noise=0.03,
        preview_rate=0.0,  # the high regime is genuinely unseen until the jump
    )
    stream = entity.cpu / 100.0
    print("incoming stream (CPU fraction), mutation near sample 495:")
    print(render_ascii_series(stream, label="demand"))

    predictor = OnlinePredictor(
        "holt",
        window=12,
        buffer_capacity=400,
        refit_interval=120,
        min_fit_size=60,
        detector=PageHinkley(threshold=0.25, min_instances=30),
    )

    t0 = time.perf_counter()
    results = predictor.run(stream)
    elapsed = time.perf_counter() - t0

    drifts = [r.step for r in results if r.drift]
    refits = [r.step for r in results if r.refit]
    preds = np.array([r.prediction if r.prediction is not None else np.nan
                      for r in results])
    print("\nserved predictions:")
    print(render_ascii_series(preds[~np.isnan(preds)], label="predicted"))

    rows = [
        ["records processed", len(results)],
        ["predictions served", predictor.stats.n_predictions],
        ["online (prequential) MAE", f"{predictor.stats.mae:.4f}"],
        ["refits", predictor.stats.n_refits],
        ["refit steps", str(refits[:8])],
        ["drift events", str(drifts)],
        ["throughput", f"{len(stream) / elapsed:,.0f} records/s"],
    ]
    print("\n" + format_table(["metric", "value"], rows, title="Online serving summary"))
    print("\nNote the drift event right after the mutation: the detector saw "
          "the error stream shift and forced a refit instead of waiting for "
          "the schedule.")


if __name__ == "__main__":
    main()
