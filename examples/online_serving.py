"""Real-time prediction serving with drift refits, faults and restarts.

The paper's §V-C: "further apply the model to the real-time resource
usage prediction". This example replays a container stream that mutates
mid-way through an OnlinePredictor — but through the *hostile* version
of that stream the paper describes in §III-A: records are dropped,
NaN'd, duplicated and spiked by a FaultInjector, and refits randomly
crash. The resilient serving loop quarantines the poison, retries the
refits, and keeps serving; half-way through we checkpoint the predictor,
throw it away, and resume from the artifact as a restarted process
would.

Run:  python examples/online_serving.py
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro.analysis.reporting import format_table, render_ascii_series
from repro.streaming import (
    FaultConfig,
    FaultInjector,
    GatePolicy,
    OnlinePredictor,
    PageHinkley,
    SupervisorPolicy,
)
from repro.traces import ClusterTraceGenerator, TraceConfig


def make_predictor(refit_fault_hook=None) -> OnlinePredictor:
    return OnlinePredictor(
        "holt",
        window=12,
        buffer_capacity=400,
        refit_interval=120,
        min_fit_size=60,
        detector=PageHinkley(threshold=0.25, min_instances=30),
        gate_policy=GatePolicy(outlier_sigma=4.0, outlier_action="quarantine"),
        supervisor_policy=SupervisorPolicy(max_retries=2, backoff_base=0.0),
        refit_fault_hook=refit_fault_hook,
    )


def main() -> None:
    gen = ClusterTraceGenerator(TraceConfig(n_steps=900, seed=31))
    entity = gen.generate_entity(
        "mutation", entity_id="c_live", low=0.3, high=0.7, jump_at=0.55, noise=0.03,
        preview_rate=0.0,  # the high regime is genuinely unseen until the jump
    )
    stream = entity.cpu / 100.0
    print("incoming stream (CPU fraction), mutation near sample 495:")
    print(render_ascii_series(stream, label="demand"))

    # damage the stream the way a real monitoring pipeline would
    injector = FaultInjector(
        FaultConfig(
            drop_rate=0.02, nan_row_rate=0.02, duplicate_rate=0.01,
            outlier_rate=0.02, refit_failure_rate=0.3, seed=7,
        )
    )
    faulted = list(injector.stream(stream[:, None]))
    half = len(faulted) // 2

    predictor = make_predictor(refit_fault_hook=injector.refit_fault)
    t0 = time.perf_counter()
    results = [predictor.process(r) for r in faulted[:half]]

    # --- simulated crash: checkpoint, drop the object, restore -------------
    ckpt = os.path.join(tempfile.gettempdir(), "online_serving.ckpt")
    predictor.save(ckpt)
    del predictor
    restored = OnlinePredictor.restore(ckpt, refit_fault_hook=injector.refit_fault)
    results += [restored.process(r) for r in faulted[half:]]
    elapsed = time.perf_counter() - t0
    os.unlink(ckpt)

    drifts = [r.step for r in results if r.drift]
    preds = np.array([r.prediction if r.prediction is not None else np.nan
                      for r in results])
    print("\nserved predictions (gaps = warmup/quarantine):")
    print(render_ascii_series(preds[~np.isnan(preds)], label="predicted"))

    stats, gate = restored.stats, restored.gate
    rows = [
        ["records emitted (after faults)", len(results)],
        ["predictions served", stats.n_predictions],
        ["online (prequential) MAE", f"{stats.mae:.4f}"],
        ["refits / refit failures", f"{stats.n_refits} / {stats.n_refit_failures}"],
        ["drift events", str(drifts)],
        ["quarantined / imputed records", f"{gate.n_quarantined} / {gate.n_imputed}"],
        ["quarantine reasons", dict(gate.reasons)],
        ["injected faults", injector.counts],
        ["final health", restored.health.value],
        ["throughput", f"{len(results) / elapsed:,.0f} records/s"],
    ]
    print("\n" + format_table(["metric", "value"], rows, title="Resilient serving summary"))
    print("\nThe checkpoint/restore in the middle is invisible in the metrics: "
          "the restored process carries the buffer, model, drift detector and "
          "counters forward bit-for-bit. Note the drift event right after the "
          "mutation, and that every injected fault shows up in a counter "
          "instead of a stack trace.")


if __name__ == "__main__":
    main()
