"""Mutation-point tracking: the paper's Fig. 8 scenario as an application.

A machine's CPU utilization jumps abruptly and stays high (a tenant
migration, a flash crowd). Reactive allocators thrash; a good predictor
sees the new level within a step or two. This example races RPTCN
against the baselines across the jump and reports pre/post-jump error.

Run:  python examples/mutation_tracking.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table, render_ascii_series
from repro.data import PipelineConfig, PredictionPipeline
from repro.traces import ClusterTraceGenerator, TraceConfig


def main() -> None:
    generator = ClusterTraceGenerator(TraceConfig(n_steps=1200, seed=7))
    machine = generator.generate_entity(
        "mutation", entity_id="m_demo", kind="machine",
        low=0.25, high=0.75, jump_at=0.85,  # jump lands inside the test split
    )
    print(f"machine {machine.entity_id}: sustained CPU jump at 85% of the trace")
    print(render_ascii_series(machine.cpu, label="cpu %"))

    pipeline = PredictionPipeline(PipelineConfig(scenario="mul_exp", window=12))
    prepared = pipeline.prepare(machine)
    _, truth = prepared.dataset.test
    truth = truth[:, 0]

    import numpy as np

    jump = int(np.argmax(np.abs(np.diff(truth))))
    print(f"\njump at test index {jump} of {len(truth)}")
    print(render_ascii_series(truth, label="truth"))

    rows = []
    for model, kwargs in [
        ("rptcn", {"epochs": 30, "seed": 1}),
        ("lstm", {"epochs": 30, "seed": 1}),
        ("cnn_lstm", {"epochs": 30, "seed": 1}),
        ("xgboost", {"n_estimators": 120}),
        ("persistence", {}),
    ]:
        result = pipeline.run(machine, model, kwargs, prepared=prepared)
        pred = result.predictions[:, 0]
        print(render_ascii_series(pred, label=model))
        pre = float(np.mean(np.abs(pred[:jump] - truth[:jump])))
        post = float(np.mean(np.abs(pred[jump + 1 :] - truth[jump + 1 :])))
        rows.append([model, pre, post, result.metrics["mae"]])

    print("\n" + format_table(
        ["model", "pre-jump MAE", "post-jump MAE", "overall MAE"], rows,
        title="Tracking a sustained mutation (normalized units)",
    ))
    print(
        "\nWhat to look for (paper Fig. 8): the deep models predict the rise "
        "and settle near the new level; the tree ensemble, which cannot "
        "extrapolate beyond its training range, saturates well below it. "
        "One-step persistence is trivially strong after a *sustained* jump — "
        "the reason the paper evaluates dynamics with learned models and "
        "multi-step behaviour rather than pure one-step error."
    )


if __name__ == "__main__":
    main()
