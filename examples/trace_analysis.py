"""Cluster characterization: the paper's §II analysis on a synthetic cluster.

Reproduces the motivation figures' statistics (Figs. 1-3), writes the
trace out in the Alibaba v2018 CSV layout, and reads it back — the full
data lifecycle a downstream user needs.

Run:  python examples/trace_analysis.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis.characterization import (
    boxplot_stats_per_window,
    fraction_below,
    utilization_summary,
)
from repro.analysis.reporting import format_table, render_ascii_series
from repro.data.correlation import rank_by_correlation
from repro.traces import (
    ClusterTraceGenerator,
    CorruptionConfig,
    TraceConfig,
    corrupt_trace,
    read_trace_csv,
    write_trace_csv,
)
from repro.traces.schema import indicator_names


def main() -> None:
    trace = ClusterTraceGenerator(
        TraceConfig(n_machines=8, containers_per_machine=3, n_steps=2000, seed=3)
    ).generate()
    print(f"cluster: {trace.n_machines} machines, {trace.n_containers} containers")

    # Fig. 1: high-dynamic container series
    dyn = [c for c in trace.containers if c.workload == "regime_switching"][0]
    print(f"\nFig. 1 style — container {dyn.entity_id} ({dyn.workload}):")
    for name in ("cpu_util_percent", "mem_util_percent", "disk_io_percent"):
        print(render_ascii_series(dyn.indicator(name), label=name[:12]))

    # Fig. 2: cluster-average CPU boxplots
    cluster_avg = trace.machine_cpu_matrix().mean(axis=0)
    stats = boxplot_stats_per_window(cluster_avg, window=250)
    rows = [[i, s.q1, s.median, s.q3, s.mean] for i, s in enumerate(stats)]
    print("\n" + format_table(["win", "q1", "median", "q3", "mean"], rows,
                              title="Fig. 2 style — cluster-average CPU per window (%)"))

    # Fig. 3: machines below 50%
    fracs = fraction_below(trace.machine_cpu_matrix(), threshold=50.0, window=125)
    print("\nFig. 3 style — fraction of machines below 50% CPU:")
    print(render_ascii_series(fracs, label="frac<50%"))
    print("summary:", {k: round(v, 3) for k, v in utilization_summary(trace).items()})

    # Fig. 7: correlation ranking for one container
    ranking = rank_by_correlation(dyn.values, indicator_names(), "cpu_util_percent")
    print("\nFig. 7 style — CPU correlation ranking:",
          [(n, round(r, 2)) for n, r in ranking])

    # full data lifecycle: corrupt -> persist -> reload
    dirty = corrupt_trace(trace, CorruptionConfig(seed=1))
    with tempfile.TemporaryDirectory() as d:
        machine_csv, container_csv = write_trace_csv(dirty, d)
        sizes = {p.name: f"{p.stat().st_size / 1e6:.1f} MB"
                 for p in (machine_csv, container_csv)}
        reloaded = read_trace_csv(d)
        print(f"\nwrote + reloaded v2018-layout CSVs: {sizes}; "
              f"{reloaded.n_machines} machines, {reloaded.n_containers} containers back")


if __name__ == "__main__":
    main()
