"""Prediction-aware job packing: reclaiming the Fig. 2 utilization gap.

The paper's §II observes a cluster running at 40-60 % utilization because
schedulers reserve requested capacity while jobs use far less. This
example packs the same batch of jobs three ways — by request, by a
probe-based usage prediction, and by oracle peaks — and optionally plugs
an actual forecaster from :mod:`repro.models` in as the predictor.

Run:  python examples/prediction_aware_scheduling.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.data.windowing import make_windows
from repro.models import create_forecaster
from repro.scheduling import (
    JobGenerator,
    OraclePackingScheduler,
    PredictivePackingScheduler,
    RequestPackingScheduler,
    simulate_schedule,
)


def forecaster_footprint(probe_len: int = 60, window: int = 10):
    """Footprint from a GBT forecaster fitted on the job's own probe.

    Fits on the probe's windows, rolls the forecast forward over the
    probe's horizon, and returns a high quantile of probe + forecast.
    """

    def predict(probe: np.ndarray) -> float:
        if len(probe) < window + 4:
            return float(probe.max())
        x, y = make_windows(probe[:, None], probe, window=window)
        model = create_forecaster("xgboost", n_estimators=30, max_depth=3)
        model.fit(x, y)
        pred = model.predict(x)[:, 0]
        return float(np.quantile(np.concatenate([probe, pred]), 0.97))

    return predict


def main() -> None:
    jobs = JobGenerator(duration=500, seed=11, usage_scale=(0.1, 0.4)).generate(50)
    total_request = sum(j.request for j in jobs)
    total_mean_usage = sum(j.mean_usage for j in jobs)
    print(f"{len(jobs)} jobs: requested {total_request:.1f} cores, "
          f"actually using {total_mean_usage:.1f} on average "
          f"({total_mean_usage / total_request:.0%} of requests) — the Fig. 2 gap")

    schedulers = [
        RequestPackingScheduler(),
        PredictivePackingScheduler(probe_len=60, margin=0.08),
        PredictivePackingScheduler(
            probe_len=60, margin=0.08, predict_fn=forecaster_footprint()
        ),
        OraclePackingScheduler(margin=0.08),
    ]
    names = ["request", "probe-quantile", "gbt-forecast", "oracle-peak"]

    rows = []
    for name, sched in zip(names, schedulers):
        report = simulate_schedule(sched, jobs)
        rows.append(
            [
                name,
                report.n_machines,
                f"{report.efficiency():.2f}",
                f"{report.mean_utilization * 100:.1f}%",
                f"{report.overload_rate * 100:.2f}%",
            ]
        )
    print("\n" + format_table(
        ["policy", "machines", "jobs/machine", "mean util", "overload"],
        rows,
        title="Packing the batch under four footprint policies",
    ))
    print("\nPrediction roughly halves the machine count at sub-percent "
          "overload — the consolidation headroom accurate forecasting "
          "unlocks for the cluster manager.")


if __name__ == "__main__":
    main()
