"""Beyond CPU: predicting memory and network with the same pipeline.

The paper's Discussion: "CPU resource can also be extended to other
performance indicators such as memory usage and network bandwidth" — the
pipeline's target is a parameter, so this is a one-line change. This
example predicts three different indicators of one container, each with
its own PCC screening, and also demonstrates multi-step (k-ahead)
forecasting, the 'long-term' axis of the paper's title.

Run:  python examples/multi_resource.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.data import PipelineConfig, PredictionPipeline
from repro.traces import ClusterTraceGenerator, TraceConfig


def main() -> None:
    container = ClusterTraceGenerator(
        TraceConfig(n_machines=1, containers_per_machine=1, n_steps=1200, seed=12)
    ).generate().containers[0]

    # one-step prediction of three different targets
    rows = []
    for target in ("cpu_util_percent", "mem_util_percent", "net_in"):
        pipeline = PredictionPipeline(
            PipelineConfig(target=target, scenario="mul", window=12)
        )
        prepared = pipeline.prepare(container)
        result = pipeline.run(
            container, "rptcn", {"epochs": 25, "seed": 2}, prepared=prepared
        )
        rows.append(
            [
                target,
                ", ".join(n for n in prepared.selected_indicators[1:]),
                result.metrics["mse"] * 100,
                result.metrics["mae"] * 100,
            ]
        )
    print(format_table(
        ["target", "screened-in companions", "MSE(e-2)", "MAE(e-2)"], rows,
        title="Same pipeline, different prediction targets",
    ))

    # multi-step: predict the next k CPU values jointly
    print("\nmulti-step CPU forecasting (direct k-ahead heads):")
    rows = []
    for horizon in (1, 3, 6):
        pipeline = PredictionPipeline(
            PipelineConfig(scenario="mul_exp", window=16, horizon=horizon)
        )
        result = pipeline.run(container, "rptcn", {"epochs": 25, "seed": 2})
        rows.append([horizon, result.metrics["mse"] * 100, result.metrics["mae"] * 100])
    print(format_table(
        ["horizon (steps)", "MSE(e-2)", "MAE(e-2)"], rows,
        title="Error growth with prediction horizon",
    ))
    print("\nErrors grow with the horizon — the long-term prediction regime "
          "the paper targets is where multi-dimensional input pays off.")


if __name__ == "__main__":
    main()
