"""Predictive autoscaling: turning Table II accuracy into cluster savings.

The paper's motivation (§I-II): accurate prediction lets the resource
manager reserve just enough CPU — less waste than static peak
provisioning, fewer QoS violations than reactive scaling. This example
trains RPTCN on a high-dynamic container, plugs it into a
PredictiveAllocator, and compares four policies on waste vs violations.

Run:  python examples/predictive_autoscaling.py
"""

from __future__ import annotations

from repro.allocation import (
    OracleAllocator,
    PredictiveAllocator,
    QuantileAllocator,
    ReactiveAllocator,
    StaticAllocator,
    simulate_allocation,
)
from repro.models import QuantileGBTForecaster
from repro.analysis.reporting import format_table
from repro.data import PipelineConfig, PredictionPipeline
from repro.models import create_forecaster
from repro.traces import ClusterTraceGenerator, TraceConfig


def main() -> None:
    container = ClusterTraceGenerator(
        TraceConfig(n_machines=1, containers_per_machine=1, n_steps=1500, seed=19,
                    container_mix={"regime_switching": 1.0})
    ).generate().containers[0]
    print(f"container {container.entity_id}: regime-switching CPU demand")

    # the paper's pipeline feeds the forecaster
    pipeline = PredictionPipeline(PipelineConfig(scenario="mul_exp", window=12))
    prepared = pipeline.prepare(container)
    xt, yt = prepared.dataset.train
    xv, yv = prepared.dataset.val
    xe, ye = prepared.dataset.test

    forecaster = create_forecaster(
        "rptcn", target_col=prepared.target_col, epochs=30, seed=4
    )
    forecaster.fit(xt, yt, xv, yv)

    # a risk-calibrated alternative: reserve the predicted 95th percentile
    quantile_forecaster = QuantileGBTForecaster(
        taus=(0.5, 0.95),
        target_col=prepared.target_col,
        n_estimators=100,
        max_depth=2,
        min_child_weight=30,
    )
    quantile_forecaster.fit(xt, yt)

    headroom = 0.08
    policies = [
        StaticAllocator(level=0.95),
        ReactiveAllocator(headroom=headroom, target_col=prepared.target_col),
        PredictiveAllocator(forecaster, headroom=headroom),
        QuantileAllocator(quantile_forecaster, tau=0.95),
        OracleAllocator(headroom=headroom),
    ]

    rows = []
    for policy in policies:
        report = simulate_allocation(policy, xe, ye[:, 0])
        rows.append(
            [
                report.policy,
                f"{report.mean_reservation:.3f}",
                f"{report.mean_overprovision:.3f}",
                f"{report.violation_rate * 100:.1f}%",
                f"{report.mean_violation_depth:.3f}",
                f"{report.cost():.3f}",
            ]
        )
    print("\n" + format_table(
        ["policy", "avg reserved", "waste", "violations", "depth", "cost(10x)"],
        rows,
        title=f"Allocation replay over {len(ye)} test intervals "
              f"(headroom {headroom:.0%})",
    ))

    print("\nReading: static provisioning wastes the most; reactive lags every "
          "regime switch (violations); the RPTCN-driven policy approaches the "
          "oracle — that gap is exactly the value of prediction accuracy.")


if __name__ == "__main__":
    main()
