"""Bidirectional LSTM forecaster (Gupta & Dinesh 2017, the paper's ref [41]).

The related-work baseline that reads each window both forward and
backward. Bidirectionality over the *input window* is causal with respect
to the forecast target (the window wholly precedes it), so this is a
legitimate forecaster despite the backward pass.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers.dropout import Dropout
from ..nn.layers.linear import Linear
from ..nn.layers.recurrent import LSTM
from ..nn.module import Module
from ..nn.tensor import Tensor
from .base import NeuralForecaster, register_forecaster

__all__ = ["BiLSTMForecaster"]


class _ReversedTime:
    """Index helper: reverse a (N, T, F) tensor along time via gather."""

    @staticmethod
    def reverse(x: Tensor) -> Tensor:
        t = x.shape[1]
        return x[:, np.arange(t - 1, -1, -1), :]


class _BiLSTMNet(Module):
    """Forward and backward LSTMs; concatenated final states feed the head."""

    def __init__(
        self,
        features: int,
        hidden: int,
        horizon: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.fwd = LSTM(features, hidden, rng=rng)
        self.bwd = LSTM(features, hidden, rng=rng)
        self.drop = Dropout(dropout, rng=rng)
        self.head = Linear(2 * hidden, horizon, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        h_fwd = self.fwd(x)[:, -1, :]
        h_bwd = self.bwd(_ReversedTime.reverse(x))[:, -1, :]
        joint = Tensor.concatenate([h_fwd, h_bwd], axis=1)
        return self.head(self.drop(joint))


@register_forecaster("bilstm")
class BiLSTMForecaster(NeuralForecaster):
    def __init__(
        self,
        horizon: int = 1,
        target_col: int = 0,
        hidden: int = 24,
        dropout: float = 0.1,
        **train_kwargs,
    ) -> None:
        super().__init__(horizon=horizon, target_col=target_col, **train_kwargs)
        self.hidden = hidden
        self.dropout = dropout

    def build(self, window: int, features: int, rng: np.random.Generator) -> Module:
        return _BiLSTMNet(features, self.hidden, self.horizon, self.dropout, rng)
