"""Forecasting models: the paper's RPTCN plus every baseline it compares to.

All models implement the :class:`~repro.models.base.Forecaster` interface
over windowed supervised data ``X (N, window, features) -> y (N, horizon)``
and are discoverable through :func:`~repro.models.base.create_forecaster`.
"""

from .arima import ARIMA, ARIMAForecaster
from .base import (
    FORECASTER_REGISTRY,
    Forecaster,
    NeuralForecaster,
    create_forecaster,
    register_forecaster,
)
from .bilstm import BiLSTMForecaster
from .clustered import ClusteredForecaster, KMeans, window_features
from .cnn_lstm import CNNLSTMForecaster
from .ensemble import EnsembleForecaster, HybridARIMANNForecaster
from .exponential import HoltForecaster, holt_linear, simple_exponential_smoothing
from .gbt import GradientBoostedTrees, GBTForecaster, RegressionTree
from .gru import GRUForecaster
from .gru_pruned import PrunedGRUForecaster
from .lstm import LSTMForecaster
from .mlp import MLPForecaster
from .naive import DriftForecaster, MeanForecaster, PersistenceForecaster
from .quantile import PinballLoss, QuantileGBTForecaster, QuantileRPTCNForecaster
from .rptcn import RPTCN, RPTCNForecaster
from .seq2seq import Seq2SeqForecaster
from .tcn import TCN, TCNForecaster, TemporalBlock
from .transformer import TransformerForecaster
from .tuning import GridSearchResult, TrialResult, grid_search

__all__ = [
    "Forecaster",
    "NeuralForecaster",
    "register_forecaster",
    "create_forecaster",
    "FORECASTER_REGISTRY",
    "TemporalBlock",
    "TCN",
    "TCNForecaster",
    "RPTCN",
    "RPTCNForecaster",
    "LSTMForecaster",
    "CNNLSTMForecaster",
    "ARIMA",
    "ARIMAForecaster",
    "RegressionTree",
    "GradientBoostedTrees",
    "GBTForecaster",
    "PersistenceForecaster",
    "MeanForecaster",
    "DriftForecaster",
    "GRUForecaster",
    "PrunedGRUForecaster",
    "MLPForecaster",
    "HoltForecaster",
    "holt_linear",
    "simple_exponential_smoothing",
    "grid_search",
    "GridSearchResult",
    "TrialResult",
    "BiLSTMForecaster",
    "Seq2SeqForecaster",
    "PinballLoss",
    "QuantileGBTForecaster",
    "QuantileRPTCNForecaster",
    "TransformerForecaster",
    "EnsembleForecaster",
    "HybridARIMANNForecaster",
    "ClusteredForecaster",
    "KMeans",
    "window_features",
]
