"""Hyper-parameter grid search over registered forecasters.

The paper's §V-C future work asks how TCN parameters (kernel, dilations,
channel widths) trade accuracy against training time; ``grid_search``
makes that sweep a one-liner with validation-split selection, and the
receptive-field ablation bench builds on it.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..training.metrics import mae, mse
from .base import create_forecaster

__all__ = ["TrialResult", "GridSearchResult", "grid_search"]


@dataclass(frozen=True)
class TrialResult:
    """One hyper-parameter combination's outcome."""

    params: dict[str, Any]
    val_mse: float
    val_mae: float
    fit_seconds: float


@dataclass
class GridSearchResult:
    trials: list[TrialResult] = field(default_factory=list)

    @property
    def best(self) -> TrialResult:
        if not self.trials:
            raise RuntimeError("no successful trials")
        return min(self.trials, key=lambda t: t.val_mse)

    def ranked(self) -> list[TrialResult]:
        return sorted(self.trials, key=lambda t: t.val_mse)


def grid_search(
    forecaster_name: str,
    param_grid: dict[str, list],
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: np.ndarray,
    y_val: np.ndarray,
    fixed_kwargs: dict[str, Any] | None = None,
) -> GridSearchResult:
    """Exhaustive sweep of ``param_grid``, scored on the validation split.

    Each trial trains a fresh forecaster with one combination of the grid
    merged over ``fixed_kwargs``. The validation data also drives the
    model's own early stopping, mirroring how the paper tunes (the val
    split exists precisely for model selection in a 6:2:2 protocol).
    """
    if not param_grid:
        raise ValueError("param_grid may not be empty")
    keys = sorted(param_grid)
    result = GridSearchResult()
    for combo in itertools.product(*(param_grid[k] for k in keys)):
        params = dict(zip(keys, combo))
        kwargs = {**(fixed_kwargs or {}), **params}
        model = create_forecaster(forecaster_name, **kwargs)
        t0 = time.perf_counter()
        model.fit(x_train, y_train, x_val, y_val)
        elapsed = time.perf_counter() - t0
        pred = model.predict(x_val)
        result.trials.append(
            TrialResult(
                params=params,
                val_mse=mse(y_val, pred),
                val_mae=mae(y_val, pred),
                fit_seconds=elapsed,
            )
        )
    return result
