"""Temporal Convolutional Network (Bai, Kolter & Koltun 2018).

The backbone of RPTCN (paper §III-D): a stack of residual blocks, each
holding two weight-normalized dilated causal convolutions with ReLU and
spatial dropout (Fig. 6), dilations doubling per level so the receptive
field grows exponentially with depth: ``RF = 1 + 2 (K - 1) (2^L - 1)``.
"""

from __future__ import annotations

import numpy as np

from ..nn import init as nn_init
from ..nn.layers.container import ModuleList, Sequential
from ..nn.layers.conv import Conv1d
from ..nn.layers.dropout import SpatialDropout1d
from ..nn.layers.linear import Linear
from ..nn.layers.normalization import WeightNormConv1d
from ..nn.module import Module
from ..nn.tensor import Tensor
from .base import NeuralForecaster, register_forecaster

__all__ = ["TemporalBlock", "TCN", "TCNForecaster"]


class TemporalBlock(Module):
    """One TCN residual block (paper Fig. 6).

    Main branch: (weight-norm dilated causal conv → ReLU → spatial
    dropout) × 2. Shortcut: identity, or a 1×1 convolution when channel
    counts differ. Output: ``ReLU(x + F(x))`` — the paper's eq. (5).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        dilation: int,
        dropout: float = 0.1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else nn_init.default_rng()
        self.conv1 = WeightNormConv1d(
            in_channels, out_channels, kernel_size, dilation=dilation, rng=rng
        )
        self.drop1 = SpatialDropout1d(dropout, rng=rng)
        self.conv2 = WeightNormConv1d(
            out_channels, out_channels, kernel_size, dilation=dilation, rng=rng
        )
        self.drop2 = SpatialDropout1d(dropout, rng=rng)
        self.downsample = (
            Conv1d(in_channels, out_channels, kernel_size=1, rng=rng)
            if in_channels != out_channels
            else None
        )
        self.dilation = dilation
        self.kernel_size = kernel_size

    @property
    def receptive_field(self) -> int:
        """Span of input steps one output step of this block sees."""
        return 2 * (self.kernel_size - 1) * self.dilation + 1

    def forward(self, x: Tensor) -> Tensor:
        out = self.drop1(self.conv1(x).relu())
        out = self.drop2(self.conv2(out).relu())
        res = self.downsample(x) if self.downsample is not None else x
        return (out + res).relu()


class TCN(Module):
    """Stack of :class:`TemporalBlock` with exponentially growing dilations.

    Maps ``(N, C_in, L)`` to ``(N, channels[-1], L)`` — causal, so the
    features at step ``t`` summarize inputs up to ``t`` only.
    """

    def __init__(
        self,
        in_channels: int,
        channels: tuple[int, ...] = (16, 16, 16),
        kernel_size: int = 3,
        dropout: float = 0.1,
        dilations: tuple[int, ...] | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if not channels:
            raise ValueError("channels may not be empty")
        rng = rng if rng is not None else nn_init.default_rng()
        if dilations is None:
            dilations = tuple(2**i for i in range(len(channels)))
        if len(dilations) != len(channels):
            raise ValueError(
                f"{len(channels)} levels but {len(dilations)} dilations supplied"
            )
        self.blocks = ModuleList(
            TemporalBlock(
                in_channels if i == 0 else channels[i - 1],
                channels[i],
                kernel_size,
                dilations[i],
                dropout=dropout,
                rng=rng,
            )
            for i in range(len(channels))
        )

    @property
    def receptive_field(self) -> int:
        """Total causal receptive field of the stack."""
        rf = 1
        for block in self.blocks:
            rf += block.receptive_field - 1
        return rf

    def forward(self, x: Tensor) -> Tensor:
        for block in self.blocks:
            x = block(x)
        return x


class _TCNHead(Module):
    """Plain TCN forecaster: backbone → last step → linear head."""

    def __init__(
        self,
        features: int,
        horizon: int,
        channels: tuple[int, ...],
        kernel_size: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.backbone = TCN(features, channels, kernel_size, dropout, rng=rng)
        self.head = Linear(channels[-1], horizon, rng=rng)
        # zero-init the head for a small, stable initial loss (see RPTCN)
        self.head.weight.data[...] = 0.0

    def forward(self, x: Tensor) -> Tensor:
        # (N, W, F) -> channels-first (N, F, W)
        h = self.backbone(x.swapaxes(1, 2))
        return self.head(h[:, :, -1])


@register_forecaster("tcn")
class TCNForecaster(NeuralForecaster):
    """Vanilla TCN baseline (RPTCN minus FC layer and attention).

    Used by the ablation benchmarks to isolate the contribution of the two
    additions the paper makes on top of TCNs.
    """

    def __init__(
        self,
        horizon: int = 1,
        target_col: int = 0,
        channels: tuple[int, ...] = (16, 16, 16),
        kernel_size: int = 3,
        dropout: float = 0.1,
        **train_kwargs,
    ) -> None:
        train_kwargs.setdefault("lr", 2e-3)  # TCN stacks tolerate a hotter Adam
        super().__init__(horizon=horizon, target_col=target_col, **train_kwargs)
        self.channels = tuple(channels)
        self.kernel_size = kernel_size
        self.dropout = dropout

    def build(self, window: int, features: int, rng: np.random.Generator) -> Module:
        return _TCNHead(
            features, self.horizon, self.channels, self.kernel_size, self.dropout, rng
        )
