"""ARIMA(p, d, q) built from scratch (the paper's classical baseline).

Fitting uses conditional sum of squares (CSS): Hannan-Rissanen two-stage
least squares provides the initial parameter vector, then
``scipy.optimize.minimize`` refines it. Residual recursion runs through
``scipy.signal.lfilter`` so the per-sample loop executes in C.

The model convention is

    w_t = c + sum_i phi_i w_{t-i} + e_t + sum_j theta_j e_{t-j},

with ``w`` the ``d``-times differenced series. Forecasts recurse with
future shocks set to zero and are integrated back to the original scale.
"""

from __future__ import annotations

import itertools
import math

import numpy as np
from scipy.optimize import minimize
from scipy.signal import lfilter

from .base import Forecaster, register_forecaster

__all__ = ["ARIMA", "ARIMAForecaster", "select_arima_order"]


class ARIMA:
    """Univariate ARIMA with CSS estimation."""

    def __init__(self, p: int = 1, d: int = 0, q: int = 0, include_constant: bool = True) -> None:
        if min(p, d, q) < 0:
            raise ValueError(f"orders must be non-negative, got ({p},{d},{q})")
        if p == 0 and q == 0 and not include_constant:
            raise ValueError("ARIMA(0, d, 0) without constant has nothing to estimate")
        self.p = p
        self.d = d
        self.q = q
        self.include_constant = include_constant
        self.const_: float = 0.0
        self.phi_: np.ndarray = np.zeros(p)
        self.theta_: np.ndarray = np.zeros(q)
        self.sigma2_: float = float("nan")
        self.nobs_: int = 0
        self.fitted = False

    # -- internals -------------------------------------------------------------

    def _unpack(self, params: np.ndarray) -> tuple[float, np.ndarray, np.ndarray]:
        i = 0
        c = params[i] if self.include_constant else 0.0
        i += int(self.include_constant)
        phi = params[i : i + self.p]
        theta = params[i + self.p : i + self.p + self.q]
        return float(c), np.asarray(phi), np.asarray(theta)

    def _residuals(self, w: np.ndarray, c: float, phi: np.ndarray, theta: np.ndarray) -> np.ndarray:
        """Conditional residuals of the ARMA recursion (pre-sample = 0)."""
        # rhs_t = w_t - c - sum phi_i w_{t-i}
        rhs = lfilter(np.concatenate(([1.0], -phi)), [1.0], w) - c
        # e_t = rhs_t - sum theta_j e_{t-j}
        e = lfilter([1.0], np.concatenate(([1.0], theta)), rhs)
        return e

    @staticmethod
    def _unstable(coeffs: np.ndarray) -> bool:
        """True when the polynomial 1 - c1 z - ... has a root inside the unit circle."""
        if coeffs.size == 0:
            return False
        roots = np.roots(np.concatenate(([1.0], -coeffs)))
        return bool(roots.size) and bool((np.abs(roots) > 1.0 - 1e-6).any())

    def _css(self, params: np.ndarray, w: np.ndarray) -> float:
        c, phi, theta = self._unpack(params)
        # soft barrier keeps the optimizer in the stationary/invertible region
        if self._unstable(phi) or self._unstable(-theta):
            return 1e12
        e = self._residuals(w, c, phi, theta)
        e = e[self.p :]  # conditional: skip the start-up transient
        return float((e**2).sum())

    def _hannan_rissanen(self, w: np.ndarray) -> np.ndarray:
        """Two-stage least-squares initialization."""
        t = len(w)
        m = min(max(self.p + self.q + 3, 5), max(t // 4, 1))
        # stage 1: long AR for residual estimates
        if m >= 1 and t > m + 1:
            rows = np.column_stack([w[m - i - 1 : t - i - 1] for i in range(m)])
            xmat = np.column_stack([np.ones(len(rows)), rows])
            beta, *_ = np.linalg.lstsq(xmat, w[m:], rcond=None)
            e_hat = np.zeros(t)
            e_hat[m:] = w[m:] - xmat @ beta
        else:
            e_hat = w - w.mean()

        # stage 2: regress w on its own lags and residual lags
        k = max(self.p, self.q)
        if t <= k + 2:
            x0 = np.zeros(int(self.include_constant) + self.p + self.q)
            if self.include_constant:
                x0[0] = w.mean()
            return x0
        cols = []
        if self.include_constant:
            cols.append(np.ones(t - k))
        for i in range(1, self.p + 1):
            cols.append(w[k - i : t - i])
        for j in range(1, self.q + 1):
            cols.append(e_hat[k - j : t - j])
        if not cols:
            return np.zeros(0)
        xmat = np.column_stack(cols)
        beta, *_ = np.linalg.lstsq(xmat, w[k:], rcond=None)

        # shrink any explosive initialization back inside the unit region
        c, phi, theta = self._unpack(beta)
        while self._unstable(phi):
            phi = phi * 0.9
        while self._unstable(-theta):
            theta = theta * 0.9
        out = []
        if self.include_constant:
            out.append(c)
        out.extend(phi)
        out.extend(theta)
        return np.asarray(out)

    # -- API -------------------------------------------------------------------

    def fit(self, series: np.ndarray) -> "ARIMA":
        series = np.asarray(series, float)
        if series.ndim != 1:
            raise ValueError(f"series must be 1-D, got shape {series.shape}")
        w = np.diff(series, n=self.d) if self.d else series.copy()
        min_len = self.p + self.q + 2 + int(self.include_constant)
        if len(w) < max(min_len, 8):
            raise ValueError(
                f"series too short: {len(series)} points for ARIMA({self.p},{self.d},{self.q})"
            )

        x0 = self._hannan_rissanen(w)
        if x0.size:
            res = minimize(
                self._css,
                x0,
                args=(w,),
                method="Nelder-Mead",
                options={"maxiter": 2000, "xatol": 1e-6, "fatol": 1e-8},
            )
            params = res.x if res.fun < self._css(x0, w) else x0
        else:
            params = x0
        self.const_, self.phi_, self.theta_ = self._unpack(params)
        e = self._residuals(w, self.const_, self.phi_, self.theta_)[self.p :]
        self.nobs_ = len(e)
        self.sigma2_ = float((e**2).mean()) if len(e) else float("nan")
        self._train_tail = series[-(self.d + max(self.p, self.q) + 32) :].copy()
        self.fitted = True
        return self

    @property
    def n_params(self) -> int:
        return self.p + self.q + int(self.include_constant)

    @property
    def aic(self) -> float:
        """Gaussian-CSS AIC: T log(sigma^2) + 2k."""
        if not self.fitted:
            raise RuntimeError("fit before reading AIC")
        if self.nobs_ == 0 or not math.isfinite(self.sigma2_) or self.sigma2_ <= 0:
            return float("inf")
        return self.nobs_ * math.log(self.sigma2_) + 2 * self.n_params

    def forecast(self, steps: int, history: np.ndarray | None = None) -> np.ndarray:
        """Forecast ``steps`` ahead from ``history`` (default: training tail).

        Parameters are the fitted ones; only the conditioning data changes,
        which is how the rolling evaluation applies one fitted model to
        every test window.
        """
        if not self.fitted:
            raise RuntimeError("fit before forecasting")
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        history = np.asarray(history, float) if history is not None else self._train_tail
        if len(history) < self.d + 1:
            raise ValueError(f"history of {len(history)} too short for d={self.d}")

        w = np.diff(history, n=self.d) if self.d else history.copy()
        e = self._residuals(w, self.const_, self.phi_, self.theta_)

        w_ext = list(w)
        e_ext = list(e)
        for _ in range(steps):
            val = self.const_
            for i in range(1, self.p + 1):
                if len(w_ext) - i >= 0:
                    val += self.phi_[i - 1] * w_ext[-i]
            for j in range(1, self.q + 1):
                if len(e_ext) - j >= 0:
                    val += self.theta_[j - 1] * e_ext[-j]
            w_ext.append(val)
            e_ext.append(0.0)
        w_fc = np.asarray(w_ext[len(w) :])

        # integrate the differencing back out, one order at a time
        fc = w_fc
        for k in range(self.d, 0, -1):
            base = np.diff(history, n=k - 1)[-1]
            fc = base + np.cumsum(fc)
        return fc


def select_arima_order(
    series: np.ndarray,
    max_p: int = 3,
    max_q: int = 2,
    d_candidates: tuple[int, ...] = (0, 1),
) -> tuple[int, int, int]:
    """Grid-search (p, d, q) by AIC (skipping degenerate (0, d, 0))."""
    best: tuple[float, tuple[int, int, int]] | None = None
    for d, p, q in itertools.product(d_candidates, range(max_p + 1), range(max_q + 1)):
        if p == 0 and q == 0:
            continue
        try:
            model = ARIMA(p, d, q).fit(series)
        except (ValueError, np.linalg.LinAlgError):
            continue
        score = model.aic
        if best is None or score < best[0]:
            best = (score, (p, d, q))
    if best is None:
        raise RuntimeError("no ARIMA order could be fitted on this series")
    return best[1]


@register_forecaster("arima")
class ARIMAForecaster(Forecaster):
    """Windowed-interface wrapper around :class:`ARIMA`.

    Parameters are estimated once on the (contiguous) training target
    series, then applied to every evaluation window: each window's target
    history conditions the residual recursion and the model forecasts
    ``horizon`` steps ahead. ARIMA is univariate, so only the target
    column of the window is used — the paper's Table II accordingly
    reports ARIMA in the *Uni* scenario only.
    """

    def __init__(
        self,
        horizon: int = 1,
        target_col: int = 0,
        order: tuple[int, int, int] | None = None,
        auto_max_p: int = 3,
        auto_max_q: int = 2,
    ) -> None:
        super().__init__(horizon=horizon, target_col=target_col)
        self.order = order
        self.auto_max_p = auto_max_p
        self.auto_max_q = auto_max_q
        self.model: ARIMA | None = None

    @staticmethod
    def _training_series(x: np.ndarray, y: np.ndarray, target_col: int) -> np.ndarray:
        """Reassemble the contiguous target series from stride-1 windows."""
        return np.concatenate([x[0, :, target_col], y[:, 0]])

    def fit(self, x, y, x_val=None, y_val=None) -> "ARIMAForecaster":
        self._check_xy(x, y)
        x = np.asarray(x, float)
        y = np.asarray(y, float)
        series = self._training_series(x, y, self.target_col)
        order = self.order or select_arima_order(
            series, max_p=self.auto_max_p, max_q=self.auto_max_q
        )
        self.model = ARIMA(*order).fit(series)
        self.fitted = True
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        self._check_xy(x)
        assert self.model is not None
        x = np.asarray(x, float)
        out = np.empty((len(x), self.horizon))
        for i in range(len(x)):
            out[i] = self.model.forecast(self.horizon, history=x[i, :, self.target_col])
        return out
