"""Ensemble and hybrid forecasters (the paper's §VI-C related-work class).

* :class:`EnsembleForecaster` — mean / validation-weighted combination of
  any registered members (Cetinski & Juric 2015, ref [43], combine
  statistical and learning methods);
* :class:`HybridARIMANNForecaster` — Zhang (2003), ref [42]: ARIMA
  captures the linear structure, a neural network is fitted on ARIMA's
  residuals, and the forecasts add. The exact decomposition the paper's
  related work describes.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..nn._plans import planned_einsum
from ..training.metrics import mse
from .arima import ARIMAForecaster
from .base import Forecaster, create_forecaster, register_forecaster

__all__ = ["EnsembleForecaster", "HybridARIMANNForecaster"]


@register_forecaster("ensemble")
class EnsembleForecaster(Forecaster):
    """Combine registered forecasters by (optionally weighted) averaging.

    ``weighting="uniform"`` averages members; ``weighting="inverse_mse"``
    weights each member by the inverse of its validation MSE (requires
    validation data at fit time), so stronger members dominate smoothly.
    """

    def __init__(
        self,
        members: Sequence[tuple[str, dict[str, Any]]] = (
            ("xgboost", {"n_estimators": 60}),
            ("lstm", {"epochs": 20}),
        ),
        weighting: str = "uniform",
        horizon: int = 1,
        target_col: int = 0,
    ) -> None:
        super().__init__(horizon=horizon, target_col=target_col)
        if not members:
            raise ValueError("ensemble needs at least one member")
        if weighting not in ("uniform", "inverse_mse"):
            raise ValueError(f"weighting must be uniform/inverse_mse, got {weighting!r}")
        self.member_specs = list(members)
        self.weighting = weighting
        self.members: list[Forecaster] = []
        self.weights_: np.ndarray | None = None

    def fit(self, x, y, x_val=None, y_val=None) -> "EnsembleForecaster":
        self._check_xy(x, y)
        self.members = []
        for name, kwargs in self.member_specs:
            merged = {"horizon": self.horizon, "target_col": self.target_col, **kwargs}
            member = create_forecaster(name, **merged)
            member.fit(x, y, x_val, y_val)
            self.members.append(member)

        if self.weighting == "inverse_mse":
            if x_val is None or y_val is None:
                raise ValueError("inverse_mse weighting requires validation data")
            errors = np.array(
                [mse(np.asarray(y_val), m.predict(x_val)) for m in self.members]
            )
            inv = 1.0 / np.maximum(errors, 1e-12)
            self.weights_ = inv / inv.sum()
        else:
            self.weights_ = np.full(len(self.members), 1.0 / len(self.members))
        self.fitted = True
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        self._check_xy(x)
        stacked = np.stack([m.predict(x) for m in self.members])  # (M, N, H)
        return planned_einsum("m,mnh->nh", self.weights_, stacked)


@register_forecaster("hybrid_arima_nn")
class HybridARIMANNForecaster(Forecaster):
    """Zhang (2003): series = linear (ARIMA) + nonlinear (NN on residuals).

    Fit ARIMA on the target series; compute its one-step residuals over
    the training windows; fit the NN to predict those residuals from the
    full multivariate windows; final forecast = ARIMA + NN-residual.
    """

    def __init__(
        self,
        order: tuple[int, int, int] = (2, 1, 1),
        nn_name: str = "rptcn",
        nn_kwargs: dict[str, Any] | None = None,
        horizon: int = 1,
        target_col: int = 0,
    ) -> None:
        super().__init__(horizon=horizon, target_col=target_col)
        if horizon != 1:
            raise ValueError("the residual hybrid is defined for 1-step forecasts")
        self.order = order
        self.nn_name = nn_name
        self.nn_kwargs = dict(nn_kwargs or {})
        self.arima: ARIMAForecaster | None = None
        self.nn: Forecaster | None = None

    def _arima_part(self, x: np.ndarray) -> np.ndarray:
        assert self.arima is not None
        return self.arima.predict(x)

    def fit(self, x, y, x_val=None, y_val=None) -> "HybridARIMANNForecaster":
        self._check_xy(x, y)
        x = np.asarray(x, float)
        y = np.asarray(y, float)

        self.arima = ARIMAForecaster(order=self.order, target_col=self.target_col)
        self.arima.fit(x, y)

        resid_train = y - self._arima_part(x)
        resid_val = None
        if x_val is not None and y_val is not None:
            resid_val = np.asarray(y_val, float) - self._arima_part(np.asarray(x_val, float))

        kwargs = {"horizon": 1, "target_col": self.target_col, **self.nn_kwargs}
        self.nn = create_forecaster(self.nn_name, **kwargs)
        self.nn.fit(x, resid_train, x_val, resid_val)
        self.fitted = True
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        self._check_xy(x)
        x = np.asarray(x, float)
        assert self.nn is not None
        return self._arima_part(x) + self.nn.predict(x)
