"""Cluster-then-predict (Yu et al. 2016, the paper's ref [37]).

"They group the workloads into multiple clusters, and then they use
neural network to learn the characteristics of each type workload. For
each new task, they collect its initial logs, determine it belongs to
which cluster, and use the trained neural network of its cluster."

This module implements exactly that scheme on windowed data: k-means
(from scratch, k-means++ init) over per-window summary features, one
forecaster per cluster, routing at prediction time.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .base import Forecaster, create_forecaster, register_forecaster

__all__ = ["KMeans", "ClusteredForecaster", "window_features"]


class KMeans:
    """Lloyd's algorithm with k-means++ initialization."""

    def __init__(self, k: int, max_iter: int = 100, tol: float = 1e-6, seed: int = 0) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.centroids_: np.ndarray | None = None
        self.inertia_: float = float("nan")
        self.n_iter_: int = 0

    def _init_centroids(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding: spread initial centroids by squared distance."""
        n = len(x)
        centroids = [x[rng.integers(n)]]
        for _ in range(1, self.k):
            d2 = np.min(
                ((x[:, None, :] - np.asarray(centroids)[None, :, :]) ** 2).sum(-1), axis=1
            )
            total = d2.sum()
            if total == 0:
                centroids.append(x[rng.integers(n)])
                continue
            centroids.append(x[rng.choice(n, p=d2 / total)])
        return np.asarray(centroids)

    def fit(self, x: np.ndarray) -> "KMeans":
        x = np.asarray(x, float)
        if x.ndim != 2 or len(x) < self.k:
            raise ValueError(f"need at least k={self.k} samples of shape (n, d)")
        rng = np.random.default_rng(self.seed)
        centroids = self._init_centroids(x, rng)
        for it in range(self.max_iter):
            d2 = ((x[:, None, :] - centroids[None, :, :]) ** 2).sum(-1)
            labels = d2.argmin(axis=1)
            new_centroids = centroids.copy()
            for j in range(self.k):
                members = x[labels == j]
                if len(members):
                    new_centroids[j] = members.mean(axis=0)
            shift = float(np.abs(new_centroids - centroids).max())
            centroids = new_centroids
            self.n_iter_ = it + 1
            if shift < self.tol:
                break
        self.centroids_ = centroids
        d2 = ((x[:, None, :] - centroids[None, :, :]) ** 2).sum(-1)
        self.inertia_ = float(d2.min(axis=1).sum())
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.centroids_ is None:
            raise RuntimeError("fit before predict")
        x = np.asarray(x, float)
        d2 = ((x[:, None, :] - self.centroids_[None, :, :]) ** 2).sum(-1)
        return d2.argmin(axis=1)


def window_features(x: np.ndarray, target_col: int = 0) -> np.ndarray:
    """Summary features of each window's target history for clustering.

    Level, spread, trend and roughness — enough to separate the workload
    archetypes (idle batch vs bursty service vs steady load).
    """
    x = np.asarray(x, float)
    if x.ndim != 3:
        raise ValueError(f"x must be (N, window, features), got {x.shape}")
    hist = x[:, :, target_col]
    diffs = np.abs(np.diff(hist, axis=1))
    return np.column_stack(
        [
            hist.mean(axis=1),
            hist.std(axis=1),
            hist[:, -1] - hist[:, 0],
            diffs.mean(axis=1),
            hist.max(axis=1) - hist.min(axis=1),
        ]
    )


@register_forecaster("clustered")
class ClusteredForecaster(Forecaster):
    """k-means over window features, one member forecaster per cluster."""

    def __init__(
        self,
        k: int = 3,
        member: str = "xgboost",
        member_kwargs: dict[str, Any] | None = None,
        horizon: int = 1,
        target_col: int = 0,
        seed: int = 0,
        min_cluster_size: int = 20,
    ) -> None:
        super().__init__(horizon=horizon, target_col=target_col)
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.member = member
        self.member_kwargs = dict(member_kwargs or {})
        self.seed = seed
        self.min_cluster_size = min_cluster_size
        self.kmeans: KMeans | None = None
        self.models: dict[int, Forecaster] = {}
        self.fallback: Forecaster | None = None

    def _make_member(self) -> Forecaster:
        kwargs = {"horizon": self.horizon, "target_col": self.target_col,
                  **self.member_kwargs}
        return create_forecaster(self.member, **kwargs)

    def fit(self, x, y, x_val=None, y_val=None) -> "ClusteredForecaster":
        self._check_xy(x, y)
        x = np.asarray(x, float)
        y = np.asarray(y, float)

        feats = window_features(x, self.target_col)
        self.kmeans = KMeans(self.k, seed=self.seed).fit(feats)
        labels = self.kmeans.predict(feats)

        # a global fallback handles clusters too small to train on
        self.fallback = self._make_member()
        self.fallback.fit(x, y)

        self.models = {}
        for j in range(self.k):
            idx = np.flatnonzero(labels == j)
            if len(idx) >= self.min_cluster_size:
                model = self._make_member()
                model.fit(x[idx], y[idx])
                self.models[j] = model
        self.fitted = True
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        self._check_xy(x)
        x = np.asarray(x, float)
        assert self.kmeans is not None and self.fallback is not None
        labels = self.kmeans.predict(window_features(x, self.target_col))
        out = np.empty((len(x), self.horizon))
        for j in np.unique(labels):
            idx = np.flatnonzero(labels == j)
            model = self.models.get(int(j), self.fallback)
            out[idx] = model.predict(x[idx])
        return out
