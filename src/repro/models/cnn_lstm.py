"""CNN-LSTM baseline (Ouhame et al. 2021; the paper's Table II "CNN-LSTM").

A 1-D convolution extracts local cross-indicator features, which the LSTM
then integrates over time: conv (same-length padding) → ReLU → LSTM →
last state → linear head.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers.conv import Conv1d
from ..nn.layers.dropout import Dropout
from ..nn.layers.linear import Linear
from ..nn.layers.recurrent import LSTM
from ..nn.module import Module
from ..nn.tensor import Tensor
from .base import NeuralForecaster, register_forecaster

__all__ = ["CNNLSTMForecaster"]


class _CNNLSTMNet(Module):
    def __init__(
        self,
        features: int,
        filters: int,
        kernel_size: int,
        hidden: int,
        horizon: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        # symmetric same-padding keeps the sequence length for the LSTM
        pad = (kernel_size - 1) // 2
        self.conv = Conv1d(features, filters, kernel_size, padding=pad, rng=rng)
        self.lstm = LSTM(filters, hidden, rng=rng)
        self.drop = Dropout(dropout, rng=rng)
        self.head = Linear(hidden, horizon, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        h = self.conv(x.swapaxes(1, 2)).relu()  # (N, filters, W')
        seq = self.lstm(h.swapaxes(1, 2))  # (N, W', hidden)
        last = seq[:, -1, :]
        return self.head(self.drop(last))


@register_forecaster("cnn_lstm")
class CNNLSTMForecaster(NeuralForecaster):
    def __init__(
        self,
        horizon: int = 1,
        target_col: int = 0,
        filters: int = 16,
        kernel_size: int = 3,
        hidden: int = 32,
        dropout: float = 0.1,
        **train_kwargs,
    ) -> None:
        super().__init__(horizon=horizon, target_col=target_col, **train_kwargs)
        self.filters = filters
        self.kernel_size = kernel_size
        self.hidden = hidden
        self.dropout = dropout

    def build(self, window: int, features: int, rng: np.random.Generator) -> Module:
        return _CNNLSTMNet(
            features, self.filters, self.kernel_size, self.hidden, self.horizon,
            self.dropout, rng,
        )
