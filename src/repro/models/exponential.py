"""Exponential-smoothing forecasters (simple and Holt's linear trend).

Classical one-pass baselines from the workload-prediction literature the
paper surveys (§VI-A). Both fit their smoothing constants by grid search
on the training series' one-step error and then forecast each evaluation
window independently from its own history, mirroring the ARIMA wrapper's
rolling protocol.
"""

from __future__ import annotations

import numpy as np

from .base import Forecaster, register_forecaster

__all__ = ["simple_exponential_smoothing", "holt_linear", "HoltForecaster"]


def simple_exponential_smoothing(series: np.ndarray, alpha: float) -> np.ndarray:
    """Level estimates ``l_t = alpha * x_t + (1 - alpha) * l_{t-1}``.

    Returns the level after observing each point; the one-step forecast
    for ``t+1`` is ``l_t``.
    """
    series = np.asarray(series, float)
    if series.ndim != 1 or len(series) == 0:
        raise ValueError(f"series must be non-empty 1-D, got shape {series.shape}")
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    from scipy.signal import lfilter

    # l_t - (1-alpha) l_{t-1} = alpha x_t, seeded with l_0 = x_0
    levels = lfilter([alpha], [1.0, -(1.0 - alpha)], series,
                     zi=[(1.0 - alpha) * series[0]])[0]
    return levels


def holt_linear(
    series: np.ndarray, alpha: float, beta: float
) -> tuple[np.ndarray, np.ndarray]:
    """Holt's linear-trend smoothing; returns (levels, trends) per step."""
    series = np.asarray(series, float)
    if series.ndim != 1 or len(series) < 2:
        raise ValueError("need at least two points for a trend")
    if not (0.0 < alpha <= 1.0 and 0.0 <= beta <= 1.0):
        raise ValueError(f"invalid smoothing constants alpha={alpha}, beta={beta}")
    levels = np.empty(len(series))
    trends = np.empty(len(series))
    levels[0] = series[0]
    trends[0] = series[1] - series[0]
    for t in range(1, len(series)):  # genuinely sequential recursion
        levels[t] = alpha * series[t] + (1 - alpha) * (levels[t - 1] + trends[t - 1])
        trends[t] = beta * (levels[t] - levels[t - 1]) + (1 - beta) * trends[t - 1]
    return levels, trends


@register_forecaster("holt")
class HoltForecaster(Forecaster):
    """Holt's linear trend over each window's target history.

    ``fit`` grid-searches (alpha, beta) on the training series' one-step
    error; ``predict`` smooths each window and extrapolates
    ``level + k * trend``.
    """

    def __init__(
        self,
        horizon: int = 1,
        target_col: int = 0,
        alphas: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0),
        betas: tuple[float, ...] = (0.0, 0.1, 0.3, 0.5),
    ) -> None:
        super().__init__(horizon=horizon, target_col=target_col)
        self.alphas = alphas
        self.betas = betas
        self.alpha_: float | None = None
        self.beta_: float | None = None

    def fit(self, x, y, x_val=None, y_val=None) -> "HoltForecaster":
        self._check_xy(x, y)
        x = np.asarray(x, float)
        y = np.asarray(y, float)
        series = np.concatenate([x[0, :, self.target_col], y[:, 0]])
        best = (np.inf, self.alphas[0], self.betas[0])
        for a in self.alphas:
            for b in self.betas:
                levels, trends = holt_linear(series, a, b)
                one_step = levels[:-1] + trends[:-1]
                sse = float(((series[1:] - one_step) ** 2).sum())
                if sse < best[0]:
                    best = (sse, a, b)
        _, self.alpha_, self.beta_ = best
        self.fitted = True
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        self._check_xy(x)
        x = np.asarray(x, float)
        series = x[:, :, self.target_col]  # (N, window)
        if series.shape[1] < 2:
            raise ValueError("need at least two points for a trend")
        # the recursion is sequential in time but elementwise across the
        # batch, so one pass over the window serves all N rows at once —
        # bit-identical to smoothing each row with holt_linear (the
        # fleet's micro-batched forward depends on that equivalence)
        a, b = self.alpha_, self.beta_
        level = series[:, 0].copy()
        trend = series[:, 1] - series[:, 0]
        for t in range(1, series.shape[1]):
            new_level = a * series[:, t] + (1 - a) * (level + trend)
            trend = b * (new_level - level) + (1 - b) * trend
            level = new_level
        steps = np.arange(1, self.horizon + 1)
        return level[:, None] + steps[None, :] * trend[:, None]
