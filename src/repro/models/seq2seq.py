"""Encoder-decoder (seq2seq) forecaster with Bahdanau attention.

Multi-step forecasting done the sequence-to-sequence way: an LSTM encoder
summarizes the window; an LSTM decoder emits one step at a time, at each
step attending over the encoder states (Bahdanau et al. 2015 — the
attention family the paper cites in §III-D). Compared with the direct
multi-output heads of the other forecasters, the decoder is
*autoregressive* across the horizon — the standard alternative strategy
for the paper's "long-term" regime.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers.attention import BahdanauAttention
from ..nn.layers.linear import Linear
from ..nn.layers.recurrent import LSTMCell
from ..nn.module import Module
from ..nn.tensor import Tensor
from .base import NeuralForecaster, register_forecaster

__all__ = ["Seq2SeqForecaster"]


class _Seq2SeqNet(Module):
    def __init__(
        self,
        features: int,
        hidden: int,
        horizon: int,
        target_col: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        from ..nn.layers.recurrent import LSTM as LSTMLayer

        self.encoder = LSTMLayer(features, hidden, rng=rng)
        self.decoder_cell = LSTMCell(1 + hidden, hidden, rng=rng)
        self.attention = BahdanauAttention(hidden, hidden, hidden=hidden, rng=rng)
        self.out = Linear(hidden, 1, rng=rng)
        self.horizon = horizon
        self.target_col = target_col

    def forward(self, x: Tensor) -> Tensor:
        states = self.encoder(x)  # (N, T, H)
        h = states[:, -1, :]
        c = Tensor(np.zeros_like(h.data))
        # the decoder is primed with the window's last target value
        prev = x[:, -1, self.target_col : self.target_col + 1]

        outputs = []
        for _ in range(self.horizon):
            context = self.attention(states, h)  # (N, H)
            dec_in = Tensor.concatenate([prev, context], axis=1)
            h, c = self.decoder_cell(dec_in, (h, c))
            prev = self.out(h)  # (N, 1)
            outputs.append(prev)
        return Tensor.concatenate(outputs, axis=1)


@register_forecaster("seq2seq")
class Seq2SeqForecaster(NeuralForecaster):
    def __init__(
        self,
        horizon: int = 1,
        target_col: int = 0,
        hidden: int = 24,
        **train_kwargs,
    ) -> None:
        super().__init__(horizon=horizon, target_col=target_col, **train_kwargs)
        self.hidden = hidden

    def build(self, window: int, features: int, rng: np.random.Generator) -> Module:
        return _Seq2SeqNet(features, self.hidden, self.horizon, self.target_col, rng)
