"""MLP baseline: flatten the window, stack dense layers.

The simplest learned model over the same windows — a sanity anchor
between the naive baselines and the sequence models.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers.dropout import Dropout
from ..nn.layers.linear import Linear
from ..nn.module import Module
from ..nn.tensor import Tensor
from .base import NeuralForecaster, register_forecaster

__all__ = ["MLPForecaster"]


class _MLPNet(Module):
    def __init__(
        self,
        window: int,
        features: int,
        hidden: tuple[int, ...],
        horizon: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        from ..nn.layers.container import ModuleList

        widths = [window * features, *hidden]
        self.layers = ModuleList(
            Linear(widths[i], widths[i + 1], rng=rng) for i in range(len(widths) - 1)
        )
        self.drop = Dropout(dropout, rng=rng)
        self.head = Linear(widths[-1], horizon, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        h = x.flatten_from(1)
        for layer in self.layers:
            h = self.drop(layer(h).relu())
        return self.head(h)


@register_forecaster("mlp")
class MLPForecaster(NeuralForecaster):
    def __init__(
        self,
        horizon: int = 1,
        target_col: int = 0,
        hidden: tuple[int, ...] = (64, 32),
        dropout: float = 0.1,
        **train_kwargs,
    ) -> None:
        super().__init__(horizon=horizon, target_col=target_col, **train_kwargs)
        if not hidden:
            raise ValueError("hidden may not be empty")
        self.hidden = tuple(hidden)
        self.dropout = dropout

    def build(self, window: int, features: int, rng: np.random.Generator) -> Module:
        return _MLPNet(window, features, self.hidden, self.horizon, self.dropout, rng)
