"""GRU baseline forecaster.

Not in the paper's Table II, but a standard point of comparison in the
related work it cites (RNN-family with fewer parameters than LSTM); used
by the extended ablations.
"""

from __future__ import annotations

import numpy as np

from ..nn.layers.dropout import Dropout
from ..nn.layers.linear import Linear
from ..nn.layers.recurrent import GRU
from ..nn.module import Module
from ..nn.tensor import Tensor
from .base import NeuralForecaster, register_forecaster

__all__ = ["GRUForecaster"]


class _GRUNet(Module):
    def __init__(
        self,
        features: int,
        hidden: int,
        layers: int,
        horizon: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.gru = GRU(features, hidden, num_layers=layers, rng=rng)
        self.drop = Dropout(dropout, rng=rng)
        self.head = Linear(hidden, horizon, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.drop(self.gru(x)[:, -1, :]))


@register_forecaster("gru")
class GRUForecaster(NeuralForecaster):
    def __init__(
        self,
        horizon: int = 1,
        target_col: int = 0,
        hidden: int = 32,
        layers: int = 1,
        dropout: float = 0.1,
        **train_kwargs,
    ) -> None:
        super().__init__(horizon=horizon, target_col=target_col, **train_kwargs)
        self.hidden = hidden
        self.layers = layers
        self.dropout = dropout

    def build(self, window: int, features: int, rng: np.random.Generator) -> Module:
        return _GRUNet(features, self.hidden, self.layers, self.horizon, self.dropout, rng)
