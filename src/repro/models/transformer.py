"""Causal Transformer forecaster — the post-TCN ablation.

A small encoder-only Transformer over the same windows: input projection
+ sinusoidal positions, a stack of causal pre-norm encoder blocks, last
step → linear head (zero-initialized like the TCN family). Answers the
natural follow-up to the paper: does self-attention beat dilated causal
convolution at this scale? (At cloud-telemetry window lengths the TCN's
inductive bias usually wins — the ablation bench measures it.)
"""

from __future__ import annotations

import numpy as np

from ..nn.layers.container import ModuleList
from ..nn.layers.linear import Linear
from ..nn.layers.transformer import TransformerEncoderBlock, positional_encoding
from ..nn.module import Module
from ..nn.tensor import Tensor
from .base import NeuralForecaster, register_forecaster

__all__ = ["TransformerForecaster"]


class _TransformerNet(Module):
    def __init__(
        self,
        window: int,
        features: int,
        dim: int,
        n_heads: int,
        n_blocks: int,
        horizon: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.proj = Linear(features, dim, rng=rng)
        self.positions = positional_encoding(window, dim)
        self.blocks = ModuleList(
            TransformerEncoderBlock(dim, n_heads, dropout=dropout, rng=rng)
            for _ in range(n_blocks)
        )
        self.head = Linear(dim, horizon, rng=rng)
        self.head.weight.data[...] = 0.0  # small initial loss, like the TCNs

    def forward(self, x: Tensor) -> Tensor:
        h = self.proj(x) + Tensor(self.positions[: x.shape[1]])
        for block in self.blocks:
            h = block(h)
        return self.head(h[:, -1, :])


@register_forecaster("transformer")
class TransformerForecaster(NeuralForecaster):
    def __init__(
        self,
        horizon: int = 1,
        target_col: int = 0,
        dim: int = 32,
        n_heads: int = 4,
        n_blocks: int = 2,
        dropout: float = 0.1,
        **train_kwargs,
    ) -> None:
        train_kwargs.setdefault("lr", 1e-3)
        super().__init__(horizon=horizon, target_col=target_col, **train_kwargs)
        self.dim = dim
        self.n_heads = n_heads
        self.n_blocks = n_blocks
        self.dropout = dropout

    def build(self, window: int, features: int, rng: np.random.Generator) -> Module:
        return _TransformerNet(
            window, features, self.dim, self.n_heads, self.n_blocks,
            self.horizon, self.dropout, rng,
        )
