"""Magnitude-pruned compact GRU for the online serving path.

"Efficient Online Prediction of Host Workloads Using Pruned GRU Nets"
(PAPERS.md) reports large online-prediction speedups at negligible
accuracy cost from pruning recurrent nets. This variant targets the
fleet's background refit loop: a *compact* GRU (small hidden state)
trained dense, then magnitude-pruned to a target sparsity and briefly
fine-tuned with the pruning masks re-applied after every epoch, so the
zeroed weights stay zero while the survivors adapt.

The masks are part of the model: :meth:`warm_fit` resumes (Adam moments
and all, via :class:`NeuralForecaster`) and re-clamps the masks each
epoch, so an async warm-start refit keeps the sparsity structure instead
of silently densifying — which is what makes the warm path cheap enough
to run every refit interval.
"""

from __future__ import annotations

import numpy as np

from ..nn.module import Module
from .base import NeuralForecaster, register_forecaster
from .gru import _GRUNet

__all__ = ["PrunedGRUForecaster"]


@register_forecaster("gru_pruned")
class PrunedGRUForecaster(NeuralForecaster):
    """Compact GRU, magnitude-pruned after training, masks kept on resume.

    ``sparsity`` is the fraction of each weight *matrix* zeroed (biases
    stay dense — they are O(hidden) and pruning them mostly hurts);
    ``finetune_epochs`` masked epochs follow the prune to recover the
    accuracy the cut took.
    """

    def __init__(
        self,
        horizon: int = 1,
        target_col: int = 0,
        hidden: int = 16,
        layers: int = 1,
        dropout: float = 0.0,
        sparsity: float = 0.5,
        finetune_epochs: int = 2,
        epochs: int = 30,
        **train_kwargs,
    ) -> None:
        if not 0.0 <= sparsity < 1.0:
            raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
        if finetune_epochs < 0:
            raise ValueError(f"finetune_epochs must be >= 0, got {finetune_epochs}")
        super().__init__(
            horizon=horizon, target_col=target_col, epochs=epochs, **train_kwargs
        )
        self.hidden = hidden
        self.layers = layers
        self.dropout = dropout
        self.sparsity = sparsity
        self.finetune_epochs = finetune_epochs
        self._masks: dict[str, np.ndarray] = {}

    def build(self, window: int, features: int, rng: np.random.Generator) -> Module:
        return _GRUNet(features, self.hidden, self.layers, self.horizon, self.dropout, rng)

    # -- pruning ---------------------------------------------------------------

    def _prune(self) -> None:
        """Zero the smallest-|w| entries of every weight matrix in place."""
        assert self.model is not None
        self._masks = {}
        if self.sparsity == 0.0:
            return
        for name, param in self.model.named_parameters():
            w = param.data
            if w.ndim < 2:
                continue
            k = int(self.sparsity * w.size)
            if k < 1:
                continue
            flat = np.abs(w).ravel()
            # the k-th smallest magnitude is the cut; strict > keeps exactly
            # the survivors (ties below the cut all go — deterministic)
            cut = np.partition(flat, k - 1)[k - 1]
            mask = np.abs(w) > cut
            w *= mask
            self._masks[name] = mask

    def _apply_masks(self) -> None:
        """Re-clamp pruned weights to zero (after every fine-tune epoch)."""
        assert self.model is not None
        if not self._masks:
            return
        for name, param in self.model.named_parameters():
            mask = self._masks.get(name)
            if mask is not None:
                param.data *= mask

    def _masked_epochs(
        self,
        x: np.ndarray,
        y: np.ndarray,
        x_val: np.ndarray | None,
        y_val: np.ndarray | None,
        epochs: int,
    ) -> None:
        """Train epoch-by-epoch, re-applying the masks after each step."""
        assert self.trainer is not None
        for _ in range(epochs):
            history = self.trainer.fit(
                x, y, x_val, y_val, epochs=1, batch_size=self.batch_size
            )
            self._apply_masks()
            if self.history is not None:
                self.history.train_loss.extend(history.train_loss)
                self.history.val_loss.extend(history.val_loss)
                self.history.epochs_run += history.epochs_run

    @property
    def sparsity_achieved(self) -> float:
        """Fraction of zeroed entries across the pruned weight matrices."""
        self._check_fitted()
        if not self._masks:
            return 0.0
        zeros = sum(int(m.size - m.sum()) for m in self._masks.values())
        total = sum(int(m.size) for m in self._masks.values())
        return zeros / max(total, 1)

    # -- training --------------------------------------------------------------

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
    ) -> "PrunedGRUForecaster":
        super().fit(x, y, x_val, y_val)
        self._prune()
        if self._masks and self.finetune_epochs:
            self._masked_epochs(x, y, x_val, y_val, self.finetune_epochs)
        return self

    def warm_fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
        epochs: int | None = None,
    ) -> "PrunedGRUForecaster":
        if (
            self.model is None
            or self.trainer is None
            or not self.fitted
            or getattr(self, "_fit_shape", None) != tuple(np.asarray(x).shape[1:])
        ):
            return self.fit(x, y, x_val, y_val)
        self._check_xy(x, y)
        budget = int(epochs) if epochs is not None else max(1, self.epochs // 4)
        self._masked_epochs(x, y, x_val, y_val, budget)
        return self
