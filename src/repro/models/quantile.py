"""Quantile (probabilistic) forecasting.

The paper's allocation motivation really needs an *upper quantile* of
future demand, not its mean: reserving the q95 forecast bounds the
violation probability directly instead of via an ad-hoc headroom. This
module adds pinball-loss training to both model families:

* :class:`QuantileGBTForecaster` — gradient boosting on the pinball
  gradient (``tau - 1[y < pred]``), one booster per quantile;
* :class:`QuantileRPTCNForecaster` — the RPTCN architecture with one
  output head per quantile, trained under the summed pinball loss.
"""

from __future__ import annotations

import numpy as np

from ..nn.losses import _Loss
from ..nn.module import Module
from ..nn.tensor import Tensor
from .base import Forecaster, NeuralForecaster, register_forecaster
from .gbt import GradientBoostedTrees, RegressionTree, TreeParams
from .rptcn import RPTCN

__all__ = ["PinballLoss", "QuantileGBTForecaster", "QuantileRPTCNForecaster"]


class PinballLoss(_Loss):
    """Pinball (quantile) loss for a single quantile ``tau``.

    ``L = mean( max(tau * e, (tau - 1) * e) )`` with ``e = y - pred``;
    minimizing it makes the prediction the ``tau``-quantile of the target.
    """

    def __init__(self, tau: float, reduction: str = "mean") -> None:
        super().__init__(reduction)
        if not 0.0 < tau < 1.0:
            raise ValueError(f"tau must be in (0, 1), got {tau}")
        self.tau = tau

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        target = Tensor.ensure(target)
        err = target - prediction
        return self._reduce(Tensor.where(err.data >= 0, err * self.tau, err * (self.tau - 1.0)))


class _MultiQuantilePinball(Module):
    """Sum of pinball losses, one per output column/quantile."""

    def __init__(self, taus: tuple[float, ...]) -> None:
        super().__init__()
        self.losses = [PinballLoss(t) for t in taus]

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        target = Tensor.ensure(target)
        total = None
        for i, loss in enumerate(self.losses):
            term = loss(prediction[:, i : i + 1], target)
            total = term if total is None else total + term
        return total


class _QuantileGBT(GradientBoostedTrees):
    """Boosting under the pinball objective (unit hessian, standard trick)."""

    def __init__(self, tau: float, **kwargs) -> None:
        if not 0.0 < tau < 1.0:
            raise ValueError(f"tau must be in (0, 1), got {tau}")
        super().__init__(**kwargs)
        self.tau = tau

    def fit(self, x, y, x_val=None, y_val=None) -> "_QuantileGBT":
        x = np.asarray(x, float)
        y = np.asarray(y, float).reshape(-1)
        rng = np.random.default_rng(self.seed)

        self.trees = []
        self.eval_history_ = []
        self.base_score_ = float(np.quantile(y, self.tau))
        pred = np.full(len(y), self.base_score_)
        n, f = x.shape
        for _ in range(self.n_estimators):
            # pinball gradient: d/dpred = (1 - tau) where pred > y else -tau
            g = np.where(pred >= y, 1.0 - self.tau, -self.tau)
            h = np.ones(n)
            rows = (
                rng.choice(n, size=max(1, int(n * self.subsample)), replace=False)
                if self.subsample < 1.0
                else np.arange(n)
            )
            tree = RegressionTree(self.tree_params).fit(x[rows], g[rows], h[rows])
            self.trees.append(tree)
            pred += self.learning_rate * tree.predict(x)
        self.best_iteration_ = len(self.trees) - 1
        self.fitted = True
        return self


@register_forecaster("quantile_xgboost")
class QuantileGBTForecaster(Forecaster):
    """One pinball booster per requested quantile; horizon fixed at 1.

    ``predict`` returns ``(N, len(taus))`` — one column per quantile in
    ascending ``taus`` order (callers pick the risk level they reserve at).
    """

    def __init__(
        self,
        taus: tuple[float, ...] = (0.5, 0.95),
        target_col: int = 0,
        **gbt_kwargs,
    ) -> None:
        super().__init__(horizon=1, target_col=target_col)
        if not taus or any(not 0.0 < t < 1.0 for t in taus):
            raise ValueError(f"taus must be in (0, 1), got {taus}")
        self.taus = tuple(sorted(taus))
        self.gbt_kwargs = gbt_kwargs
        self.models: list[_QuantileGBT] = []

    def fit(self, x, y, x_val=None, y_val=None) -> "QuantileGBTForecaster":
        self._check_xy(x, y)
        xf = np.asarray(x, float).reshape(len(x), -1)
        y1 = np.asarray(y, float)[:, 0]
        self.models = [
            _QuantileGBT(tau, **self.gbt_kwargs).fit(xf, y1) for tau in self.taus
        ]
        self.fitted = True
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        self._check_xy(x)
        xf = np.asarray(x, float).reshape(len(x), -1)
        return np.column_stack([m.predict(xf) for m in self.models])

    def predict_quantile(self, x: np.ndarray, tau: float) -> np.ndarray:
        """Predictions of one fitted quantile."""
        self._check_fitted()
        try:
            i = self.taus.index(tau)
        except ValueError:
            raise KeyError(f"tau {tau} not among fitted quantiles {self.taus}") from None
        return self.predict(x)[:, i]


@register_forecaster("quantile_rptcn")
class QuantileRPTCNForecaster(NeuralForecaster):
    """RPTCN with one output per quantile, trained under summed pinball loss.

    The ``horizon`` slot of the base class carries the quantile count;
    prediction columns follow ascending ``taus``.
    """

    def __init__(
        self,
        taus: tuple[float, ...] = (0.5, 0.95),
        target_col: int = 0,
        channels: tuple[int, ...] = (16, 16, 16),
        **train_kwargs,
    ) -> None:
        if not taus or any(not 0.0 < t < 1.0 for t in taus):
            raise ValueError(f"taus must be in (0, 1), got {taus}")
        taus = tuple(sorted(taus))
        train_kwargs.setdefault("lr", 2e-3)
        super().__init__(horizon=len(taus), target_col=target_col, **train_kwargs)
        self.taus = taus
        self.channels = tuple(channels)

    def build(self, window: int, features: int, rng: np.random.Generator) -> Module:
        return RPTCN(features, horizon=len(self.taus), channels=self.channels, rng=rng)

    def fit(self, x, y, x_val=None, y_val=None) -> "QuantileRPTCNForecaster":
        self._check_xy(x, y)
        if np.asarray(y).shape[1] != 1:
            raise ValueError("quantile forecasting expects a 1-step target")
        super().fit(x, y, x_val, y_val)
        return self

    def _make_loss(self) -> Module:
        return _MultiQuantilePinball(self.taus)

    def predict_quantile(self, x: np.ndarray, tau: float) -> np.ndarray:
        self._check_fitted()
        try:
            i = self.taus.index(tau)
        except ValueError:
            raise KeyError(f"tau {tau} not among fitted quantiles {self.taus}") from None
        return self.predict(x)[:, i]
