"""Naive reference forecasters.

Not in the paper's Table II, but indispensable for sanity-checking a
forecasting benchmark: any learned model that cannot beat persistence on
a high-dynamic series has learned nothing.
"""

from __future__ import annotations

import numpy as np

from .base import Forecaster, register_forecaster

__all__ = ["PersistenceForecaster", "MeanForecaster", "DriftForecaster"]


@register_forecaster("persistence")
class PersistenceForecaster(Forecaster):
    """Predict the last observed target value for every future step."""

    def fit(self, x, y, x_val=None, y_val=None) -> "PersistenceForecaster":
        self._check_xy(x, y)
        self.fitted = True
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        self._check_xy(x)
        last = np.asarray(x)[:, -1, self.target_col]
        return np.repeat(last[:, None], self.horizon, axis=1)


@register_forecaster("mean")
class MeanForecaster(Forecaster):
    """Predict the mean of the window's target history."""

    def fit(self, x, y, x_val=None, y_val=None) -> "MeanForecaster":
        self._check_xy(x, y)
        self.fitted = True
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        self._check_xy(x)
        m = np.asarray(x)[:, :, self.target_col].mean(axis=1)
        return np.repeat(m[:, None], self.horizon, axis=1)


@register_forecaster("drift")
class DriftForecaster(Forecaster):
    """Extrapolate the window's average slope (the classic drift method)."""

    def fit(self, x, y, x_val=None, y_val=None) -> "DriftForecaster":
        self._check_xy(x, y)
        self.fitted = True
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        self._check_xy(x)
        hist = np.asarray(x)[:, :, self.target_col]
        w = hist.shape[1]
        if w < 2:
            return np.repeat(hist[:, -1][:, None], self.horizon, axis=1)
        slope = (hist[:, -1] - hist[:, 0]) / (w - 1)
        steps = np.arange(1, self.horizon + 1)
        return hist[:, -1][:, None] + slope[:, None] * steps[None, :]
