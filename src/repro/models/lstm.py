"""LSTM baseline (Tran et al. 2018; the paper's Table II "LSTM" row)."""

from __future__ import annotations

import numpy as np

from ..nn.layers.dropout import Dropout
from ..nn.layers.linear import Linear
from ..nn.layers.recurrent import LSTM
from ..nn.module import Module
from ..nn.tensor import Tensor
from .base import NeuralForecaster, register_forecaster

__all__ = ["LSTMForecaster"]


class _LSTMNet(Module):
    """(N, W, F) -> LSTM -> last hidden state -> linear head."""

    def __init__(
        self,
        features: int,
        hidden: int,
        layers: int,
        horizon: int,
        dropout: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.lstm = LSTM(features, hidden, num_layers=layers, rng=rng)
        self.drop = Dropout(dropout, rng=rng)
        self.head = Linear(hidden, horizon, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        seq = self.lstm(x)  # (N, W, H)
        last = seq[:, -1, :]
        return self.head(self.drop(last))


@register_forecaster("lstm")
class LSTMForecaster(NeuralForecaster):
    def __init__(
        self,
        horizon: int = 1,
        target_col: int = 0,
        hidden: int = 32,
        layers: int = 1,
        dropout: float = 0.1,
        **train_kwargs,
    ) -> None:
        super().__init__(horizon=horizon, target_col=target_col, **train_kwargs)
        self.hidden = hidden
        self.layers = layers
        self.dropout = dropout

    def build(self, window: int, features: int, rng: np.random.Generator) -> Module:
        return _LSTMNet(features, self.hidden, self.layers, self.horizon, self.dropout, rng)
