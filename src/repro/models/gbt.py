"""Gradient-boosted regression trees — the XGBoost baseline, from scratch.

Implements the second-order boosting objective of Chen & Guestrin (2016):
each tree greedily maximizes the regularized gain

    gain = 1/2 [ G_L^2/(H_L+lambda) + G_R^2/(H_R+lambda) - G^2/(H+lambda) ] - gamma

with leaf weights ``-G/(H+lambda)``. For the squared-error objective used
here the hessian is 1, so this reduces exactly to XGBoost's regression
path. Split search is vectorized: per feature, samples are sorted once and
prefix sums of gradients give every candidate split's gain in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import Forecaster, register_forecaster

__all__ = ["TreeParams", "RegressionTree", "GradientBoostedTrees", "GBTForecaster"]


@dataclass(frozen=True)
class TreeParams:
    max_depth: int = 4
    min_child_weight: float = 1.0
    reg_lambda: float = 1.0
    gamma: float = 0.0

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.reg_lambda < 0 or self.gamma < 0 or self.min_child_weight < 0:
            raise ValueError("regularization parameters must be non-negative")


class RegressionTree:
    """One CART-style tree grown on gradients/hessians.

    Nodes are stored in parallel arrays (feature, threshold, children,
    value); prediction routes all samples through the arrays with a loop
    over depth rather than over samples.
    """

    def __init__(self, params: TreeParams) -> None:
        self.params = params
        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.value: list[float] = []
        self._gain: list[float] = []

    def _new_node(self) -> int:
        self.feature.append(-1)
        self.threshold.append(0.0)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(0.0)
        self._gain.append(0.0)
        return len(self.feature) - 1

    @staticmethod
    def _leaf_weight(g_sum: float, h_sum: float, reg_lambda: float) -> float:
        return -g_sum / (h_sum + reg_lambda)

    def _best_split(
        self, x: np.ndarray, g: np.ndarray, h: np.ndarray, feature_ids: np.ndarray
    ) -> tuple[float, int, float] | None:
        """Return (gain, feature, threshold) of the best split, or None."""
        p = self.params
        g_total = g.sum()
        h_total = h.sum()
        parent_score = g_total**2 / (h_total + p.reg_lambda)

        best_gain = 0.0
        best: tuple[float, int, float] | None = None
        for f in feature_ids:
            col = x[:, f]
            order = np.argsort(col, kind="stable")
            vals = col[order]
            if vals[0] == vals[-1]:
                continue
            gs = np.cumsum(g[order])[:-1]
            hs = np.cumsum(h[order])[:-1]
            # split between positions i and i+1 only where the value changes
            valid = vals[1:] != vals[:-1]
            valid &= (hs >= p.min_child_weight) & ((h_total - hs) >= p.min_child_weight)
            if not valid.any():
                continue
            gl, hl = gs[valid], hs[valid]
            gr, hr = g_total - gl, h_total - hl
            gains = 0.5 * (
                gl**2 / (hl + p.reg_lambda)
                + gr**2 / (hr + p.reg_lambda)
                - parent_score
            ) - p.gamma
            k = int(np.argmax(gains))
            if gains[k] > best_gain:
                idx = np.flatnonzero(valid)[k]
                thr = 0.5 * (vals[idx] + vals[idx + 1])
                best_gain = float(gains[k])
                best = (best_gain, int(f), float(thr))
        return best

    def fit(
        self,
        x: np.ndarray,
        g: np.ndarray,
        h: np.ndarray,
        feature_ids: np.ndarray | None = None,
    ) -> "RegressionTree":
        x = np.asarray(x, float)
        g = np.asarray(g, float)
        h = np.asarray(h, float)
        if x.ndim != 2 or len(x) != len(g) or len(g) != len(h):
            raise ValueError("x must be (N, F) with aligned g, h")
        feature_ids = (
            np.arange(x.shape[1]) if feature_ids is None else np.asarray(feature_ids)
        )

        root = self._new_node()
        stack: list[tuple[int, np.ndarray, int]] = [(root, np.arange(len(x)), 0)]
        while stack:
            node, idx, depth = stack.pop()
            g_node, h_node = g[idx], h[idx]
            split = (
                self._best_split(x[idx], g_node, h_node, feature_ids)
                if depth < self.params.max_depth and len(idx) >= 2
                else None
            )
            if split is None:
                self.value[node] = self._leaf_weight(
                    g_node.sum(), h_node.sum(), self.params.reg_lambda
                )
                continue
            gain, f, thr = split
            self.feature[node] = f
            self.threshold[node] = thr
            self._gain[node] = gain
            go_left = x[idx, f] <= thr
            left_id = self._new_node()
            right_id = self._new_node()
            self.left[node] = left_id
            self.right[node] = right_id
            stack.append((left_id, idx[go_left], depth + 1))
            stack.append((right_id, idx[~go_left], depth + 1))
        self._freeze()
        return self

    def _freeze(self) -> None:
        self._feature = np.asarray(self.feature)
        self._threshold = np.asarray(self.threshold)
        self._left = np.asarray(self.left)
        self._right = np.asarray(self.right)
        self._value = np.asarray(self.value)

    def split_gains(self, n_features: int) -> np.ndarray:
        """Total gain contributed by each feature's splits in this tree."""
        gains = np.zeros(n_features)
        for node, f in enumerate(self.feature):
            if f != -1:
                gains[f] += self._gain[node]
        return gains

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    @property
    def n_leaves(self) -> int:
        return int((self._feature == -1).sum())

    @property
    def depth(self) -> int:
        depths = np.zeros(self.n_nodes, dtype=int)
        for node in range(self.n_nodes):
            for child in (self._left[node], self._right[node]):
                if child != -1:
                    depths[child] = depths[node] + 1
        return int(depths.max())

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, float)
        node = np.zeros(len(x), dtype=int)
        active = self._feature[node] != -1
        while active.any():
            f = self._feature[node[active]]
            thr = self._threshold[node[active]]
            rows = np.flatnonzero(active)
            go_left = x[rows, f] <= thr
            node[rows[go_left]] = self._left[node[rows[go_left]]]
            node[rows[~go_left]] = self._right[node[rows[~go_left]]]
            active = self._feature[node] != -1
        return self._value[node]


class GradientBoostedTrees:
    """Boosted ensemble with shrinkage, subsampling and early stopping."""

    def __init__(
        self,
        n_estimators: int = 200,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_child_weight: float = 1.0,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        subsample: float = 1.0,
        colsample: float = 1.0,
        early_stopping_rounds: int | None = 20,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError(f"learning_rate must be in (0, 1], got {learning_rate}")
        if not 0.0 < subsample <= 1.0 or not 0.0 < colsample <= 1.0:
            raise ValueError("subsample and colsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.tree_params = TreeParams(
            max_depth=max_depth,
            min_child_weight=min_child_weight,
            reg_lambda=reg_lambda,
            gamma=gamma,
        )
        self.subsample = subsample
        self.colsample = colsample
        self.early_stopping_rounds = early_stopping_rounds
        self.seed = seed
        self.trees: list[RegressionTree] = []
        self.base_score_: float = 0.0
        self.best_iteration_: int | None = None
        self.eval_history_: list[float] = []
        self.fitted = False

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
    ) -> "GradientBoostedTrees":
        x = np.asarray(x, float)
        y = np.asarray(y, float).reshape(-1)
        if x.ndim != 2 or len(x) != len(y):
            raise ValueError(f"x must be (N, F) with y (N,), got {x.shape}, {y.shape}")
        rng = np.random.default_rng(self.seed)
        has_val = x_val is not None and y_val is not None
        if has_val:
            x_val = np.asarray(x_val, float)
            y_val = np.asarray(y_val, float).reshape(-1)

        self.trees = []
        self.eval_history_ = []
        self.base_score_ = float(y.mean())
        pred = np.full(len(y), self.base_score_)
        val_pred = np.full(len(y_val), self.base_score_) if has_val else None

        best_val = float("inf")
        best_iter = -1
        n, f = x.shape
        for it in range(self.n_estimators):
            # squared loss: g = pred - y, h = 1
            g = pred - y
            h = np.ones(n)

            rows = (
                rng.choice(n, size=max(1, int(n * self.subsample)), replace=False)
                if self.subsample < 1.0
                else np.arange(n)
            )
            cols = (
                rng.choice(f, size=max(1, int(f * self.colsample)), replace=False)
                if self.colsample < 1.0
                else np.arange(f)
            )
            tree = RegressionTree(self.tree_params).fit(x[rows], g[rows], h[rows], cols)
            self.trees.append(tree)
            pred += self.learning_rate * tree.predict(x)

            if has_val:
                val_pred += self.learning_rate * tree.predict(x_val)
                val_rmse = float(np.sqrt(np.mean((val_pred - y_val) ** 2)))
                self.eval_history_.append(val_rmse)
                if val_rmse < best_val - 1e-12:
                    best_val = val_rmse
                    best_iter = it
                elif (
                    self.early_stopping_rounds is not None
                    and it - best_iter >= self.early_stopping_rounds
                ):
                    break

        if has_val and best_iter >= 0:
            self.best_iteration_ = best_iter
            self.trees = self.trees[: best_iter + 1]
        else:
            self.best_iteration_ = len(self.trees) - 1
        self.fitted = True
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if not self.fitted:
            raise RuntimeError("fit before predict")
        x = np.asarray(x, float)
        out = np.full(len(x), self.base_score_)
        for tree in self.trees:
            out += self.learning_rate * tree.predict(x)
        return out

    def feature_importances(self, n_features: int) -> np.ndarray:
        """Gain-based feature importances, normalized to sum to one.

        The tree-ensemble analogue of the paper's PCC screening: it
        reveals which (indicator, lag) columns the booster actually
        exploits, and cross-checks the correlation ranking.
        """
        if not self.fitted:
            raise RuntimeError("fit before reading importances")
        gains = np.zeros(n_features)
        for tree in self.trees:
            gains += tree.split_gains(n_features)
        total = gains.sum()
        return gains / total if total > 0 else gains

    def staged_train_loss(self, x: np.ndarray, y: np.ndarray) -> list[float]:
        """Training MSE after each boosting round (Fig. 9 convergence data)."""
        if not self.fitted:
            raise RuntimeError("fit before staged_train_loss")
        x = np.asarray(x, float)
        y = np.asarray(y, float).reshape(-1)
        pred = np.full(len(x), self.base_score_)
        losses = []
        for tree in self.trees:
            pred += self.learning_rate * tree.predict(x)
            losses.append(float(np.mean((pred - y) ** 2)))
        return losses


@register_forecaster("xgboost")
class GBTForecaster(Forecaster):
    """Windowed-interface wrapper: one booster per horizon step.

    Windows are flattened to ``(N, window * features)``; multi-step
    horizons train independent boosters per step (direct multi-step
    strategy, which is what tree libraries do in practice).
    """

    def __init__(
        self,
        horizon: int = 1,
        target_col: int = 0,
        **gbt_kwargs,
    ) -> None:
        super().__init__(horizon=horizon, target_col=target_col)
        self.gbt_kwargs = gbt_kwargs
        self.models: list[GradientBoostedTrees] = []

    @staticmethod
    def _flatten(x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, float)
        return x.reshape(len(x), -1)

    def fit(self, x, y, x_val=None, y_val=None) -> "GBTForecaster":
        self._check_xy(x, y)
        xf = self._flatten(x)
        y = np.asarray(y, float)
        xv = self._flatten(x_val) if x_val is not None else None
        self.models = []
        for k in range(self.horizon):
            m = GradientBoostedTrees(**self.gbt_kwargs)
            m.fit(
                xf,
                y[:, k],
                xv,
                np.asarray(y_val, float)[:, k] if (xv is not None and y_val is not None) else None,
            )
            self.models.append(m)
        self.fitted = True
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        self._check_xy(x)
        xf = self._flatten(x)
        return np.column_stack([m.predict(xf) for m in self.models])

    @property
    def loss_curves(self) -> dict[str, list[float]]:
        """Validation RMSE per boosting round of the first-step model."""
        self._check_fitted()
        return {"val_loss": list(self.models[0].eval_history_)}
