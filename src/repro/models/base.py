"""Forecaster interface and registry.

Every model — deep or classical — consumes the same windowed supervised
format produced by :mod:`repro.data.windowing`:

* ``x``: ``(N, window, features)`` normalized inputs,
* ``y``: ``(N, horizon)`` future values of the target indicator.

``target_col`` names the feature column holding the target's *current*
value (needed by the univariate classical models and the naive baselines).
"""

from __future__ import annotations

import abc
import pickle
from typing import Callable, Type

import numpy as np

from ..nn.losses import MSELoss
from ..nn.module import Module
from ..nn.optim import Adam
from ..training.callbacks import EarlyStopping
from ..training.trainer import Trainer, TrainingHistory

__all__ = [
    "Forecaster",
    "NeuralForecaster",
    "register_forecaster",
    "create_forecaster",
    "FORECASTER_REGISTRY",
]


class Forecaster(abc.ABC):
    """fit/predict interface over windowed data."""

    #: short machine name, set by the registry decorator
    name: str = ""

    def __init__(self, horizon: int = 1, target_col: int = 0) -> None:
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        self.horizon = horizon
        self.target_col = target_col
        self.fitted = False

    @abc.abstractmethod
    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
    ) -> "Forecaster":
        """Train on windowed data; validation data drives early stopping."""

    @abc.abstractmethod
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Return ``(N, horizon)`` predictions.

        **Batch contract:** rows are independent — predicting a stacked
        ``(N, window, features)`` batch must equal predicting each row
        separately and concatenating the results. Classical forecasters
        are bit-for-bit; GEMM-backed neural forwards may differ by
        floating-point reduction order only (a few ulps), never by any
        genuine cross-row coupling (no batch statistics, no sampling
        shared across rows). Serving relies on this: the fleet predictor
        stacks the due windows of many streams into one batch and makes
        a single ``predict`` call, and
        ``tests/models/test_batch_parity.py`` asserts the equivalence
        for every registered forecaster.
        """

    # -- warm-start contract ---------------------------------------------------

    @property
    def supports_warm_fit(self) -> bool:
        """Whether :meth:`warm_fit` is cheaper than a fit-from-scratch.

        Online callers (the async refit engine) use this to decide
        whether shipping the current weights to a background worker buys
        anything; models that just re-fit report ``False``.
        """
        return False

    def warm_fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
        epochs: int | None = None,
    ) -> "Forecaster":
        """Resume training from the current parameters on fresh windows.

        The contract is *best effort*: a model that cannot resume (never
        fitted, incompatible input shape, no incremental procedure) must
        fall back to a full :meth:`fit` rather than raise — callers
        treat ``warm_fit`` as "give me an updated model", not as a
        guarantee of incrementality. ``epochs`` bounds the resume budget
        for iterative models and is ignored by the rest. The base
        implementation is exactly the cold path.
        """
        del epochs  # the cold path has no epoch budget to bound
        return self.fit(x, y, x_val, y_val)

    # -- shared validation helpers -------------------------------------------

    @staticmethod
    def _check_xy(x: np.ndarray, y: np.ndarray | None = None) -> None:
        x = np.asarray(x)
        if x.ndim != 3:
            raise ValueError(f"x must be (N, window, features), got shape {x.shape}")
        if y is not None:
            y = np.asarray(y)
            if y.ndim != 2 or len(y) != len(x):
                raise ValueError(
                    f"y must be (N, horizon) aligned with x, got {y.shape} for x {x.shape}"
                )

    def _check_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError(f"{type(self).__name__} is not fitted")

    # -- serialization --------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize the fitted forecaster (parameters and all) to bytes.

        Every forecaster in the registry — classical and ``repro.nn``
        based — holds only NumPy arrays, plain Python state and RNGs, so
        a pickle round-trip reproduces predictions bit-for-bit. Used by
        the serving checkpoint (:mod:`repro.streaming.checkpoint`); the
        payload is a trusted local artifact, not a wire format.
        """
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def from_bytes(payload: bytes) -> "Forecaster":
        """Inverse of :meth:`to_bytes`; validates the payload type."""
        obj = pickle.loads(payload)
        if not isinstance(obj, Forecaster):
            raise TypeError(
                f"payload deserialized to {type(obj).__name__}, expected a Forecaster"
            )
        return obj


#: name → Forecaster subclass
FORECASTER_REGISTRY: dict[str, Type[Forecaster]] = {}


def register_forecaster(name: str) -> Callable[[Type[Forecaster]], Type[Forecaster]]:
    """Class decorator adding the forecaster to the global registry."""

    def deco(cls: Type[Forecaster]) -> Type[Forecaster]:
        if name in FORECASTER_REGISTRY:
            raise KeyError(f"forecaster {name!r} already registered")
        FORECASTER_REGISTRY[name] = cls
        cls.name = name
        return cls

    return deco


def create_forecaster(name: str, **kwargs) -> Forecaster:
    """Instantiate a registered forecaster by name."""
    try:
        cls = FORECASTER_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown forecaster {name!r}; registered: {sorted(FORECASTER_REGISTRY)}"
        ) from None
    return cls(**kwargs)


class NeuralForecaster(Forecaster):
    """Shared training plumbing for the deep models.

    Subclasses implement :meth:`build` returning an ``nn.Module`` mapping
    ``(N, window, features)`` tensors to ``(N, horizon)``. Training follows
    the paper's recipe: Adam + MSE, EarlyStopping(patience=10) on
    validation loss with best-weight restore.
    """

    def __init__(
        self,
        horizon: int = 1,
        target_col: int = 0,
        epochs: int = 60,
        batch_size: int = 32,
        lr: float = 1e-3,
        patience: int = 10,
        grad_clip_norm: float | None = 5.0,
        seed: int = 0,
    ) -> None:
        super().__init__(horizon=horizon, target_col=target_col)
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.patience = patience
        self.grad_clip_norm = grad_clip_norm
        self.seed = seed
        self.model: Module | None = None
        self.trainer: Trainer | None = None
        self.history: TrainingHistory | None = None

    @abc.abstractmethod
    def build(self, window: int, features: int, rng: np.random.Generator) -> Module:
        """Construct the underlying network for the given input shape."""

    def _make_loss(self) -> Module:
        """Training objective; subclasses may override (e.g. pinball)."""
        return MSELoss()

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
    ) -> "NeuralForecaster":
        self._check_xy(x, y)
        rng = np.random.default_rng(self.seed)
        _, window, features = x.shape
        self._fit_shape = (window, features)
        self.model = self.build(window, features, rng)
        self.trainer = Trainer(
            self.model,
            Adam(self.model.parameters(), lr=self.lr),
            self._make_loss(),
            grad_clip_norm=self.grad_clip_norm,
            rng=rng,
        )
        callbacks = []
        if x_val is not None and y_val is not None:
            callbacks.append(EarlyStopping(patience=self.patience))
        self.history = self.trainer.fit(
            x,
            y,
            x_val,
            y_val,
            epochs=self.epochs,
            batch_size=self.batch_size,
            callbacks=callbacks,
        )
        self.fitted = True
        return self

    @property
    def supports_warm_fit(self) -> bool:
        """Neural models resume from current weights + optimizer moments."""
        return True

    def warm_fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
        epochs: int | None = None,
    ) -> "NeuralForecaster":
        """Continue training the existing network for a few epochs.

        Reuses the live :class:`Trainer` — same Adam instance, so the
        optimizer's first/second moments carry over and the resume is a
        genuine continuation rather than a re-warmup. Falls back to the
        cold :meth:`fit` when there is nothing to resume (never fitted)
        or the input shape no longer matches the built network. The
        default budget is a quarter of the cold epoch count, floor 1.
        """
        if (
            self.model is None
            or self.trainer is None
            or not self.fitted
            or getattr(self, "_fit_shape", None) != tuple(np.asarray(x).shape[1:])
        ):
            return self.fit(x, y, x_val, y_val)
        self._check_xy(x, y)
        budget = int(epochs) if epochs is not None else max(1, self.epochs // 4)
        if budget < 1:
            raise ValueError(f"epochs must be >= 1, got {budget}")
        callbacks = []
        if x_val is not None and y_val is not None:
            callbacks.append(EarlyStopping(patience=self.patience))
        history = self.trainer.fit(
            x,
            y,
            x_val,
            y_val,
            epochs=budget,
            batch_size=self.batch_size,
            callbacks=callbacks,
        )
        # splice the resume into the model's lifetime loss curves
        if self.history is not None:
            self.history.train_loss.extend(history.train_loss)
            self.history.val_loss.extend(history.val_loss)
            self.history.epochs_run += history.epochs_run
        else:
            self.history = history
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        self._check_xy(x)
        assert self.trainer is not None
        return self.trainer.predict(x)

    @property
    def loss_curves(self) -> dict[str, list[float]]:
        """Train/validation loss per epoch (Figs. 9-10 data)."""
        self._check_fitted()
        assert self.history is not None
        return self.history.as_dict()
