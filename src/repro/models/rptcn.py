"""RPTCN — the paper's model (Fig. 5).

Architecture, exactly as §III-D describes it:

1. a TCN backbone (dilated causal convolutions in weight-normalized
   residual blocks, e.g. kernel 3 with dilations ``[1, 2, 4]``),
2. a **fully connected layer** that "linearly combines the features
   extracted by the previous convolution layer to synthesize the impact
   of different feature values on resource utilization" (eq. 6),
3. an **attention mechanism** that "adjusts the weights of the
   performance indicators at different moments to the predicted CPU
   usage" (eqs. 7-8),
4. a linear output head emitting the ``horizon`` future CPU values.
"""

from __future__ import annotations

import numpy as np

from ..nn import init as nn_init
from ..nn.layers.attention import FeatureAttention, TemporalAttention
from ..nn.layers.linear import Linear
from ..nn.module import Module
from ..nn.tensor import Tensor
from .base import NeuralForecaster, register_forecaster
from .tcn import TCN

__all__ = ["RPTCN", "RPTCNForecaster"]


class RPTCN(Module):
    """TCN → fully connected layer → attention → output head.

    Parameters
    ----------
    features:
        Input feature count (after correlation screening / expansion).
    horizon:
        Number of future steps predicted jointly.
    channels, kernel_size, dilations, dropout:
        TCN backbone configuration (paper Fig. 5 uses kernel 3 and
        dilations [1, 2, 4]).
    fc_units:
        Width of the fully connected combination layer.
    attention:
        ``"feature"`` (the paper's eq. 7-8 elementwise form, default),
        ``"temporal"`` (attention over time steps before the FC layer),
        or ``"none"`` (ablation).
    """

    def __init__(
        self,
        features: int,
        horizon: int = 1,
        channels: tuple[int, ...] = (16, 16, 16),
        kernel_size: int = 3,
        dilations: tuple[int, ...] | None = None,
        dropout: float = 0.1,
        fc_units: int = 32,
        attention: str = "feature",
        use_fc: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if attention not in ("feature", "temporal", "none"):
            raise ValueError(
                f"attention must be feature/temporal/none, got {attention!r}"
            )
        rng = rng if rng is not None else nn_init.default_rng()
        self.attention_kind = attention
        self.use_fc = use_fc
        self.backbone = TCN(
            features,
            channels,
            kernel_size=kernel_size,
            dropout=dropout,
            dilations=dilations,
            rng=rng,
        )
        c_out = channels[-1]

        self.temporal_attention = (
            TemporalAttention(c_out, rng=rng) if attention == "temporal" else None
        )
        fc_in = c_out
        self.fc = Linear(fc_in, fc_units, rng=rng) if use_fc else None
        head_in = fc_units if use_fc else fc_in
        self.feature_attention = (
            FeatureAttention(head_in, rng=rng) if attention == "feature" else None
        )
        self.head = Linear(head_in, horizon, rng=rng)
        # zero-init the output head: predictions start at 0 so the initial
        # loss is small and training is stable regardless of the magnitude
        # the residual stack produces at init (the paper's Fig. 9 notes
        # RPTCN's loss "is very small at the beginning")
        self.head.weight.data[...] = 0.0

    def forward(self, x: Tensor) -> Tensor:
        # (N, W, F) -> (N, F, W) channels-first for the convolutions
        h = self.backbone(x.swapaxes(1, 2))  # (N, C, W)

        if self.temporal_attention is not None:
            z = self.temporal_attention(h.swapaxes(1, 2))  # (N, C)
        else:
            z = h[:, :, -1]  # causal: last step summarizes the window

        if self.fc is not None:
            z = self.fc(z).relu()
        if self.feature_attention is not None:
            z = self.feature_attention(z)
        return self.head(z)

    def attention_weights(self, x: Tensor) -> np.ndarray | None:
        """Post-FC attention vector for interpretability (None if ablated)."""
        if self.feature_attention is None:
            return None
        h = self.backbone(x.swapaxes(1, 2))
        z = h[:, :, -1]
        if self.fc is not None:
            z = self.fc(z).relu()
        return self.feature_attention.attention_weights(z)


@register_forecaster("rptcn")
class RPTCNForecaster(NeuralForecaster):
    """The paper's model wrapped in the common fit/predict interface."""

    def __init__(
        self,
        horizon: int = 1,
        target_col: int = 0,
        channels: tuple[int, ...] = (16, 16, 16),
        kernel_size: int = 3,
        dilations: tuple[int, ...] | None = None,
        dropout: float = 0.1,
        fc_units: int = 32,
        attention: str = "feature",
        use_fc: bool = True,
        **train_kwargs,
    ) -> None:
        train_kwargs.setdefault("lr", 2e-3)  # TCN stacks tolerate a hotter Adam
        super().__init__(horizon=horizon, target_col=target_col, **train_kwargs)
        self.channels = tuple(channels)
        self.kernel_size = kernel_size
        self.dilations = tuple(dilations) if dilations is not None else None
        self.dropout = dropout
        self.fc_units = fc_units
        self.attention = attention
        self.use_fc = use_fc

    def build(self, window: int, features: int, rng: np.random.Generator) -> Module:
        return RPTCN(
            features,
            horizon=self.horizon,
            channels=self.channels,
            kernel_size=self.kernel_size,
            dilations=self.dilations,
            dropout=self.dropout,
            fc_units=self.fc_units,
            attention=self.attention,
            use_fc=self.use_fc,
            rng=rng,
        )
