"""Evaluation metrics.

MSE (paper eq. 9) and MAE (paper eq. 10) are the two metrics Table II
reports; the rest are standard companions used by the extended analyses.
All metrics accept arrays of any matching shape and reduce over every
element.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mse", "mae", "rmse", "mape", "smape", "r2_score"]


def _check(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, float)
    y_pred = np.asarray(y_pred, float)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("empty arrays")
    return y_true, y_pred


def mse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean squared error — paper eq. (9)."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.mean((y_true - y_pred) ** 2))


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error — paper eq. (10)."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return float(np.sqrt(mse(y_true, y_pred)))


def mape(y_true: np.ndarray, y_pred: np.ndarray, eps: float = 1e-8) -> float:
    """Mean absolute percentage error; near-zero truths are floored at eps."""
    y_true, y_pred = _check(y_true, y_pred)
    denom = np.maximum(np.abs(y_true), eps)
    return float(np.mean(np.abs(y_true - y_pred) / denom) * 100.0)


def smape(y_true: np.ndarray, y_pred: np.ndarray, eps: float = 1e-8) -> float:
    """Symmetric MAPE in [0, 200]."""
    y_true, y_pred = _check(y_true, y_pred)
    denom = np.maximum((np.abs(y_true) + np.abs(y_pred)) / 2.0, eps)
    return float(np.mean(np.abs(y_true - y_pred) / denom) * 100.0)


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination; 0 for a constant truth fitted exactly."""
    y_true, y_pred = _check(y_true, y_pred)
    ss_res = float(((y_true - y_pred) ** 2).sum())
    ss_tot = float(((y_true - y_true.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot
