"""Training loop, callbacks and evaluation metrics."""

from .callbacks import (
    Callback,
    CSVLogger,
    EarlyStopping,
    History,
    LambdaCallback,
    ModelCheckpoint,
)
from .metrics import mae, mape, mse, r2_score, rmse, smape
from .trainer import Trainer, TrainingHistory

__all__ = [
    "Trainer",
    "TrainingHistory",
    "Callback",
    "EarlyStopping",
    "ModelCheckpoint",
    "CSVLogger",
    "History",
    "LambdaCallback",
    "mse",
    "mae",
    "rmse",
    "mape",
    "smape",
    "r2_score",
]
