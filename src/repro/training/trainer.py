"""Mini-batch training loop for :mod:`repro.nn` models.

The loop is observable through :mod:`repro.obs`: ``fit`` runs inside a
``train.fit`` span with one ``train.epoch`` child per epoch (and
optionally a ``train.batch`` child per batch), per-batch and per-epoch
latencies land in histograms, and loss / grad-norm / throughput gauges
track the most recent values. All of it is skipped when
:func:`repro.obs.set_enabled` has turned instrumentation off, so the
uninstrumented hot path stays as fast as before.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from ..nn import init as nn_init
from ..nn.module import Module
from ..nn.optim.base import Optimizer
from ..nn.optim.clip import clip_grad_norm
from ..nn.tensor import Tensor, no_grad
from ..obs import trace
from ..obs.registry import MetricRegistry, get_registry, is_enabled
from .callbacks import Callback, History

__all__ = ["Trainer", "TrainingHistory"]

#: shared reusable no-op context for the un-spanned batch path
_NULL_CTX = nullcontext()


@dataclass
class TrainingHistory:
    """Per-epoch loss curves produced by one :meth:`Trainer.fit` run."""

    train_loss: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    epochs_run: int = 0
    stopped_early: bool = False

    def as_dict(self) -> dict[str, list[float]]:
        return {"loss": self.train_loss, "val_loss": self.val_loss}


class Trainer:
    """Train a model with an optimizer, a loss module, and callbacks.

    Parameters
    ----------
    model, optimizer, loss:
        Any :class:`~repro.nn.Module` triple; the loss is called as
        ``loss(prediction, target)`` and must return a scalar Tensor.
    grad_clip_norm:
        Optional joint-L2 gradient clipping (recurrent nets benefit).
    rng:
        Generator for batch shuffling — keeps runs reproducible.
    registry:
        :class:`~repro.obs.MetricRegistry` for training metrics
        (``None`` = the process-global default, resolved at fit time).
    batch_spans:
        Also open a ``train.batch`` span per batch. Off by default —
        epoch spans plus the batch-latency histogram cover the common
        case without growing the trace tree by thousands of nodes.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss: Module,
        grad_clip_norm: float | None = None,
        rng: np.random.Generator | None = None,
        registry: MetricRegistry | None = None,
        batch_spans: bool = False,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss = loss
        self.grad_clip_norm = grad_clip_norm
        self.rng = rng if rng is not None else nn_init.default_rng()
        self.registry = registry
        self.batch_spans = batch_spans

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> float:
        """Mean loss over a dataset, in eval mode with autograd off."""
        self.model.eval()
        total = 0.0
        count = 0
        with no_grad():
            for start in range(0, len(x), batch_size):
                stop = min(start + batch_size, len(x))
                xb = Tensor(x[start:stop])
                yb = Tensor(y[start:stop])
                out = self.model(xb)
                loss = self.loss(out, yb)
                total += loss.item() * (stop - start)
                count += stop - start
        self.model.train()
        return total / max(count, 1)

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Forward pass over a dataset (eval mode, no graph).

        The output array is preallocated after the first batch reveals the
        head shape, and each batch is written into its slice in place —
        no Python list of batch outputs, no terminal ``np.concatenate``.
        """
        self.model.eval()
        out_arr: np.ndarray | None = None
        with no_grad():
            for start in range(0, len(x), batch_size):
                stop = min(start + batch_size, len(x))
                out = self.model(Tensor(x[start:stop])).data
                if out_arr is None:
                    out_arr = np.empty((len(x),) + out.shape[1:], dtype=out.dtype)
                out_arr[start:stop] = out
        self.model.train()
        if out_arr is None:
            return np.empty((0,))
        return out_arr

    # -- training ----------------------------------------------------------------

    def fit(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_val: np.ndarray | None = None,
        y_val: np.ndarray | None = None,
        epochs: int = 50,
        batch_size: int = 32,
        callbacks: list[Callback] | None = None,
        shuffle: bool = True,
        verbose: bool = False,
    ) -> TrainingHistory:
        callbacks = list(callbacks or [])
        history = TrainingHistory()
        has_val = x_val is not None and y_val is not None

        obs_on = is_enabled()
        if obs_on:
            reg = get_registry(self.registry)
            h_batch = reg.histogram("training_batch_seconds", "batch step latency")
            h_epoch = reg.histogram("training_epoch_seconds", "epoch latency")
            c_epochs = reg.counter("training_epochs_total", "epochs completed")
            c_batches = reg.counter("training_batches_total", "batch steps completed")
            g_loss = reg.gauge("training_loss", "most recent epoch training loss")
            g_val = reg.gauge("training_val_loss", "most recent validation loss")
            g_grad = reg.gauge("training_grad_norm", "pre-clip grad norm of the last batch")
            g_tput = reg.gauge(
                "training_throughput_samples_per_sec", "samples/s of the last epoch"
            )

        for cb in callbacks:
            cb.on_train_begin(self.model)

        self.model.train()
        n = len(x_train)
        with trace.span("train.fit") as fit_span:
            for epoch in range(epochs):
                idx = np.arange(n)
                if shuffle:
                    self.rng.shuffle(idx)
                epoch_loss = 0.0
                epoch_t0 = time.perf_counter()
                with trace.span("train.epoch") as epoch_span:
                    for start in range(0, n, batch_size):
                        sel = idx[start : start + batch_size]
                        batch_t0 = time.perf_counter()
                        batch_ctx = (
                            trace.span("train.batch")
                            if obs_on and self.batch_spans
                            else _NULL_CTX
                        )
                        with batch_ctx:
                            xb = Tensor(x_train[sel])
                            yb = Tensor(y_train[sel])
                            self.optimizer.zero_grad()
                            out = self.model(xb)
                            loss = self.loss(out, yb)
                            loss.backward()
                            if self.grad_clip_norm is not None:
                                grad_norm = clip_grad_norm(
                                    list(self.model.parameters()), self.grad_clip_norm
                                )
                                if obs_on:
                                    g_grad.set(grad_norm)
                            self.optimizer.step()
                            epoch_loss += loss.item() * len(sel)
                        if obs_on:
                            h_batch.observe(time.perf_counter() - batch_t0)
                            c_batches.inc()
                            epoch_span.add("batches")
                epoch_loss /= n
                epoch_dt = time.perf_counter() - epoch_t0

                logs: dict[str, float] = {"loss": epoch_loss}
                history.train_loss.append(epoch_loss)
                if has_val:
                    val_loss = self.evaluate(x_val, y_val)
                    logs["val_loss"] = val_loss
                    history.val_loss.append(val_loss)
                history.epochs_run = epoch + 1

                if obs_on:
                    h_epoch.observe(epoch_dt)
                    c_epochs.inc()
                    fit_span.add("epochs")
                    g_loss.set(epoch_loss)
                    if has_val:
                        g_val.set(logs["val_loss"])
                    if epoch_dt > 0:
                        g_tput.set(n / epoch_dt)

                if verbose:  # pragma: no cover - console output
                    extra = (
                        f" val_loss={logs.get('val_loss', float('nan')):.5f}" if has_val else ""
                    )
                    print(f"epoch {epoch + 1}/{epochs} loss={epoch_loss:.5f}{extra}")

                stop = False
                for cb in callbacks:
                    cb.on_epoch_end(epoch, logs, self.model)
                    stop = stop or cb.stop_training
                if stop:
                    history.stopped_early = True
                    break

        for cb in callbacks:
            cb.on_train_end(self.model)
        self.model.eval()
        return history
