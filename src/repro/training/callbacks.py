"""Training callbacks.

:class:`EarlyStopping` reproduces the paper's setup: "we use the callback
function EarlyStopping to prevent model overfitting, and the parameter
*patience* is 10" (§IV-A), including Keras' restore-best-weights option.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Callable

from ..ioutil import atomic_output
from ..nn.module import Module

__all__ = [
    "Callback",
    "EarlyStopping",
    "ModelCheckpoint",
    "CSVLogger",
    "History",
    "LambdaCallback",
]


class Callback:
    """Hooks invoked by :class:`repro.training.trainer.Trainer`."""

    def on_train_begin(self, model: Module) -> None: ...

    def on_epoch_end(self, epoch: int, logs: dict[str, float], model: Module) -> None: ...

    def on_train_end(self, model: Module) -> None: ...

    @property
    def stop_training(self) -> bool:
        return False


class EarlyStopping(Callback):
    """Stop when a monitored metric stops improving (paper: patience=10)."""

    def __init__(
        self,
        monitor: str = "val_loss",
        patience: int = 10,
        min_delta: float = 0.0,
        restore_best_weights: bool = True,
    ) -> None:
        if patience < 0:
            raise ValueError(f"patience must be >= 0, got {patience}")
        self.monitor = monitor
        self.patience = patience
        self.min_delta = min_delta
        self.restore_best_weights = restore_best_weights
        self.best = math.inf
        self.best_epoch = -1
        self.wait = 0
        self._stop = False
        self._best_state: dict | None = None

    @property
    def stop_training(self) -> bool:
        return self._stop

    def on_train_begin(self, model: Module) -> None:
        self.best = math.inf
        self.best_epoch = -1
        self.wait = 0
        self._stop = False
        self._best_state = None

    def on_epoch_end(self, epoch: int, logs: dict[str, float], model: Module) -> None:
        current = logs.get(self.monitor)
        if current is None:
            raise KeyError(
                f"EarlyStopping monitors {self.monitor!r} but logs only has {sorted(logs)}"
            )
        if current < self.best - self.min_delta:
            self.best = current
            self.best_epoch = epoch
            self.wait = 0
            if self.restore_best_weights:
                self._best_state = model.state_dict()
        else:
            self.wait += 1
            if self.wait > self.patience:
                self._stop = True

    def on_train_end(self, model: Module) -> None:
        if self.restore_best_weights and self._best_state is not None:
            model.load_state_dict(self._best_state)


class ModelCheckpoint(Callback):
    """Save model weights whenever the monitored metric improves.

    Writes are crash-safe: :meth:`Module.save` stages the archive in a
    temp file and publishes it with ``os.replace``, so a process killed
    mid-epoch never leaves a truncated ``.npz`` over the last good
    checkpoint.
    """

    def __init__(self, path: str | Path, monitor: str = "val_loss") -> None:
        self.path = Path(path)
        self.monitor = monitor
        self.best = math.inf

    def on_epoch_end(self, epoch: int, logs: dict[str, float], model: Module) -> None:
        current = logs.get(self.monitor)
        if current is None:
            raise KeyError(
                f"ModelCheckpoint monitors {self.monitor!r} but logs only has {sorted(logs)}"
            )
        if current < self.best:
            self.best = current
            model.save(self.path)


class CSVLogger(Callback):
    """Log one row of epoch logs per epoch to a CSV file.

    Every epoch republishes the whole log through
    :func:`repro.ioutil.atomic_output`, so a process killed mid-epoch
    leaves the previous epoch's complete file rather than a truncated
    row. Epoch counts are small (hundreds), so the rewrite is noise next
    to the epoch itself.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._keys: list[str] | None = None
        self._rows: list[list[float]] = []

    def _publish(self) -> None:
        with atomic_output(self.path, suffix=".csv") as tmp:
            with tmp.open("w", newline="") as fh:
                writer = csv.writer(fh)
                if self._keys is not None:
                    writer.writerow(["epoch", *self._keys])
                    writer.writerows(self._rows)

    def on_train_begin(self, model: Module) -> None:
        self._keys = None
        self._rows = []
        self._publish()

    def on_epoch_end(self, epoch: int, logs: dict[str, float], model: Module) -> None:
        if self._keys is None:
            self._keys = sorted(logs)
        self._rows.append([epoch, *[logs[k] for k in self._keys]])
        self._publish()


class History(Callback):
    """Accumulate per-epoch logs in memory (Figs. 9-10 convergence data)."""

    def __init__(self) -> None:
        self.epochs: list[int] = []
        self.records: dict[str, list[float]] = {}

    def on_train_begin(self, model: Module) -> None:
        self.epochs.clear()
        self.records.clear()

    def on_epoch_end(self, epoch: int, logs: dict[str, float], model: Module) -> None:
        self.epochs.append(epoch)
        for key, value in logs.items():
            self.records.setdefault(key, []).append(value)

    def __getitem__(self, key: str) -> list[float]:
        return self.records[key]


class LambdaCallback(Callback):
    """Adapt plain functions into a callback."""

    def __init__(
        self,
        on_epoch_end: Callable[[int, dict[str, float], Module], None] | None = None,
        on_train_begin: Callable[[Module], None] | None = None,
        on_train_end: Callable[[Module], None] | None = None,
    ) -> None:
        self._epoch_end = on_epoch_end
        self._train_begin = on_train_begin
        self._train_end = on_train_end

    def on_train_begin(self, model: Module) -> None:
        if self._train_begin:
            self._train_begin(model)

    def on_epoch_end(self, epoch: int, logs: dict[str, float], model: Module) -> None:
        if self._epoch_end:
            self._epoch_end(epoch, logs, model)

    def on_train_end(self, model: Module) -> None:
        if self._train_end:
            self._train_end(model)
