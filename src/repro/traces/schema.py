"""Alibaba trace v2018 schema (the paper's Table I).

The v2018 release has per-machine (``machine_usage``) and per-container
(``container_usage``) monitoring tables. This module pins the indicator
names, their meanings, and the record layouts, and defines the in-memory
containers (:class:`EntityTrace`, :class:`ClusterTrace`) the rest of the
library operates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

import numpy as np

__all__ = [
    "Indicator",
    "INDICATORS",
    "MACHINE_COLUMNS",
    "CONTAINER_COLUMNS",
    "indicator_names",
    "ContainerKind",
    "EntityTrace",
    "ClusterTrace",
]


@dataclass(frozen=True)
class Indicator:
    """One monitored performance indicator (a row of the paper's Table I)."""

    name: str
    meaning: str
    unit: str
    lo: float
    hi: float


#: The paper's Table I, in its published order. Bounds are the value ranges
#: the public trace reports (utilizations in percent, normalized rates in
#: [0, 100] after the trace's own normalization).
INDICATORS: tuple[Indicator, ...] = (
    Indicator("cpu_util_percent", "cpu utilization percent", "%", 0.0, 100.0),
    Indicator("mem_util_percent", "memory utilization percent", "%", 0.0, 100.0),
    Indicator("cpi", "cycles per instruction", "cycles/instr", 0.0, 15.0),
    Indicator("mem_gps", "normalized memory gigabyte per second", "norm", 0.0, 100.0),
    Indicator("mpki", "misses per kilo instructions", "misses/kI", 0.0, 100.0),
    Indicator("net_in", "normalized incoming network traffic", "norm", 0.0, 100.0),
    Indicator("net_out", "normalized outgoing network traffic", "norm", 0.0, 100.0),
    Indicator("disk_io_percent", "disk io percent", "%", 0.0, 100.0),
)

_INDICATOR_INDEX = {ind.name: i for i, ind in enumerate(INDICATORS)}


def indicator_names() -> list[str]:
    """All indicator column names, in Table I order."""
    return [ind.name for ind in INDICATORS]


#: CSV layouts of the v2018 tables (identifier columns + indicators).
MACHINE_COLUMNS: tuple[str, ...] = ("machine_id", "time_stamp", *indicator_names())
CONTAINER_COLUMNS: tuple[str, ...] = (
    "container_id",
    "machine_id",
    "time_stamp",
    *indicator_names(),
)


class ContainerKind(str, Enum):
    """Workload co-location classes the trace mixes on each machine."""

    ONLINE_SERVICE = "online"
    BATCH_JOB = "batch"


@dataclass
class EntityTrace:
    """Monitoring log of one entity (a machine or a container).

    ``values`` is a ``(T, n_indicators)`` float array whose columns follow
    :data:`INDICATORS` order; missing records are NaN rows (the cleaning
    stage of Algorithm 1 handles them).
    """

    entity_id: str
    kind: str  # "machine" | "container"
    timestamps: np.ndarray  # (T,) int seconds
    values: np.ndarray  # (T, n_indicators) float
    machine_id: str | None = None  # host, for containers
    workload: str = ""  # generating archetype, for provenance

    def __post_init__(self) -> None:
        self.timestamps = np.asarray(self.timestamps)
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 2 or self.values.shape[1] != len(INDICATORS):
            raise ValueError(
                f"values must be (T, {len(INDICATORS)}), got {self.values.shape}"
            )
        if len(self.timestamps) != len(self.values):
            raise ValueError(
                f"timestamps ({len(self.timestamps)}) and values "
                f"({len(self.values)}) length mismatch"
            )

    def __len__(self) -> int:
        return len(self.timestamps)

    def indicator(self, name: str) -> np.ndarray:
        """Column view for one indicator (no copy)."""
        try:
            return self.values[:, _INDICATOR_INDEX[name]]
        except KeyError:
            raise KeyError(
                f"unknown indicator {name!r}; known: {indicator_names()}"
            ) from None

    @property
    def cpu(self) -> np.ndarray:
        return self.indicator("cpu_util_percent")

    def complete_mask(self) -> np.ndarray:
        """True where the record has no missing (NaN) field."""
        return ~np.isnan(self.values).any(axis=1)

    def to_frame(self) -> dict[str, np.ndarray]:
        """Column-name → array mapping (a minimal dataframe substitute)."""
        out: dict[str, np.ndarray] = {"time_stamp": self.timestamps}
        for i, ind in enumerate(INDICATORS):
            out[ind.name] = self.values[:, i]
        return out


@dataclass
class ClusterTrace:
    """A full synthetic cluster trace: machines plus their containers."""

    machines: list[EntityTrace] = field(default_factory=list)
    containers: list[EntityTrace] = field(default_factory=list)
    interval_seconds: int = 10
    seed: int | None = None

    def __iter__(self) -> Iterator[EntityTrace]:
        yield from self.machines
        yield from self.containers

    def get(self, entity_id: str) -> EntityTrace:
        for e in self:
            if e.entity_id == entity_id:
                return e
        raise KeyError(f"no entity {entity_id!r} in trace")

    @property
    def n_machines(self) -> int:
        return len(self.machines)

    @property
    def n_containers(self) -> int:
        return len(self.containers)

    def machine_cpu_matrix(self) -> np.ndarray:
        """Stack machine CPU columns into ``(n_machines, T)`` (Fig. 2/3 input)."""
        if not self.machines:
            raise ValueError("trace has no machines")
        return np.stack([m.cpu for m in self.machines])
