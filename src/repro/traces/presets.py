"""Named cluster presets — one-line construction of common trace shapes.

Each preset returns a ready :class:`~repro.traces.generator.TraceConfig`
so examples, tests and user code share calibrated starting points instead
of re-deriving knob values.
"""

from __future__ import annotations

from dataclasses import replace

from .generator import TraceConfig

__all__ = ["PRESETS", "preset"]


def _dev() -> TraceConfig:
    """Seconds-fast cluster for unit tests and notebooks."""
    return TraceConfig(n_machines=2, containers_per_machine=2, n_steps=600)


def _bench() -> TraceConfig:
    """The benchmark suite's default: small but statistically stable."""
    return TraceConfig(n_machines=8, containers_per_machine=3, n_steps=2000)


def _paper_like() -> TraceConfig:
    """Closest practical approximation of the paper's evaluation slice.

    The real trace covers 4034 machines over 8 days at (the paper's) 10 s
    interval; the paper trains per-entity, so fidelity requires matching
    the *per-entity series length and behaviour*, not the machine count.
    One day of 10 s samples per entity keeps the diurnal cycle resolvable.
    """
    return TraceConfig(
        n_machines=16,
        containers_per_machine=4,
        n_steps=8640,  # 24 h at 10 s
        diurnal_period=8640,
    )


def _high_dynamic() -> TraceConfig:
    """Stress preset: every container regime-switching or bursty."""
    return TraceConfig(
        n_machines=4,
        containers_per_machine=3,
        n_steps=2000,
        container_mix={"regime_switching": 0.6, "bursty": 0.4},
    )


PRESETS = {
    "dev": _dev,
    "bench": _bench,
    "paper_like": _paper_like,
    "high_dynamic": _high_dynamic,
}


def preset(name: str, **overrides) -> TraceConfig:
    """Fetch a preset config, optionally overriding fields.

    >>> cfg = preset("dev", seed=7, n_steps=800)
    """
    try:
        cfg = PRESETS[name]()
    except KeyError:
        raise KeyError(f"unknown preset {name!r}; available: {sorted(PRESETS)}") from None
    return replace(cfg, **overrides) if overrides else cfg
