"""Synthetic Alibaba-cluster-trace-v2018 substrate.

The paper evaluates on the public Alibaba trace v2018 (4034 machines, 8
days, 10 s sampling in the experiments). This environment has no network
access, so :mod:`repro.traces` generates a synthetic cluster trace with the
same schema (Table I indicators for both ``machine_usage`` and
``container_usage``) and calibrated to every quantitative property the
paper reports about the real trace — see ``DESIGN.md`` §2.
"""

from .corruption import CorruptionConfig, corrupt_trace
from .generator import ClusterTraceGenerator, TraceConfig, generate_cluster_cached
from .io import read_trace_csv, write_trace_csv
from .presets import PRESETS, preset
from .schema import (
    CONTAINER_COLUMNS,
    INDICATORS,
    MACHINE_COLUMNS,
    ContainerKind,
    EntityTrace,
    ClusterTrace,
    indicator_names,
)
from .workloads import (
    WORKLOAD_ARCHETYPES,
    bursty_load,
    mutation_load,
    periodic_load,
    ramp_load,
    regime_switching_load,
    spiky_batch_load,
)

__all__ = [
    "INDICATORS",
    "MACHINE_COLUMNS",
    "CONTAINER_COLUMNS",
    "indicator_names",
    "EntityTrace",
    "ClusterTrace",
    "ContainerKind",
    "ClusterTraceGenerator",
    "generate_cluster_cached",
    "TraceConfig",
    "CorruptionConfig",
    "corrupt_trace",
    "read_trace_csv",
    "write_trace_csv",
    "WORKLOAD_ARCHETYPES",
    "periodic_load",
    "bursty_load",
    "regime_switching_load",
    "ramp_load",
    "spiky_batch_load",
    "mutation_load",
    "PRESETS",
    "preset",
]
