"""Trace corruption — the imperfections Algorithm 1's DataClean step removes.

"Generally, the dataset is partially incomplete or has outliers due to
network anomalies, system interruption etc." (paper §III-A). This module
injects exactly those defects into a clean synthetic trace so the cleaning
stage is exercised end-to-end:

* missing fields (NaN cells) from dropped monitoring samples,
* whole missing records (NaN rows) from agent restarts,
* impulse outliers from counter glitches,
* duplicated timestamps from at-least-once log delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .schema import ClusterTrace, EntityTrace

__all__ = ["CorruptionConfig", "corrupt_entity", "corrupt_trace"]


@dataclass(frozen=True)
class CorruptionConfig:
    missing_cell_rate: float = 0.01
    missing_row_rate: float = 0.005
    outlier_rate: float = 0.003
    outlier_scale: float = 4.0
    duplicate_rate: float = 0.002
    seed: int = 7

    def __post_init__(self) -> None:
        for name in ("missing_cell_rate", "missing_row_rate", "outlier_rate", "duplicate_rate"):
            v = getattr(self, name)
            if not 0.0 <= v < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {v}")
        if self.outlier_scale <= 1.0:
            raise ValueError("outlier_scale must exceed 1")


def corrupt_entity(
    entity: EntityTrace, config: CorruptionConfig, rng: np.random.Generator
) -> EntityTrace:
    """Return a corrupted copy of one entity's log."""
    values = entity.values.copy()
    ts = entity.timestamps.copy()
    t, k = values.shape

    # impulse outliers first, so they can also be hidden by later NaNs
    outliers = rng.random((t, k)) < config.outlier_rate
    values[outliers] *= config.outlier_scale * rng.uniform(0.5, 1.5, outliers.sum())

    values[rng.random((t, k)) < config.missing_cell_rate] = np.nan
    values[rng.random(t) < config.missing_row_rate, :] = np.nan

    # duplicated timestamps: repeat a few records in place
    dup_idx = np.flatnonzero(rng.random(t - 1) < config.duplicate_rate)
    if dup_idx.size:
        insert_rows = values[dup_idx]
        insert_ts = ts[dup_idx]
        values = np.insert(values, dup_idx + 1, insert_rows, axis=0)
        ts = np.insert(ts, dup_idx + 1, insert_ts)

    return replace(entity, timestamps=ts, values=values)


def corrupt_trace(trace: ClusterTrace, config: CorruptionConfig | None = None) -> ClusterTrace:
    """Corrupt every entity of a trace (deterministic given ``config.seed``)."""
    config = config or CorruptionConfig()
    rng = np.random.default_rng(config.seed)
    return ClusterTrace(
        machines=[corrupt_entity(m, config, rng) for m in trace.machines],
        containers=[corrupt_entity(c, config, rng) for c in trace.containers],
        interval_seconds=trace.interval_seconds,
        seed=trace.seed,
    )
