"""Synthetic cluster-trace generator calibrated to Alibaba trace v2018.

A latent utilization process (see :mod:`repro.traces.workloads`) drives all
eight Table-I indicators of each entity through a coupling model chosen to
reproduce the correlation structure the paper measures on container
``c_18104`` (Fig. 7): the indicators most correlated with CPU utilization
are — in order — ``mpki``, ``cpi`` and ``mem_gps`` (micro-architectural
pressure scales with load), while ``mem_util_percent``, ``net_*`` and
``disk_io_percent`` carry substantial load-independent structure and rank
in the bottom half.

Cluster-level statistics are calibrated to §II of the paper:

* machine CPU usage is mildly diurnal, mean in the 40-60 % band;
* ~75 % of the time the cluster-average CPU usage is below 0.6 (Fig. 2);
* more than 80 % of machines stay below 50 % CPU usage most of the time
  (Fig. 3);
* containers are high-dynamic with abrupt regime changes (Fig. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from .schema import ClusterTrace, EntityTrace, INDICATORS
from .workloads import WORKLOAD_ARCHETYPES, ar1_noise, periodic_load

__all__ = ["TraceConfig", "ClusterTraceGenerator", "generate_cluster_cached"]


@dataclass
class TraceConfig:
    """Knobs of the synthetic cluster.

    Defaults give a small-but-realistic cluster that generates in well
    under a second; the benchmark harness scales ``n_steps`` and
    ``n_machines`` up per experiment.
    """

    n_machines: int = 8
    containers_per_machine: int = 3
    n_steps: int = 2000
    interval_seconds: int = 10
    seed: int = 2021
    #: archetype → sampling weight for container workloads
    container_mix: dict[str, float] = field(
        default_factory=lambda: {
            "regime_switching": 0.4,
            "bursty": 0.25,
            "spiky_batch": 0.2,
            "periodic": 0.1,
            "ramp": 0.05,
        }
    )
    #: coupling of machine load to the mean of its containers' loads
    machine_container_coupling: float = 0.45
    #: diurnal period in samples (24 h at the 10 s interval of the paper)
    diurnal_period: int = 8640
    #: maximum slow load drift per machine over the trace (tenant growth /
    #: rebalancing). Real clusters are non-stationary at the machine level —
    #: the paper's Table II shows tree baselines collapsing there, the
    #: signature of extrapolation beyond the training range.
    machine_drift_max: float = 0.2

    def __post_init__(self) -> None:
        if self.n_machines < 1:
            raise ValueError("need at least one machine")
        if self.n_steps < 16:
            raise ValueError("n_steps too small to be a trace")
        unknown = set(self.container_mix) - set(WORKLOAD_ARCHETYPES)
        if unknown:
            raise ValueError(f"unknown archetypes in container_mix: {sorted(unknown)}")
        if not self.container_mix:
            raise ValueError("container_mix may not be empty")


class ClusterTraceGenerator:
    """Generate a :class:`ClusterTrace` from a :class:`TraceConfig`."""

    def __init__(self, config: TraceConfig | None = None) -> None:
        self.config = config or TraceConfig()

    # -- indicator coupling model -------------------------------------------

    @staticmethod
    def indicators_from_load(
        load: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Map a latent load series in [0, 1] to the 8 Table-I indicators.

        Noise budgets set the Pearson ordering the paper's Fig. 7 reports:
        cpu > mpki > cpi > mem_gps  >>  mem_util > net_in/out > disk_io.
        """
        n = len(load)
        cpu = np.clip(load + ar1_noise(n, rng, phi=0.5, sigma=0.015), 0.0, 1.0)

        # micro-architectural indicators track instantaneous CPU pressure
        mpki = 0.08 + 0.62 * cpu + 0.03 * cpu**2 + ar1_noise(n, rng, phi=0.6, sigma=0.035)
        cpi_raw = 0.8 + 2.2 * cpu + 1.5 * np.clip(mpki, 0, None) * 0.45
        cpi = cpi_raw + ar1_noise(n, rng, phi=0.6, sigma=0.16)
        mem_gps = 0.10 + 0.52 * cpu + ar1_noise(n, rng, phi=0.7, sigma=0.055)

        # memory utilization: slow-moving allocation level, weak load coupling
        mem_util = (
            0.45
            + ar1_noise(n, rng, phi=0.999, sigma=0.12)
            + 0.12 * (cpu - cpu.mean())
        )

        # network: shared flow component plus per-direction bursts
        flow = np.clip(ar1_noise(n, rng, phi=0.9, sigma=0.1) + 0.2, 0.0, None)
        net_in = 0.12 + 0.22 * cpu + 0.6 * flow + ar1_noise(n, rng, phi=0.5, sigma=0.04)
        net_out = 0.10 + 0.18 * cpu + 0.5 * flow + ar1_noise(n, rng, phi=0.5, sigma=0.04)

        # disk: mostly independent spiky I/O
        disk_spikes = np.where(rng.random(n) < 0.03, rng.uniform(0.3, 0.9, n), 0.0)
        disk = 0.06 + 0.10 * cpu + disk_spikes + ar1_noise(n, rng, phi=0.4, sigma=0.03)

        columns = {
            "cpu_util_percent": 100.0 * cpu,
            "mem_util_percent": 100.0 * np.clip(mem_util, 0.0, 1.0),
            "cpi": np.clip(cpi, 0.1, 15.0),
            "mem_gps": 100.0 * np.clip(mem_gps, 0.0, 1.0),
            "mpki": 100.0 * np.clip(mpki, 0.0, 1.0),
            "net_in": 100.0 * np.clip(net_in, 0.0, 1.0),
            "net_out": 100.0 * np.clip(net_out, 0.0, 1.0),
            "disk_io_percent": 100.0 * np.clip(disk, 0.0, 1.0),
        }
        return np.column_stack([columns[ind.name] for ind in INDICATORS])

    # -- workload sampling -----------------------------------------------------

    def _sample_archetype(self, rng: np.random.Generator) -> str:
        names = sorted(self.config.container_mix)
        weights = np.array([self.config.container_mix[k] for k in names], dtype=float)
        weights /= weights.sum()
        return str(rng.choice(names, p=weights))

    def _container_load(self, name: str, rng: np.random.Generator) -> np.ndarray:
        return WORKLOAD_ARCHETYPES[name](self.config.n_steps, rng)

    # -- entity builders ----------------------------------------------------------

    def _timestamps(self) -> np.ndarray:
        cfg = self.config
        return np.arange(cfg.n_steps, dtype=np.int64) * cfg.interval_seconds

    def generate(self) -> ClusterTrace:
        """Build the full cluster: machines, each hosting its containers."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        ts = self._timestamps()

        machines: list[EntityTrace] = []
        containers: list[EntityTrace] = []
        for mi in range(cfg.n_machines):
            machine_id = f"m_{mi + 1000}"
            # containers first: their aggregate load feeds the host series
            loads = []
            for ci in range(cfg.containers_per_machine):
                archetype = self._sample_archetype(rng)
                load = self._container_load(archetype, rng)
                loads.append(load)
                containers.append(
                    EntityTrace(
                        entity_id=f"c_{mi * cfg.containers_per_machine + ci + 18000}",
                        kind="container",
                        timestamps=ts,
                        values=self.indicators_from_load(load, rng),
                        machine_id=machine_id,
                        workload=archetype,
                    )
                )

            base = periodic_load(
                cfg.n_steps,
                rng,
                base=0.48,
                amplitude=0.10,
                period=cfg.diurnal_period,
                noise=0.04,
            )
            w = cfg.machine_container_coupling
            if loads:
                machine_load = (1 - w) * base + w * np.mean(loads, axis=0)
            else:
                machine_load = base
            # slow non-stationary drift: load migrates onto (or off) the
            # host over the trace, so the chronological test split sees
            # levels absent from training
            drift_end = rng.uniform(-0.5 * cfg.machine_drift_max, cfg.machine_drift_max)
            machine_load = np.clip(
                machine_load + np.linspace(0.0, drift_end, cfg.n_steps), 0, 1
            )
            machines.append(
                EntityTrace(
                    entity_id=machine_id,
                    kind="machine",
                    timestamps=ts,
                    values=self.indicators_from_load(machine_load, rng),
                    workload="host",
                )
            )

        return ClusterTrace(
            machines=machines,
            containers=containers,
            interval_seconds=cfg.interval_seconds,
            seed=cfg.seed,
        )

    def generate_entity(
        self, archetype: str, *, entity_id: str = "c_18104", kind: str = "container",
        seed: int | None = None, **load_kwargs,
    ) -> EntityTrace:
        """Build a single standalone entity with a chosen workload archetype.

        Used by the experiment harnesses that need a specific behaviour,
        e.g. the Fig. 8 mutation series.
        """
        if archetype not in WORKLOAD_ARCHETYPES:
            raise KeyError(
                f"unknown archetype {archetype!r}; known: {sorted(WORKLOAD_ARCHETYPES)}"
            )
        rng = np.random.default_rng(self.config.seed if seed is None else seed)
        load = WORKLOAD_ARCHETYPES[archetype](self.config.n_steps, rng, **load_kwargs)
        return EntityTrace(
            entity_id=entity_id,
            kind=kind,
            timestamps=self._timestamps(),
            values=self.indicators_from_load(load, rng),
            workload=archetype,
        )


@lru_cache(maxsize=8)
def _generate_cached(
    n_machines: int, containers_per_machine: int, n_steps: int, seed: int
) -> ClusterTrace:
    return ClusterTraceGenerator(
        TraceConfig(
            n_machines=n_machines,
            containers_per_machine=containers_per_machine,
            n_steps=n_steps,
            seed=seed,
        )
    ).generate()


def generate_cluster_cached(
    *, n_machines: int, containers_per_machine: int, n_steps: int, seed: int
) -> ClusterTrace:
    """Memoized :meth:`ClusterTraceGenerator.generate` on default knobs.

    The cell-decomposed experiment harnesses regenerate their cluster
    per task; within one process this memo hands every sibling cell the
    same trace object instead of resynthesizing it. Generation is
    deterministic in the config, so the memo is observationally
    equivalent to a fresh ``generate()`` — callers must treat the shared
    trace as read-only (they already do: the serial harnesses reused one
    trace across all cells).
    """
    return _generate_cached(n_machines, containers_per_machine, n_steps, seed)
