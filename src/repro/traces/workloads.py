"""Latent-load archetypes for synthetic cloud workloads.

Each archetype returns a latent utilization series in ``[0, 1]`` that
drives all eight indicators of an entity (see
:mod:`repro.traces.generator`). The archetypes cover the behaviours the
paper observes in the Alibaba trace:

* machines show mild diurnal periodicity around 40-60 % mean utilization
  (paper Fig. 2) — :func:`periodic_load`;
* containers are *high-dynamic*: abrupt regime switches, bursts, and no
  long-range regularity (paper Fig. 1) — :func:`regime_switching_load`,
  :func:`bursty_load`, :func:`spiky_batch_load`;
* the Fig. 8 evaluation series has a sustained abrupt jump ("the CPU
  resource utilization increases abruptly after the 350th sampling point,
  then maintains a high utilization") — :func:`mutation_load`.

All series are produced by vectorized NumPy (AR(1) smoothing is the one
``np.add.accumulate``-style recursion, done via ``scipy.signal.lfilter``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.signal import lfilter

__all__ = [
    "periodic_load",
    "bursty_load",
    "regime_switching_load",
    "ramp_load",
    "spiky_batch_load",
    "mutation_load",
    "ar1_noise",
    "WORKLOAD_ARCHETYPES",
]


def ar1_noise(
    n: int, rng: np.random.Generator, phi: float = 0.9, sigma: float = 1.0
) -> np.ndarray:
    """Zero-mean AR(1) series ``x_t = phi * x_{t-1} + eps_t``.

    Implemented as an IIR filter so the recursion runs in C, and scaled to
    unit stationary variance before applying ``sigma``.
    """
    if not -1.0 < phi < 1.0:
        raise ValueError(f"phi must be in (-1, 1) for stationarity, got {phi}")
    eps = rng.standard_normal(n)
    x = lfilter([1.0], [1.0, -phi], eps)
    return sigma * x * np.sqrt(1.0 - phi**2)


def periodic_load(
    n: int,
    rng: np.random.Generator,
    *,
    base: float = 0.42,
    amplitude: float = 0.12,
    period: int = 8640,  # 24 h at 10 s sampling
    noise: float = 0.05,
    phase: float | None = None,
) -> np.ndarray:
    """Diurnal machine-level load: sinusoid + AR(1) jitter.

    Defaults target the paper's reported cluster statistics: mean usage in
    the 40-60 % band with 75 % of samples below 0.6.
    """
    phase = rng.uniform(0, 2 * np.pi) if phase is None else phase
    t = np.arange(n)
    diurnal = base + amplitude * np.sin(2 * np.pi * t / period + phase)
    # a weak second harmonic makes the daily shape asymmetric, like real load
    diurnal += 0.35 * amplitude * np.sin(4 * np.pi * t / period + 2.1 * phase)
    return np.clip(diurnal + ar1_noise(n, rng, phi=0.95, sigma=noise), 0.0, 1.0)


def bursty_load(
    n: int,
    rng: np.random.Generator,
    *,
    base: float = 0.25,
    burst_rate: float = 0.01,
    burst_height: float = 0.45,
    burst_len_mean: float = 30.0,
    noise: float = 0.06,
) -> np.ndarray:
    """Low steady load with Poisson-arriving rectangular bursts.

    Burst starts are a Bernoulli process; each burst holds an elevated
    level for a geometric duration — the classic request-storm shape of
    online services.
    """
    load = np.full(n, base)
    starts = np.flatnonzero(rng.random(n) < burst_rate)
    heights = rng.uniform(0.5, 1.5, size=starts.size) * burst_height
    lengths = rng.geometric(1.0 / burst_len_mean, size=starts.size)
    for s, h, ln in zip(starts, heights, lengths):
        load[s : s + ln] += h
    return np.clip(load + ar1_noise(n, rng, phi=0.8, sigma=noise), 0.0, 1.0)


def regime_switching_load(
    n: int,
    rng: np.random.Generator,
    *,
    levels: tuple[float, ...] = (0.15, 0.45, 0.8),
    dwell_mean: float = 120.0,
    noise: float = 0.07,
) -> np.ndarray:
    """Markov regime switching between utilization plateaus.

    This is the dominant container behaviour in the paper's Fig. 1:
    stretches of stable usage punctuated by *mutation points* — abrupt,
    unpredictable level changes that defeat purely periodic predictors.
    """
    if len(levels) < 2:
        raise ValueError("need at least two regimes")
    # sample dwell times until the horizon is covered
    segments: list[tuple[int, float]] = []
    covered = 0
    state = int(rng.integers(len(levels)))
    while covered < n:
        dwell = int(rng.geometric(1.0 / dwell_mean))
        segments.append((min(dwell, n - covered), levels[state]))
        covered += dwell
        # jump to a different regime (uniform over the others)
        state = (state + 1 + int(rng.integers(len(levels) - 1))) % len(levels)
    load = np.concatenate([np.full(ln, lv) for ln, lv in segments])[:n]
    return np.clip(load + ar1_noise(n, rng, phi=0.85, sigma=noise), 0.0, 1.0)


def ramp_load(
    n: int,
    rng: np.random.Generator,
    *,
    start: float = 0.2,
    end: float = 0.7,
    noise: float = 0.05,
) -> np.ndarray:
    """Linearly drifting load (gradual rollout / tenant growth)."""
    load = np.linspace(start, end, n)
    return np.clip(load + ar1_noise(n, rng, phi=0.9, sigma=noise), 0.0, 1.0)


def spiky_batch_load(
    n: int,
    rng: np.random.Generator,
    *,
    idle: float = 0.08,
    spike_rate: float = 0.02,
    spike_height: float = 0.85,
    decay: float = 0.9,
    noise: float = 0.04,
) -> np.ndarray:
    """Batch-job profile: near-idle with sharp spikes that decay geometrically.

    Spikes are injected as impulses and shaped by an exponential-decay IIR
    filter (map-reduce stage bursts).
    """
    impulses = np.where(rng.random(n) < spike_rate, spike_height, 0.0)
    impulses *= rng.uniform(0.6, 1.4, size=n)
    shaped = lfilter([1.0], [1.0, -decay], impulses)
    return np.clip(idle + shaped + ar1_noise(n, rng, phi=0.7, sigma=noise), 0.0, 1.0)


def mutation_load(
    n: int,
    rng: np.random.Generator,
    *,
    low: float = 0.25,
    high: float = 0.75,
    jump_at: float = 0.7,
    noise: float = 0.05,
    preview_rate: float = 0.01,
    preview_len_mean: float = 12.0,
) -> np.ndarray:
    """Step load: low plateau, one abrupt sustained jump at ``jump_at`` · n.

    Mirrors the paper's Fig. 8 test series where CPU utilization "increases
    abruptly after the 350th sampling point and then maintains a high
    utilization". The jump lands inside the chronological test split when
    ``jump_at`` exceeds the 0.6+0.2 train+validation fraction.

    ``preview_rate`` injects brief excursions to the high level *before*
    the jump. In the paper's trace, the high regime is not unseen — models
    predict the rise immediately but differ in how well they track the new
    level. Without previews the task degenerates into pure extrapolation
    beyond the training range, which no learned model (and especially no
    tree ensemble) can win. Set ``preview_rate=0`` for that harder variant.
    """
    if not 0.0 < jump_at < 1.0:
        raise ValueError(f"jump_at must be in (0, 1), got {jump_at}")
    if preview_rate < 0:
        raise ValueError(f"preview_rate must be non-negative, got {preview_rate}")
    k = int(n * jump_at)
    load = np.concatenate([np.full(k, low), np.full(n - k, high)])
    if preview_rate > 0 and k > 0:
        starts = np.flatnonzero(rng.random(k) < preview_rate)
        lengths = rng.geometric(1.0 / preview_len_mean, size=starts.size)
        for s, ln in zip(starts, lengths):
            stop = min(s + ln, k)
            load[s:stop] = high * rng.uniform(0.9, 1.05)
    return np.clip(load + ar1_noise(n, rng, phi=0.9, sigma=noise), 0.0, 1.0)


#: name → callable registry used by the generator and the experiment configs.
WORKLOAD_ARCHETYPES: dict[str, Callable[..., np.ndarray]] = {
    "periodic": periodic_load,
    "bursty": bursty_load,
    "regime_switching": regime_switching_load,
    "ramp": ramp_load,
    "spiky_batch": spiky_batch_load,
    "mutation": mutation_load,
}
