"""CSV (de)serialization in the Alibaba v2018 column layout.

The public trace ships as headerless CSVs (``machine_usage.csv``,
``container_usage.csv``); we write an explicit header for robustness but
accept both headered and headerless files on read.
"""

from __future__ import annotations

import csv
from collections import defaultdict
from pathlib import Path

import numpy as np

from .schema import (
    CONTAINER_COLUMNS,
    INDICATORS,
    MACHINE_COLUMNS,
    ClusterTrace,
    EntityTrace,
)

__all__ = ["write_trace_csv", "read_trace_csv"]


def _format(value: float) -> str:
    return "" if np.isnan(value) else f"{value:.6g}"


def _parse(text: str) -> float:
    return np.nan if text == "" else float(text)


def write_trace_csv(trace: ClusterTrace, directory: str | Path) -> tuple[Path, Path]:
    """Write ``machine_usage.csv`` and ``container_usage.csv`` under ``directory``.

    Returns the two file paths.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    machine_path = directory / "machine_usage.csv"
    container_path = directory / "container_usage.csv"

    with machine_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(MACHINE_COLUMNS)
        for m in trace.machines:
            for ts, row in zip(m.timestamps, m.values):
                writer.writerow([m.entity_id, int(ts), *[_format(v) for v in row]])

    with container_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(CONTAINER_COLUMNS)
        for c in trace.containers:
            for ts, row in zip(c.timestamps, c.values):
                writer.writerow(
                    [c.entity_id, c.machine_id or "", int(ts), *[_format(v) for v in row]]
                )

    return machine_path, container_path


def _read_rows(path: Path, expected_cols: tuple[str, ...]):
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        first = next(reader, None)
        if first is None:
            return
        if first != list(expected_cols):  # headerless v2018-style file
            yield first
        yield from reader


def read_trace_csv(
    directory: str | Path, interval_seconds: int = 10
) -> ClusterTrace:
    """Load a trace previously written by :func:`write_trace_csv`.

    Rows are grouped by entity id and sorted by timestamp; missing fields
    become NaN (the cleaning stage deals with them downstream).
    """
    directory = Path(directory)
    n_ind = len(INDICATORS)

    machines: list[EntityTrace] = []
    machine_path = directory / "machine_usage.csv"
    if machine_path.exists():
        grouped: dict[str, list[tuple[int, list[float]]]] = defaultdict(list)
        for row in _read_rows(machine_path, MACHINE_COLUMNS):
            if len(row) != 2 + n_ind:
                raise ValueError(f"malformed machine row of width {len(row)} in {machine_path}")
            grouped[row[0]].append((int(row[1]), [_parse(v) for v in row[2:]]))
        for mid, records in grouped.items():
            records.sort(key=lambda r: r[0])
            machines.append(
                EntityTrace(
                    entity_id=mid,
                    kind="machine",
                    timestamps=np.array([r[0] for r in records]),
                    values=np.array([r[1] for r in records]),
                )
            )

    containers: list[EntityTrace] = []
    container_path = directory / "container_usage.csv"
    if container_path.exists():
        cgrouped: dict[str, list[tuple[str, int, list[float]]]] = defaultdict(list)
        for row in _read_rows(container_path, CONTAINER_COLUMNS):
            if len(row) != 3 + n_ind:
                raise ValueError(
                    f"malformed container row of width {len(row)} in {container_path}"
                )
            cgrouped[row[0]].append((row[1], int(row[2]), [_parse(v) for v in row[3:]]))
        for cid, crecords in cgrouped.items():
            crecords.sort(key=lambda r: r[1])
            containers.append(
                EntityTrace(
                    entity_id=cid,
                    kind="container",
                    timestamps=np.array([r[1] for r in crecords]),
                    values=np.array([r[2] for r in crecords]),
                    machine_id=crecords[0][0] or None,
                )
            )

    machines.sort(key=lambda e: e.entity_id)
    containers.sort(key=lambda e: e.entity_id)
    return ClusterTrace(
        machines=machines, containers=containers, interval_seconds=interval_seconds
    )
