"""Crash-safe file writing.

Artifacts (model weights, serving checkpoints, experiment outputs) must
never be observable in a half-written state: a process killed mid-write
would otherwise leave a truncated file that poisons the next startup.
Every writer in the repo funnels through :func:`atomic_output`, which
stages the bytes in a temporary file *in the destination directory* (so
the final rename cannot cross filesystems) and publishes them with
``os.replace`` — atomic on POSIX and Windows alike.
"""

from __future__ import annotations

import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

__all__ = ["atomic_output", "atomic_write_bytes", "atomic_write_json"]


@contextmanager
def atomic_output(path: str | Path, suffix: str = ".tmp") -> Iterator[Path]:
    """Yield a temp path next to ``path``; publish it atomically on success.

    The temporary file lives in ``path``'s directory and carries
    ``suffix`` (some writers, e.g. ``np.savez``, key off the extension).
    If the body raises, the temp file is removed and the destination is
    left untouched — a crash can never expose partial contents.
    """
    final = Path(path)
    final.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=final.parent, prefix=f".{final.name}.", suffix=suffix
    )
    os.close(fd)  # writers reopen by name (np.savez, plain open, ...)
    tmp = Path(tmp_name)
    try:
        yield tmp
        # flush-to-disk barrier before the rename publishes the file
        with open(tmp, "rb+") as fh:
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
    finally:
        if tmp.exists():
            tmp.unlink(missing_ok=True)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write ``data`` to ``path`` so readers see the old or new file, never a mix."""
    with atomic_output(path) as tmp:
        tmp.write_bytes(data)


def atomic_write_json(path: str | Path, obj: Any, indent: int | None = 2) -> Path:
    """Serialize ``obj`` as JSON and publish it atomically; returns the path.

    ``obj`` must already be JSON-serializable (see
    ``repro.experiments.persistence.to_jsonable`` for the converter the
    result writers use). Keys are sorted so identical payloads produce
    identical bytes — a property the experiment result cache relies on.
    """
    path = Path(path)
    text = json.dumps(obj, indent=indent, sort_keys=True) + "\n"
    with atomic_output(path, suffix=path.suffix or ".tmp") as tmp:
        tmp.write_text(text)
    return path
