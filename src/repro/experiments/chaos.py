"""Chaos experiment: what a mid-run shard crash costs, with and without
the supervisor.

The sharded fleet (:mod:`repro.streaming.shard`) claims a self-healing
story: a SIGKILLed shard worker is detected by deadline, respawned with
backoff, restored from its background checkpoint, and — while that
happens — its rows degrade to held-last predictions flagged RECOVERING
instead of going NaN. This harness prices that claim. It serves the
same synthetic fleet trace three times through identically configured
:class:`~repro.streaming.shard.ShardedFleetPredictor` instances:

* **clean** — no faults; the availability and accuracy baseline;
* **supervised** — a scheduled ``SIGKILL`` of one shard mid-run
  (:meth:`~repro.streaming.faults.ChaosSchedule.kill_at`), with the
  supervisor on and background checkpoints enabled;
* **unsupervised** — the same kill with ``respawn=None``: the failure
  is terminal, the shard's rows are NaN forever (the pre-supervision
  behavior).

Three numbers fall out per faulted run, each against the clean run:

* **availability** — finite prediction rows served after the kill as a
  fraction of what the clean run served over the same window;
* **time-to-recovery** — ticks (and wall seconds) from the kill until
  every shard is live again;
* **accuracy during recovery** — MAE over the victim shard's rows in
  the outage window, where the supervised run serves held-last
  predictions; compared against the clean run's MAE on exactly those
  cells.

The harness also re-asserts the isolation contract under chaos: the
surviving shards' rows must be bit-identical between the clean and
supervised runs on every tick.

Everything is deterministic — the trace is seeded, the kill fires at an
exact tick — except wall-clock recovery time, which depends on process
spawn latency; recovery is therefore bounded in *ticks* by pacing the
tick loop while a shard rebuilds (``tick_interval``), the way a real
cluster's sampling clock would.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field

import numpy as np

from ..obs.registry import MetricRegistry
from .config import ExperimentProfile, get_profile
from .fleet import make_fleet_streams

__all__ = ["ChaosRunStats", "ChaosResult", "run_chaos"]


@dataclass
class ChaosRunStats:
    """One run's availability/recovery/accuracy summary vs the clean run."""

    label: str
    #: finite prediction rows served on post-kill ticks
    finite_rows: int
    #: finite rows the clean run served on the same ticks
    expected_rows: int
    #: finite_rows / expected_rows
    availability: float
    #: victim-slice rows that went NaN where the clean run was finite
    nan_victim_rows: int
    #: ticks from the kill until every shard was live again (None = never)
    recovery_ticks: int | None
    #: wall-clock seconds from failure detection to recovery (None = never)
    time_to_recovery_s: float | None
    #: MAE over the victim slice during the outage window
    outage_mae: float
    respawns: int
    worker_failures: int
    quarantined: list[int] = field(default_factory=list)


@dataclass
class ChaosResult:
    """Clean vs supervised-chaos vs unsupervised-chaos, one kill scenario."""

    model: str
    n_streams: int
    shards: int
    ticks: int
    kill_tick: int
    #: stream slice [lo, hi) owned by the killed shard
    victim: tuple[int, int]
    checkpoint_interval: int
    #: clean-run MAE on the victim slice over the supervised outage window
    clean_outage_mae: float
    supervised: ChaosRunStats = None  # type: ignore[assignment]
    unsupervised: ChaosRunStats = None  # type: ignore[assignment]
    #: surviving shards bit-identical between clean and supervised runs
    survivors_bit_identical: bool = False


def _drive(pred, streams: np.ndarray, tick_interval: float):
    """Serve the whole trace, pacing while any shard is rebuilding.

    Returns per-tick prediction/actual matrices plus the recovery
    timeline: the first tick at which a previously-failed fleet is whole
    again, and the wall-clock span of the outage.
    """
    preds = np.full(streams.shape, np.nan)
    actuals = np.full(streams.shape, np.nan)
    fail_tick: int | None = None
    fail_wall: float | None = None
    recovery_tick: int | None = None
    recovery_wall: float | None = None
    for t in range(streams.shape[0]):
        out = pred.process_tick(streams[t])
        preds[t] = out.predictions
        actuals[t] = out.actuals
        if pred.failed_shards and fail_tick is None:
            fail_tick = t
            fail_wall = time.perf_counter()
        if fail_tick is not None and recovery_tick is None and not pred.failed_shards:
            recovery_tick = t
            recovery_wall = time.perf_counter()
        if pred.recovering_shards and tick_interval > 0:
            time.sleep(tick_interval)
    ttr_ticks = None if recovery_tick is None or fail_tick is None else recovery_tick - fail_tick
    ttr_wall = None if recovery_wall is None or fail_wall is None else recovery_wall - fail_wall
    return preds, actuals, ttr_ticks, ttr_wall


def _slice_mae(preds, actuals, t0, t1, lo, hi) -> float:
    """MAE over rows ``[lo, hi)`` of ticks ``[t0, t1)``, finite pairs only."""
    p = preds[t0:t1, lo:hi]
    a = actuals[t0:t1, lo:hi]
    ok = np.isfinite(p) & np.isfinite(a)
    if not ok.any():
        return float("nan")
    return float(np.abs(p[ok] - a[ok]).mean())


def run_chaos(
    profile: str | ExperimentProfile = "quick",
    model: str = "holt",
    model_kwargs: dict | None = None,
    n_streams: int = 64,
    shards: int = 2,
    ticks: int | None = None,
    kill_tick: int | None = None,
    checkpoint_interval: int = 8,
    tick_interval: float = 0.05,
    refit_interval: int = 32,
) -> ChaosResult:
    """SIGKILL one shard mid-run; measure the fleet with and without recovery."""
    # deferred: repro.streaming.shard <-> repro.experiments import cycle
    from ..streaming.faults import ChaosSchedule
    from ..streaming.shard import RespawnPolicy, ShardedFleetPredictor, shard_boundaries

    prof = get_profile(profile) if isinstance(profile, str) else profile
    if ticks is None:
        ticks = int(max(120, min(240, prof.n_steps // 4)))
    window = prof.window
    common = dict(
        forecaster_name=model,
        forecaster_kwargs=dict(model_kwargs or {}),
        window=window,
        buffer_capacity=2 * refit_interval + window,
        refit_interval=refit_interval,
        min_fit_size=2 * window,
    )
    if kill_tick is None:
        # after warm-up (every stream predicting) but with room to recover
        kill_tick = max(3 * window, ticks // 4)
    if not 0 < kill_tick < ticks:
        raise ValueError(f"kill_tick must be in (0, {ticks}), got {kill_tick}")
    # NaN-free trace: every post-warm-up row is servable, so availability
    # deficits are attributable to the crash alone
    streams = make_fleet_streams(n_streams, ticks, prof.seed, nan_rate=0.0)
    vlo, vhi = shard_boundaries(n_streams, shards)[0:2]
    chaos = ChaosSchedule.kill_at(kill_tick, shard=0)
    policy = RespawnPolicy(max_failures=3, backoff_ticks=1, failure_window=4 * ticks)

    clean = ShardedFleetPredictor(
        n_streams, shards, registry=MetricRegistry(), **common
    )
    try:
        clean_preds, clean_actuals, _, _ = _drive(clean, streams, 0.0)
    finally:
        clean.close(collect_metrics=False)

    def faulted_run(label: str, respawn) -> tuple[ChaosRunStats, np.ndarray]:
        with tempfile.TemporaryDirectory(prefix="rptcn-chaos-") as ckpt_dir:
            pred = ShardedFleetPredictor(
                n_streams,
                shards,
                registry=MetricRegistry(),
                chaos=chaos,
                respawn=respawn,
                checkpoint_dir=ckpt_dir,
                checkpoint_interval=checkpoint_interval,
                **common,
            )
            try:
                preds, actuals, ttr_ticks, ttr_wall = _drive(
                    pred, streams, tick_interval
                )
                respawns = pred.respawns
                failures = pred.worker_failures
                quarantined = list(pred.quarantined_shards)
            finally:
                pred.close(collect_metrics=False)
        post = slice(kill_tick, ticks)
        finite = int(np.isfinite(preds[post]).sum())
        expected = int(np.isfinite(clean_preds[post]).sum())
        went_nan = ~np.isfinite(preds[post, vlo:vhi]) & np.isfinite(
            clean_preds[post, vlo:vhi]
        )
        outage_end = ticks if ttr_ticks is None else kill_tick + ttr_ticks
        return (
            ChaosRunStats(
                label=label,
                finite_rows=finite,
                expected_rows=expected,
                availability=finite / max(expected, 1),
                nan_victim_rows=int(went_nan.sum()),
                recovery_ticks=ttr_ticks,
                time_to_recovery_s=ttr_wall,
                outage_mae=_slice_mae(preds, actuals, kill_tick, outage_end, vlo, vhi),
                respawns=respawns,
                worker_failures=failures,
                quarantined=quarantined,
            ),
            preds,
        )

    supervised, sup_preds = faulted_run("supervised", policy)
    unsupervised, _ = faulted_run("unsupervised", None)

    sup_outage_end = (
        ticks if supervised.recovery_ticks is None
        else kill_tick + supervised.recovery_ticks
    )
    result = ChaosResult(
        model=model,
        n_streams=n_streams,
        shards=shards,
        ticks=ticks,
        kill_tick=kill_tick,
        victim=(vlo, vhi),
        checkpoint_interval=checkpoint_interval,
        clean_outage_mae=_slice_mae(
            clean_preds, clean_actuals, kill_tick, sup_outage_end, vlo, vhi
        ),
        supervised=supervised,
        unsupervised=unsupervised,
        survivors_bit_identical=bool(
            np.array_equal(sup_preds[:, vhi:], clean_preds[:, vhi:], equal_nan=True)
        ),
    )
    return result
