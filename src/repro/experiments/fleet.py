"""Fleet serving throughput: micro-batched vs N scalar predictors.

The paper's deployment target is a cluster sampled on one clock —
thousands of per-container streams all due a forecast at the same tick.
This harness measures what that costs both ways:

* **scalar** — one :class:`~repro.streaming.online.OnlinePredictor` per
  stream, the per-record Python loop repeated N times per tick;
* **fleet** — one :class:`~repro.streaming.fleet.FleetPredictor`
  multiplexing all N streams: vectorized gate, matrix ring buffer, one
  micro-batched model forward per tick, coalesced staggered refits.

Both sides serve the same synthetic fleet trace (per-stream diurnal
phase/level/noise plus a sprinkle of NaN faults), so records/sec is an
apples-to-apples number. At ``n_streams=1`` the two implementations are
bit-identical by construction; the harness verifies that too
(``parity_n1``) so the throughput table can't drift away from
correctness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..obs.registry import MetricRegistry
from ..streaming.fleet import FleetPredictor
from ..streaming.online import OnlinePredictor
from .config import ExperimentProfile, get_profile

__all__ = ["FleetScaleResult", "FleetResult", "run_fleet", "make_fleet_streams"]


@dataclass
class FleetScaleResult:
    """Throughput comparison at one fleet size."""

    n_streams: int
    ticks: int
    fleet_seconds: float
    scalar_seconds: float
    fleet_records_per_sec: float
    scalar_records_per_sec: float
    speedup: float
    fleet_mae: float
    scalar_mae: float
    fleet_refits: int
    scalar_refits: int
    n_quarantined: int


@dataclass
class FleetResult:
    """Fleet-vs-scalar serving comparison across fleet sizes."""

    model: str
    window: int
    ticks: int
    parity_n1: bool  #: N=1 records bit-identical between fleet and scalar
    per_scale: list[FleetScaleResult] = field(default_factory=list)

    def result_at(self, n_streams: int) -> FleetScaleResult:
        for r in self.per_scale:
            if r.n_streams == n_streams:
                return r
        raise KeyError(
            f"no result at n_streams={n_streams}; "
            f"have {[r.n_streams for r in self.per_scale]}"
        )

    def speedup_at(self, n_streams: int) -> float:
        return self.result_at(n_streams).speedup


def make_fleet_streams(
    n_streams: int, ticks: int, seed: int, nan_rate: float = 0.01
) -> np.ndarray:
    """Synthetic ``(ticks, n_streams)`` fleet trace in one vectorized shot.

    Each stream is a diurnal sinusoid with its own level, amplitude,
    phase and noise (the paper's high-dynamic container mix), with
    ``nan_rate`` of cells knocked out so the gate's fault handling stays
    on the measured hot path.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(ticks, dtype=float)[:, None]
    level = rng.uniform(0.3, 0.6, n_streams)
    amp = rng.uniform(0.05, 0.2, n_streams)
    phase = rng.uniform(0.0, 2 * np.pi, n_streams)
    period = rng.uniform(18.0, 30.0, n_streams)
    x = level + amp * np.sin(2 * np.pi * t / period + phase)
    x += rng.normal(0.0, 0.01, x.shape)
    if nan_rate > 0:
        x[rng.random(x.shape) < nan_rate] = np.nan
    # never corrupt the opening tick: every stream starts with a finite record
    x[0] = level + amp * np.sin(phase)
    return x


def _records_parity(fleet_ticks, scalar_records) -> bool:
    """NaN-aware equality of every emitted record field at N=1."""

    def feq(a, b):
        if a is None or b is None:
            return a is None and b is None
        return a == b or (np.isnan(a) and np.isnan(b))

    for tick, rec in zip(fleet_ticks, scalar_records):
        frec = tick.record(0)
        if not (
            frec.step == rec.step
            and feq(frec.prediction, rec.prediction)
            and feq(frec.actual, rec.actual)
            and feq(frec.error, rec.error)
            and frec.refit == rec.refit
            and frec.drift == rec.drift
            and frec.health == rec.health
            and frec.gated == rec.gated
        ):
            return False
    return True


def run_fleet(
    profile: str | ExperimentProfile = "quick",
    model: str = "holt",
    model_kwargs: dict | None = None,
    n_list: tuple[int, ...] = (1, 64, 1024),
    refit_interval: int = 64,
    nan_rate: float = 0.01,
) -> FleetResult:
    """Serve the same fleet trace both ways at each size in ``n_list``."""
    prof = get_profile(profile) if isinstance(profile, str) else profile
    ticks = int(max(64, min(160, prof.n_steps // 8)))
    window = prof.window
    common = dict(
        forecaster_kwargs=dict(model_kwargs or {}),
        window=window,
        buffer_capacity=2 * refit_interval + window,
        refit_interval=refit_interval,
        min_fit_size=3 * window,
    )

    result = FleetResult(model=model, window=window, ticks=ticks, parity_n1=True)
    for n_streams in n_list:
        streams = make_fleet_streams(n_streams, ticks, prof.seed, nan_rate)

        # fleet: one predictor, one micro-batched forward per tick
        fleet = FleetPredictor(
            n_streams, model, registry=MetricRegistry(), **common
        )
        t0 = time.perf_counter()
        fleet_out = fleet.run(streams)
        fleet_seconds = time.perf_counter() - t0

        # scalar: N independent predictors sharing one private registry
        scalar_registry = MetricRegistry()
        predictors = [
            OnlinePredictor(model, registry=scalar_registry, **common)
            for _ in range(n_streams)
        ]
        scalar_records = [[] for _ in range(n_streams)]
        t0 = time.perf_counter()
        for row in streams:
            for i, predictor in enumerate(predictors):
                scalar_records[i].append(predictor.process(row[i : i + 1]))
        scalar_seconds = time.perf_counter() - t0

        if n_streams == 1:
            result.parity_n1 = _records_parity(fleet_out, scalar_records[0])

        total = ticks * n_streams
        scalar_mae = float(
            np.sum([p.stats.sum_abs_error for p in predictors])
            / max(np.sum([p.stats.n_predictions for p in predictors]), 1)
        )
        result.per_scale.append(
            FleetScaleResult(
                n_streams=n_streams,
                ticks=ticks,
                fleet_seconds=fleet_seconds,
                scalar_seconds=scalar_seconds,
                fleet_records_per_sec=total / max(fleet_seconds, 1e-9),
                scalar_records_per_sec=total / max(scalar_seconds, 1e-9),
                speedup=scalar_seconds / max(fleet_seconds, 1e-9),
                fleet_mae=fleet.stats.fleet_mae,
                scalar_mae=scalar_mae,
                fleet_refits=fleet.stats.n_refits,
                scalar_refits=int(np.sum([p.stats.n_refits for p in predictors])),
                n_quarantined=int(fleet.gate.n_quarantined.sum()),
            )
        )
    return result
