"""Fleet serving throughput: micro-batched vs N scalar predictors.

The paper's deployment target is a cluster sampled on one clock —
thousands of per-container streams all due a forecast at the same tick.
This harness measures what that costs both ways:

* **scalar** — one :class:`~repro.streaming.online.OnlinePredictor` per
  stream, the per-record Python loop repeated N times per tick;
* **fleet** — one :class:`~repro.streaming.fleet.FleetPredictor`
  multiplexing all N streams: vectorized gate, matrix ring buffer, one
  micro-batched model forward per tick, coalesced staggered refits.

Both sides serve the same synthetic fleet trace (per-stream diurnal
phase/level/noise plus a sprinkle of NaN faults), so records/sec is an
apples-to-apples number. At ``n_streams=1`` the two implementations are
bit-identical by construction; the harness verifies that too
(``parity_n1``) so the throughput table can't drift away from
correctness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..obs.registry import MetricRegistry
from ..streaming.fleet import FleetPredictor
from ..streaming.online import OnlinePredictor
from .config import ExperimentProfile, get_profile

__all__ = [
    "FleetScaleResult",
    "FleetResult",
    "run_fleet",
    "make_fleet_streams",
    "ShardScaleResult",
    "ShardScalingResult",
    "run_shard_scaling",
]


@dataclass
class FleetScaleResult:
    """Throughput comparison at one fleet size."""

    n_streams: int
    ticks: int
    fleet_seconds: float
    scalar_seconds: float
    fleet_records_per_sec: float
    scalar_records_per_sec: float
    speedup: float
    fleet_mae: float
    scalar_mae: float
    fleet_refits: int
    scalar_refits: int
    n_quarantined: int


@dataclass
class FleetResult:
    """Fleet-vs-scalar serving comparison across fleet sizes."""

    model: str
    window: int
    ticks: int
    parity_n1: bool  #: N=1 records bit-identical between fleet and scalar
    per_scale: list[FleetScaleResult] = field(default_factory=list)

    def result_at(self, n_streams: int) -> FleetScaleResult:
        for r in self.per_scale:
            if r.n_streams == n_streams:
                return r
        raise KeyError(
            f"no result at n_streams={n_streams}; "
            f"have {[r.n_streams for r in self.per_scale]}"
        )

    def speedup_at(self, n_streams: int) -> float:
        return self.result_at(n_streams).speedup

    @property
    def crossover_n(self) -> int | None:
        """Smallest measured fleet size where the fleet beats N scalars.

        Below this N the per-tick fixed cost of the vectorized path
        outweighs the batching win and N independent scalar predictors
        are faster; ``None`` if no measured size reached speedup >= 1.
        """
        for r in sorted(self.per_scale, key=lambda r: r.n_streams):
            if r.speedup >= 1.0:
                return r.n_streams
        return None


def make_fleet_streams(
    n_streams: int, ticks: int, seed: int, nan_rate: float = 0.01
) -> np.ndarray:
    """Synthetic ``(ticks, n_streams)`` fleet trace in one vectorized shot.

    Each stream is a diurnal sinusoid with its own level, amplitude,
    phase and noise (the paper's high-dynamic container mix), with
    ``nan_rate`` of cells knocked out so the gate's fault handling stays
    on the measured hot path.
    """
    rng = np.random.default_rng(seed)
    t = np.arange(ticks, dtype=float)[:, None]
    level = rng.uniform(0.3, 0.6, n_streams)
    amp = rng.uniform(0.05, 0.2, n_streams)
    phase = rng.uniform(0.0, 2 * np.pi, n_streams)
    period = rng.uniform(18.0, 30.0, n_streams)
    x = level + amp * np.sin(2 * np.pi * t / period + phase)
    x += rng.normal(0.0, 0.01, x.shape)
    if nan_rate > 0:
        x[rng.random(x.shape) < nan_rate] = np.nan
    # never corrupt the opening tick: every stream starts with a finite record
    x[0] = level + amp * np.sin(phase)
    return x


def _records_parity(fleet_ticks, scalar_records) -> bool:
    """NaN-aware equality of every emitted record field at N=1."""

    def feq(a, b):
        if a is None or b is None:
            return a is None and b is None
        return a == b or (np.isnan(a) and np.isnan(b))

    for tick, rec in zip(fleet_ticks, scalar_records):
        frec = tick.record(0)
        if not (
            frec.step == rec.step
            and feq(frec.prediction, rec.prediction)
            and feq(frec.actual, rec.actual)
            and feq(frec.error, rec.error)
            and frec.refit == rec.refit
            and frec.drift == rec.drift
            and frec.health == rec.health
            and frec.gated == rec.gated
        ):
            return False
    return True


def run_fleet(
    profile: str | ExperimentProfile = "quick",
    model: str = "holt",
    model_kwargs: dict | None = None,
    n_list: tuple[int, ...] = (1, 64, 1024),
    refit_interval: int = 64,
    nan_rate: float = 0.01,
) -> FleetResult:
    """Serve the same fleet trace both ways at each size in ``n_list``."""
    prof = get_profile(profile) if isinstance(profile, str) else profile
    ticks = int(max(64, min(160, prof.n_steps // 8)))
    window = prof.window
    common = dict(
        forecaster_kwargs=dict(model_kwargs or {}),
        window=window,
        buffer_capacity=2 * refit_interval + window,
        refit_interval=refit_interval,
        min_fit_size=3 * window,
    )

    result = FleetResult(model=model, window=window, ticks=ticks, parity_n1=True)
    for n_streams in n_list:
        streams = make_fleet_streams(n_streams, ticks, prof.seed, nan_rate)

        # fleet: one predictor, one micro-batched forward per tick
        fleet = FleetPredictor(
            n_streams, model, registry=MetricRegistry(), **common
        )
        t0 = time.perf_counter()
        fleet_out = fleet.run(streams)
        fleet_seconds = time.perf_counter() - t0

        # scalar: N independent predictors sharing one private registry
        scalar_registry = MetricRegistry()
        predictors = [
            OnlinePredictor(model, registry=scalar_registry, **common)
            for _ in range(n_streams)
        ]
        scalar_records = [[] for _ in range(n_streams)]
        t0 = time.perf_counter()
        for row in streams:
            for i, predictor in enumerate(predictors):
                scalar_records[i].append(predictor.process(row[i : i + 1]))
        scalar_seconds = time.perf_counter() - t0

        if n_streams == 1:
            result.parity_n1 = _records_parity(fleet_out, scalar_records[0])

        total = ticks * n_streams
        scalar_mae = float(
            np.sum([p.stats.sum_abs_error for p in predictors])
            / max(np.sum([p.stats.n_predictions for p in predictors]), 1)
        )
        result.per_scale.append(
            FleetScaleResult(
                n_streams=n_streams,
                ticks=ticks,
                fleet_seconds=fleet_seconds,
                scalar_seconds=scalar_seconds,
                fleet_records_per_sec=total / max(fleet_seconds, 1e-9),
                scalar_records_per_sec=total / max(scalar_seconds, 1e-9),
                speedup=scalar_seconds / max(fleet_seconds, 1e-9),
                fleet_mae=fleet.stats.fleet_mae,
                scalar_mae=scalar_mae,
                fleet_refits=fleet.stats.n_refits,
                scalar_refits=int(np.sum([p.stats.n_refits for p in predictors])),
                n_quarantined=int(fleet.gate.n_quarantined.sum()),
            )
        )
    return result


@dataclass
class ShardScaleResult:
    """Throughput at one shard count for a fixed fleet size.

    Each shard count is served twice: once behind the historical
    lock-step barrier and once through the two-deep tick pipeline
    (``pipeline=True``); the ``pipeline_*`` fields record the second
    pass. ``pipeline_parity`` asserts the overlap changed no served bit.
    """

    shards: int
    seconds: float
    records_per_sec: float
    speedup_vs_single: float  #: vs the single-process FleetPredictor
    worker_failures: int
    pipeline_seconds: float = 0.0
    pipeline_records_per_sec: float = 0.0
    pipeline_speedup: float = 0.0  #: pipelined vs barrier at the same shard count
    pipeline_parity: bool = True  #: pipelined ticks bit-identical to barrier


@dataclass
class ShardScalingResult:
    """Records/sec vs shard count for one fleet (single process = 1.0x)."""

    model: str
    n_streams: int
    ticks: int
    single_seconds: float
    single_records_per_sec: float
    parity_shard1: bool  #: shards=1 output bit-identical to FleetPredictor
    per_shards: list[ShardScaleResult] = field(default_factory=list)

    def result_at(self, shards: int) -> ShardScaleResult:
        for r in self.per_shards:
            if r.shards == shards:
                return r
        raise KeyError(
            f"no result at shards={shards}; have {[r.shards for r in self.per_shards]}"
        )


def _ticks_parity(a, b) -> bool:
    """Bit-exact equality of two FleetTick sequences (NaN == NaN)."""
    for x, y in zip(a, b):
        if x.step != y.step or x.refit != y.refit:
            return False
        if x.model_version != y.model_version:
            return False
        for fld in ("predictions", "actuals", "errors", "drift", "health", "gated"):
            if not np.array_equal(getattr(x, fld), getattr(y, fld), equal_nan=True):
                return False
    return len(a) == len(b)


def run_shard_scaling(
    profile: str | ExperimentProfile = "quick",
    model: str = "holt",
    model_kwargs: dict | None = None,
    n_streams: int = 4096,
    shards_list: tuple[int, ...] = (1, 2, 4),
    refit_interval: int = 64,
    nan_rate: float = 0.01,
    ticks: int | None = None,
) -> ShardScalingResult:
    """Serve one fleet trace single-process and at each shard count.

    The single-process :class:`FleetPredictor` sets the 1.0x baseline;
    ``shards=1`` additionally verifies bit-parity of every emitted tick
    against it (the sharded path is the same computation moved behind a
    process boundary, so any divergence is a bug, not noise).
    """
    prof = get_profile(profile) if isinstance(profile, str) else profile
    if ticks is None:
        ticks = int(max(48, min(96, prof.n_steps // 10)))
    window = prof.window
    common = dict(
        forecaster_kwargs=dict(model_kwargs or {}),
        window=window,
        buffer_capacity=2 * refit_interval + window,
        refit_interval=refit_interval,
        min_fit_size=3 * window,
    )
    streams = make_fleet_streams(n_streams, ticks, prof.seed, nan_rate)
    total = ticks * n_streams

    single = FleetPredictor(n_streams, model, registry=MetricRegistry(), **common)
    t0 = time.perf_counter()
    single_out = single.run(streams)
    single_seconds = time.perf_counter() - t0

    result = ShardScalingResult(
        model=model,
        n_streams=n_streams,
        ticks=ticks,
        single_seconds=single_seconds,
        single_records_per_sec=total / max(single_seconds, 1e-9),
        parity_shard1=True,
    )
    # deferred: repro.streaming.shard <-> repro.experiments import cycle
    from ..streaming.shard import ShardedFleetPredictor

    for shards in shards_list:
        if shards > n_streams:
            continue
        sharded = ShardedFleetPredictor(
            n_streams, shards, forecaster_name=model, registry=MetricRegistry(), **common
        )
        try:
            t0 = time.perf_counter()
            sharded_out = sharded.run(streams)
            seconds = time.perf_counter() - t0
            failures = sharded.worker_failures
            if shards == 1:
                result.parity_shard1 = _ticks_parity(single_out, sharded_out)
        finally:
            sharded.close(collect_metrics=False)
        # second pass at the same shard count through the two-deep tick
        # pipeline: composition of tick t overlaps shard compute of t+1
        pipelined = ShardedFleetPredictor(
            n_streams,
            shards,
            pipeline=True,
            forecaster_name=model,
            registry=MetricRegistry(),
            **common,
        )
        try:
            t0 = time.perf_counter()
            pipelined_out = pipelined.run(streams)
            pipeline_seconds = time.perf_counter() - t0
            pipeline_parity = _ticks_parity(sharded_out, pipelined_out)
        finally:
            pipelined.close(collect_metrics=False)
        result.per_shards.append(
            ShardScaleResult(
                shards=shards,
                seconds=seconds,
                records_per_sec=total / max(seconds, 1e-9),
                speedup_vs_single=single_seconds / max(seconds, 1e-9),
                worker_failures=failures,
                pipeline_seconds=pipeline_seconds,
                pipeline_records_per_sec=total / max(pipeline_seconds, 1e-9),
                pipeline_speedup=seconds / max(pipeline_seconds, 1e-9),
                pipeline_parity=pipeline_parity,
            )
        )
    return result
