"""Figs. 1-3 and 7 harness — trace characterization.

These regenerate the paper's motivation/analysis figures from the
synthetic cluster:

* Fig. 1 — per-container CPU / memory / disk series (high-dynamic);
* Fig. 2 — boxplots of cluster-average CPU per 6 h window + mean line;
* Fig. 3 — fraction of machines under 50 % CPU per window;
* Fig. 7 — all-pairs indicator correlation heatmap of one container.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.characterization import (
    BoxplotStats,
    boxplot_stats_per_window,
    fraction_below,
    resource_series,
    utilization_summary,
)
from ..data.correlation import correlation_matrix, rank_by_correlation
from ..traces.generator import ClusterTraceGenerator, TraceConfig
from ..traces.schema import ClusterTrace, indicator_names
from .config import ExperimentProfile, get_profile

__all__ = [
    "Fig1Result",
    "Fig2Result",
    "Fig3Result",
    "Fig7Result",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig7",
    "build_cluster",
]


def build_cluster(profile: str | ExperimentProfile = "quick") -> ClusterTrace:
    """The shared synthetic cluster used by the characterization figures.

    Cluster-level statistics (Figs. 2-3) need a dozen-plus machines to be
    stable; trace generation is cheap (no model training), so the
    characterization cluster is floored at 12 machines regardless of the
    training profile.
    """
    prof = get_profile(profile) if isinstance(profile, str) else profile
    gen = ClusterTraceGenerator(
        TraceConfig(
            n_machines=max(prof.n_machines, 12),
            containers_per_machine=prof.containers_per_machine,
            n_steps=prof.n_steps,
            seed=prof.seed,
        )
    )
    return gen.generate()


@dataclass
class Fig1Result:
    entity_id: str
    series: dict[str, np.ndarray]

    def dynamism(self, indicator: str = "cpu_util_percent") -> float:
        """Mean absolute step change — the figure's 'fluctuates significantly'."""
        s = self.series[indicator]
        return float(np.abs(np.diff(s)).mean())


def run_fig1(
    profile: str | ExperimentProfile = "quick",
    trace: ClusterTrace | None = None,
) -> Fig1Result:
    trace = trace if trace is not None else build_cluster(profile)
    # prefer a high-dynamic container, like the paper's exhibit
    dynamic = [c for c in trace.containers if c.workload in ("regime_switching", "bursty")]
    entity = (dynamic or trace.containers)[0]
    return Fig1Result(entity_id=entity.entity_id, series=resource_series(entity))


@dataclass
class Fig2Result:
    stats: list[BoxplotStats]
    window: int
    summary: dict[str, float]

    @property
    def mean_line(self) -> np.ndarray:
        """The figure's red line: windowed cluster-average CPU."""
        return np.array([s.mean for s in self.stats])


def run_fig2(
    profile: str | ExperimentProfile = "quick",
    trace: ClusterTrace | None = None,
    n_windows: int = 8,
) -> Fig2Result:
    """Boxplot stats of the cluster-average CPU utilization.

    The paper windows every 6 hours of 10 s samples (2160 points); with a
    shorter synthetic trace the window is chosen to yield ``n_windows``
    boxes, preserving the figure's structure.
    """
    trace = trace if trace is not None else build_cluster(profile)
    cluster_avg = trace.machine_cpu_matrix().mean(axis=0)
    window = max(4, len(cluster_avg) // n_windows)
    return Fig2Result(
        stats=boxplot_stats_per_window(cluster_avg, window),
        window=window,
        summary=utilization_summary(trace),
    )


@dataclass
class Fig3Result:
    fractions: np.ndarray
    threshold: float
    overall_fraction: float


def run_fig3(
    profile: str | ExperimentProfile = "quick",
    trace: ClusterTrace | None = None,
    threshold: float = 50.0,
    n_windows: int = 16,
) -> Fig3Result:
    trace = trace if trace is not None else build_cluster(profile)
    cpu = trace.machine_cpu_matrix()
    window = max(1, cpu.shape[1] // n_windows)
    fracs = fraction_below(cpu, threshold=threshold, window=window)
    return Fig3Result(
        fractions=fracs,
        threshold=threshold,
        overall_fraction=float((cpu < threshold).mean()),
    )


@dataclass
class Fig7Result:
    entity_id: str
    names: list[str] = field(default_factory=list)
    matrix: np.ndarray = field(default_factory=lambda: np.empty((0, 0)))
    ranking: list[tuple[str, float]] = field(default_factory=list)

    def top_correlated(self, k: int = 4) -> list[str]:
        """The k indicators most correlated with CPU (paper: cpu, mpki, cpi, mem_gps)."""
        return [name for name, _ in self.ranking[:k]]


def run_fig7(
    profile: str | ExperimentProfile = "quick",
    trace: ClusterTrace | None = None,
    entity_id: str | None = None,
) -> Fig7Result:
    trace = trace if trace is not None else build_cluster(profile)
    entity = trace.get(entity_id) if entity_id else trace.containers[0]
    names = indicator_names()
    return Fig7Result(
        entity_id=entity.entity_id,
        names=names,
        matrix=correlation_matrix(entity.values),
        ranking=rank_by_correlation(entity.values, names, "cpu_util_percent"),
    )
