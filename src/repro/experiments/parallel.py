"""Process-pool execution of independent experiment units.

The paper's evaluation is an embarrassingly parallel grid: every Table II
cell is an independent (scenario, model, granularity) train/eval run, the
robustness sweep repeats cells across seeds, and ``--experiment all``
regenerates eight unrelated artifacts. This module fans those units out
to worker processes while keeping three guarantees the serial runner
already provided:

* **Bit-identical results regardless of parallelism.** A task's only
  randomness inputs are its explicit parameters (every cell carries its
  own seed; nothing reads a shared RNG stream whose position depends on
  execution order), so ``--jobs 1`` and ``--jobs N`` produce the same
  bytes. :func:`derive_seed` gives new harnesses a stable per-task seed
  from the task key alone; the paper-table cells pin the legacy profile
  seed so the parallel grid reproduces the serial numbers exactly.
* **Failure isolation.** A task that raises — in-process or in a worker
  — becomes an error entry on its :class:`TaskResult` instead of killing
  the sweep; the runner turns error entries into a nonzero exit code.
* **Observability across the pool boundary.** Workers run with a fresh
  metric registry and tracer, serialize their finished spans and metric
  series, and the parent revives the spans onto its tracer and adopts
  the series into its registry — ``--metrics-out`` sees one merged view.

Workers are spawned (not forked): each child starts from a clean
interpreter, so no parent state (open instruments, BLAS thread pools,
trace stacks) can leak into a task's execution.

The pool is **persistent**: the first ``run_tasks(jobs=N)`` call spawns
the workers, and every later call with the same ``jobs`` reuses them —
spawn + interpreter + import cost is paid once per process lifetime, not
once per sweep. Tasks are dispatched in **chunks** (several tasks per
pickle round-trip) with per-task failure isolation preserved inside each
chunk; obs isolation moves to chunk granularity (a fresh registry and
tracer per chunk), which keeps the parent's merged view identical
because every chunk's series are adopted exactly once. A broken pool
(worker killed hard mid-chunk) fails only the chunks that were lost and
is disposed so the next call starts clean. Use :func:`warm_pool` to pay
the spawn/import cost ahead of a timed region, and
:func:`shutdown_pools` (also registered ``atexit``) to reap workers.
"""

from __future__ import annotations

import atexit
import hashlib
import importlib
import os
import time
import traceback as _traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any, Callable, Sequence

from ..obs import registry as obs_registry
from ..obs import trace as obs_trace
from ..obs.registry import MetricRegistry, get_registry
from ..obs.trace import Span

__all__ = [
    "TaskSpec",
    "TaskResult",
    "derive_seed",
    "run_tasks",
    "revive_span",
    "warm_pool",
    "shutdown_pools",
]

#: upper bound (exclusive) for derived seeds; fits every numpy seed API
_SEED_SPACE = 2**32


def derive_seed(base_seed: int, *key_parts: Any) -> int:
    """Stable per-task seed from the task key plus a base seed.

    Uses SHA-256 over the repr of the parts (never Python's randomized
    ``hash``), so the same ``(base_seed, key)`` maps to the same seed in
    every process, interpreter launch, and ``--jobs`` setting — task
    randomness depends only on the task's identity, not on how many
    sibling tasks ran before it.
    """
    material = repr((int(base_seed), *key_parts)).encode()
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big") % _SEED_SPACE


@dataclass
class TaskSpec:
    """One independent unit of experiment work.

    ``fn`` is a dotted path to a module-level callable (so specs cross
    the process boundary without pickling closures) invoked as
    ``fn(**params)``. ``params`` must be picklable and must fully
    determine the result — including any seed — for the determinism and
    caching guarantees to hold. ``cacheable`` opts a unit out of the
    result cache (e.g. whole-experiment units that exist to print).
    """

    experiment: str
    key: tuple[Any, ...]
    fn: str
    params: dict[str, Any] = field(default_factory=dict)
    cacheable: bool = True

    @property
    def name(self) -> str:
        return "/".join([self.experiment, *(str(k) for k in self.key)])


@dataclass
class TaskResult:
    """Outcome of one task: a value, a cache hit, or an isolated error."""

    spec: TaskSpec
    value: Any = None
    error: str | None = None
    traceback: str | None = None
    duration: float = 0.0
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


def _resolve(path: str) -> Callable[..., Any]:
    """Import ``pkg.module.attr`` and return the attribute."""
    module_name, _, attr = path.rpartition(".")
    if not module_name:
        raise ValueError(f"task fn must be a dotted module path, got {path!r}")
    return getattr(importlib.import_module(module_name), attr)


def _execute(fn_path: str, params: dict[str, Any], span_name: str) -> dict[str, Any]:
    """Run one task under a tracing span; errors are serialized, never raised."""
    t0 = time.perf_counter()
    record: dict[str, Any] = {"value": None, "error": None, "traceback": None}
    try:
        with obs_trace.span(span_name):
            record["value"] = _resolve(fn_path)(**params)
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        record["error"] = f"{type(exc).__name__}: {exc}"
        record["traceback"] = _traceback.format_exc()
    record["duration"] = time.perf_counter() - t0
    return record


def _execute_in_worker(item: tuple[str, dict[str, Any], str]) -> dict[str, Any]:
    """Worker-side wrapper: isolate obs state, run, serialize spans/metrics.

    Runs in a spawned child. The fresh registry installed here is the
    child's process-global default, so any instrumentation the task
    triggers (trainer gauges, plan-cache counters, serving histograms)
    lands in it and travels back to the parent as plain series dicts.
    """
    fn_path, params, span_name = item
    registry = obs_registry.MetricRegistry()
    obs_registry.set_default_registry(registry)
    tracer = obs_trace.default_tracer()
    tracer.clear()
    record = _execute(fn_path, params, span_name)
    record["spans"] = [s.to_dict() for s in tracer.finished]
    record["metrics"] = registry.snapshot()["series"]
    return record


def _execute_chunk_in_worker(
    items: Sequence[tuple[str, dict[str, Any], str]],
) -> dict[str, Any]:
    """Run a chunk of tasks in one dispatch, one obs scope for the chunk.

    Task failures stay isolated per item (an item that raises becomes an
    error record; its successors in the chunk still run). The worker is
    persistent, so obs state is reset at the start of every chunk — each
    chunk's spans/series therefore describe exactly that chunk and the
    parent can adopt them without double counting.
    """
    registry = obs_registry.MetricRegistry()
    obs_registry.set_default_registry(registry)
    tracer = obs_trace.default_tracer()
    tracer.clear()
    records = [_execute(fn_path, params, span_name) for fn_path, params, span_name in items]
    return {
        "records": records,
        "spans": [s.to_dict() for s in tracer.finished],
        "metrics": registry.snapshot()["series"],
    }


# -- persistent pool ---------------------------------------------------------------

#: live executors keyed by worker count; reused across ``run_tasks`` calls
_POOLS: dict[int, ProcessPoolExecutor] = {}


def _get_pool(workers: int) -> ProcessPoolExecutor:
    pool = _POOLS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=get_context("spawn"))
        _POOLS[workers] = pool
    return pool


def _dispose_pool(workers: int) -> None:
    """Drop a (possibly broken) pool so the next call starts a fresh one."""
    pool = _POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Reap every persistent worker (registered ``atexit``; idempotent)."""
    for workers in list(_POOLS):
        pool = _POOLS.pop(workers)
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_pools)


def _warm_worker(_index: int = 0) -> int:
    """No-op task whose unpickling imports the experiment package chain."""
    return os.getpid()


def warm_pool(jobs: int) -> list[int]:
    """Spawn the ``jobs``-worker pool now and pay its import cost up front.

    Returns the worker pids that answered. Call before a timed region so
    benchmarks measure task execution, not interpreter start-up; a no-op
    for ``jobs <= 1`` (inline execution has nothing to warm).
    """
    if jobs <= 1:
        return []
    pool = _get_pool(jobs)
    return sorted({f.result() for f in [pool.submit(_warm_worker, i) for i in range(jobs)]})


def revive_span(data: dict[str, Any], tracer: obs_trace.Tracer | None = None) -> Span:
    """Rebuild a worker's serialized span tree on this process's tracer.

    Durations are preserved exactly (``t_start=0``); child spans are
    reattached recursively so ``span.render()`` of a pooled task looks
    the same as an in-process one.
    """
    span = Span(str(data.get("name", "task")))
    span.t_start = 0.0
    span.t_end = float(data.get("duration", 0.0))
    span.status = data.get("status", "ok")
    span.error = data.get("error")
    span.dropped_children = int(data.get("dropped_children", 0))
    for key, amount in (data.get("counters") or {}).items():
        span.add(key, amount)
    for child_data in data.get("children") or ():
        child = revive_span(child_data)
        span._children = span._children or []
        span._children.append(child)
        span.child_time += child.duration
    if tracer is not None:
        tracer.finished.append(span)
    return span


def _to_result(spec: TaskSpec, record: dict[str, Any]) -> TaskResult:
    return TaskResult(
        spec=spec,
        value=record["value"],
        error=record["error"],
        traceback=record["traceback"],
        duration=record["duration"],
    )


def run_tasks(
    tasks: Sequence[TaskSpec],
    jobs: int = 1,
    cache: Any | None = None,
    registry: MetricRegistry | None = None,
) -> list[TaskResult]:
    """Execute tasks — inline for ``jobs <= 1``, else on the persistent pool.

    Results come back in task order. With a :class:`~.cache.ResultCache`,
    each cacheable task is looked up first (hits skip execution entirely)
    and successful misses are stored after execution. Worker failures
    (including a worker that dies mid-task) are confined to the tasks
    that were in flight on the lost worker's chunk; the broken pool is
    disposed and the next call starts a fresh one.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    reg = get_registry(registry)

    def count(status: str) -> None:
        reg.counter(
            "experiment_tasks_total",
            "Experiment task executions by outcome",
            labels={"status": status},
        ).inc()

    results: list[TaskResult | None] = [None] * len(tasks)
    digests: dict[int, str] = {}
    pending: list[int] = []
    for i, spec in enumerate(tasks):
        if cache is not None and spec.cacheable:
            digest = cache.task_digest(spec)
            digests[i] = digest
            hit, value = cache.get(digest)
            if hit:
                results[i] = TaskResult(spec=spec, value=value, cached=True)
                count("cached")
                continue
        pending.append(i)

    if pending and (jobs <= 1 or len(pending) == 1):
        for i in pending:
            spec = tasks[i]
            results[i] = _to_result(spec, _execute(spec.fn, spec.params, f"task:{spec.name}"))
    elif pending:
        tracer = obs_trace.default_tracer()
        pool = _get_pool(jobs)
        # chunks small enough to load-balance (≈4 per worker), large
        # enough to amortize the per-dispatch pickle round-trip
        chunk_size = max(1, -(-len(pending) // (jobs * 4)))
        chunks = [pending[j : j + chunk_size] for j in range(0, len(pending), chunk_size)]
        futures = [
            (
                chunk,
                pool.submit(
                    _execute_chunk_in_worker,
                    [(tasks[i].fn, tasks[i].params, f"task:{tasks[i].name}") for i in chunk],
                ),
            )
            for chunk in chunks
        ]
        pool_broken = False
        for chunk, future in futures:
            try:
                payload = future.result()
            except Exception as exc:  # worker died (e.g. BrokenProcessPool)
                pool_broken = True
                for i in chunk:
                    results[i] = TaskResult(
                        spec=tasks[i],
                        error=f"{type(exc).__name__}: {exc}",
                        traceback=_traceback.format_exc(),
                    )
                continue
            for span_data in payload.get("spans") or ():
                revive_span(span_data, tracer)
            reg.adopt_series(payload.get("metrics") or ())
            for i, record in zip(chunk, payload["records"]):
                results[i] = _to_result(tasks[i], record)
        if pool_broken:
            _dispose_pool(jobs)

    for i in pending:
        result = results[i]
        assert result is not None
        count("ok" if result.ok else "error")
        if cache is not None and result.ok and i in digests:
            cache.put(digests[i], result.value)
    return [r for r in results if r is not None]
