"""The refit stall: sync vs async vs warm-start vs pruned refits.

A sync pooled refit runs in-line with the serving tick, so the tick that
triggers it pays the full fit cost — a tail-latency spike that scales
with the training pool, not with serving work. This harness measures
that stall and what each mitigation buys:

* **sync** — the PR-5 baseline: refit ticks block on the fit;
* **async** — same model, fits on the background engine, adopted by
  atomic swap (the paced schedule: the paper's tick is 10 s and these
  fits are sub-second, so in production a fit completes within the tick
  gap — the harness models that by waiting out the fit *between* ticks,
  off the measured path);
* **async + warm** — ships the current weights so the worker resumes
  training (:meth:`Forecaster.warm_fit`) instead of refitting cold;
* **async + pruned** — the compact magnitude-pruned GRU
  (``gru_pruned``, PAPERS.md's pruned-GRU online predictor) on the warm
  async path.

Each mode serves the same synthetic fleet trace; per-tick wall latency
is recorded for every tick, and the ticks *around refit activity* (the
in-line attempt tick for sync; the submission and swap ticks for async)
are compared at p99 — the number the CI gate in
``benchmarks/test_async_refit.py`` holds: async p99 strictly below sync
p99 at equal-or-better prequential MAE. Under the paced schedule the
plain async mode is prediction-bit-identical to sync (same pool at the
trigger tick, model serves from the next tick either way), so the
accuracy half of the gate is exact, not statistical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..obs.registry import MetricRegistry
from ..streaming.fleet import FleetPredictor
from .config import get_profile
from .fleet import make_fleet_streams

__all__ = ["RefitModeResult", "RefitStallResult", "run_refit_stall"]


@dataclass
class RefitModeResult:
    """One serving mode's latency/accuracy profile over the shared trace."""

    label: str
    model: str
    refit_mode: str
    warm_start: bool
    p50_ms: float  #: median tick latency, all ticks
    p99_ms: float  #: p99 tick latency, all ticks
    refit_p99_ms: float  #: p99 tick latency over refit-adjacent ticks
    max_ms: float
    mae: float
    n_refits: int
    n_refit_failures: int
    n_deferred: int
    model_version: int
    refit_ticks: int  #: how many ticks carried refit activity
    wall_seconds: float


@dataclass
class RefitStallResult:
    """Sync vs async vs warm vs pruned over one shared fleet trace."""

    n_streams: int
    ticks: int
    window: int
    refit_interval: int
    model: str
    modes: list[RefitModeResult] = field(default_factory=list)

    def mode(self, label: str) -> RefitModeResult:
        for m in self.modes:
            if m.label == label:
                return m
        raise KeyError(f"no mode {label!r}; have {[m.label for m in self.modes]}")

    @property
    def gate_latency(self) -> bool:
        """Async p99 around refit ticks strictly below sync p99."""
        return self.mode("async").refit_p99_ms < self.mode("sync").refit_p99_ms

    @property
    def gate_accuracy(self) -> bool:
        """Paced async prequential MAE equal-or-better than sync.

        Paced async is bit-identical to sync by construction, so this
        holds exactly; the epsilon only forgives float summation noise
        if a platform reorders the reductions.
        """
        return self.mode("async").mae <= self.mode("sync").mae * (1.0 + 1e-9)

    @property
    def gate_pass(self) -> bool:
        return self.gate_latency and self.gate_accuracy


def _run_mode(
    label: str,
    streams: np.ndarray,
    *,
    model: str,
    model_kwargs: dict[str, Any],
    window: int,
    refit_interval: int,
    refit_mode: str,
    warm_start: bool,
    paced: bool,
) -> RefitModeResult:
    ticks = len(streams)
    n_streams = streams.shape[1]
    predictor = FleetPredictor(
        n_streams,
        forecaster_name=model,
        forecaster_kwargs=dict(model_kwargs),
        window=window,
        buffer_capacity=max(4 * window, 64),
        refit_interval=refit_interval,
        refit_mode=refit_mode,
        warm_start=warm_start,
        warm_epochs=max(1, int(model_kwargs.get("epochs", 4)) // 2),
        registry=MetricRegistry(),  # private: modes must not share counters
    )
    engine = predictor.refit_engine
    latencies = np.empty(ticks)
    refit_activity = np.zeros(ticks, dtype=bool)
    wall0 = time.perf_counter()
    try:
        for i, row in enumerate(streams):
            calls_before = predictor.refit_supervisor.n_calls
            pending_before = engine is not None and engine.pending_task() is not None
            t0 = time.perf_counter()
            out = predictor.process_tick(row)
            latencies[i] = time.perf_counter() - t0
            pending_after = engine is not None and engine.pending_task() is not None
            refit_activity[i] = (
                out.refit  # model changed (in-line refit or swap tick)
                or predictor.refit_supervisor.n_calls != calls_before  # attempt ran
                or (pending_after and not pending_before)  # submission tick
            )
            if paced and engine is not None:
                # the production tick gap dwarfs the fit; model it by letting
                # the background fit land between ticks, off the measured path
                engine.wait(timeout=120.0)
        wall = time.perf_counter() - wall0
        st = predictor.stats
        mask = refit_activity if refit_activity.any() else np.ones(ticks, dtype=bool)
        return RefitModeResult(
            label=label,
            model=model,
            refit_mode=refit_mode,
            warm_start=warm_start,
            p50_ms=float(np.percentile(latencies, 50) * 1e3),
            p99_ms=float(np.percentile(latencies, 99) * 1e3),
            refit_p99_ms=float(np.percentile(latencies[mask], 99) * 1e3),
            max_ms=float(latencies.max() * 1e3),
            mae=st.fleet_mae,
            n_refits=st.n_refits,
            n_refit_failures=st.n_refit_failures,
            n_deferred=st.n_refits_deferred,
            model_version=predictor.model_version,
            refit_ticks=int(refit_activity.sum()),
            wall_seconds=wall,
        )
    finally:
        predictor.close()


def run_refit_stall(
    profile: str = "default",
    n_streams: int = 32,
    ticks: int | None = None,
    model: str = "mlp",
    refit_interval: int = 24,
    paced: bool = True,
) -> RefitStallResult:
    """Serve one fleet trace under each refit mode; compare stall and MAE.

    ``paced=True`` (the deployment model) waits out in-flight fits
    between ticks so swaps land on the next tick, making plain async
    prediction-bit-identical to sync. ``paced=False`` free-runs the
    async modes — swaps land whenever the fit finishes, staleness and
    deferrals become visible, and accuracy may drift from sync.
    """
    prof = get_profile(profile)
    if ticks is None:
        ticks = 140 if prof.name == "quick" else 240
    window = prof.window
    epochs = max(4, prof.epochs // 6)
    streams = make_fleet_streams(n_streams, ticks, prof.seed, nan_rate=0.0)
    base_kwargs: dict[str, Any] = {"epochs": epochs, "seed": prof.seed}
    pruned_kwargs: dict[str, Any] = {
        "epochs": epochs,
        "finetune_epochs": 1,
        "hidden": 12,
        "seed": prof.seed,
    }
    result = RefitStallResult(
        n_streams=n_streams,
        ticks=ticks,
        window=window,
        refit_interval=refit_interval,
        model=model,
    )
    specs = (
        ("sync", model, base_kwargs, "sync", False),
        ("async", model, base_kwargs, "async", False),
        ("async+warm", model, base_kwargs, "async", True),
        ("async+pruned", "gru_pruned", pruned_kwargs, "async", True),
    )
    for label, name, kwargs, mode, warm in specs:
        result.modes.append(
            _run_mode(
                label,
                streams,
                model=name,
                model_kwargs=kwargs,
                window=window,
                refit_interval=refit_interval,
                refit_mode=mode,
                warm_start=warm,
                paced=paced,
            )
        )
    return result
