"""Serving resilience under stream corruption: degradation-vs-fault-rate.

The offline robustness harness (:mod:`.robustness`) asks whether the
*accuracy claims* survive seed variation; this one asks whether the
*serving system* survives the paper's fault model live. A clean stream
is replayed through :class:`~repro.streaming.online.OnlinePredictor`
behind a :class:`~repro.streaming.faults.FaultInjector` at increasing
severity (NaN cells/rows, drops, duplicates, outliers, injected refit
crashes), and two curves come out:

* **MAE vs corruption rate**, scored against the *clean* ground truth
  (the injector's per-record provenance realigns predictions across
  drops and duplicates), so the number measures real degradation rather
  than agreement with corrupted observations;
* **availability** — the fraction of post-warmup records that received
  a prediction despite quarantines and failures.

A resilient serving layer degrades gracefully: MAE grows with the fault
level but stays bounded, availability stays high, and no fault level
crashes the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..streaming.faults import FaultConfig, FaultInjector
from ..streaming.online import OnlinePredictor
from ..streaming.resilience import GatePolicy, SupervisorPolicy
from ..traces.generator import ClusterTraceGenerator, TraceConfig
from .config import ExperimentProfile, get_profile

__all__ = ["ResilienceLevelResult", "ResilienceResult", "run_resilience"]


@dataclass
class ResilienceLevelResult:
    """Serving outcome at one fault level."""

    level: float
    mae_vs_clean: float
    availability: float
    n_emitted: int
    n_served: int
    n_quarantined: int
    n_imputed: int
    n_refit_failures: int
    n_fallback_predictions: int
    injected: dict[str, int] = field(default_factory=dict)


@dataclass
class ResilienceResult:
    """Degradation curve across fault levels for one forecaster."""

    model: str
    levels: tuple[float, ...]
    per_level: list[ResilienceLevelResult] = field(default_factory=list)

    @property
    def baseline_mae(self) -> float:
        return self.per_level[0].mae_vs_clean

    def degradation(self, level: float) -> float:
        """MAE at ``level`` relative to the clean-stream baseline."""
        for r in self.per_level:
            if r.level == level:
                return r.mae_vs_clean / max(self.baseline_mae, 1e-12)
        raise KeyError(f"no result at level {level}; have {self.levels}")

    def is_bounded(self, factor: float) -> bool:
        """True if no level's MAE exceeds ``factor`` x the clean baseline."""
        return all(r.mae_vs_clean <= factor * self.baseline_mae for r in self.per_level)


def run_resilience(
    profile: str | ExperimentProfile = "quick",
    model: str = "holt",
    model_kwargs: dict | None = None,
    levels: tuple[float, ...] = (0.0, 0.02, 0.05, 0.1, 0.2),
    refit_failure_rate: float = 0.2,
    refit_interval: int = 60,
) -> ResilienceResult:
    """Replay one container stream at each fault level; score vs clean truth."""
    prof = get_profile(profile) if isinstance(profile, str) else profile
    gen = ClusterTraceGenerator(TraceConfig(n_steps=prof.n_steps, seed=prof.seed))
    entity = gen.generate_entity(
        "mutation", entity_id="c_resilience", low=0.3, high=0.7, jump_at=0.55, noise=0.03
    )
    clean = entity.cpu / 100.0

    result = ResilienceResult(model=model, levels=tuple(levels))
    for level in levels:
        injector = FaultInjector(
            FaultConfig.at_level(
                level, refit_failure_rate=refit_failure_rate if level > 0 else 0.0,
                seed=prof.seed,
            )
        )
        predictor = OnlinePredictor(
            model,
            forecaster_kwargs=dict(model_kwargs or {}),
            window=prof.window,
            buffer_capacity=min(400, prof.n_steps),
            refit_interval=refit_interval,
            min_fit_size=5 * prof.window,
            # outlier screening on: impulse faults are quarantined instead of
            # entering the buffer (and, via the window, the served forecasts)
            gate_policy=GatePolicy(
                impute="last",
                outlier_sigma=4.0,
                outlier_action="quarantine",
                prediction_sigma=3.0,
            ),
            supervisor_policy=SupervisorPolicy(max_retries=1, backoff_base=0.0),
            refit_fault_hook=injector.refit_fault,
        )
        records = [predictor.process(r) for r in injector.stream(clean[:, None])]

        # score against the clean source value each emitted record came from
        abs_errors = [
            abs(rec.prediction - clean[src])
            for rec, src in zip(records, injector.emitted_from)
            if rec.prediction is not None
        ]
        served = [i for i, rec in enumerate(records) if rec.prediction is not None]
        warmup = served[0] if served else len(records)
        post_warmup = max(len(records) - warmup, 1)

        result.per_level.append(
            ResilienceLevelResult(
                level=level,
                mae_vs_clean=float(np.mean(abs_errors)) if abs_errors else float("nan"),
                availability=len(served) / post_warmup,
                n_emitted=len(records),
                n_served=len(served),
                n_quarantined=predictor.gate.n_quarantined,
                n_imputed=predictor.gate.n_imputed,
                n_refit_failures=predictor.stats.n_refit_failures,
                n_fallback_predictions=predictor.stats.n_fallback_predictions,
                injected=dict(injector.counts),
            )
        )
    return result
