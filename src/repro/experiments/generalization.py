"""Generalization harness — the paper's §V-B/V-C claim.

"Through the verification of resource utilization of the workloads
running on machines and containers, we can see that the model has good
generalization and can be widely used in similar resource prediction
scenarios." Two generalization axes are measured:

* **cross-entity**: train on one container, evaluate (without refitting)
  on the test windows of *other* containers of the same cluster;
* **cross-level**: train on a container, evaluate on a machine (and the
  reverse) — the harder shift the paper's claim implies.

Both compare against the same model trained in-domain, so the reported
number is a *generalization gap*, not a bare error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.pipeline import PipelineConfig, PredictionPipeline
from ..traces.generator import ClusterTraceGenerator, TraceConfig
from ..traces.schema import EntityTrace
from ..training.metrics import mae, mse
from .accuracy import model_kwargs_for
from .config import ExperimentProfile, get_profile

__all__ = ["GeneralizationResult", "run_generalization"]


@dataclass
class GeneralizationResult:
    """Per-target transfer vs in-domain errors."""

    model: str
    source_id: str
    #: target entity id → {"transfer": {...}, "in_domain": {...}}
    targets: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)

    def gap(self, target_id: str, metric: str = "mse") -> float:
        """transfer / in-domain error ratio (1.0 = perfect generalization)."""
        entry = self.targets[target_id]
        return entry["transfer"][metric] / entry["in_domain"][metric]

    def mean_gap(self, metric: str = "mse") -> float:
        return float(np.mean([self.gap(t, metric) for t in self.targets]))


def _transfer_eval(forecaster, pipe: PredictionPipeline, entity: EntityTrace) -> dict:
    prepared = pipe.prepare(entity)
    xe, ye = prepared.dataset.test
    pred = forecaster.predict(xe)
    return {"mse": mse(ye, pred), "mae": mae(ye, pred)}


def run_generalization(
    profile: str | ExperimentProfile = "quick",
    model: str = "rptcn",
    n_targets: int = 3,
) -> GeneralizationResult:
    """Train once on a container, transfer to siblings and to a machine."""
    prof = get_profile(profile) if isinstance(profile, str) else profile
    gen = ClusterTraceGenerator(
        TraceConfig(
            n_machines=max(prof.n_machines, 2),
            containers_per_machine=max(prof.containers_per_machine, 2),
            n_steps=prof.n_steps,
            seed=prof.seed,
        )
    )
    trace = gen.generate()
    source = trace.containers[0]
    targets: list[EntityTrace] = trace.containers[1 : 1 + max(1, n_targets - 1)]
    targets.append(trace.machines[0])  # the cross-level shift

    pipe = PredictionPipeline(
        PipelineConfig(scenario="mul_exp", window=prof.window, horizon=prof.horizon)
    )

    # one model fitted on the source entity
    source_run = pipe.run(source, model, model_kwargs_for(model, prof))
    fitted = source_run.forecaster

    result = GeneralizationResult(model=model, source_id=source.entity_id)
    for target in targets:
        transfer = _transfer_eval(fitted, pipe, target)
        in_domain = pipe.run(target, model, model_kwargs_for(model, prof)).metrics
        result.targets[target.entity_id] = {
            "transfer": transfer,
            "in_domain": {"mse": in_domain["mse"], "mae": in_domain["mae"]},
        }
    return result
