"""Generalization harness — the paper's §V-B/V-C claim.

"Through the verification of resource utilization of the workloads
running on machines and containers, we can see that the model has good
generalization and can be widely used in similar resource prediction
scenarios." Two generalization axes are measured:

* **cross-entity**: train on one container, evaluate (without refitting)
  on the test windows of *other* containers of the same cluster;
* **cross-level**: train on a container, evaluate on a machine (and the
  reverse) — the harder shift the paper's claim implies.

Both compare against the same model trained in-domain, so the reported
number is a *generalization gap*, not a bare error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..data.pipeline import PipelineConfig, PredictionPipeline
from ..traces.generator import generate_cluster_cached
from ..traces.schema import EntityTrace
from ..training.metrics import mae, mse
from .accuracy import model_kwargs_for
from .config import ExperimentProfile, get_profile
from .parallel import TaskSpec, run_tasks

__all__ = [
    "GeneralizationResult",
    "run_generalization",
    "run_generalization_target",
    "generalization_tasks",
]


@dataclass
class GeneralizationResult:
    """Per-target transfer vs in-domain errors."""

    model: str
    source_id: str
    #: target entity id → {"transfer": {...}, "in_domain": {...}}
    targets: dict[str, dict[str, dict[str, float]]] = field(default_factory=dict)
    #: target entity id (or cell index) → failure summary
    errors: dict[str, str] = field(default_factory=dict)

    def gap(self, target_id: str, metric: str = "mse") -> float:
        """transfer / in-domain error ratio (1.0 = perfect generalization)."""
        entry = self.targets[target_id]
        return entry["transfer"][metric] / entry["in_domain"][metric]

    def mean_gap(self, metric: str = "mse") -> float:
        return float(np.mean([self.gap(t, metric) for t in self.targets]))


def _transfer_eval(forecaster, pipe: PredictionPipeline, entity: EntityTrace) -> dict:
    prepared = pipe.prepare(entity)
    xe, ye = prepared.dataset.test
    pred = forecaster.predict(xe)
    return {"mse": mse(ye, pred), "mae": mae(ye, pred)}


def _generalization_targets(trace, n_targets: int) -> list[EntityTrace]:
    targets: list[EntityTrace] = list(trace.containers[1 : 1 + max(1, n_targets - 1)])
    targets.append(trace.machines[0])  # the cross-level shift
    return targets


def run_generalization_target(
    prof: ExperimentProfile,
    model: str,
    target_index: int,
    n_targets: int,
) -> dict[str, Any]:
    """One transfer target — pure in its arguments.

    Refits the source model in-process; training is deterministic in the
    profile seed, so every cell reconstructs the *same* fitted source
    model the serial harness trained once (and the memoized trace means
    sibling cells in one process share the substrate).
    """
    trace = generate_cluster_cached(
        n_machines=max(prof.n_machines, 2),
        containers_per_machine=max(prof.containers_per_machine, 2),
        n_steps=prof.n_steps,
        seed=prof.seed,
    )
    source = trace.containers[0]
    target = _generalization_targets(trace, n_targets)[target_index]

    pipe = PredictionPipeline(
        PipelineConfig(scenario="mul_exp", window=prof.window, horizon=prof.horizon)
    )
    fitted = pipe.run(source, model, model_kwargs_for(model, prof)).forecaster
    transfer = _transfer_eval(fitted, pipe, target)
    in_domain = pipe.run(target, model, model_kwargs_for(model, prof)).metrics
    return {
        "source_id": source.entity_id,
        "target_id": target.entity_id,
        "transfer": transfer,
        "in_domain": {"mse": in_domain["mse"], "mae": in_domain["mae"]},
    }


def generalization_tasks(
    prof: ExperimentProfile, model: str, n_targets: int
) -> list[TaskSpec]:
    """Independent task specs, one per transfer target."""
    total = max(1, n_targets - 1) + 1
    return [
        TaskSpec(
            experiment="generalization",
            key=(model, f"target{idx}"),
            fn="repro.experiments.generalization.run_generalization_target",
            params={
                "prof": prof,
                "model": model,
                "target_index": idx,
                "n_targets": n_targets,
            },
        )
        for idx in range(total)
    ]


def run_generalization(
    profile: str | ExperimentProfile = "quick",
    model: str = "rptcn",
    n_targets: int = 3,
    jobs: int = 1,
    cache: Any | None = None,
) -> GeneralizationResult:
    """Train on a container, transfer to siblings and to a machine."""
    prof = get_profile(profile) if isinstance(profile, str) else profile
    result = GeneralizationResult(model=model, source_id="")
    tasks = generalization_tasks(prof, model, n_targets)
    for task in run_tasks(tasks, jobs=jobs, cache=cache):
        if task.ok:
            result.source_id = task.value["source_id"]
            result.targets[task.value["target_id"]] = {
                "transfer": task.value["transfer"],
                "in_domain": task.value["in_domain"],
            }
        else:
            result.errors[str(task.spec.key[1])] = task.error or "unknown error"
    return result
