"""Experiment harnesses — one per paper table/figure (see DESIGN.md §4)."""

from .accuracy import Table2Result, run_table2
from .characterization import (
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig7,
)
from .config import ExperimentProfile, PROFILES, get_profile
from .convergence import run_fig9, run_fig10
from .curves import Fig8Result, run_fig8
from .generalization import GeneralizationResult, run_generalization
from .horizon import HorizonResult, run_horizon_sweep
from .persistence import load_result, save_result, to_jsonable
from .resilience import ResilienceLevelResult, ResilienceResult, run_resilience
from .robustness import RobustnessResult, run_robustness

__all__ = [
    "ExperimentProfile",
    "PROFILES",
    "get_profile",
    "run_table2",
    "Table2Result",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig7",
    "run_fig8",
    "Fig8Result",
    "run_fig9",
    "run_fig10",
    "run_horizon_sweep",
    "HorizonResult",
    "run_robustness",
    "RobustnessResult",
    "run_resilience",
    "ResilienceResult",
    "ResilienceLevelResult",
    "run_generalization",
    "GeneralizationResult",
    "save_result",
    "load_result",
    "to_jsonable",
]
