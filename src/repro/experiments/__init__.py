"""Experiment harnesses — one per paper table/figure (see DESIGN.md §4)."""

from .accuracy import Table2Result, run_table2, run_table2_cell, table2_tasks
from .cache import (
    DEFAULT_CACHE_DIR,
    DEFAULT_FINGERPRINT_MODULES,
    ResultCache,
    code_fingerprint,
)
from .characterization import (
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig7,
)
from .config import ExperimentProfile, PROFILES, get_profile
from .convergence import run_fig9, run_fig10
from .curves import Fig8Result, run_fig8
from .fleet import (
    FleetResult,
    FleetScaleResult,
    ShardScaleResult,
    ShardScalingResult,
    make_fleet_streams,
    run_fleet,
    run_shard_scaling,
)
from .generalization import (
    GeneralizationResult,
    generalization_tasks,
    run_generalization,
    run_generalization_target,
)
from .horizon import HorizonResult, run_horizon_sweep
from .parallel import (
    TaskResult,
    TaskSpec,
    derive_seed,
    run_tasks,
    shutdown_pools,
    warm_pool,
)
from .persistence import load_result, save_result, to_jsonable
from .resilience import ResilienceLevelResult, ResilienceResult, run_resilience
from .robustness import (
    RobustnessResult,
    robustness_tasks,
    run_robustness,
    run_robustness_cell,
)

__all__ = [
    "ExperimentProfile",
    "PROFILES",
    "get_profile",
    "run_table2",
    "run_table2_cell",
    "table2_tasks",
    "Table2Result",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig7",
    "run_fig8",
    "Fig8Result",
    "run_fig9",
    "run_fig10",
    "run_horizon_sweep",
    "HorizonResult",
    "run_robustness",
    "run_robustness_cell",
    "robustness_tasks",
    "RobustnessResult",
    "run_resilience",
    "ResilienceResult",
    "ResilienceLevelResult",
    "run_fleet",
    "make_fleet_streams",
    "FleetResult",
    "FleetScaleResult",
    "run_shard_scaling",
    "ShardScaleResult",
    "ShardScalingResult",
    "run_generalization",
    "run_generalization_target",
    "generalization_tasks",
    "GeneralizationResult",
    "save_result",
    "load_result",
    "to_jsonable",
    "TaskSpec",
    "TaskResult",
    "derive_seed",
    "run_tasks",
    "warm_pool",
    "shutdown_pools",
    "ResultCache",
    "code_fingerprint",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_FINGERPRINT_MODULES",
]
