"""Closed-loop autoscaling: the policy grid at cluster scale.

The experiment the :mod:`repro.cluster` subsystem exists for. One shared
job schedule per trace seed; every autoscaling policy runs the identical
closed loop (same arrivals, same true demand, same packing mechanics)
and the table compares what each one bought: SLA-violation rate,
utilization, waste, stranded capacity, migrations, and machine-ticks per
completed job.

The workload mix is deliberately cluster-shaped rather than uniform: a
majority of service-like jobs (diurnal periodicity, the paper's Fig. 2
machine behaviour) and a volatile minority (bursty, regime-switching,
spiky batch — the Fig. 1 container behaviour). That split is where
per-job calibration earns its keep: a fixed headroom is simultaneously
too generous for the stable majority and too small for the volatile
tail, while the quantile policy sizes each band from that job's own
residual history.

The headline gate — asserted by ``benchmarks/test_autoscale_loop.py``
and checked in CI — is that the calibrated predictive policy beats the
reactive baseline on SLA-violation rate at equal-or-lower cost per job.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.autoscaler import POLICY_NAMES, make_policy
from ..cluster.forecast import FleetForecastSource
from ..cluster.report import ClusterReport, aggregate_reports, format_policy_table
from ..cluster.simulator import ClusterConfig, ClusterSimulator, make_schedule
from ..obs.registry import MetricRegistry
from ..scheduling.jobs import JobGenerator
from .config import ExperimentProfile, get_profile
from .parallel import TaskSpec, run_tasks

__all__ = ["AutoscaleResult", "run_autoscale", "AUTOSCALE_MIX"]

#: cluster-shaped archetype mix: stable service majority, volatile tail
AUTOSCALE_MIX = {
    "periodic": 0.55,
    "regime_switching": 0.15,
    "bursty": 0.2,
    "spiky_batch": 0.1,
}

#: per-profile cluster sizing: (n_machines, n_jobs, ticks, min_life,
#: max_life, trace seeds, GBT estimators)
_SIZING: dict[str, tuple[int, int, int, int, int, tuple[int, ...], int]] = {
    "quick": (24, 40, 240, 100, 220, (1,), 40),
    "default": (48, 96, 300, 100, 260, (1, 2, 3), 60),
    "paper": (256, 640, 480, 120, 400, (1, 2, 3, 4, 5), 100),
}


def _sizing(prof: ExperimentProfile):
    try:
        return _SIZING[prof.name]
    except KeyError:
        return _SIZING["default"]


def _autoscale_cell(policy: str, trace_seed: int, profile: str) -> ClusterReport:
    """One (policy, trace seed) closed-loop run — a parallel task unit.

    Module-level and fully determined by its parameters, so it can cross
    the process boundary and the result cache can key on it.
    """
    prof = get_profile(profile)
    n_machines, n_jobs, ticks, min_life, max_life, _, estimators = _sizing(prof)
    generator = JobGenerator(duration=ticks, seed=trace_seed, mix=dict(AUTOSCALE_MIX))
    schedule = make_schedule(
        n_jobs=n_jobs,
        ticks=ticks,
        seed=trace_seed,
        generator=generator,
        min_life=min_life,
        max_life=max_life,
    )
    pol = make_policy(policy)
    source = None
    if pol.needs_forecasts:
        source = FleetForecastSource(
            n_jobs=n_jobs,
            tau=getattr(pol, "tau", 0.99),
            min_errors=12,
            forecaster_name="xgboost",
            forecaster_kwargs={"n_estimators": estimators, "max_depth": 3},
            window=8,
            refit_interval=20,
            refit_streams=24,
            registry=MetricRegistry(),
        )
    sim = ClusterSimulator(
        schedule,
        pol,
        ClusterConfig(n_machines=n_machines),
        source=source,
        registry=MetricRegistry(),
    )
    return sim.run()


@dataclass
class AutoscaleResult:
    """Every policy's closed-loop outcome over the shared trace seeds."""

    profile: str
    n_machines: int
    n_jobs: int
    ticks: int
    seeds: tuple[int, ...]
    #: policy -> per-seed reports, seed order matching ``seeds``
    reports: dict[str, list[ClusterReport]] = field(default_factory=dict)

    def aggregated(self, policy: str) -> ClusterReport:
        """Mean-over-seeds report for one policy."""
        return aggregate_reports(self.reports[policy])

    @property
    def gate_pass(self) -> bool:
        """The headline claim: calibrated predictive beats reactive.

        Lower SLA-violation rate at equal-or-lower machine-ticks per
        completed job, on the seed-aggregated reports.
        """
        reactive = self.aggregated("reactive")
        quantile = self.aggregated("quantile")
        return (
            quantile.sla_violation_rate < reactive.sla_violation_rate
            and quantile.cost_per_job() <= reactive.cost_per_job()
        )

    def table(self) -> str:
        """The policy-comparison table over seed-aggregated reports."""
        return format_policy_table(
            [self.aggregated(name) for name in POLICY_NAMES if name in self.reports]
        )


def run_autoscale(
    profile: str | ExperimentProfile = "quick",
    jobs: int = 1,
    cache=None,
) -> AutoscaleResult:
    """Run the full policy grid; one parallel cell per (policy, seed)."""
    prof = get_profile(profile) if isinstance(profile, str) else profile
    n_machines, n_jobs, ticks, _, _, seeds, _ = _sizing(prof)
    tasks = [
        TaskSpec(
            experiment="autoscale",
            key=(prof.name, policy, seed),
            fn="repro.experiments.autoscale._autoscale_cell",
            params=dict(policy=policy, trace_seed=seed, profile=prof.name),
        )
        for policy in POLICY_NAMES
        for seed in seeds
    ]
    results = run_tasks(tasks, jobs=jobs, cache=cache)
    failed = {r.spec.name: r.error for r in results if not r.ok}
    if failed:
        lines = "; ".join(f"{k}: {v}" for k, v in failed.items())
        raise RuntimeError(f"autoscale cells failed: {lines}")
    out = AutoscaleResult(
        profile=prof.name,
        n_machines=n_machines,
        n_jobs=n_jobs,
        ticks=ticks,
        seeds=tuple(seeds),
    )
    for res in results:
        out.reports.setdefault(res.spec.key[1], []).append(res.value)
    return out


if __name__ == "__main__":  # pragma: no cover - manual smoke entry point
    res = run_autoscale("quick")
    print(res.table())
    print(f"gate (quantile beats reactive): {res.gate_pass}")
