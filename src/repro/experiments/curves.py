"""Fig. 8 harness — predicted vs. true curves around a mutation point.

The paper's Fig. 8 plots each model's Mul-Exp test-set predictions on a
machine whose CPU utilization "increases abruptly after the 350th sampling
point, and then maintains a high CPU resource utilization". The synthetic
counterpart uses the :func:`repro.traces.workloads.mutation_load`
archetype with the jump placed inside the chronological test split, and
reports per-model tracking error before and after the jump.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.pipeline import PipelineConfig, PredictionPipeline
from ..traces.generator import ClusterTraceGenerator, TraceConfig
from ..training.metrics import mae
from .accuracy import model_kwargs_for
from .config import ExperimentProfile, get_profile

__all__ = ["Fig8Result", "run_fig8"]

_FIG8_MODELS = ("lstm", "xgboost", "cnn_lstm", "rptcn")


@dataclass
class Fig8Result:
    """Test-set truth, per-model predictions, and mutation diagnostics."""

    truth: np.ndarray
    predictions: dict[str, np.ndarray] = field(default_factory=dict)
    jump_index: int = -1  # index of the jump within the test segment
    pre_jump_mae: dict[str, float] = field(default_factory=dict)
    post_jump_mae: dict[str, float] = field(default_factory=dict)

    def tracking_error(self, model: str) -> float:
        """Overall MAE of one model on the mutation series."""
        return mae(self.truth, self.predictions[model])

    def best_post_jump(self) -> str:
        """Model with the lowest MAE after the mutation point."""
        return min(self.post_jump_mae, key=self.post_jump_mae.get)


def run_fig8(
    profile: str | ExperimentProfile = "quick",
    jump_at: float = 0.85,
    models: tuple[str, ...] = _FIG8_MODELS,
) -> Fig8Result:
    """Regenerate Fig. 8: all models on the machine-level mutation series."""
    prof = get_profile(profile) if isinstance(profile, str) else profile
    gen = ClusterTraceGenerator(TraceConfig(n_steps=prof.n_steps, seed=prof.seed))
    entity = gen.generate_entity(
        "mutation", entity_id="m_fig8", kind="machine", jump_at=jump_at
    )

    pipe = PredictionPipeline(
        PipelineConfig(scenario="mul_exp", window=prof.window, horizon=prof.horizon)
    )
    prepared = pipe.prepare(entity)
    _, truth = prepared.dataset.test
    truth = truth[:, 0]

    # locate the jump inside the test segment from the truth itself
    diffs = np.abs(np.diff(truth))
    jump_index = int(np.argmax(diffs)) if diffs.size else 0

    result = Fig8Result(truth=truth, jump_index=jump_index)
    for model in models:
        run = pipe.run(entity, model, model_kwargs_for(model, prof), prepared=prepared)
        pred = run.predictions[:, 0]
        result.predictions[model] = pred
        if 0 < jump_index < len(truth) - 1:
            result.pre_jump_mae[model] = mae(truth[:jump_index], pred[:jump_index])
            result.post_jump_mae[model] = mae(truth[jump_index + 1 :], pred[jump_index + 1 :])
        else:
            result.pre_jump_mae[model] = result.post_jump_mae[model] = mae(truth, pred)
    return result
