"""Experiment sizing profiles.

``quick`` keeps every harness under a few seconds for CI and the pytest
benchmarks; ``paper`` scales the synthetic cluster and training budgets up
to produce smoother curves (still minutes, not the authors' GPU-days —
the *shape* of the results is what is being reproduced).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentProfile", "PROFILES", "get_profile"]


@dataclass(frozen=True)
class ExperimentProfile:
    name: str
    #: synthetic trace sizing
    n_steps: int
    n_machines: int
    containers_per_machine: int
    #: entities evaluated per level (metrics averaged across them)
    n_entities: int
    #: supervised-learning setup (paper: window over 10 s samples, 1-step)
    window: int = 12
    horizon: int = 1
    #: deep-model training budget
    epochs: int = 60
    batch_size: int = 32
    patience: int = 10
    #: classical baselines
    arima_order: tuple[int, int, int] = (2, 1, 1)
    gbt_estimators: int = 150
    seed: int = 2021
    #: per-model extra kwargs
    model_overrides: dict = field(default_factory=dict)


PROFILES: dict[str, ExperimentProfile] = {
    "quick": ExperimentProfile(
        name="quick",
        n_steps=700,
        n_machines=2,
        containers_per_machine=2,
        n_entities=1,
        epochs=25,
        gbt_estimators=60,
    ),
    "default": ExperimentProfile(
        name="default",
        n_steps=1600,
        n_machines=4,
        containers_per_machine=3,
        n_entities=2,
        epochs=40,
        gbt_estimators=120,
    ),
    "paper": ExperimentProfile(
        name="paper",
        n_steps=4000,
        n_machines=8,
        containers_per_machine=3,
        n_entities=3,
        epochs=80,
        gbt_estimators=250,
    ),
}


def get_profile(name: str) -> ExperimentProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown profile {name!r}; available: {sorted(PROFILES)}") from None
