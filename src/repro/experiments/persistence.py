"""Persist experiment results to JSON for longitudinal comparison.

Reproduction runs accumulate: saving each harness's output lets CI diff
today's shape against yesterday's and lets EXPERIMENTS.md cite a concrete
artifact. Only plain-JSON types are written; numpy scalars/arrays are
converted on the way out.
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

import numpy as np

from ..ioutil import atomic_write_json

__all__ = ["to_jsonable", "save_result", "load_result"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert results (dataclasses, numpy, tuples) to JSON types."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, slice):
        return {"__slice__": [obj.start, obj.stop, obj.step]}
    if is_dataclass(obj) and not isinstance(obj, type):
        return {"__dataclass__": type(obj).__name__, **to_jsonable(asdict(obj))}
    if isinstance(obj, dict):
        out = {}
        for k, v in obj.items():
            key = "|".join(map(str, k)) if isinstance(k, tuple) else str(k)
            out[key] = to_jsonable(v)
        return out
    if isinstance(obj, (list, tuple, set)):
        return [to_jsonable(v) for v in obj]
    raise TypeError(f"cannot serialize {type(obj).__name__} to JSON")


def save_result(result: Any, path: str | Path, experiment: str = "") -> Path:
    """Atomically write a result object with provenance metadata."""
    payload = {
        "experiment": experiment,
        "written_at": datetime.now(timezone.utc).isoformat(),
        "result": to_jsonable(result),
    }
    return atomic_write_json(path, payload)


def load_result(path: str | Path) -> dict:
    """Load a previously saved result payload."""
    return json.loads(Path(path).read_text())
