"""Content-addressed on-disk cache for experiment task results.

Re-running ``--experiment table2`` recomputes every (scenario, model,
granularity) cell from scratch even when nothing relevant changed. This
cache keys each task's result by a SHA-256 digest of everything that
determines it:

* the experiment name and the dotted path of the cell function,
* the full task parameters (including the complete sizing profile and
  the cell's seed), canonicalized through
  :func:`~repro.experiments.persistence.to_jsonable` + sorted-key JSON,
* a **code fingerprint** — a digest of the source bytes of every module
  the computation flows through (traces → data → models → nn →
  training → experiments), so editing any of them invalidates every
  previously cached cell rather than serving stale numbers.

Entries are single JSON files named by their digest, written atomically
via :func:`repro.ioutil.atomic_output` and carrying an internal payload
checksum: a torn, truncated, or hand-edited entry fails verification, is
deleted, and the cell is recomputed. Lookups and writes are counted in
:mod:`repro.obs` (``experiment_cache_events_total{event=...}``) so a
``--metrics-out`` snapshot shows exactly how warm a run was.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from functools import lru_cache
from pathlib import Path
from typing import Any, Iterable

from ..ioutil import atomic_output
from ..obs.registry import MetricRegistry, get_registry
from .persistence import to_jsonable

__all__ = [
    "ResultCache",
    "code_fingerprint",
    "DEFAULT_FINGERPRINT_MODULES",
    "DEFAULT_CACHE_DIR",
]

#: packages whose source participates in every experiment cell; editing
#: any file under them must invalidate cached results
DEFAULT_FINGERPRINT_MODULES: tuple[str, ...] = (
    "repro.data",
    "repro.experiments",
    "repro.models",
    "repro.nn",
    "repro.traces",
    "repro.training",
)

#: runner default (relative to the invocation cwd, like metrics-out)
DEFAULT_CACHE_DIR = ".rptcn-cache"


def _fingerprint_files(module_name: str) -> list[Path]:
    mod = importlib.import_module(module_name)
    file = getattr(mod, "__file__", None)
    if file is None:  # namespace/builtin: identity only
        return []
    path = Path(file)
    if path.name == "__init__.py":
        return sorted(path.parent.rglob("*.py"))
    return [path]


def _compute_fingerprint(modules: tuple[str, ...]) -> str:
    """Digest of the source bytes of ``modules`` (packages recurse)."""
    digest = hashlib.sha256()
    for name in modules:
        digest.update(name.encode())
        for file in _fingerprint_files(name):
            try:
                content = file.read_bytes()
            except OSError:
                continue
            digest.update(file.name.encode())
            digest.update(str(file.parent).encode())
            digest.update(content)
    return digest.hexdigest()[:16]


@lru_cache(maxsize=None)
def code_fingerprint(modules: tuple[str, ...] = DEFAULT_FINGERPRINT_MODULES) -> str:
    """Memoized :func:`_compute_fingerprint` — source files are immutable
    within one process lifetime; invalidation matters *across* runs."""
    return _compute_fingerprint(modules)


class ResultCache:
    """Digest-addressed JSON store for task results under one root dir.

    Layout: ``root/<digest[:2]>/<digest>.json`` (two-level fanout keeps
    directory listings short on big grids). Writes are atomic, reads are
    checksum-verified, and every outcome is counted both on the instance
    (``hits``/``misses``/``stores``/``invalidated``, exact per-cache) and
    in the metric registry (aggregated across caches).
    """

    SCHEMA = "repro-cache/v1"

    def __init__(
        self,
        root: str | Path,
        registry: MetricRegistry | None = None,
        fingerprint_modules: Iterable[str] = DEFAULT_FINGERPRINT_MODULES,
    ) -> None:
        self.root = Path(root)
        self.fingerprint_modules = tuple(fingerprint_modules)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.invalidated = 0
        self._registry = get_registry(registry)

    # -- keying ------------------------------------------------------------------

    def task_digest(self, spec: Any) -> str:
        """Stable content address of a :class:`~.parallel.TaskSpec`.

        Everything that can change the result is hashed: the experiment
        name, the cell function's dotted path, the canonicalized params
        (profile + task key + seed), and the code fingerprint.
        """
        payload = {
            "schema": self.SCHEMA,
            "experiment": spec.experiment,
            "fn": spec.fn,
            "params": to_jsonable(spec.params),
            "code": code_fingerprint(self.fingerprint_modules),
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def path_for(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    # -- storage -----------------------------------------------------------------

    def get(self, digest: str) -> tuple[bool, Any]:
        """``(hit, payload)``; corrupt entries are deleted and report a miss."""
        path = self.path_for(digest)
        try:
            raw = path.read_text()
        except OSError:
            self._count("miss")
            return False, None
        try:
            doc = json.loads(raw)
            if doc.get("schema") != self.SCHEMA:
                raise ValueError(f"schema mismatch: {doc.get('schema')!r}")
            body = json.dumps(doc["payload"], sort_keys=True, separators=(",", ":"))
            checksum = hashlib.sha256(body.encode()).hexdigest()
            if checksum != doc.get("sha256"):
                raise ValueError("payload checksum mismatch")
        except (ValueError, KeyError, TypeError):
            path.unlink(missing_ok=True)  # poisoned entry: recompute, don't serve
            self._count("invalidated")
            return False, None
        self._count("hit")
        return True, doc["payload"]

    def put(self, digest: str, value: Any) -> Path:
        """Atomically persist a task result under its digest."""
        payload = to_jsonable(value)
        body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        doc = {
            "schema": self.SCHEMA,
            "digest": digest,
            "payload": payload,
            "sha256": hashlib.sha256(body.encode()).hexdigest(),
        }
        path = self.path_for(digest)
        with atomic_output(path, suffix=".json") as tmp:
            tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        self._count("store")
        return path

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for entry in self.root.glob("*/*.json"):
            entry.unlink(missing_ok=True)
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __bool__(self) -> bool:
        # without this, __len__ would make an *empty* cache falsy — a trap
        # for "if cache:" presence checks
        return True

    # -- accounting --------------------------------------------------------------

    def _count(self, event: str) -> None:
        attr = {"hit": "hits", "miss": "misses", "store": "stores",
                "invalidated": "invalidated"}[event]
        setattr(self, attr, getattr(self, attr) + 1)
        self._registry.counter(
            "experiment_cache_events_total",
            "Result-cache lookups and writes by outcome",
            labels={"event": event},
        ).inc()
