"""Multi-seed robustness analysis.

The paper reports single numbers per Table II cell; with stochastic
training and a stochastic substrate, claims should survive seed
variation. This harness repeats an accuracy cell across seeds and
reports mean +/- std plus per-seed win counts — the evidence behind
EXPERIMENTS.md's "shape reproduced" statements.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from ..data.pipeline import PipelineConfig, PredictionPipeline
from ..traces.generator import generate_cluster_cached
from .accuracy import model_kwargs_for
from .config import ExperimentProfile, get_profile
from .parallel import TaskSpec, run_tasks

__all__ = [
    "RobustnessResult",
    "run_robustness",
    "run_robustness_cell",
    "robustness_tasks",
]


@dataclass
class RobustnessResult:
    """model → per-seed metric arrays, plus derived statistics.

    A crashed (seed, model) cell leaves ``nan`` in its slot — list
    lengths stay aligned with ``seeds`` — and records the traceback
    summary in ``errors``.
    """

    scenario: str
    level: str
    seeds: tuple[int, ...] = ()
    mse: dict[str, list[float]] = field(default_factory=dict)
    mae: dict[str, list[float]] = field(default_factory=dict)
    errors: dict[tuple[int, str], str] = field(default_factory=dict)

    def summary(self, metric: str = "mse") -> dict[str, tuple[float, float]]:
        """model → (mean, std) over seeds."""
        data = getattr(self, metric)
        return {m: (float(np.mean(v)), float(np.std(v))) for m, v in data.items()}

    def win_counts(self, metric: str = "mse") -> dict[str, int]:
        """How many seeds each model wins."""
        data = getattr(self, metric)
        models = sorted(data)
        wins = {m: 0 for m in models}
        for i in range(len(self.seeds)):
            best = min(models, key=lambda m: data[m][i])
            wins[best] += 1
        return wins

    def mean_rank(self, metric: str = "mse") -> dict[str, float]:
        """Average rank (1 = best) per model across seeds."""
        data = getattr(self, metric)
        models = sorted(data)
        ranks = {m: 0.0 for m in models}
        for i in range(len(self.seeds)):
            order = sorted(models, key=lambda m: data[m][i])
            for r, m in enumerate(order, start=1):
                ranks[m] += r
        return {m: r / len(self.seeds) for m, r in ranks.items()}


def run_robustness_cell(
    prof: ExperimentProfile,
    scenario: str,
    level: str,
    model: str,
    seed: int,
) -> dict[str, Any]:
    """One (seed, model) robustness cell — pure in its arguments.

    Regenerates the substrate under ``seed`` (memoized per process, so
    sibling models on the same seed share one trace) and trains/evals a
    single model with the seed threaded into its hyper-parameters.
    """
    trace = generate_cluster_cached(
        n_machines=max(prof.n_machines, 1),
        containers_per_machine=prof.containers_per_machine,
        n_steps=prof.n_steps,
        seed=seed,
    )
    entity = trace.machines[0] if level == "machines" else trace.containers[0]
    pipe = PredictionPipeline(
        PipelineConfig(scenario=scenario, window=prof.window, horizon=prof.horizon)
    )
    seed_prof = replace(prof, seed=seed)
    run = pipe.run(entity, model, model_kwargs_for(model, seed_prof))
    return {"mse": run.metrics["mse"], "mae": run.metrics["mae"]}


def robustness_tasks(
    prof: ExperimentProfile,
    scenario: str,
    level: str,
    models: tuple[str, ...],
    seeds: tuple[int, ...],
) -> list[TaskSpec]:
    """Independent task specs for every (seed, model) robustness cell."""
    return [
        TaskSpec(
            experiment="robustness",
            key=(seed, model),
            fn="repro.experiments.robustness.run_robustness_cell",
            params={
                "prof": prof,
                "scenario": scenario,
                "level": level,
                "model": model,
                "seed": seed,
            },
        )
        for seed in seeds
        for model in models
    ]


def run_robustness(
    profile: str | ExperimentProfile = "quick",
    scenario: str = "mul_exp",
    level: str = "machines",
    models: tuple[str, ...] = ("lstm", "xgboost", "rptcn"),
    seeds: tuple[int, ...] = (1, 2, 3),
    jobs: int = 1,
    cache: Any | None = None,
) -> RobustnessResult:
    """Repeat one Table II cell across substrate+training seeds."""
    prof = get_profile(profile) if isinstance(profile, str) else profile
    result = RobustnessResult(scenario=scenario, level=level, seeds=tuple(seeds))
    for m in models:
        result.mse[m] = []
        result.mae[m] = []

    tasks = robustness_tasks(prof, scenario, level, tuple(models), tuple(seeds))
    for task in run_tasks(tasks, jobs=jobs, cache=cache):
        seed, model = task.spec.key
        if task.ok:
            result.mse[model].append(task.value["mse"])
            result.mae[model].append(task.value["mae"])
        else:
            result.errors[(seed, model)] = task.error or "unknown error"
            result.mse[model].append(float("nan"))
            result.mae[model].append(float("nan"))
    return result
