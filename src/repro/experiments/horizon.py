"""Long-term (multi-step) prediction harness.

The paper's title and abstract claim gains "in dynamic and *long-term*
prediction of resource usage". This harness sweeps the prediction horizon
k and compares RPTCN with the baselines at each k — the error-growth curve
that quantifies the long-term axis (an extension bench; the paper reports
only the aggregate claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.pipeline import PipelineConfig, PredictionPipeline
from ..traces.generator import ClusterTraceGenerator, TraceConfig
from .accuracy import model_kwargs_for
from .config import ExperimentProfile, get_profile

__all__ = ["HorizonResult", "run_horizon_sweep"]

_MODELS = ("persistence", "xgboost", "lstm", "rptcn")


@dataclass
class HorizonResult:
    """model → horizon → metrics."""

    horizons: tuple[int, ...] = ()
    metrics: dict[str, dict[int, dict[str, float]]] = field(default_factory=dict)

    def degradation(self, model: str, metric: str = "mae") -> float:
        """Error at the longest horizon relative to the shortest."""
        per_h = self.metrics[model]
        return per_h[max(per_h)][metric] / per_h[min(per_h)][metric]

    def best_at(self, horizon: int, metric: str = "mse") -> str:
        return min(self.metrics, key=lambda m: self.metrics[m][horizon][metric])


def run_horizon_sweep(
    profile: str | ExperimentProfile = "quick",
    horizons: tuple[int, ...] = (1, 3, 6),
    models: tuple[str, ...] = _MODELS,
) -> HorizonResult:
    """Evaluate each model at each k-step horizon.

    The workload is a machine-level series with a resolvable periodic
    component (a compressed diurnal cycle). The choice matters: on a pure
    regime-switching (martingale-like) series *no* forecaster can beat
    k-step persistence in expectation — structure is what long-horizon
    prediction exploits, and machine-level load has it (paper Fig. 2).
    """
    prof = get_profile(profile) if isinstance(profile, str) else profile
    max_h = max(horizons)
    gen = ClusterTraceGenerator(TraceConfig(n_steps=prof.n_steps, seed=prof.seed))
    entity = gen.generate_entity(
        "periodic",
        entity_id="m_horizon",
        kind="machine",
        base=0.45,
        amplitude=0.22,
        period=max(60, 12 * max_h),
        noise=0.03,
    )

    result = HorizonResult(horizons=tuple(sorted(horizons)))
    for model in models:
        result.metrics[model] = {}
    for horizon in result.horizons:
        pipe = PredictionPipeline(
            PipelineConfig(scenario="mul_exp", window=max(prof.window, 2 * horizon),
                           horizon=horizon)
        )
        prepared = pipe.prepare(entity)
        for model in models:
            kwargs = model_kwargs_for(model, prof)
            kwargs["horizon"] = horizon
            run = pipe.run(entity, model, kwargs, prepared=prepared)
            result.metrics[model][horizon] = dict(run.metrics)
    return result
