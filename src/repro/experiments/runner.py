"""CLI entry point: regenerate any paper artifact from the command line.

Usage::

    python -m repro.experiments.runner --experiment table2 --profile default
    python -m repro.experiments.runner --experiment all --profile quick --jobs 2
    python -m repro.experiments.runner -e resilience --metrics-out metrics.prom

``--jobs N`` fans independent units out to worker processes: whole
experiments when several are selected (``all`` / ``extensions``), and
individual (model, scenario, granularity) cells inside the grid
harnesses (``table2``, ``robustness``, ``generalization``). Results are
bit-identical for every ``N`` — see :mod:`repro.experiments.parallel`.

``--cache-dir`` enables the content-addressed result cache (default
``.rptcn-cache``): a rerun with unchanged code, profile, and parameters
skips straight to the cached numbers. ``--no-cache`` disables it,
``--cache-clear`` wipes it first.

``--metrics-out`` snapshots the process metric registry (gate/supervisor
counters, serving latency histograms, trainer gauges, nn plan-cache
stats, task/cache counters) after every experiment — Prometheus text
format for ``.prom`` / ``.txt`` paths, JSONL for ``.json`` / ``.jsonl``.

A crashed experiment or cell no longer takes the sweep down: the failure
is reported, remaining experiments still run, and the process exits
nonzero so CI goes red.
"""

from __future__ import annotations

import argparse
import io
import sys
import time
import traceback as _traceback
from contextlib import redirect_stdout
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..analysis.reporting import format_table, format_table2, render_ascii_series
from ..obs.export import write_snapshot
from .accuracy import run_table2
from .autoscale import run_autoscale
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .chaos import run_chaos
from .characterization import run_fig1, run_fig2, run_fig3, run_fig7
from .config import PROFILES
from .convergence import run_fig9, run_fig10
from .curves import run_fig8
from .fleet import run_fleet, run_shard_scaling
from .generalization import run_generalization
from .horizon import run_horizon_sweep
from .parallel import TaskSpec, run_tasks
from .refit_stall import run_refit_stall
from .resilience import run_resilience
from .robustness import run_robustness

__all__ = ["main", "ExperimentError", "RunContext"]

#: paper artifacts (always in --experiment all)
EXPERIMENTS = ("fig1", "fig2", "fig3", "fig7", "table2", "fig8", "fig9", "fig10")
#: extension harnesses (run individually, or via --experiment extensions)
EXTENSIONS = (
    "horizon", "robustness", "generalization", "resilience", "fleet", "shard", "chaos",
    "autoscale", "refit_stall",
)


class ExperimentError(RuntimeError):
    """An experiment completed with failed cells."""


@dataclass
class RunContext:
    """Execution options threaded from the CLI into each harness."""

    jobs: int = 1
    cache: ResultCache | None = None


def _check_errors(name: str, errors: dict) -> None:
    """Report failed cells and escalate to a nonzero exit."""
    if not errors:
        return
    for key, message in errors.items():
        print(f"FAILED cell {key}: {message}")
    raise ExperimentError(f"{name}: {len(errors)} cell(s) failed")


def _print_fig1(profile: str, ctx: RunContext) -> None:
    res = run_fig1(profile)
    print(f"Fig. 1 — resource utilization of container {res.entity_id}")
    for name, series in res.series.items():
        print(render_ascii_series(series, label=name[:12]))
    print(f"cpu dynamism (mean |step|): {res.dynamism():.3f} %/sample")


def _print_fig2(profile: str, ctx: RunContext) -> None:
    res = run_fig2(profile)
    print(f"Fig. 2 — cluster-average CPU boxplots (window={res.window} samples)")
    rows = [
        [i, s.minimum, s.q1, s.median, s.q3, s.maximum, s.mean]
        for i, s in enumerate(res.stats)
    ]
    print(format_table(["win", "min", "q1", "median", "q3", "max", "mean"], rows))
    print("summary:", {k: round(v, 3) for k, v in res.summary.items()})


def _print_fig3(profile: str, ctx: RunContext) -> None:
    res = run_fig3(profile)
    print(f"Fig. 3 — fraction of machines below {res.threshold:.0f}% CPU")
    print(render_ascii_series(res.fractions, label="frac<50%"))
    print(f"overall: {res.overall_fraction:.3f}")


def _print_fig7(profile: str, ctx: RunContext) -> None:
    res = run_fig7(profile)
    print(f"Fig. 7 — indicator correlation matrix of {res.entity_id}")
    short = [n[:8] for n in res.names]
    rows = [[short[i], *[f"{v:+.2f}" for v in res.matrix[i]]] for i in range(len(short))]
    print(format_table(["", *short], rows))
    print("top-4 correlated with cpu:", res.top_correlated(4))


def _print_table2(profile: str, ctx: RunContext) -> None:
    res = run_table2(profile, jobs=ctx.jobs, cache=ctx.cache)
    print(format_table2(res.metrics))
    _check_errors("table2", res.errors)
    lo, hi = res.improvement_range("mae")
    print(f"RPTCN MAE improvement over Mul-Exp baselines: {lo:.2f}% .. {hi:.2f}%")
    for level in ("containers", "machines"):
        print(f"best model (mul_exp, {level}):", res.best_model("mul_exp", level))


def _print_fig8(profile: str, ctx: RunContext) -> None:
    res = run_fig8(profile)
    print(f"Fig. 8 — predicted vs true around the mutation (jump at test idx {res.jump_index})")
    print(render_ascii_series(res.truth, label="truth"))
    for model, pred in res.predictions.items():
        print(render_ascii_series(pred, label=model))
    rows = [
        [m, res.pre_jump_mae[m], res.post_jump_mae[m], res.tracking_error(m)]
        for m in res.predictions
    ]
    print(format_table(["model", "pre-jump MAE", "post-jump MAE", "overall MAE"], rows))
    print("best post-jump tracker:", res.best_post_jump())


def _print_convergence(res, title: str) -> None:
    print(title)
    for model, curve in res.curves.items():
        print(render_ascii_series(np.asarray(curve), label=model))
    rows = [
        [r.model, r.initial_loss, r.final_loss, r.best_loss, r.epochs_to_90pct]
        for r in res.records
    ]
    print(format_table(["model", "initial", "final", "best", "ep@90%"], rows))


def _print_fig9(profile: str, ctx: RunContext) -> None:
    _print_convergence(run_fig9(profile), "Fig. 9 — training loss on containers")


def _print_fig10(profile: str, ctx: RunContext) -> None:
    _print_convergence(run_fig10(profile), "Fig. 10 — validation loss on machines")


def _print_horizon(profile: str, ctx: RunContext) -> None:
    res = run_horizon_sweep(profile)
    rows = [
        [m, h, per[h]["mse"] * 100, per[h]["mae"] * 100]
        for m, per in res.metrics.items()
        for h in res.horizons
    ]
    print(format_table(["model", "horizon", "MSE(e-2)", "MAE(e-2)"], rows,
                       title="Long-term horizon sweep"))
    print("best at longest horizon:", res.best_at(max(res.horizons)))


def _print_robustness(profile: str, ctx: RunContext) -> None:
    res = run_robustness(profile, jobs=ctx.jobs, cache=ctx.cache)
    ranks = res.mean_rank()
    wins = res.win_counts()
    rows = [
        [m, f"{mu * 100:.4f} ± {sd * 100:.4f}", f"{ranks[m]:.2f}", wins[m]]
        for m, (mu, sd) in res.summary().items()
    ]
    print(format_table(["model", "MSE(e-2) mean±std", "mean rank", "wins"], rows,
                       title=f"{res.level}/{res.scenario} across seeds {res.seeds}"))
    _check_errors("robustness", res.errors)


def _print_generalization(profile: str, ctx: RunContext) -> None:
    res = run_generalization(profile, jobs=ctx.jobs, cache=ctx.cache)
    rows = [
        [t, e["transfer"]["mse"] * 100, e["in_domain"]["mse"] * 100,
         f"x{res.gap(t):.2f}"]
        for t, e in res.targets.items()
    ]
    print(format_table(
        ["target", "transfer MSE(e-2)", "in-domain MSE(e-2)", "gap"], rows,
        title=f"{res.model} trained on {res.source_id}, transferred unchanged",
    ))
    _check_errors("generalization", res.errors)
    print(f"mean generalization gap: x{res.mean_gap():.2f}")


def _print_resilience(profile: str, ctx: RunContext) -> None:
    res = run_resilience(profile)
    rows = [
        [
            f"{r.level:.2f}",
            f"{r.mae_vs_clean * 100:.3f}",
            f"x{res.degradation(r.level):.2f}",
            f"{r.availability:.3f}",
            r.n_quarantined,
            r.n_refit_failures,
            r.n_fallback_predictions,
        ]
        for r in res.per_level
    ]
    print(format_table(
        ["fault level", "MAE(e-2) vs clean", "degradation", "availability",
         "quarantined", "refit fails", "fallback preds"],
        rows,
        title=f"Serving degradation under stream faults ({res.model})",
    ))
    print(f"bounded within 8x of clean baseline: {res.is_bounded(8.0)}")


def _print_fleet(profile: str, ctx: RunContext) -> None:
    res = run_fleet(profile)
    rows = [
        [
            r.n_streams,
            f"{r.fleet_records_per_sec:,.0f}",
            f"{r.scalar_records_per_sec:,.0f}",
            f"x{r.speedup:.1f}",
            f"{r.fleet_mae * 100:.3f}",
            f"{r.scalar_mae * 100:.3f}",
            r.fleet_refits,
            r.scalar_refits,
        ]
        for r in res.per_scale
    ]
    print(format_table(
        ["N streams", "fleet rec/s", "scalar rec/s", "speedup",
         "fleet MAE(e-2)", "scalar MAE(e-2)", "fleet refits", "scalar refits"],
        rows,
        title=f"Micro-batched fleet serving vs per-stream scalar loop "
        f"({res.model}, {res.ticks} ticks)",
    ))
    print(f"N=1 records bit-identical to OnlinePredictor: {res.parity_n1}")
    crossover = res.crossover_n
    print(f"fleet-vs-scalar crossover N: {crossover if crossover else 'not reached'}")


def _print_shard(profile: str, ctx: RunContext) -> None:
    res = run_shard_scaling(profile, n_streams=1024, shards_list=(1, 2, 4))
    rows = [
        [
            r.shards,
            f"{r.records_per_sec:,.0f}",
            f"x{r.speedup_vs_single:.2f}",
            f"{r.pipeline_records_per_sec:,.0f}",
            f"x{r.pipeline_speedup:.2f}",
            f"{r.seconds:.3f}",
            r.worker_failures,
        ]
        for r in res.per_shards
    ]
    print(format_table(
        ["shards", "barrier rec/s", "vs single-proc", "pipeline rec/s",
         "pipeline vs barrier", "wall s", "worker failures"],
        rows,
        title=f"Sharded fleet serving, N={res.n_streams} "
        f"({res.model}, {res.ticks} ticks; single process = "
        f"{res.single_records_per_sec:,.0f} rec/s)",
    ))
    print(f"shards=1 bit-identical to FleetPredictor: {res.parity_shard1}")
    pipe_parity = all(r.pipeline_parity for r in res.per_shards)
    print(f"pipelined ticks bit-identical to barrier at every shard count: "
          f"{pipe_parity}")


def _print_chaos(profile: str, ctx: RunContext) -> None:
    res = run_chaos(profile, n_streams=64, shards=2, checkpoint_interval=8)

    def fmt(st):
        rec = "never" if st.recovery_ticks is None else f"{st.recovery_ticks}"
        ttr = "-" if st.time_to_recovery_s is None else f"{st.time_to_recovery_s:.2f}"
        mae = "-" if np.isnan(st.outage_mae) else f"{st.outage_mae * 100:.2f}"
        return [st.label, f"{st.availability:.3f}", st.nan_victim_rows, rec, ttr,
                mae, st.respawns, st.quarantined or "-"]

    print(format_table(
        ["run", "availability", "NaN victim rows", "recovery (ticks)",
         "recovery (s)", "outage MAE(e-2)", "respawns", "quarantined"],
        [fmt(res.supervised), fmt(res.unsupervised)],
        title=f"Shard SIGKILL at tick {res.kill_tick}: supervised recovery vs "
        f"terminal failure (N={res.n_streams}, shards={res.shards}, "
        f"{res.ticks} ticks, ckpt every {res.checkpoint_interval})",
    ))
    print(f"clean-run MAE on victim slice over the outage window: "
          f"{res.clean_outage_mae * 100:.2f}e-2")
    print(f"survivors bit-identical to clean run: {res.survivors_bit_identical}")


def _print_autoscale(profile: str, ctx: RunContext) -> None:
    res = run_autoscale(profile, jobs=ctx.jobs, cache=ctx.cache)
    print(res.table())
    print(
        f"cluster: {res.n_machines} machines, {res.n_jobs} jobs, "
        f"{res.ticks} ticks, seeds {list(res.seeds)}"
    )
    print(f"calibrated predictive beats reactive (SLA down, cost <=): {res.gate_pass}")


def _print_refit_stall(profile: str, ctx: RunContext) -> None:
    res = run_refit_stall(profile)
    rows = [
        [
            m.label,
            m.model,
            f"{m.p50_ms:.2f}",
            f"{m.p99_ms:.2f}",
            f"{m.refit_p99_ms:.2f}",
            f"{m.max_ms:.2f}",
            f"{m.mae * 100:.3f}",
            m.n_refits,
            m.n_deferred or "-",
            m.model_version,
        ]
        for m in res.modes
    ]
    print(format_table(
        ["mode", "model", "p50 ms", "p99 ms", "p99@refit ms", "max ms",
         "MAE(e-2)", "refits", "deferred", "version"],
        rows,
        title=f"Refit stall: sync vs async vs warm vs pruned "
        f"(N={res.n_streams}, {res.ticks} ticks, refit every "
        f"{res.refit_interval}, window={res.window})",
    ))
    print(f"async p99 around refit ticks < sync p99: {res.gate_latency}")
    print(f"paced async MAE equal-or-better than sync: {res.gate_accuracy}")


_RUNNERS = {
    "fig1": _print_fig1,
    "fig2": _print_fig2,
    "fig3": _print_fig3,
    "fig7": _print_fig7,
    "table2": _print_table2,
    "fig8": _print_fig8,
    "fig9": _print_fig9,
    "fig10": _print_fig10,
    "horizon": _print_horizon,
    "robustness": _print_robustness,
    "generalization": _print_generalization,
    "resilience": _print_resilience,
    "fleet": _print_fleet,
    "shard": _print_shard,
    "chaos": _print_chaos,
    "autoscale": _print_autoscale,
    "refit_stall": _print_refit_stall,
}


def _experiment_unit(name: str, profile: str, cache_dir: str | None) -> dict[str, Any]:
    """Run one whole experiment as a pooled unit; never raises.

    Stdout is captured so the parent can replay it in deterministic
    order; cells inside the child run serially (the parent pool already
    owns the parallelism) but still consult the shared on-disk cache.
    """
    ctx = RunContext(jobs=1, cache=ResultCache(cache_dir) if cache_dir else None)
    out = io.StringIO()
    record: dict[str, Any] = {"output": "", "error": None, "traceback": None}
    try:
        with redirect_stdout(out):
            _RUNNERS[name](profile, ctx)
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        record["error"] = f"{type(exc).__name__}: {exc}"
        record["traceback"] = _traceback.format_exc()
    record["output"] = out.getvalue()
    return record


def _run_serial(
    targets: tuple[str, ...], args: argparse.Namespace, ctx: RunContext
) -> list[str]:
    """Run experiments one after another in this process."""
    failed: list[str] = []
    for name in targets:
        t0 = time.time()
        print(f"\n=== {name} (profile={args.profile}) " + "=" * 30)
        try:
            _RUNNERS[name](args.profile, ctx)
        except Exception as exc:  # noqa: BLE001 — keep the sweep alive
            if not isinstance(exc, ExperimentError):
                print(_traceback.format_exc(), end="")
            print(f"FAILED {name}: {type(exc).__name__}: {exc}")
            failed.append(name)
        print(f"--- {name} done in {time.time() - t0:.1f}s")
        if args.metrics_out:
            path = write_snapshot(args.metrics_out)
            print(f"metrics snapshot -> {path}")
    return failed


def _run_parallel(
    targets: tuple[str, ...], args: argparse.Namespace, ctx: RunContext
) -> list[str]:
    """Fan whole experiments out to worker processes, replay output in order."""
    specs = [
        TaskSpec(
            experiment="runner",
            key=(name,),
            fn="repro.experiments.runner._experiment_unit",
            params={
                "name": name,
                "profile": args.profile,
                # explicit None test: ResultCache has __len__, an empty one is falsy
                "cache_dir": None if ctx.cache is None else str(ctx.cache.root),
            },
            cacheable=False,  # units exist to print; their cells cache individually
        )
        for name in targets
    ]
    failed: list[str] = []
    for spec, task in zip(specs, run_tasks(specs, jobs=ctx.jobs)):
        name = spec.key[0]
        print(f"\n=== {name} (profile={args.profile}) " + "=" * 30)
        error = task.error if not task.ok else task.value.get("error")
        if task.ok:
            print(task.value["output"], end="")
            if error and task.value.get("traceback") and "ExperimentError" not in error:
                print(task.value["traceback"], end="")
        elif task.traceback:
            print(task.traceback, end="")
        if error:
            print(f"FAILED {name}: {error}")
            failed.append(name)
        print(f"--- {name} done in {task.duration:.1f}s")
        if args.metrics_out:
            path = write_snapshot(args.metrics_out)
            print(f"metrics snapshot -> {path}")
    return failed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="RPTCN reproduction experiments")
    parser.add_argument(
        "--experiment",
        "-e",
        default="all",
        choices=(*EXPERIMENTS, *EXTENSIONS, "all", "extensions"),
        help="paper artifact or extension harness to regenerate",
    )
    parser.add_argument(
        "--profile",
        "-p",
        default="quick",
        choices=sorted(PROFILES),
        help="sizing profile (quick/default/paper)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for independent experiments/cells "
        "(results are identical for every N; default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"content-addressed result cache directory (default {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache for this run",
    )
    parser.add_argument(
        "--cache-clear",
        action="store_true",
        help="wipe the result cache before running",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write a metrics snapshot after every experiment "
        "(.prom/.txt = Prometheus text format, .json/.jsonl = JSONL)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")

    if args.cache_clear:
        removed = ResultCache(args.cache_dir).clear()
        print(f"cache cleared: {removed} entries removed from {args.cache_dir}")
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    ctx = RunContext(jobs=args.jobs, cache=cache)

    if args.experiment == "all":
        targets: tuple[str, ...] = EXPERIMENTS
    elif args.experiment == "extensions":
        targets = EXTENSIONS
    else:
        targets = (args.experiment,)

    if len(targets) > 1 and ctx.jobs > 1:
        failed = _run_parallel(targets, args, ctx)
    else:
        failed = _run_serial(targets, args, ctx)

    if cache is not None and (cache.hits or cache.misses or cache.stores):
        print(
            f"\nresult cache [{cache.root}]: {cache.hits} hit(s), "
            f"{cache.misses} miss(es), {cache.stores} store(s), "
            f"{cache.invalidated} invalidated"
        )
    if failed:
        print(f"\nFAILED experiments: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
