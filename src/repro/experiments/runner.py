"""CLI entry point: regenerate any paper artifact from the command line.

Usage::

    python -m repro.experiments.runner --experiment table2 --profile default
    python -m repro.experiments.runner --experiment all --profile quick
    python -m repro.experiments.runner -e resilience --metrics-out metrics.prom

``--metrics-out`` snapshots the process metric registry (gate/supervisor
counters, serving latency histograms, trainer gauges, nn plan-cache
stats) after every experiment — Prometheus text format for ``.prom`` /
``.txt`` paths, JSONL for ``.json`` / ``.jsonl``.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from ..analysis.reporting import format_table, format_table2, render_ascii_series
from ..obs.export import write_snapshot
from .accuracy import run_table2
from .characterization import run_fig1, run_fig2, run_fig3, run_fig7
from .config import PROFILES
from .convergence import run_fig9, run_fig10
from .curves import run_fig8
from .generalization import run_generalization
from .horizon import run_horizon_sweep
from .resilience import run_resilience
from .robustness import run_robustness

__all__ = ["main"]

#: paper artifacts (always in --experiment all)
EXPERIMENTS = ("fig1", "fig2", "fig3", "fig7", "table2", "fig8", "fig9", "fig10")
#: extension harnesses (run individually, or via --experiment extensions)
EXTENSIONS = ("horizon", "robustness", "generalization", "resilience")


def _print_fig1(profile: str) -> None:
    res = run_fig1(profile)
    print(f"Fig. 1 — resource utilization of container {res.entity_id}")
    for name, series in res.series.items():
        print(render_ascii_series(series, label=name[:12]))
    print(f"cpu dynamism (mean |step|): {res.dynamism():.3f} %/sample")


def _print_fig2(profile: str) -> None:
    res = run_fig2(profile)
    print(f"Fig. 2 — cluster-average CPU boxplots (window={res.window} samples)")
    rows = [
        [i, s.minimum, s.q1, s.median, s.q3, s.maximum, s.mean]
        for i, s in enumerate(res.stats)
    ]
    print(format_table(["win", "min", "q1", "median", "q3", "max", "mean"], rows))
    print("summary:", {k: round(v, 3) for k, v in res.summary.items()})


def _print_fig3(profile: str) -> None:
    res = run_fig3(profile)
    print(f"Fig. 3 — fraction of machines below {res.threshold:.0f}% CPU")
    print(render_ascii_series(res.fractions, label="frac<50%"))
    print(f"overall: {res.overall_fraction:.3f}")


def _print_fig7(profile: str) -> None:
    res = run_fig7(profile)
    print(f"Fig. 7 — indicator correlation matrix of {res.entity_id}")
    short = [n[:8] for n in res.names]
    rows = [[short[i], *[f"{v:+.2f}" for v in res.matrix[i]]] for i in range(len(short))]
    print(format_table(["", *short], rows))
    print("top-4 correlated with cpu:", res.top_correlated(4))


def _print_table2(profile: str) -> None:
    res = run_table2(profile)
    print(format_table2(res.metrics))
    lo, hi = res.improvement_range("mae")
    print(f"RPTCN MAE improvement over Mul-Exp baselines: {lo:.2f}% .. {hi:.2f}%")
    for level in ("containers", "machines"):
        print(f"best model (mul_exp, {level}):", res.best_model("mul_exp", level))


def _print_fig8(profile: str) -> None:
    res = run_fig8(profile)
    print(f"Fig. 8 — predicted vs true around the mutation (jump at test idx {res.jump_index})")
    print(render_ascii_series(res.truth, label="truth"))
    for model, pred in res.predictions.items():
        print(render_ascii_series(pred, label=model))
    rows = [
        [m, res.pre_jump_mae[m], res.post_jump_mae[m], res.tracking_error(m)]
        for m in res.predictions
    ]
    print(format_table(["model", "pre-jump MAE", "post-jump MAE", "overall MAE"], rows))
    print("best post-jump tracker:", res.best_post_jump())


def _print_convergence(res, title: str) -> None:
    print(title)
    for model, curve in res.curves.items():
        print(render_ascii_series(np.asarray(curve), label=model))
    rows = [
        [r.model, r.initial_loss, r.final_loss, r.best_loss, r.epochs_to_90pct]
        for r in res.records
    ]
    print(format_table(["model", "initial", "final", "best", "ep@90%"], rows))


def _print_fig9(profile: str) -> None:
    _print_convergence(run_fig9(profile), "Fig. 9 — training loss on containers")


def _print_fig10(profile: str) -> None:
    _print_convergence(run_fig10(profile), "Fig. 10 — validation loss on machines")


def _print_horizon(profile: str) -> None:
    res = run_horizon_sweep(profile)
    rows = [
        [m, h, per[h]["mse"] * 100, per[h]["mae"] * 100]
        for m, per in res.metrics.items()
        for h in res.horizons
    ]
    print(format_table(["model", "horizon", "MSE(e-2)", "MAE(e-2)"], rows,
                       title="Long-term horizon sweep"))
    print("best at longest horizon:", res.best_at(max(res.horizons)))


def _print_robustness(profile: str) -> None:
    res = run_robustness(profile)
    ranks = res.mean_rank()
    wins = res.win_counts()
    rows = [
        [m, f"{mu * 100:.4f} ± {sd * 100:.4f}", f"{ranks[m]:.2f}", wins[m]]
        for m, (mu, sd) in res.summary().items()
    ]
    print(format_table(["model", "MSE(e-2) mean±std", "mean rank", "wins"], rows,
                       title=f"{res.level}/{res.scenario} across seeds {res.seeds}"))


def _print_generalization(profile: str) -> None:
    res = run_generalization(profile)
    rows = [
        [t, e["transfer"]["mse"] * 100, e["in_domain"]["mse"] * 100,
         f"x{res.gap(t):.2f}"]
        for t, e in res.targets.items()
    ]
    print(format_table(
        ["target", "transfer MSE(e-2)", "in-domain MSE(e-2)", "gap"], rows,
        title=f"{res.model} trained on {res.source_id}, transferred unchanged",
    ))
    print(f"mean generalization gap: x{res.mean_gap():.2f}")


def _print_resilience(profile: str) -> None:
    res = run_resilience(profile)
    rows = [
        [
            f"{r.level:.2f}",
            f"{r.mae_vs_clean * 100:.3f}",
            f"x{res.degradation(r.level):.2f}",
            f"{r.availability:.3f}",
            r.n_quarantined,
            r.n_refit_failures,
            r.n_fallback_predictions,
        ]
        for r in res.per_level
    ]
    print(format_table(
        ["fault level", "MAE(e-2) vs clean", "degradation", "availability",
         "quarantined", "refit fails", "fallback preds"],
        rows,
        title=f"Serving degradation under stream faults ({res.model})",
    ))
    print(f"bounded within 8x of clean baseline: {res.is_bounded(8.0)}")


_RUNNERS = {
    "fig1": _print_fig1,
    "fig2": _print_fig2,
    "fig3": _print_fig3,
    "fig7": _print_fig7,
    "table2": _print_table2,
    "fig8": _print_fig8,
    "fig9": _print_fig9,
    "fig10": _print_fig10,
    "horizon": _print_horizon,
    "robustness": _print_robustness,
    "generalization": _print_generalization,
    "resilience": _print_resilience,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="RPTCN reproduction experiments")
    parser.add_argument(
        "--experiment",
        "-e",
        default="all",
        choices=(*EXPERIMENTS, *EXTENSIONS, "all", "extensions"),
        help="paper artifact or extension harness to regenerate",
    )
    parser.add_argument(
        "--profile",
        "-p",
        default="quick",
        choices=sorted(PROFILES),
        help="sizing profile (quick/default/paper)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write a metrics snapshot after every experiment "
        "(.prom/.txt = Prometheus text format, .json/.jsonl = JSONL)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "all":
        targets: tuple[str, ...] = EXPERIMENTS
    elif args.experiment == "extensions":
        targets = EXTENSIONS
    else:
        targets = (args.experiment,)
    for name in targets:
        t0 = time.time()
        print(f"\n=== {name} (profile={args.profile}) " + "=" * 30)
        _RUNNERS[name](args.profile)
        print(f"--- {name} done in {time.time() - t0:.1f}s")
        if args.metrics_out:
            path = write_snapshot(args.metrics_out)
            print(f"metrics snapshot -> {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
