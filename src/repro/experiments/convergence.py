"""Figs. 9-10 harness — loss-convergence comparison.

Fig. 9: training-loss curves of the deep models (plus XGBoost's staged
validation RMSE, which is what a boosting library exposes) on a
*container* workload. Fig. 10: validation-loss curves on a *machine*
workload. The paper's qualitative claims: RPTCN starts at a much lower
loss than the baselines and stays lowest throughout; LSTM spikes early;
CNN-LSTM converges slowly on machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.convergence import ConvergenceRecord, compare_convergence
from ..data.pipeline import PipelineConfig, PredictionPipeline
from ..traces.generator import ClusterTraceGenerator, TraceConfig
from .accuracy import model_kwargs_for
from .config import ExperimentProfile, get_profile

__all__ = ["ConvergenceResult", "run_fig9", "run_fig10"]

_DEEP_MODELS = ("lstm", "cnn_lstm", "rptcn")


@dataclass
class ConvergenceResult:
    """Loss curves per model plus summary records."""

    curves: dict[str, list[float]] = field(default_factory=dict)
    records: list[ConvergenceRecord] = field(default_factory=list)
    level: str = ""
    monitor: str = ""

    def model_record(self, name: str) -> ConvergenceRecord:
        for rec in self.records:
            if rec.model == name:
                return rec
        raise KeyError(f"no record for model {name!r}")


def _run_convergence(
    profile: str | ExperimentProfile,
    level: str,
    monitor: str,
    include_xgboost: bool = True,
) -> ConvergenceResult:
    prof = get_profile(profile) if isinstance(profile, str) else profile
    gen = ClusterTraceGenerator(
        TraceConfig(
            n_machines=prof.n_machines,
            containers_per_machine=prof.containers_per_machine,
            n_steps=prof.n_steps,
            seed=prof.seed,
        )
    )
    trace = gen.generate()
    entity = trace.containers[0] if level == "containers" else trace.machines[0]

    pipe = PredictionPipeline(
        PipelineConfig(scenario="mul_exp", window=prof.window, horizon=prof.horizon)
    )
    prepared = pipe.prepare(entity)

    result = ConvergenceResult(level=level, monitor=monitor)
    for model in _DEEP_MODELS:
        kwargs = model_kwargs_for(model, prof)
        # convergence comparison needs full-length curves — no early stop
        kwargs["patience"] = max(prof.epochs, kwargs.get("patience", 10))
        run = pipe.run(entity, model, kwargs, prepared=prepared)
        curves = run.forecaster.loss_curves  # type: ignore[attr-defined]
        key = "val_loss" if monitor == "val_loss" else "loss"
        result.curves[model] = list(curves[key])
    if include_xgboost:
        run = pipe.run(entity, "xgboost", model_kwargs_for("xgboost", prof), prepared=prepared)
        staged = run.forecaster.loss_curves["val_loss"]  # type: ignore[attr-defined]
        # staged RMSE → squared loss so all curves share units
        result.curves["xgboost"] = [float(v) ** 2 for v in staged]
    result.records = compare_convergence(result.curves)
    return result


def run_fig9(profile: str | ExperimentProfile = "quick") -> ConvergenceResult:
    """Fig. 9: training-loss convergence on a container workload."""
    return _run_convergence(profile, level="containers", monitor="loss")


def run_fig10(profile: str | ExperimentProfile = "quick") -> ConvergenceResult:
    """Fig. 10: validation-loss convergence on a machine workload."""
    return _run_convergence(profile, level="machines", monitor="val_loss")
