"""Table II harness — prediction accuracy across models, scenarios, levels.

Reproduces the paper's main result table: MSE/MAE (normalized units,
reported x 10^-2) of {ARIMA, LSTM, CNN-LSTM, XGBoost, RPTCN} under the
three input scenarios {Uni, Mul, Mul-Exp} at both workload granularities
{containers, machines}. ARIMA, being univariate, appears only in Uni —
exactly as in the paper's table.

Metrics are averaged over ``profile.n_entities`` entities per level so a
single pathological series cannot dominate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from ..data.pipeline import PipelineConfig, PredictionPipeline
from ..traces.generator import generate_cluster_cached
from ..traces.schema import EntityTrace
from .config import ExperimentProfile, get_profile
from .parallel import TaskSpec, derive_seed, run_tasks

__all__ = [
    "Table2Result",
    "run_table2",
    "run_table2_cell",
    "table2_tasks",
    "SCENARIO_MODELS",
    "model_kwargs_for",
]

#: models evaluated per scenario, mirroring the paper's Table II rows
SCENARIO_MODELS: dict[str, tuple[str, ...]] = {
    "uni": ("arima", "lstm", "cnn_lstm", "xgboost", "rptcn"),
    "mul": ("lstm", "xgboost", "cnn_lstm", "rptcn"),
    "mul_exp": ("lstm", "xgboost", "cnn_lstm", "rptcn"),
}


def model_kwargs_for(model: str, profile: ExperimentProfile) -> dict[str, Any]:
    """Per-model hyper-parameters derived from the sizing profile."""
    kwargs: dict[str, Any] = {}
    if model in ("persistence", "mean", "drift"):
        pass  # naive baselines take no training hyper-parameters
    elif model == "arima":
        kwargs["order"] = profile.arima_order
    elif model == "xgboost":
        kwargs.update(n_estimators=profile.gbt_estimators, max_depth=4, learning_rate=0.08)
    else:  # deep models
        kwargs.update(
            epochs=profile.epochs,
            batch_size=profile.batch_size,
            patience=profile.patience,
            seed=profile.seed,
        )
    kwargs.update(profile.model_overrides.get(model, {}))
    return kwargs


@dataclass
class Table2Result:
    """(scenario, model, level) → averaged {mse, mae} plus provenance.

    ``errors`` holds cells whose train/eval raised: the sweep keeps
    going (failure isolation), the missing cell is reported here, and
    the runner turns a non-empty ``errors`` into a nonzero exit.
    """

    metrics: dict[tuple[str, str, str], dict[str, float]] = field(default_factory=dict)
    profile: str = ""
    entity_ids: dict[str, list[str]] = field(default_factory=dict)
    errors: dict[tuple[str, str, str], str] = field(default_factory=dict)

    def best_model(self, scenario: str, level: str, metric: str = "mse") -> str:
        """Model with the lowest metric for one scenario/level cell."""
        candidates = {
            model: vals[metric]
            for (scen, model, lev), vals in self.metrics.items()
            if scen == scenario and lev == level
        }
        if not candidates:
            raise KeyError(f"no results for scenario={scenario}, level={level}")
        return min(candidates, key=candidates.get)

    def improvement_range(self, metric: str = "mae") -> tuple[float, float]:
        """RPTCN's % improvement over baselines across Mul-Exp cells.

        The paper's headline claim: "RPTCN improves the overall MAE and
        MSE by 6.50%-89.03% and 0.41%-68.82%" — computed the same way:
        per cell, 1 - rptcn/baseline for each baseline, pooled.
        """
        ratios = []
        for level in ("containers", "machines"):
            rptcn = self.metrics.get(("mul_exp", "rptcn", level))
            if rptcn is None:
                continue
            for (scen, model, lev), vals in self.metrics.items():
                if scen == "mul_exp" and lev == level and model != "rptcn":
                    ratios.append(1.0 - rptcn[metric] / vals[metric])
        if not ratios:
            raise RuntimeError("no mul_exp results to compare")
        return (min(ratios) * 100.0, max(ratios) * 100.0)


def _select_entities(
    entities: list[EntityTrace], n: int
) -> list[EntityTrace]:
    """Pick evaluation entities, preferring high-dynamic workloads.

    The paper targets the *dynamic* prediction problem, so containers with
    regime-switching/bursty archetypes are preferred when available.
    """
    dynamic = [e for e in entities if e.workload in ("regime_switching", "bursty")]
    ordered = dynamic + [e for e in entities if e not in dynamic]
    return ordered[: max(1, n)]


def run_table2_cell(
    prof: ExperimentProfile,
    scenario: str,
    model: str,
    level: str,
    seed: int | None = None,
) -> dict[str, Any]:
    """One Table II cell — a pure function of its arguments.

    Regenerates the (memoized, deterministic) synthetic cluster, selects
    the level's evaluation entities, and trains/evaluates one model
    under one scenario. ``seed`` overrides the profile's training seed;
    the default grid pins ``seed=prof.seed`` so the decomposed grid is
    bit-identical to the historical serial sweep.
    """
    if seed is not None and seed != prof.seed:
        prof = replace(prof, seed=seed)
    trace = generate_cluster_cached(
        n_machines=prof.n_machines,
        containers_per_machine=prof.containers_per_machine,
        n_steps=prof.n_steps,
        seed=prof.seed if seed is None else seed,
    )
    pool = trace.containers if level == "containers" else trace.machines
    entities = _select_entities(pool, prof.n_entities)
    pipe = PredictionPipeline(
        PipelineConfig(scenario=scenario, window=prof.window, horizon=prof.horizon)
    )
    kwargs = model_kwargs_for(model, prof)
    mses, maes = [], []
    for entity in entities:
        run = pipe.run(entity, model, dict(kwargs))
        mses.append(run.metrics["mse"])
        maes.append(run.metrics["mae"])
    return {
        "mse": float(np.mean(mses)),
        "mae": float(np.mean(maes)),
        "entity_ids": [e.entity_id for e in entities],
    }


def table2_tasks(
    prof: ExperimentProfile,
    scenarios: tuple[str, ...] = ("uni", "mul", "mul_exp"),
    seed_policy: str = "profile",
) -> list[TaskSpec]:
    """Independent task specs for every Table II cell, in table order.

    ``seed_policy="profile"`` pins every cell to the profile seed —
    exact parity with the pre-decomposition serial sweep (and the
    numbers EXPERIMENTS.md cites). ``"derived"`` gives each cell its own
    :func:`~.parallel.derive_seed` stream for statistically independent
    cells; both are invariant to ``--jobs``.
    """
    if seed_policy not in ("profile", "derived"):
        raise ValueError(f"seed_policy must be 'profile' or 'derived', got {seed_policy!r}")
    tasks = []
    for scenario in scenarios:
        for model in SCENARIO_MODELS[scenario]:
            for level in ("containers", "machines"):
                key = (scenario, model, level)
                seed = (
                    prof.seed
                    if seed_policy == "profile"
                    else derive_seed(prof.seed, "table2", *key)
                )
                tasks.append(
                    TaskSpec(
                        experiment="table2",
                        key=key,
                        fn="repro.experiments.accuracy.run_table2_cell",
                        params={
                            "prof": prof,
                            "scenario": scenario,
                            "model": model,
                            "level": level,
                            "seed": seed,
                        },
                    )
                )
    return tasks


def run_table2(
    profile: str | ExperimentProfile = "quick",
    scenarios: tuple[str, ...] = ("uni", "mul", "mul_exp"),
    jobs: int = 1,
    cache: Any | None = None,
) -> Table2Result:
    """Regenerate Table II as a grid of independent cells.

    ``jobs`` fans the cells out to worker processes; ``cache`` (a
    :class:`~.cache.ResultCache`) skips cells whose content-addressed
    result already exists. Both are identity transformations on the
    numbers: every cell is a pure function of its parameters.
    """
    prof = get_profile(profile) if isinstance(profile, str) else profile
    result = Table2Result(profile=prof.name)
    for task in run_tasks(table2_tasks(prof, scenarios), jobs=jobs, cache=cache):
        key = tuple(task.spec.key)
        if not task.ok:
            result.errors[key] = task.error or "unknown error"
            continue
        result.metrics[key] = {"mse": task.value["mse"], "mae": task.value["mae"]}
        result.entity_ids.setdefault(key[2], list(task.value["entity_ids"]))
    return result
