"""Table II harness — prediction accuracy across models, scenarios, levels.

Reproduces the paper's main result table: MSE/MAE (normalized units,
reported x 10^-2) of {ARIMA, LSTM, CNN-LSTM, XGBoost, RPTCN} under the
three input scenarios {Uni, Mul, Mul-Exp} at both workload granularities
{containers, machines}. ARIMA, being univariate, appears only in Uni —
exactly as in the paper's table.

Metrics are averaged over ``profile.n_entities`` entities per level so a
single pathological series cannot dominate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..data.pipeline import PipelineConfig, PredictionPipeline
from ..traces.generator import ClusterTraceGenerator, TraceConfig
from ..traces.schema import EntityTrace
from .config import ExperimentProfile, get_profile

__all__ = ["Table2Result", "run_table2", "SCENARIO_MODELS", "model_kwargs_for"]

#: models evaluated per scenario, mirroring the paper's Table II rows
SCENARIO_MODELS: dict[str, tuple[str, ...]] = {
    "uni": ("arima", "lstm", "cnn_lstm", "xgboost", "rptcn"),
    "mul": ("lstm", "xgboost", "cnn_lstm", "rptcn"),
    "mul_exp": ("lstm", "xgboost", "cnn_lstm", "rptcn"),
}


def model_kwargs_for(model: str, profile: ExperimentProfile) -> dict[str, Any]:
    """Per-model hyper-parameters derived from the sizing profile."""
    kwargs: dict[str, Any] = {}
    if model in ("persistence", "mean", "drift"):
        pass  # naive baselines take no training hyper-parameters
    elif model == "arima":
        kwargs["order"] = profile.arima_order
    elif model == "xgboost":
        kwargs.update(n_estimators=profile.gbt_estimators, max_depth=4, learning_rate=0.08)
    else:  # deep models
        kwargs.update(
            epochs=profile.epochs,
            batch_size=profile.batch_size,
            patience=profile.patience,
            seed=profile.seed,
        )
    kwargs.update(profile.model_overrides.get(model, {}))
    return kwargs


@dataclass
class Table2Result:
    """(scenario, model, level) → averaged {mse, mae} plus provenance."""

    metrics: dict[tuple[str, str, str], dict[str, float]] = field(default_factory=dict)
    profile: str = ""
    entity_ids: dict[str, list[str]] = field(default_factory=dict)

    def best_model(self, scenario: str, level: str, metric: str = "mse") -> str:
        """Model with the lowest metric for one scenario/level cell."""
        candidates = {
            model: vals[metric]
            for (scen, model, lev), vals in self.metrics.items()
            if scen == scenario and lev == level
        }
        if not candidates:
            raise KeyError(f"no results for scenario={scenario}, level={level}")
        return min(candidates, key=candidates.get)

    def improvement_range(self, metric: str = "mae") -> tuple[float, float]:
        """RPTCN's % improvement over baselines across Mul-Exp cells.

        The paper's headline claim: "RPTCN improves the overall MAE and
        MSE by 6.50%-89.03% and 0.41%-68.82%" — computed the same way:
        per cell, 1 - rptcn/baseline for each baseline, pooled.
        """
        ratios = []
        for level in ("containers", "machines"):
            rptcn = self.metrics.get(("mul_exp", "rptcn", level))
            if rptcn is None:
                continue
            for (scen, model, lev), vals in self.metrics.items():
                if scen == "mul_exp" and lev == level and model != "rptcn":
                    ratios.append(1.0 - rptcn[metric] / vals[metric])
        if not ratios:
            raise RuntimeError("no mul_exp results to compare")
        return (min(ratios) * 100.0, max(ratios) * 100.0)


def _select_entities(
    entities: list[EntityTrace], n: int
) -> list[EntityTrace]:
    """Pick evaluation entities, preferring high-dynamic workloads.

    The paper targets the *dynamic* prediction problem, so containers with
    regime-switching/bursty archetypes are preferred when available.
    """
    dynamic = [e for e in entities if e.workload in ("regime_switching", "bursty")]
    ordered = dynamic + [e for e in entities if e not in dynamic]
    return ordered[: max(1, n)]


def run_table2(
    profile: str | ExperimentProfile = "quick",
    scenarios: tuple[str, ...] = ("uni", "mul", "mul_exp"),
) -> Table2Result:
    """Regenerate Table II on a fresh synthetic cluster."""
    prof = get_profile(profile) if isinstance(profile, str) else profile
    gen = ClusterTraceGenerator(
        TraceConfig(
            n_machines=prof.n_machines,
            containers_per_machine=prof.containers_per_machine,
            n_steps=prof.n_steps,
            seed=prof.seed,
        )
    )
    trace = gen.generate()
    levels = {
        "containers": _select_entities(trace.containers, prof.n_entities),
        "machines": _select_entities(trace.machines, prof.n_entities),
    }

    result = Table2Result(
        profile=prof.name,
        entity_ids={k: [e.entity_id for e in v] for k, v in levels.items()},
    )
    for scenario in scenarios:
        pipe = PredictionPipeline(
            PipelineConfig(scenario=scenario, window=prof.window, horizon=prof.horizon)
        )
        for model in SCENARIO_MODELS[scenario]:
            kwargs = model_kwargs_for(model, prof)
            for level, entities in levels.items():
                mses, maes = [], []
                for entity in entities:
                    run = pipe.run(entity, model, dict(kwargs))
                    mses.append(run.metrics["mse"])
                    maes.append(run.metrics["mae"])
                result.metrics[(scenario, model, level)] = {
                    "mse": float(np.mean(mses)),
                    "mae": float(np.mean(maes)),
                }
    return result
