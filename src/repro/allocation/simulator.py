"""Allocation replay simulator and its cost metrics.

Replays a test split of utilization windows against an allocation policy
and scores the outcome on the two failure modes the paper's §I names:
"idle resources due to over-allocation of resources and degraded
workloads performance due to under-allocation of resources".

.. deprecated:: the excess/slack arithmetic formerly hand-rolled here
   now lives in :func:`repro.cluster.replay.excess_stats`, shared with
   the scheduling replay and the closed-loop cluster simulator. This
   module remains the public entry point for open-loop allocation
   replay; new harnesses should build on the cluster primitives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.replay import EXCESS_EPS, ExcessStats, excess_stats
from .allocator import Allocator

__all__ = [
    "AllocationReport",
    "simulate_allocation",
    # re-exported shared primitives (historically defined here)
    "EXCESS_EPS",
    "ExcessStats",
    "excess_stats",
]


@dataclass(frozen=True)
class AllocationReport:
    """Operational cost of one policy over one trace segment."""

    policy: str
    n_intervals: int
    #: mean reserved-but-unused capacity (normalized cores) — waste
    mean_overprovision: float
    #: fraction of intervals where demand exceeded the reservation — QoS
    violation_rate: float
    #: mean unmet demand in violating intervals (severity)
    mean_violation_depth: float
    #: mean total reservation (the bill)
    mean_reservation: float

    def cost(self, violation_penalty: float = 10.0) -> float:
        """Scalar cost: waste + penalized violations.

        The penalty encodes that an SLO breach is far more expensive than
        idle capacity; 10x is a conservative industry-style weighting.
        """
        return (
            self.mean_overprovision
            + violation_penalty * self.violation_rate * max(self.mean_violation_depth, 1e-9)
        )


def simulate_allocation(
    allocator: Allocator,
    windows: np.ndarray,
    future: np.ndarray,
) -> AllocationReport:
    """Replay ``allocator`` over aligned (window, next-step-truth) pairs.

    Parameters
    ----------
    windows:
        ``(N, window, features)`` normalized utilization histories.
    future:
        ``(N,)`` realized next-step utilization in [0, 1].
    """
    windows = np.asarray(windows, float)
    future = np.asarray(future, float).reshape(-1)
    if windows.ndim != 3 or len(windows) != len(future):
        raise ValueError(
            f"windows must be (N, w, f) aligned with future (N,), got "
            f"{windows.shape} and {future.shape}"
        )
    if len(future) == 0:
        raise ValueError("empty simulation segment")

    reservations = np.asarray(allocator.reserve(windows, future), float)
    if reservations.shape != future.shape:
        raise ValueError(
            f"policy returned shape {reservations.shape}, expected {future.shape}"
        )

    stats = excess_stats(demand=future, supply=reservations)

    return AllocationReport(
        policy=allocator.name,
        n_intervals=stats.n_samples,
        mean_overprovision=stats.mean_slack,
        violation_rate=stats.rate,
        mean_violation_depth=stats.mean_depth,
        mean_reservation=float(reservations.mean()),
    )
