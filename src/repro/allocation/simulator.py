"""Allocation replay simulator and its cost metrics.

Replays a test split of utilization windows against an allocation policy
and scores the outcome on the two failure modes the paper's §I names:
"idle resources due to over-allocation of resources and degraded
workloads performance due to under-allocation of resources".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .allocator import Allocator

__all__ = ["AllocationReport", "simulate_allocation"]


@dataclass(frozen=True)
class AllocationReport:
    """Operational cost of one policy over one trace segment."""

    policy: str
    n_intervals: int
    #: mean reserved-but-unused capacity (normalized cores) — waste
    mean_overprovision: float
    #: fraction of intervals where demand exceeded the reservation — QoS
    violation_rate: float
    #: mean unmet demand in violating intervals (severity)
    mean_violation_depth: float
    #: mean total reservation (the bill)
    mean_reservation: float

    def cost(self, violation_penalty: float = 10.0) -> float:
        """Scalar cost: waste + penalized violations.

        The penalty encodes that an SLO breach is far more expensive than
        idle capacity; 10x is a conservative industry-style weighting.
        """
        return (
            self.mean_overprovision
            + violation_penalty * self.violation_rate * max(self.mean_violation_depth, 1e-9)
        )


def simulate_allocation(
    allocator: Allocator,
    windows: np.ndarray,
    future: np.ndarray,
) -> AllocationReport:
    """Replay ``allocator`` over aligned (window, next-step-truth) pairs.

    Parameters
    ----------
    windows:
        ``(N, window, features)`` normalized utilization histories.
    future:
        ``(N,)`` realized next-step utilization in [0, 1].
    """
    windows = np.asarray(windows, float)
    future = np.asarray(future, float).reshape(-1)
    if windows.ndim != 3 or len(windows) != len(future):
        raise ValueError(
            f"windows must be (N, w, f) aligned with future (N,), got "
            f"{windows.shape} and {future.shape}"
        )
    if len(future) == 0:
        raise ValueError("empty simulation segment")

    reservations = np.asarray(allocator.reserve(windows, future), float)
    if reservations.shape != future.shape:
        raise ValueError(
            f"policy returned shape {reservations.shape}, expected {future.shape}"
        )

    over = np.maximum(reservations - future, 0.0)
    under = np.maximum(future - reservations, 0.0)
    violations = under > 1e-12

    return AllocationReport(
        policy=allocator.name,
        n_intervals=len(future),
        mean_overprovision=float(over.mean()),
        violation_rate=float(violations.mean()),
        mean_violation_depth=float(under[violations].mean()) if violations.any() else 0.0,
        mean_reservation=float(reservations.mean()),
    )
