"""Predictive resource allocation — the application the paper motivates.

§I-II of the paper: "Dynamic resource allocation relies on accurate
prediction of future resource usage ... The predictive result can provide
support for job scheduling and an effective reference for resource
allocation." This subpackage closes that loop: an allocator that sets
per-entity CPU reservations from a forecaster's output, a simulator that
replays a trace against the allocation decisions, and cost metrics
(waste from over-provisioning, QoS violations from under-provisioning)
that turn Table II's MSE differences into operational consequences.
"""

from .allocator import (
    Allocator,
    OracleAllocator,
    PredictiveAllocator,
    QuantileAllocator,
    ReactiveAllocator,
    StaticAllocator,
)
from .simulator import AllocationReport, simulate_allocation

__all__ = [
    "Allocator",
    "StaticAllocator",
    "ReactiveAllocator",
    "PredictiveAllocator",
    "QuantileAllocator",
    "OracleAllocator",
    "simulate_allocation",
    "AllocationReport",
]
