"""Allocation policies: how much CPU to reserve for the next interval.

All policies see the same normalized utilization history and emit a
reservation in [0, 1] per step. ``PredictiveAllocator`` wraps any
:class:`repro.models.base.Forecaster`; the others are the standard
operating points it is judged against:

* ``StaticAllocator`` — fixed reservation (peak provisioning);
* ``ReactiveAllocator`` — last observation plus headroom (what autoscalers
  do without a model);
* ``OracleAllocator`` — perfect next-step knowledge plus headroom (the
  lower bound on achievable cost).
"""

from __future__ import annotations

import abc

import numpy as np

from ..models.base import Forecaster

__all__ = [
    "Allocator",
    "StaticAllocator",
    "ReactiveAllocator",
    "PredictiveAllocator",
    "QuantileAllocator",
    "OracleAllocator",
]


class Allocator(abc.ABC):
    """Maps utilization windows to next-interval reservations."""

    name: str = ""

    def __init__(self, headroom: float = 0.1) -> None:
        if headroom < 0:
            raise ValueError(f"headroom must be non-negative, got {headroom}")
        self.headroom = headroom

    @abc.abstractmethod
    def reserve(self, windows: np.ndarray, future: np.ndarray) -> np.ndarray:
        """Reservations for each window's next step.

        Parameters
        ----------
        windows:
            ``(N, window, features)`` normalized history windows.
        future:
            ``(N,)`` true next-step utilization — only the oracle may read
            it; it is passed to every policy so the simulator's call site
            stays uniform.
        """

    @staticmethod
    def _clip(reservations: np.ndarray) -> np.ndarray:
        return np.clip(reservations, 0.0, 1.0)


class StaticAllocator(Allocator):
    """Reserve a fixed fraction, sized to the training peak."""

    name = "static"

    def __init__(self, level: float = 0.9) -> None:
        super().__init__(headroom=0.0)
        if not 0.0 < level <= 1.0:
            raise ValueError(f"level must be in (0, 1], got {level}")
        self.level = level

    def reserve(self, windows: np.ndarray, future: np.ndarray) -> np.ndarray:
        return np.full(len(windows), self.level)


class ReactiveAllocator(Allocator):
    """Last observed utilization plus headroom (model-free autoscaling)."""

    name = "reactive"

    def __init__(self, headroom: float = 0.1, target_col: int = 0) -> None:
        super().__init__(headroom=headroom)
        self.target_col = target_col

    def reserve(self, windows: np.ndarray, future: np.ndarray) -> np.ndarray:
        last = windows[:, -1, self.target_col]
        return self._clip(last + self.headroom)


class PredictiveAllocator(Allocator):
    """Forecaster prediction plus headroom — the paper's proposed loop."""

    name = "predictive"

    def __init__(self, forecaster: Forecaster, headroom: float = 0.1) -> None:
        super().__init__(headroom=headroom)
        if not forecaster.fitted:
            raise ValueError("forecaster must be fitted before allocation")
        self.forecaster = forecaster
        self.name = f"predictive[{forecaster.name or type(forecaster).__name__}]"

    def reserve(self, windows: np.ndarray, future: np.ndarray) -> np.ndarray:
        pred = self.forecaster.predict(windows)[:, 0]
        return self._clip(pred + self.headroom)


class QuantileAllocator(Allocator):
    """Reserve a predicted upper quantile of demand — risk-calibrated.

    Instead of mean-forecast + ad-hoc headroom, reserve the ``tau``
    quantile of the demand distribution: the violation probability is
    then ``1 - tau`` by construction (to the extent the quantile model is
    calibrated). The quantile vector can come from two places:

    * a forecaster exposing ``predict_quantile(x, tau)`` passed at
      construction — the allocator computes the vector itself; or
    * a precomputed per-step ``quantiles`` vector passed straight to
      :meth:`reserve` — how the closed-loop cluster autoscaler drives it,
      with fleet-served point forecasts plus per-stream residual-quantile
      headrooms (:meth:`repro.streaming.fleet._FleetStats.error_quantiles`).
    """

    name = "quantile"

    def __init__(self, forecaster=None, tau: float = 0.95) -> None:
        super().__init__(headroom=0.0)
        if not 0.0 < tau < 1.0:
            raise ValueError(f"tau must be in (0, 1), got {tau}")
        if forecaster is not None:
            if not hasattr(forecaster, "predict_quantile"):
                raise TypeError("forecaster must expose predict_quantile(x, tau)")
            if not getattr(forecaster, "fitted", False):
                raise ValueError("forecaster must be fitted before allocation")
        self.forecaster = forecaster
        self.tau = tau
        self.name = f"quantile[q{int(tau * 100)}]"

    def reserve(
        self,
        windows: np.ndarray,
        future: np.ndarray,
        quantiles: np.ndarray | None = None,
    ) -> np.ndarray:
        if quantiles is not None:
            quantiles = np.asarray(quantiles, float).reshape(-1)
            return self._clip(quantiles)
        if self.forecaster is None:
            raise ValueError(
                "QuantileAllocator without a forecaster needs an explicit "
                "quantiles vector"
            )
        return self._clip(self.forecaster.predict_quantile(windows, self.tau))


class OracleAllocator(Allocator):
    """Perfect foresight plus headroom — the achievable lower bound."""

    name = "oracle"

    def reserve(self, windows: np.ndarray, future: np.ndarray) -> np.ndarray:
        return self._clip(future + self.headroom)
