"""Prediction-aware job scheduling.

The paper's other motivating application (§II): "The predictive result
can provide support for job scheduling and an effective reference for
resource allocation." Cloud jobs request far more CPU than they use —
that is precisely the 40-60 % utilization gap of Fig. 2 — so a scheduler
that packs by *predicted usage* instead of *requested peak* can run the
same jobs on fewer machines, at a quantifiable overload risk.

This subpackage provides the substrate: jobs with requested vs. actual
usage profiles, a machine/cluster model, request-based / usage-predicted
/ oracle packing policies, and a discrete-time replay simulator with
machines-used and overload metrics.
"""

from .jobs import Job, JobGenerator
from .scheduler import (
    FirstFitScheduler,
    OraclePackingScheduler,
    PredictivePackingScheduler,
    RequestPackingScheduler,
    Scheduler,
)
from .simulator import ScheduleReport, simulate_schedule

__all__ = [
    "Job",
    "JobGenerator",
    "Scheduler",
    "FirstFitScheduler",
    "RequestPackingScheduler",
    "PredictivePackingScheduler",
    "OraclePackingScheduler",
    "simulate_schedule",
    "ScheduleReport",
]
