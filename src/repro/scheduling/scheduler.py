"""Packing policies: how much capacity to account per job when placing it.

All schedulers share a first-fit-decreasing core and differ only in the
*footprint* they charge a job against a machine:

* request-based — the job's full request (no overcommit; what YARN-style
  reservation scheduling does);
* predictive — a forecast of the job's usage (e.g. from any
  :class:`repro.models` forecaster trained on the job's early profile)
  plus a safety margin;
* oracle — the job's true peak usage plus margin (the packing lower
  bound at matched safety).
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np

from .jobs import Job

__all__ = [
    "Scheduler",
    "FirstFitScheduler",
    "RequestPackingScheduler",
    "PredictivePackingScheduler",
    "OraclePackingScheduler",
]


class Scheduler(abc.ABC):
    """Assign jobs to machines of unit capacity."""

    name: str = ""

    @abc.abstractmethod
    def footprint(self, job: Job) -> float:
        """Capacity charged for ``job`` during placement, in (0, 1]."""

    def place(self, jobs: list[Job], capacity: float = 1.0) -> dict[str, int]:
        """First-fit-decreasing placement; returns job_id → machine index.

        Machines are opened on demand (the metric of interest is how many
        a policy needs), each with ``capacity`` normalized cores.
        """
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        footprints = {}
        for job in jobs:
            fp = float(self.footprint(job))
            if not 0.0 < fp <= capacity + 1e-12:
                fp = min(max(fp, 1e-6), capacity)
            footprints[job.job_id] = fp

        order = sorted(jobs, key=lambda j: footprints[j.job_id], reverse=True)
        machines: list[float] = []  # remaining capacity per machine
        assignment: dict[str, int] = {}
        for job in order:
            fp = footprints[job.job_id]
            for mi, remaining in enumerate(machines):
                if remaining >= fp - 1e-12:
                    machines[mi] = remaining - fp
                    assignment[job.job_id] = mi
                    break
            else:
                machines.append(capacity - fp)
                assignment[job.job_id] = len(machines) - 1
        return assignment


class FirstFitScheduler(Scheduler):
    """Generic scheduler around an arbitrary footprint function."""

    def __init__(self, footprint_fn: Callable[[Job], float], name: str = "custom") -> None:
        self._fn = footprint_fn
        self.name = name

    def footprint(self, job: Job) -> float:
        return self._fn(job)


class RequestPackingScheduler(Scheduler):
    """Reserve the full request — no overcommit, maximal machine count."""

    name = "request"

    def footprint(self, job: Job) -> float:
        return job.request


class PredictivePackingScheduler(Scheduler):
    """Pack by predicted usage plus a safety margin.

    ``predictor`` maps a job's early usage profile (its first
    ``probe_len`` steps — the "collect its initial logs" idea of Yu et
    al. [37] that the paper discusses) to a predicted peak for the rest
    of the run. The default predictor extrapolates the probe's high
    quantile, but any fitted forecaster can be plugged in via
    ``predict_fn``.
    """

    name = "predictive"

    def __init__(
        self,
        probe_len: int = 50,
        margin: float = 0.1,
        quantile: float = 0.95,
        predict_fn: Callable[[np.ndarray], float] | None = None,
    ) -> None:
        if probe_len < 1:
            raise ValueError(f"probe_len must be >= 1, got {probe_len}")
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        if not 0.0 < quantile <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {quantile}")
        self.probe_len = probe_len
        self.margin = margin
        self.quantile = quantile
        self.predict_fn = predict_fn

    def footprint(self, job: Job) -> float:
        probe = job.usage[: self.probe_len]
        if self.predict_fn is not None:
            predicted = float(self.predict_fn(probe))
        else:
            predicted = float(np.quantile(probe, self.quantile))
        return float(np.clip(predicted + self.margin, 1e-6, 1.0))


class OraclePackingScheduler(Scheduler):
    """Pack by the job's true lifetime peak plus margin (lower bound)."""

    name = "oracle"

    def __init__(self, margin: float = 0.1) -> None:
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        self.margin = margin

    def footprint(self, job: Job) -> float:
        return float(np.clip(job.peak_usage + self.margin, 1e-6, 1.0))
