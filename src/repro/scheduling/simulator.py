"""Replay a placement against the jobs' actual usage.

For each time step, each machine's load is the sum of its hosted jobs'
actual usage. The report scores the trade-off the paper's §II describes:
fewer machines (higher utilization) versus overload intervals where
co-located demand exceeds capacity (the interference/QoS risk).

.. deprecated:: the overload/utilization arithmetic formerly hand-rolled
   here now lives in :func:`repro.cluster.replay.excess_stats`, shared
   with the allocation replay and the closed-loop cluster simulator.
   This module remains the public entry point for open-loop placement
   replay; new harnesses should build on the cluster primitives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.replay import EXCESS_EPS, ExcessStats, excess_stats
from .jobs import Job
from .scheduler import Scheduler

__all__ = [
    "ScheduleReport",
    "simulate_schedule",
    # re-exported shared primitives (historically defined here)
    "EXCESS_EPS",
    "ExcessStats",
    "excess_stats",
]


@dataclass(frozen=True)
class ScheduleReport:
    """Outcome of replaying one policy's placement."""

    policy: str
    n_jobs: int
    n_machines: int
    #: mean machine utilization (used / capacity) over the replay
    mean_utilization: float
    #: fraction of (machine, step) samples where demand exceeded capacity
    overload_rate: float
    #: mean excess demand during overloaded samples
    mean_overload_depth: float
    #: peak load observed on any machine
    peak_load: float

    def efficiency(self) -> float:
        """Jobs per machine — the headline consolidation metric."""
        return self.n_jobs / max(self.n_machines, 1)


def simulate_schedule(
    scheduler: Scheduler,
    jobs: list[Job],
    capacity: float = 1.0,
) -> ScheduleReport:
    """Place ``jobs`` and replay their actual usage on the placement."""
    if not jobs:
        raise ValueError("no jobs to schedule")
    durations = {j.duration for j in jobs}
    if len(durations) != 1:
        raise ValueError(f"jobs must share a duration for replay, got {sorted(durations)}")
    duration = durations.pop()

    assignment = scheduler.place(jobs, capacity=capacity)
    n_machines = max(assignment.values()) + 1

    load = np.zeros((n_machines, duration))
    for job in jobs:
        load[assignment[job.job_id]] += job.usage

    stats = excess_stats(demand=load, supply=capacity)

    return ScheduleReport(
        policy=scheduler.name,
        n_jobs=len(jobs),
        n_machines=n_machines,
        mean_utilization=stats.mean_served / capacity,
        overload_rate=stats.rate,
        mean_overload_depth=stats.mean_depth,
        peak_load=stats.peak_demand,
    )
