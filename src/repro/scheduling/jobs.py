"""Jobs with requested capacity and actual usage profiles.

The defining property of the Alibaba workload (paper §II and refs [5],
[20]): requests are sized for peaks, actual usage runs far below them,
and the gap is what co-location / overcommit reclaims.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..traces.workloads import WORKLOAD_ARCHETYPES

__all__ = ["Job", "JobGenerator"]


@dataclass
class Job:
    """One schedulable unit.

    ``usage`` is the actual CPU consumption per time step in [0, 1]
    normalized cores; ``request`` is the (constant) capacity the owner
    asked for. Overcommit-free schedulers must reserve ``request``.
    """

    job_id: str
    request: float
    usage: np.ndarray
    workload: str = ""

    def __post_init__(self) -> None:
        self.usage = np.asarray(self.usage, float)
        if self.usage.ndim != 1 or len(self.usage) == 0:
            raise ValueError(f"usage must be a non-empty 1-D array, got {self.usage.shape}")
        if not 0.0 < self.request <= 1.0:
            raise ValueError(f"request must be in (0, 1], got {self.request}")
        if (self.usage < 0).any():
            raise ValueError("usage must be non-negative")

    @property
    def duration(self) -> int:
        return len(self.usage)

    @property
    def peak_usage(self) -> float:
        return float(self.usage.max())

    @property
    def mean_usage(self) -> float:
        return float(self.usage.mean())

    @property
    def slack(self) -> float:
        """Requested-but-unused capacity on average (the reclaimable gap)."""
        return self.request - self.mean_usage


@dataclass
class JobGenerator:
    """Sample jobs whose usage follows the workload archetypes.

    ``request_inflation`` controls how much owners over-ask relative to
    their true peak — the paper's cluster sits near 2x (usage 40-60 % of
    capacity).
    """

    duration: int = 500
    seed: int = 0
    request_inflation: tuple[float, float] = (1.2, 2.0)
    usage_scale: tuple[float, float] = (0.1, 0.5)
    mix: dict[str, float] = field(
        default_factory=lambda: {
            "periodic": 0.3,
            "bursty": 0.3,
            "regime_switching": 0.2,
            "spiky_batch": 0.2,
        }
    )

    def __post_init__(self) -> None:
        unknown = set(self.mix) - set(WORKLOAD_ARCHETYPES)
        if unknown:
            raise ValueError(f"unknown archetypes: {sorted(unknown)}")
        if not self.mix:
            raise ValueError("mix may not be empty")

    def generate(self, n_jobs: int) -> list[Job]:
        rng = np.random.default_rng(self.seed)
        names = sorted(self.mix)
        weights = np.array([self.mix[k] for k in names], float)
        weights /= weights.sum()

        jobs = []
        for i in range(n_jobs):
            archetype = str(rng.choice(names, p=weights))
            shape = WORKLOAD_ARCHETYPES[archetype](self.duration, rng)
            scale = rng.uniform(*self.usage_scale)
            usage = np.clip(shape * scale, 0.0, 1.0)
            peak = max(float(usage.max()), 1e-3)
            request = float(np.clip(peak * rng.uniform(*self.request_inflation), 0.01, 1.0))
            jobs.append(
                Job(job_id=f"j_{i}", request=request, usage=usage, workload=archetype)
            )
        return jobs
