"""RPTCN reproduction (IEEE CLUSTER 2021).

Resource-usage prediction for high-dynamic cloud workloads with a Temporal
Convolutional Network augmented by a fully connected layer and an attention
mechanism, plus every substrate the paper depends on: a NumPy deep-learning
framework (:mod:`repro.nn`), an Alibaba-trace-v2018-like synthetic cluster
trace (:mod:`repro.traces`), the Algorithm-1 data pipeline
(:mod:`repro.data`), all baselines (:mod:`repro.models`), and the experiment
harnesses that regenerate every table and figure
(:mod:`repro.experiments`).
"""

__version__ = "1.0.0"

from . import (  # noqa: E402  (re-exported subpackages)
    allocation,
    analysis,
    cluster,
    data,
    experiments,
    models,
    nn,
    obs,
    scheduling,
    streaming,
    traces,
    training,
)

__all__ = [
    "nn",
    "models",
    "traces",
    "data",
    "training",
    "analysis",
    "experiments",
    "allocation",
    "scheduling",
    "streaming",
    "cluster",
    "obs",
]
