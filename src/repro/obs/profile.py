"""Lightweight function profiling hooks.

:func:`profiled` wraps a hot function so every call is counted and its
latency lands in a shared histogram keyed by function name — enough to
answer "where does serving time go" without a real profiler attached.
For functions called at very high frequency, ``sample=k`` times only
every ``k``-th call (calls are still all counted), keeping the two
clock reads off the common path.

When :func:`repro.obs.registry.set_enabled` has turned instrumentation
off, the wrapper short-circuits to the bare function call — one boolean
check of overhead.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, TypeVar

from .registry import MetricRegistry, get_registry, is_enabled, log_buckets

__all__ = ["profiled", "profile_block"]

F = TypeVar("F", bound=Callable[..., Any])

#: tighter-than-default buckets: profiled functions are sub-second hot paths
_PROFILE_BUCKETS = log_buckets(1e-7, 10.0, per_decade=3)


def profiled(
    fn: F | None = None,
    *,
    name: str | None = None,
    registry: MetricRegistry | None = None,
    sample: int = 1,
) -> F | Callable[[F], F]:
    """Decorator: count calls/errors and histogram the latency of ``fn``.

    Metrics (labelled ``function=<name>``, default the qualified name):

    * ``profiled_calls_total`` — every call, sampled or not;
    * ``profiled_errors_total`` — calls that raised;
    * ``profiled_seconds`` — latency of the sampled calls.

    ``registry=None`` resolves the process default *at call time*, so a
    test that installs its own registry captures the samples.
    """
    if sample < 1:
        raise ValueError(f"sample must be >= 1, got {sample}")

    def decorate(func: F) -> F:
        label = name or getattr(func, "__qualname__", getattr(func, "__name__", "fn"))
        state = {"tick": 0}

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not is_enabled():
                return func(*args, **kwargs)
            reg = get_registry(registry)
            labels = {"function": label}
            reg.counter("profiled_calls_total", "calls into profiled functions", labels).inc()
            state["tick"] += 1
            if state["tick"] % sample:
                return func(*args, **kwargs)
            t0 = time.perf_counter()
            try:
                return func(*args, **kwargs)
            except BaseException:
                reg.counter(
                    "profiled_errors_total", "profiled calls that raised", labels
                ).inc()
                raise
            finally:
                reg.histogram(
                    "profiled_seconds",
                    "latency of profiled functions",
                    labels,
                    buckets=_PROFILE_BUCKETS,
                ).observe(time.perf_counter() - t0)

        return wrapper  # type: ignore[return-value]

    return decorate if fn is None else decorate(fn)


@contextmanager
def profile_block(
    name: str, registry: MetricRegistry | None = None
) -> Iterator[None]:
    """Time an ad-hoc code block into the same ``profiled_*`` metrics."""
    if not is_enabled():
        yield
        return
    reg = get_registry(registry)
    labels = {"function": name}
    reg.counter("profiled_calls_total", "calls into profiled functions", labels).inc()
    t0 = time.perf_counter()
    try:
        yield
    except BaseException:
        reg.counter("profiled_errors_total", "profiled calls that raised", labels).inc()
        raise
    finally:
        reg.histogram(
            "profiled_seconds",
            "latency of profiled functions",
            labels,
            buckets=_PROFILE_BUCKETS,
        ).observe(time.perf_counter() - t0)
