"""Metric exporters: Prometheus text format, JSONL snapshots, summaries.

All file writes go through :func:`repro.ioutil.atomic_output`, so a
process killed mid-export can never leave a truncated snapshot for a
scraper or the next analysis step to choke on. The Prometheus output is
the standard text exposition format (``# HELP`` / ``# TYPE`` comments,
cumulative ``_bucket{le=...}`` histogram series), so a real scrape
target can serve it verbatim; the JSONL output is one self-contained
series object per line for offline tooling.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any

from ..ioutil import atomic_output
from .registry import MetricRegistry, get_registry

__all__ = [
    "prometheus_text",
    "jsonl_text",
    "summary",
    "write_snapshot",
]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _sanitize_name(name: str) -> str:
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _labels_text(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{_sanitize_name(k)}="{_escape_label(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _num(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def prometheus_text(registry: MetricRegistry | None = None) -> str:
    """Render every series in the Prometheus text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()
    for series in get_registry(registry).collect():
        name = _sanitize_name(series["name"])
        if name not in typed:
            typed.add(name)
            if series["help"]:
                lines.append(f"# HELP {name} {series['help']}")
            lines.append(f"# TYPE {name} {series['kind']}")
        labels = series["labels"]
        if series["kind"] in ("counter", "gauge"):
            lines.append(f"{name}{_labels_text(labels)} {_num(series['value'])}")
            continue
        running = 0
        for bound, count in zip(series["bounds"], series["bucket_counts"]):
            running += count
            le = _labels_text(labels, f'le="{bound:g}"')
            lines.append(f"{name}_bucket{le} {running}")
        le = _labels_text(labels, 'le="+Inf"')
        lines.append(f"{name}_bucket{le} {series['count']}")
        lines.append(f"{name}_sum{_labels_text(labels)} {_num(series['sum'])}")
        lines.append(f"{name}_count{_labels_text(labels)} {series['count']}")
    return "\n".join(lines) + "\n"


def jsonl_text(registry: MetricRegistry | None = None) -> str:
    """One JSON object per series, schema-tagged for offline tooling."""
    snap = get_registry(registry).snapshot()
    lines = [json.dumps({"schema": snap["schema"]}, sort_keys=True)]
    for series in snap["series"]:
        lines.append(json.dumps(_jsonable(series), sort_keys=True))
    return "\n".join(lines) + "\n"


def _jsonable(value: Any) -> Any:
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)  # 'inf'/'nan' — JSON has no literals for these
    return value


def summary(registry: MetricRegistry | None = None) -> str:
    """Human-readable table of every series (name, labels, headline stats)."""
    rows: list[tuple[str, str, str, str]] = []
    for series in get_registry(registry).collect():
        labels = ",".join(f"{k}={v}" for k, v in series["labels"]) or "-"
        if series["kind"] == "histogram":
            if series["count"]:
                q = series["quantiles"]
                stat = (
                    f"n={series['count']} mean={series['sum'] / series['count']:.6g} "
                    f"p50={q['p50']:.6g} p99={q['p99']:.6g} max={series['max']:.6g}"
                )
            else:
                stat = "n=0"
        else:
            stat = f"{series['value']:.6g}"
        rows.append((series["name"], series["kind"], labels, stat))
    if not rows:
        return "(no metrics recorded)\n"
    headers = ("metric", "kind", "labels", "value")
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows)) for i in range(4)]
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*("-" * w for w in widths))]
    lines += [fmt.format(*row) for row in rows]
    return "\n".join(lines) + "\n"


def write_snapshot(
    path: str | Path,
    registry: MetricRegistry | None = None,
    fmt: str | None = None,
) -> Path:
    """Atomically write a metrics snapshot; format follows the extension.

    ``.json``/``.jsonl`` produce JSONL; anything else (``.prom``,
    ``.txt``, ...) produces Prometheus text format. Pass ``fmt`` to
    override (``"prometheus"`` or ``"jsonl"``).
    """
    path = Path(path)
    if fmt is None:
        fmt = "jsonl" if path.suffix.lower() in (".json", ".jsonl") else "prometheus"
    if fmt not in ("prometheus", "jsonl"):
        raise ValueError(f"unknown snapshot format {fmt!r}")
    text = prometheus_text(registry) if fmt == "prometheus" else jsonl_text(registry)
    with atomic_output(path, suffix=path.suffix or ".tmp") as tmp:
        tmp.write_text(text)
    return path
