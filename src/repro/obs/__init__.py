"""Unified observability: metrics registry, tracing spans, profiling, exporters.

The paper's premise is monitoring-driven prediction, and this subsystem
turns the same lens on our own stack. Counters, gauges and log-bucket
histograms live in a process-global (or injected) :class:`MetricRegistry`
(:mod:`.registry`); nestable :func:`span` context managers build trace
trees with a deterministic-clock hook (:mod:`.trace`); snapshots export
as Prometheus text format or JSONL through crash-safe atomic writes
(:mod:`.export`); and :func:`profiled` hooks time hot functions
(:mod:`.profile`). The trainer, the online serving loop, the nn kernel
plan caches and the experiment runner are all wired through it — see
``runner --metrics-out`` for a one-flag snapshot of any experiment.

Everything here is stdlib-only, so any layer can import it without
cycles or optional dependencies. :func:`set_enabled` is the global kill
switch for optional telemetry (functional counters, e.g. the input
gate's quarantine counts, always record — they are serving state).
"""

from __future__ import annotations

from . import export, profile, registry, trace
from .export import jsonl_text, prometheus_text, summary, write_snapshot
from .profile import profile_block, profiled
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullRegistry,
    default_registry,
    get_registry,
    log_buckets,
    set_default_registry,
    use_registry,
)
from .trace import Span, Tracer, current_span, default_tracer, set_clock, span, use_clock

__all__ = [
    "registry",
    "trace",
    "export",
    "profile",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NullRegistry",
    "log_buckets",
    "default_registry",
    "set_default_registry",
    "get_registry",
    "use_registry",
    "Span",
    "Tracer",
    "span",
    "current_span",
    "default_tracer",
    "set_clock",
    "use_clock",
    "prometheus_text",
    "jsonl_text",
    "summary",
    "write_snapshot",
    "profiled",
    "profile_block",
    "set_enabled",
    "is_enabled",
]


def set_enabled(flag: bool) -> bool:
    """Toggle metrics *and* tracing together; returns the previous metric flag."""
    trace.set_enabled(flag)
    return registry.set_enabled(flag)


def is_enabled() -> bool:
    """Whether optional instrumentation is currently recording."""
    return registry.is_enabled()
