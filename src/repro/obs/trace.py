"""Nestable tracing spans with a deterministic-clock hook.

A :func:`span` context manager times a named region and links it into an
in-memory trace tree: nested spans become children, each span knows its
wall time and *own* time (wall minus children), and a body that raises
closes the span with ``status="error"`` before the exception propagates.
Finished root spans accumulate in a bounded ring on the tracer, so a
long-running server never grows its trace memory without bound.

Spans sit on per-record serving paths, so the hot path is deliberately
lean: a :class:`Span` is its own context manager (no generator frame, no
wrapper object), its counter dict and child list are allocated lazily,
and each span keeps at most :attr:`Tracer.max_children` children — the
rest are still timed (``child_time`` makes :attr:`Span.own_time` exact)
but only counted, so a million-record stream cannot balloon the tree.

Time comes from a swappable module clock (default
``time.perf_counter``); tests install a fake via :func:`set_clock` /
:func:`use_clock` to make durations exact instead of flaky.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = [
    "Span",
    "Tracer",
    "span",
    "current_span",
    "default_tracer",
    "set_enabled",
    "set_clock",
    "use_clock",
]

_clock: Callable[[], float] = time.perf_counter


def set_clock(clock: Callable[[], float]) -> Callable[[], float]:
    """Install a replacement time source; returns the previous one."""
    global _clock
    previous = _clock
    _clock = clock
    return previous


@contextmanager
def use_clock(clock: Callable[[], float]) -> Iterator[None]:
    """Temporarily replace the span clock (deterministic tests)."""
    previous = set_clock(clock)
    try:
        yield
    finally:
        set_clock(previous)


_EMPTY_COUNTERS: dict[str, float] = {}
_EMPTY_CHILDREN: list["Span"] = []


class Span:
    """One timed region of the trace tree.

    Acts as its own context manager when created via
    :meth:`Tracer.span`; entering pushes it on the tracer's thread-local
    stack, exiting pops it and attaches it to its parent (or the
    tracer's finished ring for roots). The ``counters`` dict and
    ``children`` list materialize on first use — most per-record spans
    need neither, and skipping two allocations per span is measurable at
    serving rates.
    """

    __slots__ = (
        "name",
        "t_start",
        "t_end",
        "status",
        "error",
        "child_time",
        "dropped_children",
        "_counters",
        "_children",
        "_tracer",
    )

    def __init__(self, name: str, t_start: float = 0.0, tracer: "Tracer | None" = None):
        self.name = name
        self.t_start = t_start
        self.t_end = t_start
        self.status = "ok"
        self.error: str | None = None
        self.child_time = 0.0
        self.dropped_children = 0
        self._counters: dict[str, float] | None = None
        self._children: list[Span] | None = None
        self._tracer = tracer

    # -- context manager (hot path) -----------------------------------------

    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer is not None:
            self.t_start = self.t_end = _clock()
            tracer._stack().append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.status = "error"
            self.error = f"{exc_type.__name__}: {exc}"
        self.t_end = _clock()
        tracer = self._tracer
        if tracer is None:
            return False
        stack = tracer._stack()
        stack.pop()
        if stack:
            parent = stack[-1]
            parent.child_time += self.t_end - self.t_start
            children = parent._children
            if children is None:
                children = parent._children = []
            if len(children) < tracer.max_children:
                children.append(self)
            else:
                parent.dropped_children += 1
        else:
            tracer.finished.append(self)
        return False

    # -- accessors -----------------------------------------------------------

    @property
    def counters(self) -> dict[str, float]:
        """Per-span counters (empty mapping until :meth:`add` is called)."""
        return self._counters if self._counters is not None else _EMPTY_COUNTERS

    @property
    def children(self) -> list["Span"]:
        """Child spans kept in the tree (see ``dropped_children``)."""
        return self._children if self._children is not None else _EMPTY_CHILDREN

    @property
    def duration(self) -> float:
        """Wall time spent inside the span (including children)."""
        return self.t_end - self.t_start

    @property
    def own_time(self) -> float:
        """Wall time minus the time attributed to child spans.

        Uses the running ``child_time`` accumulator, so it stays exact
        even for children dropped past the ``max_children`` cap.
        """
        return self.duration - self.child_time

    def add(self, key: str, amount: float = 1.0) -> None:
        """Bump a per-span counter (e.g. records processed, batches run)."""
        counters = self._counters
        if counters is None:
            counters = self._counters = {}
        counters[key] = counters.get(key, 0.0) + amount

    def walk(self) -> Iterator["Span"]:
        """Depth-first traversal of this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        return [s for s in self.walk() if s.name == name]

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "duration": self.duration,
            "own_time": self.own_time,
            "status": self.status,
            "error": self.error,
            "counters": dict(self.counters),
            "children": [c.to_dict() for c in self.children],
            "dropped_children": self.dropped_children,
        }

    def render(self, indent: int = 0) -> str:
        """Human-readable tree: name, wall, own time, counters, status."""
        extra = "".join(f" {k}={v:g}" for k, v in self.counters.items())
        if self.dropped_children:
            extra += f" (+{self.dropped_children} children dropped)"
        flag = "" if self.status == "ok" else f" !{self.status}: {self.error}"
        line = (
            f"{'  ' * indent}{self.name}: {self.duration * 1e3:.3f} ms "
            f"(own {self.own_time * 1e3:.3f} ms){extra}{flag}"
        )
        return "\n".join([line, *(c.render(indent + 1) for c in self.children)])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Span {self.name} {self.duration * 1e3:.3f}ms {self.status}>"


class _NullSpan(Span):
    """Shared no-op span handed out while tracing is disabled."""

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, key: str, amount: float = 1.0) -> None:
        return None


_NULL_SPAN = _NullSpan("disabled")


class Tracer:
    """Thread-local span stack plus a bounded ring of finished root spans."""

    def __init__(self, max_finished: int = 256, enabled: bool = True, max_children: int = 128):
        self.enabled = enabled
        self.finished: deque[Span] = deque(maxlen=max_finished)
        self.max_children = max_children
        self._local = threading.local()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        """The innermost open span on this thread, or None."""
        stack = self._stack()
        return stack[-1] if stack else None

    @property
    def last(self) -> Span | None:
        """Most recently finished root span."""
        return self.finished[-1] if self.finished else None

    def span(self, name: str) -> Span:
        """A context-manager span; a shared no-op span while disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return Span(name, tracer=self)

    def clear(self) -> None:
        self.finished.clear()
        self._local = threading.local()


_default_tracer = Tracer()


def default_tracer() -> Tracer:
    return _default_tracer


def span(name: str) -> Span:
    """Open a span on the process-default tracer."""
    return _default_tracer.span(name)


def current_span() -> Span | None:
    """Innermost open span on the default tracer (this thread)."""
    return _default_tracer.current()


def set_enabled(flag: bool) -> bool:
    """Toggle the default tracer; returns the previous setting."""
    previous = _default_tracer.enabled
    _default_tracer.enabled = bool(flag)
    return previous
