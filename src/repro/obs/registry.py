"""Metric instruments and the process-wide registry.

The subsystem is deliberately dependency-free (stdlib only) so any layer
of the stack — the nn substrate, the serving loop, the experiment
harnesses — can instrument itself without import cycles or optional
dependencies. Three instrument kinds cover everything the stack needs:

* :class:`Counter` — monotonically increasing event count.
* :class:`Gauge` — last-written value (optionally computed lazily by a
  callback at collection time).
* :class:`Histogram` — fixed log-scale buckets over positive-ish values
  (latencies, durations) with streaming quantile *estimates* derived
  from the bucket counts; non-finite observations are rejected.

Instruments are standalone objects. A :class:`MetricRegistry` is a
collection of them: ``registry.counter(name, labels=...)`` get-or-creates
a shared instrument, while ``registry.register(inst)`` attaches a
component-owned instrument — the component keeps exact per-instance
values (and can checkpoint/restore them) while the registry aggregates
same-name series across instances at collection time. Registered
instruments are held strongly so an event counted by a now-dead
component still shows up in later snapshots (a quarantine that happened
is a fact, even after its gate is gone); they are small plain objects,
so the cost is a few hundred bytes per component lifetime.

A process-global default registry backs all built-in wiring; tests and
embedders can inject their own via :func:`use_registry`. The module-wide
:func:`set_enabled` switch is consulted by the *instrumentation sites*
(trainer, serving loop, profiler) — functional counters such as the
input gate's quarantine counts always record, because they are serving
state, not optional telemetry.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NullRegistry",
    "log_buckets",
    "default_registry",
    "set_default_registry",
    "get_registry",
    "use_registry",
    "set_enabled",
    "is_enabled",
]

LabelItems = tuple[tuple[str, str], ...]

_enabled = True


def set_enabled(flag: bool) -> bool:
    """Toggle optional instrumentation sites; returns the previous value."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def is_enabled() -> bool:
    """Whether optional instrumentation sites should record."""
    return _enabled


def _freeze_labels(labels: Mapping[str, Any] | None) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared identity: ``name`` plus an immutable, sorted label set."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Mapping[str, Any] | None = None):
        if not name:
            raise ValueError("instrument name must be non-empty")
        self.name = name
        self.help = help
        self.labels: LabelItems = _freeze_labels(labels)
        self._lock = threading.Lock()

    @property
    def key(self) -> tuple[str, str, LabelItems]:
        return (self.kind, self.name, self.labels)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        lbl = ", ".join(f"{k}={v}" for k, v in self.labels)
        return f"<{type(self).__name__} {self.name}{{{lbl}}}>"


class Counter(_Instrument):
    """Monotonic event counter. ``inc`` only accepts non-negative amounts."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Mapping[str, Any] | None = None):
        super().__init__(name, help, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc by {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def restore(self, value: float) -> None:
        """Adopt an externally tracked total (checkpoint restore, cache mirror)."""
        if value < 0:
            raise ValueError(f"counter {self.name} cannot hold negative total {value}")
        with self._lock:
            self._value = float(value)


class Gauge(_Instrument):
    """Last-written value; pass ``callback`` to compute it lazily at collect."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, Any] | None = None,
        callback: Callable[[], float] | None = None,
    ):
        super().__init__(name, help, labels)
        self._value = 0.0
        self._callback = callback

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self._callback is not None:
            return float(self._callback())
        return self._value


def log_buckets(lo: float = 1e-6, hi: float = 100.0, per_decade: int = 3) -> tuple[float, ...]:
    """Log-spaced bucket upper bounds from ``lo`` to ``hi`` inclusive.

    The defaults span microseconds to ~2 minutes at 3 buckets per decade
    (25 bounds) — wide enough for both a conv kernel and a full refit.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    n = round(math.log10(hi / lo) * per_decade)
    bounds = [lo * 10 ** (i / per_decade) for i in range(n + 1)]
    bounds[-1] = hi  # kill float drift on the advertised top bound
    return tuple(bounds)


class Histogram(_Instrument):
    """Fixed-bucket histogram with streaming quantile estimates.

    Bucket ``i`` counts observations ``<= bounds[i]`` (and above the
    previous bound); one extra overflow bucket catches everything larger
    than the top bound. Quantiles are estimated by linear interpolation
    within the containing bucket and clamped into the exact observed
    ``[min, max]`` — so a single-sample histogram reports that sample
    exactly. NaN/inf observations raise ``ValueError`` and leave every
    statistic untouched.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, Any] | None = None,
        buckets: tuple[float, ...] | None = None,
    ):
        super().__init__(name, help, labels)
        bounds = tuple(buckets) if buckets is not None else log_buckets()
        if len(bounds) < 1 or any(nxt <= prev for prev, nxt in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing, got {bounds}")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(f"histogram {self.name} rejects non-finite observation {value!r}")
        # bisect over the fixed bounds (tuples are small: ~25 entries)
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self._counts[lo] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def minimum(self) -> float:
        return self._min if self._count else math.nan

    @property
    def maximum(self) -> float:
        return self._max if self._count else math.nan

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else math.nan

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count<=bound)`` pairs, ending at +inf."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self._counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + self._counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``); NaN when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return math.nan
        target = q * self._count
        running = 0.0
        for i, n in enumerate(self._counts):
            if n == 0:
                continue
            if running + n >= target:
                lower = 0.0 if i == 0 else self.bounds[i - 1]
                upper = self.bounds[i] if i < len(self.bounds) else self._max
                frac = (target - running) / n
                est = lower + frac * (upper - lower)
                return float(min(max(est, self._min), self._max))
            running += n
        return self._max

    def percentiles(self) -> dict[str, float]:
        return {"p50": self.quantile(0.5), "p90": self.quantile(0.9), "p99": self.quantile(0.99)}

    def restore(self, counts: list[int], total_sum: float, minimum: float, maximum: float) -> None:
        """Adopt externally tracked bucket state (checkpoint restore)."""
        if len(counts) != len(self._counts):
            raise ValueError(
                f"histogram {self.name} restore needs {len(self._counts)} buckets, "
                f"got {len(counts)}"
            )
        with self._lock:
            self._counts = [int(c) for c in counts]
            self._count = sum(self._counts)
            self._sum = float(total_sum)
            self._min = float(minimum) if self._count else math.inf
            self._max = float(maximum) if self._count else -math.inf


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class MetricRegistry:
    """Thread-safe collection of instruments plus lazy collectors.

    ``counter``/``gauge``/``histogram`` get-or-create instruments shared
    by everyone asking for the same ``(name, labels)``; ``register``
    attaches a component-owned instrument weakly. ``collect`` runs any
    registered collector callbacks (e.g. the nn plan-cache mirror), then
    returns every live series with same-key series merged: counters and
    histograms sum, gauges keep the most recently registered writer.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._shared: dict[tuple[str, str, LabelItems], _Instrument] = {}
        self._owned: list[_Instrument] = []
        self._collectors: dict[str, Callable[[], None]] = {}

    # -- get-or-create shared instruments --------------------------------------

    def _get_or_create(self, cls: type, name: str, help: str, labels, **kwargs) -> Any:
        key = (cls.kind, name, _freeze_labels(labels))
        with self._lock:
            inst = self._shared.get(key)
            if inst is None:
                for other_kind in ("counter", "gauge", "histogram"):
                    if other_kind != cls.kind and (other_kind, name, key[2]) in self._shared:
                        raise TypeError(
                            f"metric {name!r} already registered as a {other_kind}"
                        )
                inst = cls(name, help, labels, **kwargs)
                self._shared[key] = inst
            return inst

    def counter(self, name: str, help: str = "", labels: Mapping[str, Any] | None = None) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, Any] | None = None,
        callback: Callable[[], float] | None = None,
    ) -> Gauge:
        gauge = self._get_or_create(Gauge, name, help, labels)
        if callback is not None:
            gauge._callback = callback
        return gauge

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, Any] | None = None,
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    # -- component-owned instruments -------------------------------------------

    def register(self, instrument: _Instrument) -> _Instrument:
        """Attach an externally owned instrument (merged by key at collect)."""
        with self._lock:
            self._owned.append(instrument)
        return instrument

    def add_collector(self, fn: Callable[[], None], name: str | None = None) -> None:
        """Run ``fn`` before every collection; same ``name`` replaces."""
        with self._lock:
            self._collectors[name or f"collector-{id(fn)}"] = fn

    def adopt_series(self, series: Any) -> int:
        """Reconstruct snapshot series as owned instruments and register them.

        The merge half of cross-process observability: a worker process
        snapshots its registry (plain dicts), ships the series over the
        pool boundary, and the parent adopts them here. Adopted
        instruments merge with same-key native ones at collect time
        exactly like any other registered instrument — counters and
        histogram buckets sum across workers. Unknown kinds and
        malformed entries are skipped; returns how many were adopted.
        """
        adopted = 0
        for entry in series:
            try:
                kind = entry["kind"]
                name = entry["name"]
                labels = dict(entry.get("labels") or {})
                help_text = entry.get("help", "")
                inst: _Instrument
                if kind == "counter":
                    inst = Counter(name, help_text, labels)
                    inst.restore(float(entry["value"]))
                elif kind == "gauge":
                    inst = Gauge(name, help_text, labels)
                    inst.set(float(entry["value"]))
                elif kind == "histogram":
                    inst = Histogram(name, help_text, labels,
                                     buckets=tuple(entry["bounds"]))
                    if entry.get("count"):
                        inst.restore(
                            [int(c) for c in entry["bucket_counts"]],
                            float(entry["sum"]),
                            float(entry["min"]),
                            float(entry["max"]),
                        )
                else:
                    continue
            except (KeyError, TypeError, ValueError):
                continue
            self.register(inst)
            adopted += 1
        return adopted

    # -- collection -------------------------------------------------------------

    def _live_instruments(self) -> list[_Instrument]:
        with self._lock:
            return list(self._shared.values()) + list(self._owned)

    def collect(self) -> list[dict[str, Any]]:
        """Aggregated series, sorted by (name, labels) for stable output."""
        for fn in list(self._collectors.values()):
            fn()
        merged: dict[tuple[str, str, LabelItems], dict[str, Any]] = {}
        for inst in self._live_instruments():
            entry = merged.get(inst.key)
            if inst.kind == "counter":
                if entry is None:
                    merged[inst.key] = self._series(inst, value=inst.value)
                else:
                    entry["value"] += inst.value
            elif inst.kind == "gauge":
                if entry is None:
                    merged[inst.key] = self._series(inst, value=inst.value)
                else:
                    entry["value"] = inst.value  # later registration wins
            else:
                self._merge_histogram(merged, inst)
        return sorted(merged.values(), key=lambda s: (s["name"], s["labels"]))

    @staticmethod
    def _series(inst: _Instrument, **extra: Any) -> dict[str, Any]:
        return {"kind": inst.kind, "name": inst.name, "help": inst.help,
                "labels": inst.labels, **extra}

    def _merge_histogram(self, merged: dict, inst: Histogram) -> None:
        entry = merged.get(inst.key)
        if entry is None:
            merged[inst.key] = self._series(
                inst,
                count=inst.count,
                sum=inst.sum,
                min=inst.minimum,
                max=inst.maximum,
                bounds=inst.bounds,
                bucket_counts=list(inst._counts),
                quantiles=inst.percentiles(),
                _insts=[inst],
            )
            return
        if tuple(entry["bounds"]) != inst.bounds:
            return  # incompatible bucket layout: keep the first series
        entry["count"] += inst.count
        entry["sum"] += inst.sum
        entry["min"] = min(entry["min"], inst.minimum) if inst.count else entry["min"]
        entry["max"] = max(entry["max"], inst.maximum) if inst.count else entry["max"]
        entry["bucket_counts"] = [
            a + b for a, b in zip(entry["bucket_counts"], inst._counts)
        ]
        entry["_insts"].append(inst)
        # recompute merged quantiles from the summed buckets
        pool = Histogram(inst.name, inst.help, dict(inst.labels), buckets=inst.bounds)
        pool.restore(entry["bucket_counts"], entry["sum"], entry["min"], entry["max"])
        entry["quantiles"] = pool.percentiles()

    def snapshot(self) -> dict[str, Any]:
        """Plain-data snapshot of every series (JSON-friendly)."""
        series = []
        for s in self.collect():
            s = dict(s)
            s.pop("_insts", None)
            s["labels"] = dict(s["labels"])
            series.append(s)
        return {"schema": "repro-obs/v1", "series": series}

    def clear(self) -> None:
        """Drop every instrument and collector (test isolation)."""
        with self._lock:
            self._shared.clear()
            self._owned.clear()
            self._collectors.clear()


class NullRegistry(MetricRegistry):
    """A registry that records nothing — handy as an explicit off switch."""

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        return cls(name, help, labels, **kwargs)  # fresh, never stored

    def register(self, instrument: _Instrument) -> _Instrument:
        return instrument

    def add_collector(self, fn, name=None) -> None:
        return None


# ---------------------------------------------------------------------------
# process-global default
# ---------------------------------------------------------------------------

_default = MetricRegistry()


def default_registry() -> MetricRegistry:
    return _default


def set_default_registry(registry: MetricRegistry) -> MetricRegistry:
    """Swap the process-global registry; returns the previous one."""
    global _default
    previous = _default
    _default = registry
    return previous


def get_registry(registry: MetricRegistry | None = None) -> MetricRegistry:
    """Resolve an injectable registry argument (None -> the global default)."""
    return registry if registry is not None else _default


@contextmanager
def use_registry(registry: MetricRegistry | None = None) -> Iterator[MetricRegistry]:
    """Temporarily install ``registry`` (default: a fresh one) as the default."""
    registry = registry if registry is not None else MetricRegistry()
    previous = set_default_registry(registry)
    try:
        yield registry
    finally:
        set_default_registry(previous)
