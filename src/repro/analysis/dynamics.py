"""Mutation-point (changepoint) analysis.

The paper's core difficulty claim is that cloud series have *mutation
points* — abrupt, sustained level changes that periodic models miss.
This module makes that notion operational:

* :func:`detect_changepoints` — two-sided CUSUM detector over a series,
  returning the indices of sustained mean shifts;
* :func:`time_to_track` — how many steps after a changepoint a model's
  predictions need to re-enter a tolerance band around the truth (the
  formal version of Fig. 8's "the predicted values have not been
  corrected since then");
* :func:`mutation_density` — changepoints per kilo-sample, the
  "high-dynamic" score used to characterize workloads.
"""

from __future__ import annotations

import numpy as np

__all__ = ["detect_changepoints", "time_to_track", "mutation_density"]


def detect_changepoints(
    series: np.ndarray,
    threshold: float = 5.0,
    drift: float = 0.5,
    min_gap: int = 10,
) -> list[int]:
    """Two-sided CUSUM changepoint detection.

    ``threshold`` and ``drift`` are in units of the series' robust sigma
    (MAD-based). After each detection the statistics reset and detections
    within ``min_gap`` samples of the previous one are suppressed, so a
    single level shift reports once.
    """
    series = np.asarray(series, float)
    if series.ndim != 1 or len(series) < 4:
        raise ValueError("need a 1-D series with at least 4 points")
    if threshold <= 0 or drift < 0 or min_gap < 1:
        raise ValueError("threshold > 0, drift >= 0, min_gap >= 1 required")

    diffs = np.diff(series)
    mad = np.median(np.abs(diffs - np.median(diffs)))
    sigma = 1.4826 * mad if mad > 0 else (diffs.std() or 1.0)

    changepoints: list[int] = []
    mean = series[0]
    pos = neg = 0.0
    last_cp = -min_gap
    n_since_reset = 1
    for t in range(1, len(series)):
        # running mean of the current segment
        z = (series[t] - mean) / sigma
        pos = max(0.0, pos + z - drift)
        neg = max(0.0, neg - z - drift)
        n_since_reset += 1
        mean += (series[t] - mean) / n_since_reset
        if pos > threshold or neg > threshold:
            if t - last_cp >= min_gap:
                changepoints.append(t)
                last_cp = t
            pos = neg = 0.0
            mean = series[t]
            n_since_reset = 1
    return changepoints


def time_to_track(
    truth: np.ndarray,
    prediction: np.ndarray,
    changepoint: int,
    tolerance: float = 0.1,
    sustain: int = 3,
) -> int | None:
    """Steps after ``changepoint`` until |pred - truth| stays within
    ``tolerance`` for ``sustain`` consecutive samples.

    Returns ``None`` if the prediction never re-enters the band — the
    paper's "have not been corrected since then" case.
    """
    truth = np.asarray(truth, float)
    prediction = np.asarray(prediction, float)
    if truth.shape != prediction.shape or truth.ndim != 1:
        raise ValueError("truth and prediction must be equal-length 1-D arrays")
    if not 0 <= changepoint < len(truth):
        raise ValueError(f"changepoint {changepoint} outside series of {len(truth)}")
    if tolerance <= 0 or sustain < 1:
        raise ValueError("tolerance > 0 and sustain >= 1 required")

    err = np.abs(truth - prediction)[changepoint:]
    inside = err <= tolerance
    run = 0
    for i, ok in enumerate(inside):
        run = run + 1 if ok else 0
        if run >= sustain:
            return i - sustain + 1
    return None


def mutation_density(series: np.ndarray, **detector_kwargs) -> float:
    """Changepoints per 1000 samples — a workload's high-dynamic score."""
    cps = detect_changepoints(series, **detector_kwargs)
    return 1000.0 * len(cps) / len(series)
