"""Trace characterization and result reporting (Figs. 1-3, 7-10 data)."""

from .characterization import (
    BoxplotStats,
    boxplot_stats_per_window,
    fraction_below,
    resource_series,
    utilization_summary,
)
from .convergence import ConvergenceRecord, compare_convergence, epochs_to_threshold
from .dynamics import detect_changepoints, mutation_density, time_to_track
from .reporting import (
    format_table,
    render_ascii_series,
    series_to_rows,
    format_table2,
)
from .imbalance import (
    ImbalanceSummary,
    cluster_imbalance,
    cross_resource_imbalance,
    spatial_imbalance,
    temporal_imbalance,
)
from .timeseries import (
    ADFResult,
    Decomposition,
    acf,
    adf_test,
    pacf,
    seasonal_decompose,
)

__all__ = [
    "BoxplotStats",
    "boxplot_stats_per_window",
    "fraction_below",
    "resource_series",
    "utilization_summary",
    "ConvergenceRecord",
    "compare_convergence",
    "epochs_to_threshold",
    "format_table",
    "format_table2",
    "render_ascii_series",
    "series_to_rows",
    "acf",
    "pacf",
    "adf_test",
    "ADFResult",
    "seasonal_decompose",
    "Decomposition",
    "spatial_imbalance",
    "temporal_imbalance",
    "cross_resource_imbalance",
    "cluster_imbalance",
    "ImbalanceSummary",
    "detect_changepoints",
    "time_to_track",
    "mutation_density",
]
