"""Cluster characterization statistics (paper §II, Figs. 1-3).

These functions compute the data behind the paper's motivation figures:

* Fig. 1 — per-container utilization series of several resources;
* Fig. 2 — boxplot of the cluster-average CPU utilization per 6-hour
  window, with the windowed mean as the red line;
* Fig. 3 — fraction of machines whose CPU usage is below 50 % over time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..traces.schema import ClusterTrace, EntityTrace

__all__ = [
    "BoxplotStats",
    "boxplot_stats_per_window",
    "fraction_below",
    "resource_series",
    "utilization_summary",
]


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary plus mean of one boxplot window."""

    start_index: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def resource_series(
    entity: EntityTrace, indicators: tuple[str, ...] = ("cpu_util_percent", "mem_util_percent", "disk_io_percent")
) -> dict[str, np.ndarray]:
    """Fig. 1 data: selected indicator series of one entity."""
    return {name: entity.indicator(name).copy() for name in indicators}


def boxplot_stats_per_window(
    series: np.ndarray, window: int
) -> list[BoxplotStats]:
    """Fig. 2 data: boxplot stats of ``series`` per ``window`` samples.

    The paper samples every 6 hours; with 10 s sampling that's
    ``window = 2160``. A trailing partial window is included when it holds
    at least a quarter of a full window (enough samples for quantiles).
    """
    series = np.asarray(series, float)
    if series.ndim != 1:
        raise ValueError(f"series must be 1-D, got shape {series.shape}")
    if window < 4:
        raise ValueError(f"window must be >= 4, got {window}")
    out: list[BoxplotStats] = []
    for start in range(0, len(series), window):
        chunk = series[start : start + window]
        if len(chunk) < max(4, window // 4):
            break
        q1, med, q3 = np.percentile(chunk, [25, 50, 75])
        out.append(
            BoxplotStats(
                start_index=start,
                minimum=float(chunk.min()),
                q1=float(q1),
                median=float(med),
                q3=float(q3),
                maximum=float(chunk.max()),
                mean=float(chunk.mean()),
            )
        )
    if not out:
        raise ValueError(f"series of {len(series)} samples too short for window {window}")
    return out


def fraction_below(
    matrix: np.ndarray, threshold: float = 50.0, window: int = 1
) -> np.ndarray:
    """Fig. 3 data: per-time fraction of machines under ``threshold``.

    ``matrix`` is ``(n_machines, T)``; with ``window > 1`` the fractions
    are averaged in non-overlapping windows (the paper plots per period).
    """
    matrix = np.asarray(matrix, float)
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be (n_machines, T), got {matrix.shape}")
    frac = (matrix < threshold).mean(axis=0)
    if window <= 1:
        return frac
    t = (len(frac) // window) * window
    if t == 0:
        raise ValueError(f"T={matrix.shape[1]} shorter than window={window}")
    return frac[:t].reshape(-1, window).mean(axis=1)


def utilization_summary(trace: ClusterTrace) -> dict[str, float]:
    """Headline statistics the paper quotes about the cluster (§II).

    Returns the cluster-mean CPU utilization, the fraction of time the
    cluster average stays below 60 %, and the fraction of machines that
    spend most of their time below 50 % CPU.
    """
    cpu = trace.machine_cpu_matrix()  # (n_machines, T)
    cluster_avg = cpu.mean(axis=0)
    per_machine_below50 = (cpu < 50.0).mean(axis=1)  # fraction of time, per machine
    return {
        "mean_cpu": float(cpu.mean()),
        "cluster_avg_below_60_frac": float((cluster_avg < 60.0).mean()),
        "machines_mostly_below_50_frac": float((per_machine_below50 > 0.5).mean()),
        "p75_cluster_avg": float(np.percentile(cluster_avg, 75)),
    }
