"""Time-series statistics: ACF, PACF, stationarity, decomposition.

Supporting analysis for the trace characterization (§II) and for choosing
ARIMA orders: autocorrelation, partial autocorrelation (Durbin-Levinson),
an augmented Dickey-Fuller stationarity test, and classical
moving-average seasonal decomposition. All implemented here — no
statsmodels offline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "acf",
    "pacf",
    "ADFResult",
    "adf_test",
    "Decomposition",
    "seasonal_decompose",
]


def acf(series: np.ndarray, nlags: int) -> np.ndarray:
    """Sample autocorrelation for lags ``0..nlags`` (biased estimator).

    Computed via FFT convolution — O(n log n) rather than O(n * nlags).
    """
    series = np.asarray(series, float)
    if series.ndim != 1 or len(series) < 2:
        raise ValueError(f"series must be 1-D with >= 2 points, got shape {series.shape}")
    if not 0 <= nlags < len(series):
        raise ValueError(f"nlags must be in [0, {len(series) - 1}], got {nlags}")
    x = series - series.mean()
    n = len(x)
    # full autocovariance via FFT
    nfft = int(2 ** np.ceil(np.log2(2 * n - 1)))
    f = np.fft.rfft(x, nfft)
    autocov = np.fft.irfft(f * np.conj(f), nfft)[: nlags + 1] / n
    if autocov[0] == 0:
        out = np.zeros(nlags + 1)
        out[0] = 1.0
        return out
    return autocov / autocov[0]


def pacf(series: np.ndarray, nlags: int) -> np.ndarray:
    """Partial autocorrelation via the Durbin-Levinson recursion.

    ``pacf[0] = 1``; ``pacf[k]`` is the correlation of x_t with x_{t-k}
    after regressing out lags ``1..k-1`` — the diagnostic that reveals AR
    order (it cuts off after lag p for an AR(p) process).
    """
    rho = acf(series, nlags)
    out = np.zeros(nlags + 1)
    out[0] = 1.0
    if nlags == 0:
        return out
    phi = np.zeros((nlags + 1, nlags + 1))
    phi[1, 1] = rho[1]
    out[1] = rho[1]
    for k in range(2, nlags + 1):
        num = rho[k] - (phi[k - 1, 1:k] * rho[1:k][::-1]).sum()
        den = 1.0 - (phi[k - 1, 1:k] * rho[1:k]).sum()
        phi[k, k] = num / den if den != 0 else 0.0
        phi[k, 1:k] = phi[k - 1, 1:k] - phi[k, k] * phi[k - 1, 1:k][::-1]
        out[k] = phi[k, k]
    return out


@dataclass(frozen=True)
class ADFResult:
    """Augmented Dickey-Fuller outcome."""

    statistic: float
    nlags: int
    nobs: int
    #: MacKinnon critical values for the constant-only regression
    critical_values: dict[str, float]

    @property
    def is_stationary(self) -> bool:
        """Reject the unit-root null at the 5 % level."""
        return self.statistic < self.critical_values["5%"]


def adf_test(series: np.ndarray, nlags: int | None = None) -> ADFResult:
    """Augmented Dickey-Fuller test (constant, no trend).

    Regresses ``Δx_t`` on ``x_{t-1}``, lagged differences and a constant;
    the t-statistic of the ``x_{t-1}`` coefficient is compared against
    MacKinnon (2010) large-sample critical values.
    """
    series = np.asarray(series, float)
    if series.ndim != 1 or len(series) < 12:
        raise ValueError("need a 1-D series with at least 12 points")
    n = len(series)
    if nlags is None:
        nlags = int(np.floor(12.0 * (n / 100.0) ** 0.25))
        nlags = min(nlags, n // 2 - 2)
    dx = np.diff(series)
    # rows: t = nlags .. len(dx)-1
    y = dx[nlags:]
    cols = [series[nlags:-1], np.ones(len(y))]
    for k in range(1, nlags + 1):
        cols.append(dx[nlags - k : len(dx) - k])
    xmat = np.column_stack(cols)
    beta, _, _, _ = np.linalg.lstsq(xmat, y, rcond=None)
    resid = y - xmat @ beta
    dof = len(y) - xmat.shape[1]
    if dof <= 0:
        raise ValueError("series too short for the chosen lag order")
    sigma2 = float(resid @ resid) / dof
    cov = sigma2 * np.linalg.inv(xmat.T @ xmat)
    t_stat = float(beta[0] / np.sqrt(cov[0, 0]))
    critical = {"1%": -3.43, "5%": -2.86, "10%": -2.57}
    return ADFResult(statistic=t_stat, nlags=nlags, nobs=len(y), critical_values=critical)


@dataclass
class Decomposition:
    """Classical additive decomposition: x = trend + seasonal + resid."""

    trend: np.ndarray
    seasonal: np.ndarray
    resid: np.ndarray
    period: int

    def seasonal_strength(self) -> float:
        """Hyndman's strength-of-seasonality in [0, 1]."""
        detrended = self.seasonal + self.resid
        mask = ~np.isnan(self.resid)
        var_resid = float(np.var(self.resid[mask]))
        var_det = float(np.var(detrended[mask]))
        if var_det == 0:
            return 0.0
        return max(0.0, 1.0 - var_resid / var_det)


def seasonal_decompose(series: np.ndarray, period: int) -> Decomposition:
    """Classical moving-average additive decomposition.

    Trend = centred moving average of length ``period``; seasonal =
    per-phase mean of the detrended series (normalized to sum to zero);
    residual = the rest. Edges where the centred window doesn't fit are
    NaN in trend/resid, matching the classical convention.
    """
    series = np.asarray(series, float)
    if series.ndim != 1:
        raise ValueError("series must be 1-D")
    if period < 2 or len(series) < 2 * period:
        raise ValueError(
            f"need at least two full periods ({2 * period}) of data, have {len(series)}"
        )

    # centred moving average (even periods use the standard 2x MA)
    if period % 2 == 0:
        kernel = np.concatenate(([0.5], np.ones(period - 1), [0.5])) / period
    else:
        kernel = np.ones(period) / period
    half = len(kernel) // 2
    trend = np.full(len(series), np.nan)
    trend[half : len(series) - half] = np.convolve(series, kernel, mode="valid")

    detrended = series - trend
    phases = np.arange(len(series)) % period
    seasonal_means = np.array(
        [np.nanmean(detrended[phases == p]) for p in range(period)]
    )
    seasonal_means -= seasonal_means.mean()
    seasonal = seasonal_means[phases]
    resid = series - trend - seasonal
    return Decomposition(trend=trend, seasonal=seasonal, resid=resid, period=period)
