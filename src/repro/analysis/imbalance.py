"""Cluster imbalance metrics (Lu et al. 2017 — the paper's ref [5]).

§II of the paper leans on "Imbalance in the cloud": utilization is uneven
across machines (spatial), over time (temporal), and across resource
types on the same machine (cross-resource). These metrics quantify all
three on a :class:`~repro.traces.schema.ClusterTrace` and back the §II
claims in the characterization benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..traces.schema import ClusterTrace

__all__ = [
    "spatial_imbalance",
    "temporal_imbalance",
    "cross_resource_imbalance",
    "ImbalanceSummary",
    "cluster_imbalance",
]


def _cv(values: np.ndarray, axis: int) -> np.ndarray:
    """Coefficient of variation along ``axis`` (0 where the mean is 0)."""
    mean = values.mean(axis=axis)
    std = values.std(axis=axis)
    return np.divide(std, mean, out=np.zeros_like(std), where=mean != 0)


def spatial_imbalance(matrix: np.ndarray) -> np.ndarray:
    """Per-time-step CV of utilization across machines.

    ``matrix`` is ``(n_machines, T)``; high values mean some machines are
    loaded while others idle at the same moment — the scheduling
    inefficiency the paper's §II-1 describes.
    """
    matrix = np.asarray(matrix, float)
    if matrix.ndim != 2 or matrix.shape[0] < 2:
        raise ValueError(f"need (n_machines >= 2, T), got {matrix.shape}")
    return _cv(matrix, axis=0)


def temporal_imbalance(matrix: np.ndarray) -> np.ndarray:
    """Per-machine CV of utilization over time (bursty vs steady hosts)."""
    matrix = np.asarray(matrix, float)
    if matrix.ndim != 2 or matrix.shape[1] < 2:
        raise ValueError(f"need (n_machines, T >= 2), got {matrix.shape}")
    return _cv(matrix, axis=1)


def cross_resource_imbalance(
    trace: ClusterTrace,
    resources: tuple[str, str] = ("cpu_util_percent", "mem_util_percent"),
) -> np.ndarray:
    """Per-machine mean absolute gap between two resources' utilizations.

    A machine with hot CPU but cold memory strands the cold resource —
    the "different types of hardware resources are unevenly used" claim.
    Utilizations are compared on their percent scales.
    """
    if not trace.machines:
        raise ValueError("trace has no machines")
    a, b = resources
    gaps = []
    for m in trace.machines:
        gaps.append(float(np.abs(m.indicator(a) - m.indicator(b)).mean()))
    return np.asarray(gaps)


@dataclass(frozen=True)
class ImbalanceSummary:
    """Cluster-level imbalance headline numbers."""

    mean_spatial_cv: float
    max_spatial_cv: float
    mean_temporal_cv: float
    mean_cpu_mem_gap: float

    @property
    def is_imbalanced(self) -> bool:
        """The paper-calibrated threshold: spatial CV above 0.2."""
        return self.mean_spatial_cv > 0.2


def cluster_imbalance(trace: ClusterTrace) -> ImbalanceSummary:
    """All three imbalance views of one cluster trace."""
    cpu = trace.machine_cpu_matrix()
    spatial = spatial_imbalance(cpu)
    temporal = temporal_imbalance(cpu)
    gaps = cross_resource_imbalance(trace)
    return ImbalanceSummary(
        mean_spatial_cv=float(spatial.mean()),
        max_spatial_cv=float(spatial.max()),
        mean_temporal_cv=float(temporal.mean()),
        mean_cpu_mem_gap=float(gaps.mean()),
    )
