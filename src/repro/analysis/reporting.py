"""Plain-text rendering of tables and figure data.

The benchmark harness prints regenerated paper artifacts to stdout; these
helpers format them: aligned tables (Table II), ASCII sparkline charts
(Figs. 8-10 shape checks), and row dumps for external plotting.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["format_table", "format_table2", "render_ascii_series", "series_to_rows"]

_SPARK = "▁▂▃▄▅▆▇█"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row width {len(row)} != header width {len(headers)}")
        widths = [max(w, len(c)) for w, c in zip(widths, row)]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table2(
    results: dict[tuple[str, str, str], dict[str, float]],
    scenarios: Sequence[str] = ("uni", "mul", "mul_exp"),
    models: Sequence[str] = ("arima", "lstm", "cnn_lstm", "xgboost", "rptcn"),
) -> str:
    """Render Table II: (scenario, model, level) → {mse, mae}.

    Values are printed x 10^-2 like the paper. Missing combinations (e.g.
    ARIMA outside Uni) render as '-'.
    """
    headers = ["Scenario", "Model", "Cont MSE(e-2)", "Cont MAE(e-2)", "Mach MSE(e-2)", "Mach MAE(e-2)"]
    rows = []
    for scen in scenarios:
        for model in models:
            cont = results.get((scen, model, "containers"))
            mach = results.get((scen, model, "machines"))
            if cont is None and mach is None:
                continue
            rows.append(
                [
                    scen,
                    model,
                    f"{cont['mse'] * 100:.4f}" if cont else "-",
                    f"{cont['mae'] * 100:.4f}" if cont else "-",
                    f"{mach['mse'] * 100:.4f}" if mach else "-",
                    f"{mach['mae'] * 100:.4f}" if mach else "-",
                ]
            )
    return format_table(headers, rows, title="Table II — prediction accuracy (normalized units, x 1e-2)")


def render_ascii_series(
    series: np.ndarray, width: int = 72, label: str = ""
) -> str:
    """One-line unicode sparkline of a series (shape inspection in logs)."""
    series = np.asarray(series, float)
    if series.size == 0:
        raise ValueError("empty series")
    if series.size > width:
        # average pooling down to the display width
        edges = np.linspace(0, series.size, width + 1).astype(int)
        pooled = np.array([series[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a])
    else:
        pooled = series
    lo, hi = pooled.min(), pooled.max()
    span = hi - lo if hi > lo else 1.0
    levels = ((pooled - lo) / span * (len(_SPARK) - 1)).round().astype(int)
    chart = "".join(_SPARK[i] for i in levels)
    prefix = f"{label:12s} " if label else ""
    return f"{prefix}[{lo:.3f}..{hi:.3f}] {chart}"


def series_to_rows(
    named_series: dict[str, np.ndarray], index_name: str = "t"
) -> list[list]:
    """Zip several aligned series into printable rows (figure data dumps)."""
    if not named_series:
        raise ValueError("no series given")
    lengths = {len(v) for v in named_series.values()}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: { {k: len(v) for k, v in named_series.items()} }")
    n = lengths.pop()
    keys = list(named_series)
    rows = [[index_name, *keys]]
    for i in range(n):
        rows.append([i, *[float(named_series[k][i]) for k in keys]])
    return rows
