"""Loss-convergence analysis (paper Figs. 9-10).

The paper compares models on (a) how low the loss starts, (b) how fast it
converges, and (c) how low it ends. :func:`compare_convergence` extracts
those three facets from per-epoch loss curves so the benchmark can assert
the paper's qualitative ordering (RPTCN starts lowest and stays lowest).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["ConvergenceRecord", "epochs_to_threshold", "compare_convergence"]


@dataclass(frozen=True)
class ConvergenceRecord:
    """Summary of one model's loss curve."""

    model: str
    initial_loss: float
    final_loss: float
    best_loss: float
    epochs: int
    epochs_to_90pct: int
    auc: float  # area under the loss curve — lower = faster + lower

    @property
    def converged(self) -> bool:
        return self.final_loss <= 1.05 * self.best_loss


def epochs_to_threshold(curve: list[float] | np.ndarray, fraction: float = 0.9) -> int:
    """First epoch at which ``fraction`` of the total loss drop is achieved.

    Returns the 1-based epoch index; a flat curve converges at epoch 1.
    """
    curve = np.asarray(curve, float)
    if curve.size == 0:
        raise ValueError("empty loss curve")
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    start, best = curve[0], curve.min()
    drop = start - best
    if drop <= 0:
        return 1
    target = start - fraction * drop
    return int(np.argmax(curve <= target)) + 1


def compare_convergence(curves: dict[str, list[float]]) -> list[ConvergenceRecord]:
    """Summarize several models' loss curves, sorted by final loss."""
    records = []
    for model, curve in curves.items():
        arr = np.asarray(curve, float)
        if arr.size == 0:
            raise ValueError(f"model {model!r} has an empty loss curve")
        records.append(
            ConvergenceRecord(
                model=model,
                initial_loss=float(arr[0]),
                final_loss=float(arr[-1]),
                best_loss=float(arr.min()),
                epochs=int(arr.size),
                epochs_to_90pct=epochs_to_threshold(arr, 0.9),
                auc=float(np.trapezoid(arr)) if arr.size > 1 else float(arr[0]),
            )
        )
    records.sort(key=lambda r: r.final_loss)
    return records
