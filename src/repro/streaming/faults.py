"""Stream fault injection — the live-path twin of :mod:`repro.traces.corruption`.

``corruption.py`` damages archived traces so the offline cleaning stage
can be exercised; this module damages a *stream in flight* so the online
serving path's resilience can be. It reuses the same fault taxonomy
(missing cells, missing rows, impulse outliers, duplicated records from
at-least-once delivery) and adds the two failure modes only a live
system has: dropped records and refit crashes.

:class:`FaultInjector` wraps any iterable of monitoring records and is
fully deterministic given ``FaultConfig.seed``. Stream faults and refit
faults draw from independent generators, so how often the predictor
refits cannot change which records get corrupted — a property the
checkpoint/restore equivalence tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable, Iterator

import numpy as np

from ..traces.corruption import CorruptionConfig

__all__ = ["InjectedFault", "FaultConfig", "FaultInjector"]


class InjectedFault(RuntimeError):
    """Raised by the injector's refit hook to simulate a refit crash."""


@dataclass(frozen=True)
class FaultConfig:
    """Per-record fault probabilities for a live stream.

    Rates mirror :class:`~repro.traces.corruption.CorruptionConfig`
    (``nan_cell_rate`` ↔ ``missing_cell_rate`` and so on); ``drop_rate``
    and ``refit_failure_rate`` are serving-only faults with no archived
    equivalent.
    """

    drop_rate: float = 0.0
    nan_cell_rate: float = 0.0
    nan_row_rate: float = 0.0
    duplicate_rate: float = 0.0
    outlier_rate: float = 0.0
    outlier_scale: float = 4.0
    refit_failure_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name.endswith("_rate"):
                v = getattr(self, f.name)
                if not 0.0 <= v < 1.0:
                    raise ValueError(f"{f.name} must be in [0, 1), got {v}")
        if self.outlier_scale <= 1.0:
            raise ValueError("outlier_scale must exceed 1")

    @classmethod
    def from_corruption(
        cls,
        config: CorruptionConfig,
        drop_rate: float = 0.0,
        refit_failure_rate: float = 0.0,
        seed: int | None = None,
    ) -> "FaultConfig":
        """Lift an archived-trace corruption profile onto the live stream."""
        return cls(
            drop_rate=drop_rate,
            nan_cell_rate=config.missing_cell_rate,
            nan_row_rate=config.missing_row_rate,
            duplicate_rate=config.duplicate_rate,
            outlier_rate=config.outlier_rate,
            outlier_scale=config.outlier_scale,
            refit_failure_rate=refit_failure_rate,
            seed=config.seed if seed is None else seed,
        )

    @classmethod
    def at_level(
        cls, level: float, refit_failure_rate: float = 0.0, seed: int = 0
    ) -> "FaultConfig":
        """A combined fault profile parameterized by one severity knob.

        ``level`` is the NaN-cell rate; the other stream faults scale
        proportionally (half as many drops/rows/outliers, a quarter as
        many duplicates) — the shape used by the degradation-curve
        experiment.
        """
        if not 0.0 <= level < 1.0:
            raise ValueError(f"level must be in [0, 1), got {level}")
        return cls(
            drop_rate=level / 2,
            nan_cell_rate=level,
            nan_row_rate=level / 2,
            duplicate_rate=level / 4,
            outlier_rate=level / 2,
            refit_failure_rate=refit_failure_rate,
            seed=seed,
        )


class FaultInjector:
    """Deterministically fault a record stream and (optionally) refits.

    ``stream()`` yields damaged records while logging, per emitted
    record, the index of the clean source record it came from
    (``emitted_from``) — the alignment the degradation experiments need
    to score predictions against ground truth despite drops and
    duplicates. ``refit_fault`` is a zero-argument hook to pass as
    ``OnlinePredictor(refit_fault_hook=...)``; it raises
    :class:`InjectedFault` with probability ``refit_failure_rate`` per
    refit attempt.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._stream_rng = np.random.default_rng(config.seed)
        self._refit_rng = np.random.default_rng(config.seed + 0x5EED)
        self.emitted_from: list[int] = []
        self.counts = {
            "dropped": 0,
            "nan_cells": 0,
            "nan_rows": 0,
            "duplicated": 0,
            "outlier_records": 0,
            "refit_faults": 0,
        }

    def stream(self, records: Iterable[np.ndarray]) -> Iterator[np.ndarray]:
        """Yield records with faults applied; drops skip, duplicates repeat."""
        rng = self._stream_rng
        cfg = self.config
        for i, rec in enumerate(records):
            rec = np.atleast_1d(np.asarray(rec, float))
            if rng.random() < cfg.drop_rate:
                self.counts["dropped"] += 1
                continue
            out = rec.copy()
            if cfg.outlier_rate and rng.random() < cfg.outlier_rate:
                out = out * cfg.outlier_scale * rng.uniform(0.5, 1.5)
                self.counts["outlier_records"] += 1
            if cfg.nan_cell_rate:
                cells = rng.random(out.shape) < cfg.nan_cell_rate
                if cells.any():
                    out[cells] = np.nan
                    self.counts["nan_cells"] += int(cells.sum())
            if cfg.nan_row_rate and rng.random() < cfg.nan_row_rate:
                out[:] = np.nan
                self.counts["nan_rows"] += 1
            self.emitted_from.append(i)
            yield out
            if cfg.duplicate_rate and rng.random() < cfg.duplicate_rate:
                self.counts["duplicated"] += 1
                self.emitted_from.append(i)
                yield out.copy()

    def refit_fault(self) -> None:
        """Refit hook: crash this attempt with ``refit_failure_rate``."""
        if self._refit_rng.random() < self.config.refit_failure_rate:
            self.counts["refit_faults"] += 1
            raise InjectedFault("injected refit failure")
