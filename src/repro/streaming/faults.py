"""Stream fault injection — the live-path twin of :mod:`repro.traces.corruption`.

``corruption.py`` damages archived traces so the offline cleaning stage
can be exercised; this module damages a *stream in flight* so the online
serving path's resilience can be. It reuses the same fault taxonomy
(missing cells, missing rows, impulse outliers, duplicated records from
at-least-once delivery) and adds the two failure modes only a live
system has: dropped records and refit crashes.

:class:`FaultInjector` wraps any iterable of monitoring records and is
fully deterministic given ``FaultConfig.seed``. Stream faults and refit
faults draw from independent generators, so how often the predictor
refits cannot change which records get corrupted — a property the
checkpoint/restore equivalence tests rely on.

A third fault family lives one level below the records: **process
faults** against the sharded fleet's worker pool.
:class:`ProcessFault` / :class:`ChaosSchedule` describe deterministic
process-level injections keyed off the fleet tick counter — a scheduled
``SIGKILL``, an indefinite hang, a slow tick, or a corrupted protocol
reply — which
:class:`~repro.streaming.shard.ShardedFleetPredictor` forwards to its
workers so the supervision loop (detect → respawn → restore) can be
exercised reproducibly. Because faults are keyed to exact tick indices
and fleet steps never repeat, every fault fires at most once, even
across worker respawns.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable, Iterator

import numpy as np

from ..traces.corruption import CorruptionConfig

__all__ = [
    "InjectedFault",
    "FaultConfig",
    "FaultInjector",
    "ProcessFault",
    "ChaosSchedule",
]

#: process-fault kinds the shard worker loop understands
PROCESS_FAULT_KINDS = ("kill", "hang", "slow", "corrupt")


class InjectedFault(RuntimeError):
    """Raised by the injector's refit hook to simulate a refit crash."""


@dataclass(frozen=True)
class FaultConfig:
    """Per-record fault probabilities for a live stream.

    Rates mirror :class:`~repro.traces.corruption.CorruptionConfig`
    (``nan_cell_rate`` ↔ ``missing_cell_rate`` and so on); ``drop_rate``
    and ``refit_failure_rate`` are serving-only faults with no archived
    equivalent.
    """

    drop_rate: float = 0.0
    nan_cell_rate: float = 0.0
    nan_row_rate: float = 0.0
    duplicate_rate: float = 0.0
    outlier_rate: float = 0.0
    outlier_scale: float = 4.0
    refit_failure_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name.endswith("_rate"):
                v = getattr(self, f.name)
                if not 0.0 <= v < 1.0:
                    raise ValueError(f"{f.name} must be in [0, 1), got {v}")
        if self.outlier_scale <= 1.0:
            raise ValueError("outlier_scale must exceed 1")

    @classmethod
    def from_corruption(
        cls,
        config: CorruptionConfig,
        drop_rate: float = 0.0,
        refit_failure_rate: float = 0.0,
        seed: int | None = None,
    ) -> "FaultConfig":
        """Lift an archived-trace corruption profile onto the live stream."""
        return cls(
            drop_rate=drop_rate,
            nan_cell_rate=config.missing_cell_rate,
            nan_row_rate=config.missing_row_rate,
            duplicate_rate=config.duplicate_rate,
            outlier_rate=config.outlier_rate,
            outlier_scale=config.outlier_scale,
            refit_failure_rate=refit_failure_rate,
            seed=config.seed if seed is None else seed,
        )

    @classmethod
    def at_level(
        cls, level: float, refit_failure_rate: float = 0.0, seed: int = 0
    ) -> "FaultConfig":
        """A combined fault profile parameterized by one severity knob.

        ``level`` is the NaN-cell rate; the other stream faults scale
        proportionally (half as many drops/rows/outliers, a quarter as
        many duplicates) — the shape used by the degradation-curve
        experiment.
        """
        if not 0.0 <= level < 1.0:
            raise ValueError(f"level must be in [0, 1), got {level}")
        return cls(
            drop_rate=level / 2,
            nan_cell_rate=level,
            nan_row_rate=level / 2,
            duplicate_rate=level / 4,
            outlier_rate=level / 2,
            refit_failure_rate=refit_failure_rate,
            seed=seed,
        )


class FaultInjector:
    """Deterministically fault a record stream and (optionally) refits.

    ``stream()`` yields damaged records while logging, per emitted
    record, the index of the clean source record it came from
    (``emitted_from``) — the alignment the degradation experiments need
    to score predictions against ground truth despite drops and
    duplicates. ``refit_fault`` is a zero-argument hook to pass as
    ``OnlinePredictor(refit_fault_hook=...)``; it raises
    :class:`InjectedFault` with probability ``refit_failure_rate`` per
    refit attempt.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._stream_rng = np.random.default_rng(config.seed)
        self._refit_rng = np.random.default_rng(config.seed + 0x5EED)
        self.emitted_from: list[int] = []
        self.counts = {
            "dropped": 0,
            "nan_cells": 0,
            "nan_rows": 0,
            "duplicated": 0,
            "outlier_records": 0,
            "refit_faults": 0,
        }

    def stream(self, records: Iterable[np.ndarray]) -> Iterator[np.ndarray]:
        """Yield records with faults applied; drops skip, duplicates repeat."""
        rng = self._stream_rng
        cfg = self.config
        for i, rec in enumerate(records):
            rec = np.atleast_1d(np.asarray(rec, float))
            if rng.random() < cfg.drop_rate:
                self.counts["dropped"] += 1
                continue
            out = rec.copy()
            if cfg.outlier_rate and rng.random() < cfg.outlier_rate:
                out = out * cfg.outlier_scale * rng.uniform(0.5, 1.5)
                self.counts["outlier_records"] += 1
            if cfg.nan_cell_rate:
                cells = rng.random(out.shape) < cfg.nan_cell_rate
                if cells.any():
                    out[cells] = np.nan
                    self.counts["nan_cells"] += int(cells.sum())
            if cfg.nan_row_rate and rng.random() < cfg.nan_row_rate:
                out[:] = np.nan
                self.counts["nan_rows"] += 1
            self.emitted_from.append(i)
            yield out
            if cfg.duplicate_rate and rng.random() < cfg.duplicate_rate:
                self.counts["duplicated"] += 1
                self.emitted_from.append(i)
                yield out.copy()

    def refit_fault(self) -> None:
        """Refit hook: crash this attempt with ``refit_failure_rate``."""
        if self._refit_rng.random() < self.config.refit_failure_rate:
            self.counts["refit_faults"] += 1
            raise InjectedFault("injected refit failure")


@dataclass(frozen=True)
class ProcessFault:
    """One scheduled process-level fault against a shard worker.

    ``tick`` is the fleet step (``ShardedFleetPredictor``'s zero-based
    tick counter) at which the fault fires, inside the worker, *before*
    the tick is processed. Kinds:

    * ``"kill"`` — the worker SIGKILLs itself: an abrupt crash with no
      cleanup, the hardest failure the supervisor must survive;
    * ``"hang"`` — the worker sleeps indefinitely without replying,
      modelling a deadlock/livelock; only a tick deadline detects it;
    * ``"slow"`` — the worker sleeps ``duration`` seconds, then serves
      the tick normally: a straggler, not a failure;
    * ``"corrupt"`` — the worker replies with a malformed protocol
      message instead of the tick ack, modelling memory corruption or a
      version-skewed worker.
    """

    tick: int
    shard: int = 0
    kind: str = "kill"
    #: seconds to stall for ``"slow"`` faults (ignored by other kinds)
    duration: float = 0.25

    def __post_init__(self) -> None:
        if self.tick < 0:
            raise ValueError(f"tick must be >= 0, got {self.tick}")
        if self.shard < 0:
            raise ValueError(f"shard must be >= 0, got {self.shard}")
        if self.kind not in PROCESS_FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {PROCESS_FAULT_KINDS}, got {self.kind!r}"
            )
        if self.duration <= 0.0:
            raise ValueError(f"duration must be positive, got {self.duration}")


class ChaosSchedule:
    """A deterministic, tick-indexed schedule of :class:`ProcessFault`\\ s.

    The schedule is the whole chaos harness state: no randomness, no
    clocks. Each worker receives only its own slice
    (:meth:`for_shard`) at spawn time, so a respawned worker inherits
    the same schedule and the step counter guarantees already-fired
    faults never re-fire.
    """

    def __init__(self, faults: Iterable[ProcessFault]) -> None:
        faults = tuple(faults)
        seen: set[tuple[int, int]] = set()
        for f in faults:
            key = (f.tick, f.shard)
            if key in seen:
                raise ValueError(
                    f"duplicate fault at tick {f.tick} for shard {f.shard}"
                )
            seen.add(key)
        self._faults = tuple(sorted(faults, key=lambda f: (f.tick, f.shard)))

    @property
    def faults(self) -> tuple[ProcessFault, ...]:
        """All scheduled faults, ordered by ``(tick, shard)``."""
        return self._faults

    def for_shard(self, shard: int) -> dict[int, ProcessFault]:
        """The ``tick -> fault`` map one worker needs; empty dict if none."""
        return {f.tick: f for f in self._faults if f.shard == shard}

    def max_shard(self) -> int:
        """Highest shard index referenced, or ``-1`` for an empty schedule."""
        return max((f.shard for f in self._faults), default=-1)

    @classmethod
    def kill_at(cls, tick: int, shard: int = 0) -> "ChaosSchedule":
        """The canonical single-crash scenario: SIGKILL one shard once."""
        return cls([ProcessFault(tick=tick, shard=shard, kind="kill")])

    @classmethod
    def crash_loop(cls, shard: int, start: int, until: int) -> "ChaosSchedule":
        """Kill ``shard`` at every tick in ``[start, until)`` — the
        crash-loop that must trip the supervisor's breaker."""
        if until <= start:
            raise ValueError(f"empty crash window [{start}, {until})")
        return cls(
            ProcessFault(tick=t, shard=shard, kind="kill")
            for t in range(start, until)
        )

    def __len__(self) -> int:
        return len(self._faults)

    def __repr__(self) -> str:
        return f"ChaosSchedule({list(self._faults)!r})"
