"""Checksummed checkpoint artifacts for the serving layer.

A restarted serving process must resume mid-stream exactly where its
predecessor died, which puts two demands on the artifact format beyond
what bare ``pickle`` offers:

* **atomicity** — the file is staged next to its destination and
  published with ``os.replace`` (via :mod:`repro.ioutil`), so a crash
  mid-checkpoint leaves the previous checkpoint intact;
* **integrity** — an 8-byte magic, a format version, the payload length
  and a SHA-256 digest precede the payload, so truncated or bit-rotted
  files fail loudly with :class:`CheckpointError` instead of unpickling
  garbage into a live predictor.

The payload itself is a pickled plain-python/NumPy state mapping —
checkpoints are trusted local artifacts written by this process (the
usual pickle caveat: never load one from an untrusted source).
"""

from __future__ import annotations

import hashlib
import pickle
import struct
from pathlib import Path
from typing import Any

from ..ioutil import atomic_write_bytes

__all__ = ["CheckpointError", "write_checkpoint", "read_checkpoint", "try_read_checkpoint"]

_MAGIC = b"RPTCNCKP"
_VERSION = 1
#: magic + u32 version + u64 payload length + sha256 digest
_HEADER = struct.Struct("<8sIQ32s")


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, truncated, corrupt or incompatible."""


def write_checkpoint(path: str | Path, state: Any) -> None:
    """Serialize ``state`` to ``path`` atomically with an integrity header."""
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    header = _HEADER.pack(_MAGIC, _VERSION, len(payload), hashlib.sha256(payload).digest())
    atomic_write_bytes(path, header + payload)


def read_checkpoint(path: str | Path) -> Any:
    """Load and verify a checkpoint written by :func:`write_checkpoint`."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if len(raw) < _HEADER.size:
        raise CheckpointError(f"checkpoint {path} is truncated (no header)")
    magic, version, length, digest = _HEADER.unpack_from(raw)
    if magic != _MAGIC:
        raise CheckpointError(f"{path} is not a serving checkpoint (bad magic)")
    if version != _VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version {version}, expected {_VERSION}"
        )
    payload = raw[_HEADER.size :]
    if len(payload) != length:
        raise CheckpointError(
            f"checkpoint {path} is truncated: header promises {length} bytes, "
            f"found {len(payload)}"
        )
    if hashlib.sha256(payload).digest() != digest:
        raise CheckpointError(f"checkpoint {path} failed its integrity check (bad digest)")
    try:
        return pickle.loads(payload)
    except Exception as exc:  # pickle raises a zoo of types on bad input
        raise CheckpointError(f"checkpoint {path} payload failed to deserialize: {exc}") from exc


def try_read_checkpoint(path: str | Path) -> Any | None:
    """:func:`read_checkpoint`, but missing/corrupt artifacts return ``None``.

    The recovery path wants exactly this shape: a respawned shard worker
    restores from its background checkpoint when one is intact and cold-
    starts when it is absent, truncated, or bit-rotted — a damaged
    snapshot must degrade the restart, never abort it.
    """
    try:
        return read_checkpoint(path)
    except CheckpointError:
        return None
